"""Approximate top-K serving: build an IVF index, publish it, probe it.

The approximate retrieval tier (:mod:`repro.serve.ann`) trades a little
recall for a lot of throughput.  This example walks the full loop:

1. train a factor model on the training ratings;
2. build a deterministic IVF index over the item factors —
   :meth:`IvfIndex.build` clusters MIPS-reduced item vectors with a
   seeded k-means, so the same seed and factors give a bitwise-identical
   index on every run;
3. publish **model and index into one shared-memory segment** through
   :class:`repro.serve.ModelStore` — readers attach both zero-copy and
   the pair hot-swaps atomically (one segment, one commit stamp);
4. serve through an :class:`AnnScorer` and compare against the exact
   :class:`Scorer`: recall@10 of the approximate slates, measured with
   the same :func:`repro.serve.bench.recall_at_k` helper CI gates on;
5. attach a separate *reader process* with ``with_index=True`` and
   verify it returns identical slates — the index arrays are views into
   the same physical pages the publisher wrote;
6. hot-swap to a retrained model+index pair, then shut down and verify
   no shared-memory segment leaked.

Run with::

    python examples/ann_serving.py
"""

import multiprocessing
import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import HeterogeneousTrainer, load_dataset
from repro.config import HardwareConfig
from repro.experiments.context import default_preset
from repro.serve import (
    AnnScorer,
    IvfIndex,
    ModelStore,
    RecommendationService,
    Scorer,
    attach_model,
)
from repro.serve.bench import recall_at_k
from repro.shm import live_segment_names

DATASET = os.environ.get("REPRO_EXAMPLES_DATASET", "movielens")
ITERATIONS = int(os.environ.get("REPRO_EXAMPLES_ITERATIONS", "10"))

NLIST = 16
NPROBE = 4
TOP_K = 10


def train(data, seed: int):
    trainer = HeterogeneousTrainer(
        algorithm="hsgd_star",
        hardware=HardwareConfig(cpu_threads=8, gpu_count=1),
        training=data.spec.recommended_training(iterations=ITERATIONS, seed=seed),
        preset=default_preset(),
        seed=seed,
    )
    result = trainer.fit(data.train, data.test, iterations=ITERATIONS)
    print(
        f"  trained {len(result.trace.iterations)} iterations, "
        f"test RMSE {result.final_test_rmse:.4f}"
    )
    return result.model


def reader_process(handle, users, k, nprobe, out_queue):
    """A separate process attaching the published model *and* index."""
    model, index, segment = attach_model(handle, with_index=True)
    try:
        ids, _ = AnnScorer(model, index, nprobe=nprobe).top_k(
            np.asarray(users), k
        )
        out_queue.put([row.tolist() for row in ids])
    finally:
        model = None
        index = None
        segment.close()


def main() -> None:
    data = load_dataset(DATASET)
    print(f"training on {DATASET} ({data.train.nnz} ratings) ...")
    model_v1 = train(data, seed=0)

    index_v1 = IvfIndex.build(model_v1, nlist=NLIST, seed=0)
    rebuilt = IvfIndex.build(model_v1, nlist=NLIST, seed=0)
    print(
        f"built IVF index: nlist={NLIST}, "
        f"{index_v1.meta.nbytes / 1e3:.0f} kB, "
        f"deterministic rebuild identical: {index_v1.same_arrays(rebuilt)}"
    )

    users = np.asarray(sorted(int(u) for u in set(data.test.rows[:64])))
    exact_ids, _ = Scorer(model_v1).top_k(users, TOP_K)
    approx_ids, _ = AnnScorer(model_v1, index_v1, nprobe=NPROBE).top_k(
        users, TOP_K
    )
    recall = recall_at_k(approx_ids, exact_ids)
    print(
        f"  recall@{TOP_K} at nprobe={NPROBE}/{NLIST}: {recall:.4f} "
        f"over {len(users)} users"
    )

    with ModelStore() as store:
        handle = store.publish(model_v1, index=index_v1)
        print(
            f"published model+index version {handle.version} "
            f"({handle.nbytes / 1e6:.1f} MB shared segment, "
            f"index meta rides the handle: {handle.index is not None})"
        )

        service = RecommendationService(
            store, k=TOP_K, batch_size=8, ann=True, nprobe=NPROBE
        )
        rec = service.recommend(int(users[0]))
        print(
            f"  service tier {service.tier!r}: top-{TOP_K} for user "
            f"{rec.user}: {rec.items.tolist()}"
        )

        # A reader in another process maps the same physical pages —
        # factors and index arrays both — and must score identically.
        ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        out_queue = ctx.Queue()
        proc = ctx.Process(
            target=reader_process,
            args=(handle, users.tolist(), TOP_K, NPROBE, out_queue),
        )
        proc.start()
        remote = out_queue.get(timeout=120)
        proc.join(timeout=60)
        assert remote == [row.tolist() for row in approx_ids]
        print(
            f"  reader process attached {handle.segment!r} and returned "
            "identical slates"
        )

        # Hot-swap the pair: one publish, one commit stamp, so no reader
        # can ever see version-2 factors with the version-1 index.
        model_v2 = train(data, seed=1)
        store.publish(model_v2, index=IvfIndex.build(model_v2, nlist=NLIST, seed=0))
        rec2 = service.recommend(int(users[0]))
        print(
            f"  after hot-swap: serving version {rec2.model_version}, "
            f"live segments for versions {store.live_versions}"
        )
        service.close()

    leaked = [n for n in live_segment_names()]
    print(f"clean shutdown, leaked segments: {leaked if leaked else 'none'}")
    assert not leaked


if __name__ == "__main__":
    main()
