"""Streaming ingestion end to end: stream → fold-in → retrain → hot-swap.

The full online loop of :mod:`repro.stream`, on a synthetic low-rank
rating stream:

1. train a base model on the historical prefix of the ratings and
   publish it to a :class:`repro.serve.ModelStore`;
2. replay the rest as a stream through an
   :class:`repro.stream.IngestSession`: recent ratings sit in a
   held-out window (the drift validation set), older ones graduate into
   the live matrix (:meth:`SparseRatingMatrix.append`);
3. watch brand-new users and items get **folded in** — one vectorised
   least-squares solve against the fixed factors, no retrain;
4. watch drift trip the policy and trigger a **warm-start retrain**
   (``fit(resume_from=checkpoint)`` over the grown matrix);
5. a reader process attached to the store hot-swaps to each published
   version mid-stream and scores newcomers the base model had never
   heard of;
6. shut down and verify no shared-memory segment leaked.

Run with::

    python examples/streaming_pipeline.py
"""

import multiprocessing
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import HeterogeneousTrainer
from repro.config import HardwareConfig, TrainingConfig
from repro.serve import ModelStore, attach_model
from repro.shm import live_segment_names
from repro.sparse import SparseRatingMatrix
from repro.stream import DriftPolicy, IngestSession

BASE_USERS = int(os.environ.get("REPRO_EXAMPLES_USERS", "120"))
BASE_ITEMS = int(os.environ.get("REPRO_EXAMPLES_ITEMS", "90"))
NEW_USERS = 30
NEW_ITEMS = 20
FACTORS = 6
BASE_RATINGS = int(os.environ.get("REPRO_EXAMPLES_RATINGS", "4000"))
STREAM_BATCHES = 8
BATCH = 250
WINDOW = 400


def synthetic_world(seed: int = 7):
    """A low-rank ground truth covering base users/items plus newcomers."""
    rng = np.random.default_rng(seed)
    p = rng.uniform(0.0, 1.0, (BASE_USERS + NEW_USERS, FACTORS))
    q = rng.uniform(0.0, 1.0, (FACTORS, BASE_ITEMS + NEW_ITEMS))
    return rng, p, q


def reader_process(handle_queue, out_queue, probe_user_item):
    """Hot-swap reader: attach every version the publisher announces."""
    user, item = probe_user_item
    seen = []
    while True:
        handle = handle_queue.get(timeout=120)
        if handle is None:
            break
        model, segment = attach_model(handle)
        try:
            m, n = model.shape
            score = (
                float(model.predict_single(user, item))
                if user < m and item < n
                else None
            )
            seen.append((handle.version, m, n, score))
        finally:
            model = None
            segment.close()
    out_queue.put(seen)


def main() -> None:
    rng, p_true, q_true = synthetic_world()

    rows = rng.integers(0, BASE_USERS, BASE_RATINGS)
    cols = rng.integers(0, BASE_ITEMS, BASE_RATINGS)
    vals = np.einsum("ik,ki->i", p_true[rows], q_true[:, cols])
    matrix = SparseRatingMatrix(rows, cols, vals)

    trainer = HeterogeneousTrainer(
        algorithm="hsgd_star",
        hardware=HardwareConfig(cpu_threads=4, gpu_count=1),
        training=TrainingConfig(
            latent_factors=FACTORS, learning_rate=0.05, iterations=8
        ),
        seed=0,
    )

    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    handle_queue: multiprocessing.Queue = ctx.Queue()
    out_queue: multiprocessing.Queue = ctx.Queue()
    probe = (BASE_USERS + NEW_USERS - 1, BASE_ITEMS + NEW_ITEMS - 1)

    with ModelStore() as store:
        session = IngestSession(
            trainer,
            matrix,
            store=store,
            window_size=WINDOW,
            policy=DriftPolicy(rmse_increase=0.02, min_coverage=0.85),
            backend="simulate",
            retrain_iterations=6,
        )
        result = session.start()
        print(
            f"base model: {session.model!r}, "
            f"{len(result.trace.iterations)} epochs"
        )
        # Fork the reader only now, after the first publish: the child
        # inherits the parent's running resource tracker, keeping all
        # segment bookkeeping in one place.
        reader = ctx.Process(
            target=reader_process, args=(handle_queue, out_queue, probe)
        )
        reader.start()
        handle_queue.put(store.current_handle())

        published = 1
        for batch in range(STREAM_BATCHES):
            # The stream gradually shifts toward the newcomers.
            hot = min(1.0, 0.2 + 0.1 * batch)
            n_new = int(BATCH * hot)
            bu = np.concatenate([
                rng.integers(0, BASE_USERS, BATCH - n_new),
                rng.integers(BASE_USERS, BASE_USERS + NEW_USERS, n_new),
            ])
            bv = np.concatenate([
                rng.integers(0, BASE_ITEMS, BATCH - n_new),
                rng.integers(BASE_ITEMS, BASE_ITEMS + NEW_ITEMS, n_new),
            ])
            bvals = np.einsum("ik,ki->i", p_true[bu], q_true[:, bv])
            report = session.ingest(bu, bv, bvals)
            line = (
                f"batch {batch}: graduated {report.graduated:>4}, "
                f"window coverage "
                f"{'n/a' if report.drift is None else f'{report.drift.coverage:.2f}'}"
            )
            if report.folded_users or report.folded_items:
                line += (
                    f", folded +{report.folded_users}u/+{report.folded_items}i"
                )
            if report.retrained:
                line += ", RETRAINED (warm start)"
            if report.published_version is not None:
                handle_queue.put(store.current_handle())
                published += 1
                line += f", published v{report.published_version}"
            print(line)

        report = session.flush()
        if report.published_version is not None:
            handle_queue.put(store.current_handle())
            published += 1
        handle_queue.put(None)

        swaps = out_queue.get(timeout=120)
        reader.join(timeout=60)

        stats = session.stats
        print(
            f"stream done: {stats.ingested} ingested, "
            f"{stats.folded_users} users / {stats.folded_items} items "
            f"folded in, {stats.retrains} warm-start retrains, "
            f"{stats.publishes} versions published"
        )
        print(f"final matrix {matrix.shape} with {matrix.nnz} ratings")

    assert len(swaps) == published, (swaps, published)
    versions = [v for v, _, _, _ in swaps]
    assert versions == sorted(versions), "reader saw versions out of order"
    first_m, first_n = swaps[0][1], swaps[0][2]
    last = swaps[-1]
    print(
        f"reader hot-swapped {len(swaps)} versions: "
        f"({first_m}, {first_n}) -> ({last[1]}, {last[2]})"
    )
    # The stream introduced newcomers, so the last published version
    # must have grown and must score the probe pair the base could not.
    assert (last[1], last[2]) == (
        BASE_USERS + NEW_USERS,
        BASE_ITEMS + NEW_ITEMS,
    ), swaps
    assert swaps[0][3] is None and last[3] is not None

    leaked = [n for n in live_segment_names()]
    print(f"clean shutdown, leaked segments: {leaked if leaked else 'none'}")
    assert not leaked


if __name__ == "__main__":
    main()
