"""Quickstart: factorize a rating matrix on the simulated CPU-GPU machine.

Loads the scaled MovieLens analogue, trains HSGD* (the paper's hybrid
CPU-GPU algorithm) for a few iterations, reports the test RMSE and the
simulated running time, and produces top-N recommendations for one user —
the canonical downstream use of a matrix-factorization model.

Run with::

    python examples/quickstart.py

``REPRO_EXAMPLES_DATASET`` and ``REPRO_EXAMPLES_ITERATIONS`` override
the defaults (the CI smoke job sets them to a tiny configuration).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import factorize, load_dataset
from repro.experiments.context import default_preset

DATASET = os.environ.get("REPRO_EXAMPLES_DATASET", "movielens")
ITERATIONS = int(os.environ.get("REPRO_EXAMPLES_ITERATIONS", "10"))


def main() -> None:
    data = load_dataset(DATASET)
    print(f"dataset   : {data.spec.name}")
    print(f"train/test: {data.train.nnz} / {data.test.nnz} ratings "
          f"({data.train.n_rows} users x {data.train.n_cols} items)")

    training = data.spec.recommended_training(iterations=ITERATIONS)
    result = factorize(
        data.train,
        data.test,
        algorithm="hsgd_star",
        training=training,
        preset=default_preset(),
        iterations=ITERATIONS,
    )

    print(f"\nalgorithm            : HSGD* (nonuniform division + dynamic scheduling)")
    print(f"GPU workload share   : {result.alpha:.2%}")
    print(f"simulated time       : {result.engine_time * 1e3:.3f} ms "
          f"(simulated machine, scaled datasets)")
    print(f"final test RMSE      : {result.final_test_rmse:.4f}")
    print("RMSE after each iteration:")
    for time, rmse in result.rmse_curve():
        print(f"  t={time * 1e3:7.3f} ms   rmse={rmse:.4f}")

    user = int(data.train.rows[0])
    recommendations = result.model.top_items(user, count=5)
    print(f"\ntop-5 recommended items for user {user}: {recommendations.tolist()}")


if __name__ == "__main__":
    main()
