"""Train a model, publish it into shared memory, and serve top-K from it.

The full production loop the serving layer (:mod:`repro.serve`) is built
for:

1. train a factor model on the training ratings;
2. publish it into a :class:`repro.serve.ModelStore` — one shared-memory
   segment that any number of reader processes attach zero-copy;
3. serve recommendations through a :class:`RecommendationService`
   (request coalescing + an LRU cache keyed on ``(model_version, user)``),
   excluding items each user already rated;
4. attach a separate *reader process* to the published model by name and
   verify it scores identically — one physical copy of the factors, any
   number of readers;
5. retrain and **hot-swap**: publish version 2, watch the service reload
   and the cache roll over, and the old version's segment get unlinked
   once nothing pins it;
6. shut down and verify no shared-memory segment leaked.

Run with::

    python examples/serving_pipeline.py
"""

import multiprocessing
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import HeterogeneousTrainer, load_dataset
from repro.config import HardwareConfig
from repro.experiments.context import default_preset
from repro.serve import ModelStore, RecommendationService, attach_model
from repro.shm import live_segment_names

DATASET = os.environ.get("REPRO_EXAMPLES_DATASET", "movielens")
ITERATIONS = int(os.environ.get("REPRO_EXAMPLES_ITERATIONS", "10"))


def train(data, seed: int):
    trainer = HeterogeneousTrainer(
        algorithm="hsgd_star",
        hardware=HardwareConfig(cpu_threads=8, gpu_count=1),
        training=data.spec.recommended_training(iterations=ITERATIONS, seed=seed),
        preset=default_preset(),
        seed=seed,
    )
    result = trainer.fit(data.train, data.test, iterations=ITERATIONS)
    print(
        f"  trained {len(result.trace.iterations)} iterations, "
        f"test RMSE {result.final_test_rmse:.4f}"
    )
    return result.model


def reader_process(handle, users, k, out_queue):
    """A separate process attaching the published model by name."""
    model, segment = attach_model(handle)
    try:
        slates = {int(u): model.top_items(int(u), count=k).tolist() for u in users}
        out_queue.put(slates)
    finally:
        model = None
        segment.close()


def main() -> None:
    data = load_dataset(DATASET)
    print(f"training on {DATASET} ({data.train.nnz} ratings) ...")
    model_v1 = train(data, seed=0)

    with ModelStore() as store:
        handle = store.publish(model_v1)
        print(
            f"published model version {handle.version} "
            f"({handle.nbytes / 1e6:.1f} MB shared segment)"
        )

        service = RecommendationService(
            store, k=10, batch_size=8, exclude=data.train
        )
        users = [int(u) for u in data.test.rows[:4]]
        for rec in service.recommend_many(users):
            print(f"  top-10 for user {rec.user}: {rec.items.tolist()}")
        again = service.recommend(users[0])
        assert again.model_version == handle.version
        stats = service.stats
        print(
            f"  service stats: {stats.requests} requests, "
            f"{stats.cache_hits} cache hits, {stats.batches_scored} batches"
        )

        # A reader in another process maps the same physical pages.
        ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        out_queue = ctx.Queue()
        proc = ctx.Process(
            target=reader_process, args=(handle, users, 10, out_queue)
        )
        proc.start()
        remote = out_queue.get(timeout=120)
        proc.join(timeout=60)
        print(f"  reader process attached segment {handle.segment!r}")

        # Hot-swap to a retrained model; the service reloads on the next
        # request and the old segment is unlinked once unpinned.
        model_v2 = train(data, seed=1)
        store.publish(model_v2)
        rec2 = service.recommend(users[0])
        print(
            f"  after hot-swap: serving version {rec2.model_version}, "
            f"live segments for versions {store.live_versions}"
        )
        service.close()

    leaked = [n for n in live_segment_names()]
    print(f"clean shutdown, leaked segments: {leaked if leaked else 'none'}")
    assert not leaked
    # The reader scored against the same physical pages the publisher
    # wrote: its slates must equal the local model's, user for user.
    assert set(remote) == set(users)
    for user in users:
        assert remote[user] == model_v1.top_items(user, count=10).tolist()


if __name__ == "__main__":
    main()
