"""Resumable training sessions: step, observe, checkpoint, resume.

Demonstrates the stepwise execution API introduced on top of both
engines:

1. drive a run epoch by epoch with ``engine-level`` sessions
   (``fit`` and ``factorize`` wrap the same loop);
2. attach callbacks — early stopping, a JSONL trajectory log, periodic
   checkpoints — to a plain ``fit()`` call;
3. kill the run halfway, then resume it from the checkpoint and verify
   the resumed factors are *bitwise identical* to an uninterrupted run
   (the simulate backend's pinned guarantee).

Run with::

    python examples/resumable_training.py

``REPRO_EXAMPLES_DATASET`` and ``REPRO_EXAMPLES_ITERATIONS`` override
the defaults (the CI smoke job sets them to a tiny configuration).
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import HeterogeneousTrainer, load_dataset
from repro.exec import Checkpoint, EarlyStopping, JsonlLogger
from repro.experiments.context import default_preset

DATASET = os.environ.get("REPRO_EXAMPLES_DATASET", "movielens")
ITERATIONS = int(os.environ.get("REPRO_EXAMPLES_ITERATIONS", "10"))


def make_trainer(data):
    return HeterogeneousTrainer(
        algorithm="hsgd_star",
        training=data.spec.recommended_training(iterations=ITERATIONS),
        preset=default_preset(),
        seed=0,
    )


def main() -> None:
    data = load_dataset(DATASET)
    half = max(1, ITERATIONS // 2)

    # -- 1. the uninterrupted reference run, with observation callbacks
    with tempfile.TemporaryDirectory() as directory:
        log_path = os.path.join(directory, "trajectory.jsonl")
        full = make_trainer(data).fit(
            data.train,
            data.test,
            iterations=ITERATIONS,
            callbacks=[
                JsonlLogger(log_path),
                EarlyStopping(patience=max(3, ITERATIONS)),  # generous: observes only
            ],
        )
        logged = sum(1 for _ in open(log_path, encoding="utf-8"))
        print(f"uninterrupted run : {len(full.trace.iterations)} epochs, "
              f"final RMSE {full.final_test_rmse:.4f}, "
              f"stopped because '{full.stop_reason}' "
              f"({logged} JSONL lines logged)")

        # -- 2. train half, checkpoint, abandon
        ckpt_path = os.path.join(directory, "halfway")
        callback = Checkpoint(ckpt_path, every_n=half)
        make_trainer(data).fit(
            data.train, data.test, iterations=half, callbacks=[callback]
        )
        print(f"checkpointed at   : epoch {half} -> {callback.saved_paths[-1]}")

        # -- 3. resume to the full epoch budget (total, not additional)
        resumed = make_trainer(data).fit(
            data.train,
            data.test,
            iterations=ITERATIONS,
            resume_from=callback.saved_paths[-1],
        )
        print(f"resumed run       : {len(resumed.trace.iterations)} epochs, "
              f"final RMSE {resumed.final_test_rmse:.4f}")

    identical = np.array_equal(full.model.p, resumed.model.p) and np.array_equal(
        full.model.q, resumed.model.q
    )
    print(f"bitwise identical : {identical}")
    if not identical:
        raise SystemExit("resume parity violated — this is a bug")


if __name__ == "__main__":
    main()
