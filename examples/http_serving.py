"""Serve top-K recommendations over HTTP and hot-swap the model live.

The HTTP front door (:mod:`repro.service`) in one sitting:

1. publish a factor model into a :class:`repro.serve.ModelStore` — one
   shared-memory segment;
2. start a :class:`repro.service.RecommendServer` on an ephemeral
   loopback port: an asyncio event loop doing admission control, with a
   pool of reader *processes* attached zero-copy to the published
   segment doing the scoring;
3. issue real HTTP requests — ``/healthz``, ``/recommend``, ``/stats``
   — and verify the slates match an in-process
   :class:`~repro.serve.Scorer` bit for bit;
4. demonstrate the request-validation and admission surfaces (a 400 and
   the queue bound the 503 path enforces);
5. **hot-swap**: publish version 2 while the server is up, watch the
   readers roll over without dropping a request;
6. shut down and verify no shared-memory segment leaked.

Run with::

    python examples/http_serving.py
"""

import asyncio
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import ModelStore, Scorer
from repro.serve.bench import synthetic_model
from repro.service import HttpClient, RecommendServer, ServiceConfig
from repro.shm import live_segment_names

N_USERS = int(os.environ.get("REPRO_EXAMPLES_USERS", "400"))
N_ITEMS = 250
LATENT = 16
TOP_K = 10


async def serve_and_query(store, model_v1, model_v2):
    config = ServiceConfig(workers=2, k=TOP_K, queue_depth=32, deadline=2.0)
    server = RecommendServer(store, config)
    await server.start()
    print(f"serving on http://{config.host}:{server.port} with {config.workers} readers")

    client = HttpClient(config.host, server.port)
    try:
        status, health = await client.get("/healthz")
        print(f"  /healthz -> {status} {health}")

        # Slates come off the reader processes but must be bitwise what
        # an in-process scorer computes from the same factors.
        scorer = Scorer(model_v1)
        for user in (3, 17, 42):
            status, payload = await client.get(f"/recommend?user={user}&k=5")
            assert status == 200, payload
            assert payload["items"] == scorer.top_k_single(user, 5).tolist()
            print(f"  top-5 for user {user}: {payload['items']} (model v{payload['model_version']})")

        # Validation is the event loop's job: bad requests never reach a
        # reader.
        status, payload = await client.get("/recommend?user=not-a-user")
        print(f"  /recommend?user=not-a-user -> {status} ({payload['error']})")
        assert status == 400

        # Hot swap: publish v2 while requests keep flowing.  The
        # supervisor broadcasts the new handle and readers swap between
        # batches — no restart, no dropped request.
        store.publish(model_v2)
        deadline = asyncio.get_running_loop().time() + 10.0
        while True:
            status, payload = await client.get("/recommend?user=3&k=5")
            assert status == 200, payload
            if payload["model_version"] == 2:
                break
            assert asyncio.get_running_loop().time() < deadline, "swap never surfaced"
        assert payload["items"] == Scorer(model_v2).top_k_single(3, 5).tolist()
        print(f"  after hot swap: serving model v{payload['model_version']}, same socket")

        status, stats = await client.get("/stats")
        counters = stats["server"]
        print(
            f"  /stats -> {counters['requests']} requests, "
            f"{counters['rejected_overload']} shed, "
            f"queue limit {stats['queue_limit']}, "
            f"model swaps {counters['model_swaps']}"
        )
        assert counters["failed"] == 0
    finally:
        await client.close()
        await server.stop()


def main() -> None:
    model_v1 = synthetic_model(N_USERS, N_ITEMS, LATENT, seed=0)
    model_v2 = synthetic_model(N_USERS, N_ITEMS, LATENT, seed=1)

    with ModelStore() as store:
        handle = store.publish(model_v1)
        print(f"published model version {handle.version} ({handle.nbytes / 1e6:.1f} MB shared segment)")
        asyncio.run(serve_and_query(store, model_v1, model_v2))

    leaked = list(live_segment_names())
    print(f"clean shutdown, leaked segments: {leaked if leaked else 'none'}")
    assert not leaked


if __name__ == "__main__":
    main()
