"""Autotuning end to end: calibrate → profile → train/serve on "auto".

The cost-model loop of :mod:`repro.tune`, on this machine:

1. run the calibration probes (``run_tune``): the Section V cost models
   are fitted against short on-machine workloads, validated out of
   sample (``predict_error = |predicted - measured| / measured``), and
   every ``"auto"`` tunable is resolved into a
   :class:`repro.tune.TunedProfile`;
2. write the profile to disk and load it back — the JSON round-trip CI
   asserts on every runner;
3. train with ``backend="auto"`` / ``batch_size="auto"`` under the
   profile and verify the run used the calibrated knobs;
4. serve with ``chunk_items="auto"`` and verify the tuned scorer
   returns **bitwise-identical** slates to the hand-picked default — a
   profile may change speed, never results;
5. report per-section prediction error, the self-validation signal
   ``BENCH_tune.json`` gates in CI.

Run with::

    python examples/autotune_pipeline.py
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.config import TrainingConfig
from repro.datasets import SyntheticConfig, generate_synthetic_matrix, holdout_split
from repro.core import factorize
from repro.exec import resolve_backend_name
from repro.serve import Scorer
from repro.sgd.kernels import resolve_kernel_name
from repro.tune import TunedProfile, run_tune, use_profile

ITERATIONS = int(os.environ.get("REPRO_EXAMPLES_ITERATIONS", "3"))


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Calibrate: fit the cost models on this machine
    # ------------------------------------------------------------------ #
    print("== calibrating (quick probe set) ==")
    outcome = run_tune(quick=True, seed=0)
    profile = outcome.profile
    fp = profile.fingerprint
    print(f"machine        : {fp['machine']}, {fp['usable_cores']} usable cores")
    for name, error in sorted(profile.predict_error.items()):
        print(f"  {name:<12} : predict error {error:.1%}")
    if profile.alpha is not None:
        print(f"  alpha        : {profile.alpha:.3f} (calibrated GPU share, Eq. 7-8)")

    # ------------------------------------------------------------------ #
    # 2. The profile round-trips through JSON
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "tuned_profile.json")
        profile.dump(path)
        loaded = TunedProfile.load(path)
    print(f"round-trip     : load(dump(p)) == p -> {loaded == profile}")

    # ------------------------------------------------------------------ #
    # 3. Train with every knob on "auto" under the profile
    # ------------------------------------------------------------------ #
    matrix, _, _ = generate_synthetic_matrix(
        SyntheticConfig(n_rows=300, n_cols=200, n_ratings=8_000, rank=4, seed=11)
    )
    train, test = holdout_split(matrix, test_fraction=0.15, seed=3)
    with use_profile(loaded):
        backend = resolve_backend_name("auto", n_workers=None)
        kernel = resolve_kernel_name("auto")
        batch = TrainingConfig(batch_size="auto").effective_batch_size
        print(
            f"auto resolves  : backend={backend} kernel={kernel} batch_size={batch}"
        )
        result = factorize(
            train,
            test,
            iterations=ITERATIONS,
            backend="auto",
            training=TrainingConfig(batch_size="auto", iterations=ITERATIONS),
            seed=0,
        )
    print(
        f"trained        : {ITERATIONS} epochs on backend={backend}, "
        f"test RMSE {result.final_test_rmse:.4f}"
    )

    # ------------------------------------------------------------------ #
    # 4. Serve with auto chunking: tuned == default, bitwise
    # ------------------------------------------------------------------ #
    users = np.arange(min(64, train.shape[0]), dtype=np.int64)
    default_ids, default_scores = Scorer(result.model).top_k(users, 10)
    with use_profile(loaded):
        tuned_scorer = Scorer(result.model, chunk_items="auto")
        tuned_ids, tuned_scores = tuned_scorer.top_k(users, 10)
    identical = bool(
        np.array_equal(tuned_ids, default_ids)
        and np.array_equal(tuned_scores, default_scores)
    )
    print(
        f"serving        : chunk_items=auto -> {tuned_scorer.chunk_items}, "
        f"slates identical to default: {identical}"
    )
    if not identical:
        raise SystemExit("tuned scorer diverged from the default scorer")

    # ------------------------------------------------------------------ #
    # 5. The acceptance verdict CI gates on
    # ------------------------------------------------------------------ #
    acceptance = outcome.payload["tune"]["acceptance"]
    for name, acc in sorted(acceptance["sections"].items()):
        print(
            f"  {name:<12} : default {acc['default_s'] * 1e3:7.2f} ms, "
            f"resolved {acc['resolved_s'] * 1e3:7.2f} ms, ok={acc['ok']}"
        )
    print(f"acceptance met : {acceptance['met']}")
    if not acceptance["met"]:
        raise SystemExit("resolved configuration measured slower than defaults")
    print("autotune pipeline complete")


if __name__ == "__main__":
    main()
