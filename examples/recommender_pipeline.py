"""A small end-to-end recommender pipeline on top of the public API.

Shows the workflow a downstream user of the library would follow:

1. load (or import) a rating dataset — here the Netflix analogue, but
   ``repro.sparse.read_triples`` accepts any ``user item rating`` file;
2. train a factor model with the heterogeneous HSGD* trainer, stopping as
   soon as a target test RMSE is reached (the paper's stopping rule);
3. persist the model to disk and reload it;
4. serve top-N recommendations and evaluate simple ranking quality
   (hit-rate of held-out items among the top-N).

Run with::

    python examples/recommender_pipeline.py
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import HeterogeneousTrainer, load_dataset
from repro.config import HardwareConfig
from repro.experiments.context import default_preset
from repro.sgd import FactorModel


def hit_rate_at_n(model: FactorModel, test, n: int = 10, max_users: int = 200) -> float:
    """Fraction of sampled test ratings whose item appears in the user's top-N."""
    rng = np.random.default_rng(0)
    sample = rng.choice(test.nnz, size=min(max_users, test.nnz), replace=False)
    hits = 0
    for index in sample:
        user = int(test.rows[index])
        item = int(test.cols[index])
        if item in set(model.top_items(user, count=n).tolist()):
            hits += 1
    return hits / len(sample)


DATASET = os.environ.get("REPRO_EXAMPLES_DATASET", "netflix")
ITERATIONS = int(os.environ.get("REPRO_EXAMPLES_ITERATIONS", "20"))


def main() -> None:
    data = load_dataset(DATASET)
    training = data.spec.recommended_training(iterations=ITERATIONS)
    trainer = HeterogeneousTrainer(
        algorithm="hsgd_star",
        hardware=HardwareConfig(cpu_threads=16, gpu_count=1),
        training=training,
        preset=default_preset(),
    )

    target = data.spec.target_rmse
    print(f"training until test RMSE <= {target} (max {ITERATIONS} iterations) ...")
    result = trainer.fit(
        data.train, data.test, iterations=ITERATIONS, target_rmse=target
    )
    print(f"  reached RMSE {result.final_test_rmse:.4f} after "
          f"{len(result.trace.iterations)} iterations "
          f"({result.engine_time * 1e3:.2f} ms simulated)")

    with tempfile.TemporaryDirectory() as directory:
        path = os.path.join(directory, "netflix_model")
        result.model.save(path)
        model = FactorModel.load(path)
        print(f"  model saved and reloaded from {path}.npz")

    rate = hit_rate_at_n(model, data.test, n=10)
    print(f"hit-rate@10 on sampled held-out ratings: {rate:.2%}")

    user = int(data.test.rows[0])
    print(f"top-10 items for user {user}: {model.top_items(user, 10).tolist()}")


if __name__ == "__main__":
    main()
