"""Inspect the offline cost-model calibration (Algorithm 3 of the paper).

Calibrates the simulated machine against the Yahoo!Music analogue, prints
the fitted CPU and GPU cost models, compares their predictions against
ground-truth device timings over a range of workload sizes, and shows the
workload split alpha that the paper's model and the Qilin baseline choose
(the quantities behind Table II).

Run with::

    python examples/cost_model_calibration.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import load_dataset
from repro.config import HardwareConfig
from repro.core import HeterogeneousTrainer
from repro.experiments.context import default_preset
from repro.hardware import BlockWork
from repro.metrics import format_table


DATASET = os.environ.get("REPRO_EXAMPLES_DATASET", "yahoomusic")
ITERATIONS = int(os.environ.get("REPRO_EXAMPLES_ITERATIONS", "10"))


def main() -> None:
    data = load_dataset(DATASET)
    training = data.spec.recommended_training(iterations=ITERATIONS)
    hardware = HardwareConfig(cpu_threads=16, gpu_count=1)
    preset = default_preset()

    trainer = HeterogeneousTrainer(
        algorithm="hsgd_star", hardware=hardware, training=training, preset=preset
    )
    calibration = trainer.calibrate(data.train)

    print("Fitted cost models")
    print("  CPU :", calibration.cpu_model)
    print("  GPU :", calibration.gpu_model)
    print("  Qilin GPU :", calibration.qilin_model.gpu)

    print("\nPrediction vs ground truth (one device, one workload)")
    gpu = trainer.platform.representative_gpu()
    cpu = trainer.platform.representative_cpu()
    rows = []
    for points in np.geomspace(500, data.train.nnz, 6).astype(int):
        work = BlockWork(
            nnz=int(points),
            p_rows=int(points) // 20,
            q_cols=int(points) // 20,
            latent_factors=training.latent_factors,
        )
        rows.append(
            (
                int(points),
                cpu.process_time(work) * 1e6,
                calibration.cpu_time_for_points(int(points)) * 1e6,
                gpu.process_time(work) * 1e6,
                calibration.gpu_time_for_points(int(points)) * 1e6,
            )
        )
    print(
        format_table(
            ["points", "CPU true (us)", "CPU model (us)", "GPU true (us)", "GPU model (us)"],
            rows,
            "{:.1f}",
        )
    )

    print("\nWorkload split chosen for this dataset (Table II quantities)")
    split = trainer.workload_split(data.train)
    qilin_trainer = HeterogeneousTrainer(
        algorithm="hsgd_star_q", hardware=hardware, training=training, preset=preset
    )
    qilin_split = qilin_trainer.workload_split(data.train)
    print(f"  paper cost model : alpha = {split.alpha:.3f} "
          f"(GPU {split.alpha:.1%}, CPU {split.cpu_share:.1%})")
    print(f"  Qilin baseline   : alpha = {qilin_split.alpha:.3f} "
          f"(GPU {qilin_split.alpha:.1%}, CPU {qilin_split.cpu_share:.1%})")


if __name__ == "__main__":
    main()
