"""Compare every scheduling algorithm of the paper on one dataset.

Trains CPU-Only, GPU-Only, HSGD, HSGD*-Q, HSGD*-M and HSGD* on the Yahoo R1
analogue with identical hyper-parameters and prints a summary table:
simulated running time, speedup over CPU-Only, final test RMSE, the GPU
workload share, and how many tasks were stolen by the dynamic phase.

This is essentially a one-dataset slice of the paper's evaluation
(Figures 10-13 and Tables II-III).

Run with::

    python examples/compare_schedulers.py [dataset]

``REPRO_EXAMPLES_DATASET`` and ``REPRO_EXAMPLES_ITERATIONS`` override
the defaults (the CI smoke job sets them to a tiny configuration).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import HeterogeneousTrainer, load_dataset
from repro.config import HardwareConfig
from repro.core import ALGORITHMS
from repro.experiments.context import default_preset
from repro.metrics import format_table

ITERATIONS = int(os.environ.get("REPRO_EXAMPLES_ITERATIONS", "10"))


def main() -> None:
    default_dataset = os.environ.get("REPRO_EXAMPLES_DATASET", "r1")
    dataset = sys.argv[1] if len(sys.argv) > 1 else default_dataset
    data = load_dataset(dataset)
    training = data.spec.recommended_training(iterations=ITERATIONS)
    hardware = HardwareConfig(cpu_threads=16, gpu_count=1, gpu_parallel_workers=128)
    preset = default_preset()

    print(f"dataset {dataset}: {data.train.nnz} training ratings, "
          f"{ITERATIONS} iterations, nc=16, ng=1, 128 GPU workers\n")

    rows = []
    baseline_time = None
    for key in ("cpu_only", "gpu_only", "hsgd", "hsgd_star_q", "hsgd_star_m", "hsgd_star"):
        trainer = HeterogeneousTrainer(
            algorithm=key, hardware=hardware, training=training, preset=preset
        )
        result = trainer.fit(data.train, data.test, iterations=ITERATIONS)
        if key == "cpu_only":
            baseline_time = result.engine_time
        share = result.trace.resource_share()
        rows.append(
            (
                ALGORITHMS[key].label,
                result.engine_time * 1e3,
                baseline_time / result.engine_time,
                result.final_test_rmse,
                f"{share['gpu']:.2f}",
                result.trace.stolen_task_count(),
            )
        )

    print(
        format_table(
            ["algorithm", "time (ms)", "speedup vs CPU", "test RMSE", "GPU share", "steals"],
            rows,
            "{:.3f}",
        )
    )
    print("\nHSGD* should be the fastest row, with both resources contributing "
          "and a similar final RMSE to the single-resource baselines.")


if __name__ == "__main__":
    main()
