"""Fault-tolerance overhead: boundary snapshots and rollback-replay cost.

Two measurements over the single-worker process backend (the bitwise
recovery configuration):

* ``snapshot tax`` — the per-boundary cost of staging a recovery
  snapshot is one full factor copy plus the scheduler's ``state_dict``;
  both are timed directly at the run's shapes and reported per epoch
  boundary, alongside the failure-free wall time they are amortised
  over;
* ``recovery latency`` — the same run with one mid-task SIGKILL
  (rollback + pool respawn + replay of the lost epoch prefix) and with
  the acceptance scenario's three kills, reporting the extra wall time
  per recovery.  Both recovered runs are asserted **bitwise identical**
  to the failure-free factors before any timing is reported.

Informational only (writes ``BENCH_recovery.json``, override with
``REPRO_BENCH_RECOVERY_OUT``): where a kill lands inside an epoch
changes how much work the replay re-does, so the numbers characterise
the mechanism rather than gate CI.
"""

import json
import os
import time

import numpy as np

from conftest import emit

from repro import faults
from repro.config import TrainingConfig
from repro.core import GreedyBlockScheduler
from repro.core.partition import uniform_partition
from repro.exec import ProcessEngine
from repro.faults import FaultPlan, FaultSpec
from repro.shm import live_segment_names
from repro.sparse import SparseRatingMatrix

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_RECOVERY_JSON = os.environ.get(
    "REPRO_BENCH_RECOVERY_OUT", os.path.join(_ROOT, "BENCH_recovery.json")
)

N_USERS = 600
N_ITEMS = 400
N_RATINGS = 20_000
LATENT = 16
ITERATIONS = 4


def _training() -> TrainingConfig:
    return TrainingConfig(
        latent_factors=LATENT,
        learning_rate=0.01,
        reg_p=0.05,
        reg_q=0.05,
        iterations=ITERATIONS,
        seed=0,
        init_scale=0.6,
    )


def _engine():
    rng = np.random.default_rng(7)
    train = SparseRatingMatrix(
        rng.integers(0, N_USERS, N_RATINGS),
        rng.integers(0, N_ITEMS, N_RATINGS),
        rng.uniform(1.0, 5.0, N_RATINGS),
        shape=(N_USERS, N_ITEMS),
    )
    grid = uniform_partition(train, 3, 3)
    scheduler = GreedyBlockScheduler(grid, 1, 0, seed=0)
    return ProcessEngine(scheduler=scheduler, train=train, training=_training())


def _timed_run(plan=None):
    if plan is not None:
        faults.install(plan)
    try:
        start = time.perf_counter()
        result = _engine().run(iterations=ITERATIONS)
        elapsed = time.perf_counter() - start
    finally:
        faults.clear()
    assert live_segment_names() == ()
    return result, elapsed


def _kill_plan(*ordinals):
    specs = []
    for index, ordinal in enumerate(ordinals):
        mode = "kill_mid" if index % 2 == 0 else "kill"
        specs.append(FaultSpec(point="worker.task", mode=mode, task=ordinal))
    return FaultPlan(specs)


def _snapshot_cost_s(result, scheduler_state_fn, repeats=5):
    """Time one boundary snapshot: factor copy + scheduler state dict."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result.model.p.copy()
        result.model.q.copy()
        scheduler_state_fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_recovery_overhead(bench_profile):
    """Snapshot tax + rollback-replay latency -> BENCH_recovery.json."""
    baseline, baseline_s = _timed_run()
    assert baseline.worker_restarts == 0

    one_kill, one_kill_s = _timed_run(_kill_plan(4))
    assert one_kill.worker_restarts == 1
    np.testing.assert_array_equal(one_kill.model.p, baseline.model.p)
    np.testing.assert_array_equal(one_kill.model.q, baseline.model.q)

    three_kills, three_kills_s = _timed_run(_kill_plan(1, 6, 13))
    assert three_kills.worker_restarts == 3
    np.testing.assert_array_equal(three_kills.model.p, baseline.model.p)
    np.testing.assert_array_equal(three_kills.model.q, baseline.model.q)

    # The snapshot the session stages at every boundary is one factor
    # copy plus the scheduler's state dict; time it at the run's shapes.
    scheduler = GreedyBlockScheduler(
        uniform_partition(
            SparseRatingMatrix(
                np.zeros(1, dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                np.ones(1),
                shape=(N_USERS, N_ITEMS),
            ),
            3,
            3,
        ),
        1,
        0,
        seed=0,
    )
    snapshot_s = _snapshot_cost_s(baseline, scheduler.state_dict)
    snapshot_bytes = baseline.model.p.nbytes + baseline.model.q.nbytes

    payload = {
        "shape": {
            "users": N_USERS,
            "items": N_ITEMS,
            "ratings": N_RATINGS,
            "latent_factors": LATENT,
            "iterations": ITERATIONS,
        },
        "profile": bench_profile,
        "hardware": {"cpu_count": os.cpu_count()},
        "failure_free_s": round(baseline_s, 3),
        "one_kill": {
            "wall_s": round(one_kill_s, 3),
            "recovery_overhead_s": round(one_kill_s - baseline_s, 3),
        },
        "three_kills": {
            "wall_s": round(three_kills_s, 3),
            "recovery_overhead_s": round(three_kills_s - baseline_s, 3),
            "overhead_per_recovery_s": round(
                (three_kills_s - baseline_s) / 3, 3
            ),
        },
        "snapshot": {
            "bytes": snapshot_bytes,
            "per_boundary_s": round(snapshot_s, 6),
            "boundaries": ITERATIONS,
            "tax_vs_failure_free": round(
                ITERATIONS * snapshot_s / baseline_s, 5
            ),
        },
        "bitwise_identical_to_failure_free": True,
    }
    with open(BENCH_RECOVERY_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    rows = [
        f"{'scenario':<28} {'wall s':>8} {'overhead s':>11}",
        f"{'failure-free':<28} {baseline_s:>8.2f} {'-':>11}",
        f"{'1 mid-task kill':<28} {one_kill_s:>8.2f} "
        f"{one_kill_s - baseline_s:>11.2f}",
        f"{'3 kills (acceptance)':<28} {three_kills_s:>8.2f} "
        f"{three_kills_s - baseline_s:>11.2f}",
        f"{'snapshot/boundary':<28} {snapshot_s * 1e3:>7.2f}ms "
        f"{snapshot_bytes / 1e6:>9.2f}MB",
    ]
    emit(
        f"Rollback-replay recovery, {N_USERS}x{N_ITEMS} k={LATENT}, "
        f"1 worker -> {BENCH_RECOVERY_JSON}",
        "\n".join(rows),
    )
