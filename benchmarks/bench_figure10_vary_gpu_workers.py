"""Figure 10: running time to the RMSE target as GPU parallel workers vary.

For each dataset, reports the time CPU-Only, GPU-Only and HSGD* need to
reach the predefined test-RMSE target while the GPU parallel-worker count
sweeps over 32-512, and checks the paper's shape: GPU-Only improves with
more workers, HSGD* is the fastest at every setting and also improves.
"""

from conftest import emit

from repro.experiments import figure10_vary_gpu_workers


def test_figure10_vary_gpu_workers(benchmark, sweep_context):
    results = benchmark.pedantic(
        figure10_vary_gpu_workers, args=(sweep_context,), rounds=1, iterations=1
    )
    for sweep in results:
        emit(
            f"Figure 10 ({sweep.dataset}), target RMSE {sweep.target_rmse}",
            sweep.render(),
        )

    for sweep in results:
        gpu_times = [t for t in sweep.times["gpu_only"] if t is not None]
        star_times = [t for t in sweep.times["hsgd_star"] if t is not None]
        assert star_times, f"HSGD* never reached the target on {sweep.dataset}"
        # GPU-Only gets faster with more parallel workers.
        if len(gpu_times) >= 2:
            assert gpu_times[-1] < gpu_times[0]
        # At the default-and-above worker counts HSGD* is the fastest
        # algorithm; at the starved 32-worker setting it must still be
        # competitive with the best single-resource baseline.
        for index, workers in enumerate(sweep.sweep_values):
            star_time = sweep.times["hsgd_star"][index]
            if star_time is None:
                continue
            others = [
                sweep.times[other][index]
                for other in ("cpu_only", "gpu_only")
                if sweep.times[other][index] is not None
            ]
            if not others:
                continue
            tolerance = 1.15 if workers >= 128 else 1.35
            assert star_time <= min(others) * tolerance
