"""Top-K serving throughput: chunked batch scoring vs the naive loop.

One benchmark, Netflix-sized catalogue (the paper's 17 770 items at the
paper's ``k = 128``):

* ``test_serving_throughput`` — users/s of the chunked
  :class:`repro.serve.Scorer` over a ``(batch_size, chunk_items)``
  sweep, against two same-run baselines: the **naive per-user
  ``top_items`` loop** (the acceptance bar: best chunked configuration
  must reach >= 3x its users/s) and the **unchunked full-matmul**
  implementation, whose users/s is the runner-speed normaliser the CI
  perf guard divides by (``check_perf_regression.py`` — same idea as
  the serial-simulator normaliser of ``BENCH_exec.json``).  Also
  measures 1- and 2-reader *process* serving from one published
  shared-memory model (asserting every reader mapped the same segment),
  exercises a hot-swap, and asserts the :mod:`repro.shm` registry is
  empty afterwards — no leaked ``/dev/shm`` segments.

Results go to ``BENCH_serve.json`` (override with
``REPRO_BENCH_SERVE_OUT``; CI writes a fresh file and compares it
against the committed baseline).
"""

import json
import os

import numpy as np

from conftest import emit

from repro.serve import ModelStore
from repro.serve.bench import (
    measure_chunked,
    measure_full_matmul,
    measure_multi_reader,
    measure_naive,
    synthetic_model,
    user_pool,
)
from repro.sgd import FactorModel
from repro.shm import live_segment_names

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_SERVE_JSON = os.environ.get(
    "REPRO_BENCH_SERVE_OUT", os.path.join(_ROOT, "BENCH_serve.json")
)

#: Serving-realistic shapes: the paper's Netflix catalogue and latent k.
N_USERS = 20_000
N_ITEMS = 17_770
LATENT = 128
TOP_K = 10

BATCH_SIZES = (32, 256)
CHUNK_SIZES = (1_024, 4_096)

#: Acceptance bar: best chunked configuration vs the naive per-user loop.
TARGET_SPEEDUP = 3.0


def _pool_size(profile: str) -> int:
    return {"quick": 512, "full": 8_192}.get(profile, 2_048)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _hot_swap_is_clean(model) -> bool:
    """Publish, hot-swap under a pinned lease, and verify nothing leaks."""
    with ModelStore() as store:
        store.publish(model)
        lease = store.acquire()
        swapped = FactorModel.initialize(
            model.p.shape[0], model.q.shape[1], model.latent_factors, seed=9
        )
        store.publish(swapped)
        pinned = store.live_versions == (1, 2)
        lease.release()
        deferred_unlink = store.live_versions == (2,)
    return pinned and deferred_unlink and live_segment_names() == ()


def test_serving_throughput(bench_profile):
    """Chunked scorer sweep + baselines + multi-reader -> BENCH_serve.json."""
    model = synthetic_model(N_USERS, N_ITEMS, LATENT, seed=0)
    pool = user_pool(N_USERS, _pool_size(bench_profile), seed=0)
    cores = _usable_cores()

    naive = measure_naive(model, pool, TOP_K)
    reference = measure_full_matmul(
        model, pool, TOP_K, batch_size=max(BATCH_SIZES)
    )

    rows = [
        f"{'configuration':<26} {'users/s':>10} {'vs naive':>9} {'vs matmul':>10}"
    ]

    def _row(sample):
        rows.append(
            f"{sample.label:<26} {sample.users_per_s:>10.0f} "
            f"{sample.users_per_s / naive.users_per_s:>8.2f}x "
            f"{sample.users_per_s / reference.users_per_s:>9.2f}x"
        )

    _row(naive)
    _row(reference)

    serving = []
    best = None
    for batch_size in BATCH_SIZES:
        for chunk_items in CHUNK_SIZES:
            sample = measure_chunked(model, pool, TOP_K, batch_size, chunk_items)
            _row(sample)
            entry = {
                "batch_size": batch_size,
                "chunk_items": chunk_items,
                "users_per_s": round(sample.users_per_s),
                "speedup_vs_naive": round(
                    sample.users_per_s / naive.users_per_s, 3
                ),
                "normalised_vs_full_matmul": round(
                    sample.users_per_s / reference.users_per_s, 4
                ),
            }
            serving.append(entry)
            if best is None or entry["users_per_s"] > best["users_per_s"]:
                best = entry

    multi_reader = []
    for readers in (1, 2):
        sample = measure_multi_reader(
            model,
            pool,
            TOP_K,
            batch_size=best["batch_size"],
            chunk_items=best["chunk_items"],
            readers=readers,
        )
        _row(sample)
        multi_reader.append(
            {
                "readers": readers,
                "batch_size": best["batch_size"],
                "chunk_items": best["chunk_items"],
                "users_per_s": round(sample.users_per_s),
            }
        )
    # measure_multi_reader asserts every reader mapped the published
    # segment; here we additionally assert the registry drained.
    single_shared_copy = live_segment_names() == ()

    hot_swap_clean = _hot_swap_is_clean(model)

    acceptance = {
        "target": (
            f"best chunked configuration >= {TARGET_SPEEDUP}x the naive "
            "per-user predict loop (users/s)"
        ),
        "best": best,
        "best_speedup_vs_naive": best["speedup_vs_naive"],
        "met": best["speedup_vs_naive"] >= TARGET_SPEEDUP,
        "single_shared_copy": single_shared_copy,
        "hot_swap_clean": hot_swap_clean,
    }

    payload = {
        "model_shape": {
            "users": N_USERS,
            "items": N_ITEMS,
            "latent_factors": LATENT,
        },
        "top_k": TOP_K,
        "pool": len(pool),
        "profile": bench_profile,
        "hardware": {"cpu_count": os.cpu_count(), "usable_cores": cores},
        "baselines": {
            "naive_users_per_s": round(naive.users_per_s),
            "full_matmul_users_per_s": round(reference.users_per_s),
            "full_matmul_batch": max(BATCH_SIZES),
        },
        "serving": serving,
        "multi_reader": multi_reader,
        "acceptance": acceptance,
    }
    with open(BENCH_SERVE_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    emit(
        f"Serving throughput, {N_USERS} users x {N_ITEMS} items, k={LATENT}, "
        f"top-{TOP_K}, {len(pool)} requests ({cores} usable cores) -> "
        f"{BENCH_SERVE_JSON}",
        "\n".join(rows),
    )

    assert single_shared_copy, "a shared-memory segment leaked after serving"
    assert hot_swap_clean, "hot-swap left segments or refcounts behind"
    assert np.isfinite(naive.users_per_s) and naive.users_per_s > 0
    assert acceptance["met"], (
        f"chunked serving acceptance failed: best configuration "
        f"{best['batch_size']}x{best['chunk_items']} reached only "
        f"{best['speedup_vs_naive']}x the naive loop "
        f"(target {TARGET_SPEEDUP}x)"
    )
