"""Top-K serving throughput: chunked batch scoring vs the naive loop.

Two benchmarks, Netflix-sized catalogue (the paper's 17 770 items at
the paper's ``k = 128``):

* ``test_serving_throughput`` — users/s of the chunked
  :class:`repro.serve.Scorer` over a ``(batch_size, chunk_items)``
  sweep, against two same-run baselines: the **naive per-user
  ``top_items`` loop** (the acceptance bar: best chunked configuration
  must reach >= 3x its users/s) and the **unchunked full-matmul**
  implementation, whose users/s is the runner-speed normaliser the CI
  perf guard divides by (``check_perf_regression.py`` — same idea as
  the serial-simulator normaliser of ``BENCH_exec.json``).  Also
  measures 1- and 2-reader *process* serving from one published
  shared-memory model (asserting every reader mapped the same segment),
  exercises a hot-swap, and asserts the :mod:`repro.shm` registry is
  empty afterwards — no leaked ``/dev/shm`` segments.

* ``test_ann_frontier`` — the exact-vs-approximate frontier: users/s
  *and* recall@K of the :class:`repro.serve.ann.AnnScorer` across an
  ``nprobe`` sweep over one deterministic IVF index, with its own
  acceptance bar (>= 3x the best exact configuration's users/s at
  recall@10 >= 0.95) and a CI guard of its own (the ``ann`` payload
  kind of ``check_perf_regression.py``: throughput normalised by the
  same-run full matmul, recall gated as an absolute floor — the build
  is seeded, so recall is exactly reproducible).

Results go to ``BENCH_serve.json`` (override with
``REPRO_BENCH_SERVE_OUT``; CI writes a fresh file and compares it
against the committed baseline).
"""

import json
import os

import numpy as np

from conftest import emit

from repro.serve import IvfIndex, ModelStore, Scorer
from repro.serve.bench import (
    measure_ann,
    measure_chunked,
    measure_full_matmul,
    measure_multi_reader,
    measure_naive,
    synthetic_model,
    user_pool,
)
from repro.sgd import FactorModel
from repro.shm import live_segment_names

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_SERVE_JSON = os.environ.get(
    "REPRO_BENCH_SERVE_OUT", os.path.join(_ROOT, "BENCH_serve.json")
)

#: Serving-realistic shapes: the paper's Netflix catalogue and latent k.
N_USERS = 20_000
N_ITEMS = 17_770
LATENT = 128
TOP_K = 10

BATCH_SIZES = (32, 256)
CHUNK_SIZES = (1_024, 4_096)

#: Acceptance bar: best chunked configuration vs the naive per-user loop.
TARGET_SPEEDUP = 3.0

#: ANN frontier: index build parameters (seeded -> exactly reproducible)
#: and the nprobe sweep.  The acceptance point is picked from the sweep:
#: the fastest point whose recall@10 clears ANN_RECALL_FLOOR.
ANN_NLIST = 64
ANN_SEED = 0
ANN_NPROBES = (2, 4, 8, 16)

#: ANN acceptance bar: >= this many times the best *exact* chunked
#: configuration's users/s, at recall@10 >= the floor, single core.
ANN_TARGET_SPEEDUP = 3.0
ANN_RECALL_FLOOR = 0.95


def _pool_size(profile: str) -> int:
    return {"quick": 512, "full": 8_192}.get(profile, 2_048)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _hot_swap_is_clean(model) -> bool:
    """Publish, hot-swap under a pinned lease, and verify nothing leaks."""
    with ModelStore() as store:
        store.publish(model)
        lease = store.acquire()
        swapped = FactorModel.initialize(
            model.p.shape[0], model.q.shape[1], model.latent_factors, seed=9
        )
        store.publish(swapped)
        pinned = store.live_versions == (1, 2)
        lease.release()
        deferred_unlink = store.live_versions == (2,)
    return pinned and deferred_unlink and live_segment_names() == ()


def test_serving_throughput(bench_profile):
    """Chunked scorer sweep + baselines + multi-reader -> BENCH_serve.json."""
    model = synthetic_model(N_USERS, N_ITEMS, LATENT, seed=0)
    pool = user_pool(N_USERS, _pool_size(bench_profile), seed=0)
    cores = _usable_cores()

    naive = measure_naive(model, pool, TOP_K)
    reference = measure_full_matmul(
        model, pool, TOP_K, batch_size=max(BATCH_SIZES)
    )

    rows = [
        f"{'configuration':<26} {'users/s':>10} {'vs naive':>9} {'vs matmul':>10}"
    ]

    def _row(sample):
        rows.append(
            f"{sample.label:<26} {sample.users_per_s:>10.0f} "
            f"{sample.users_per_s / naive.users_per_s:>8.2f}x "
            f"{sample.users_per_s / reference.users_per_s:>9.2f}x"
        )

    _row(naive)
    _row(reference)

    serving = []
    best = None
    for batch_size in BATCH_SIZES:
        for chunk_items in CHUNK_SIZES:
            sample = measure_chunked(model, pool, TOP_K, batch_size, chunk_items)
            _row(sample)
            entry = {
                "batch_size": batch_size,
                "chunk_items": chunk_items,
                "users_per_s": round(sample.users_per_s),
                "speedup_vs_naive": round(
                    sample.users_per_s / naive.users_per_s, 3
                ),
                "normalised_vs_full_matmul": round(
                    sample.users_per_s / reference.users_per_s, 4
                ),
            }
            serving.append(entry)
            if best is None or entry["users_per_s"] > best["users_per_s"]:
                best = entry

    multi_reader = []
    for readers in (1, 2):
        sample = measure_multi_reader(
            model,
            pool,
            TOP_K,
            batch_size=best["batch_size"],
            chunk_items=best["chunk_items"],
            readers=readers,
        )
        _row(sample)
        multi_reader.append(
            {
                "readers": readers,
                "batch_size": best["batch_size"],
                "chunk_items": best["chunk_items"],
                "users_per_s": round(sample.users_per_s),
            }
        )
    # measure_multi_reader asserts every reader mapped the published
    # segment; here we additionally assert the registry drained.
    single_shared_copy = live_segment_names() == ()

    hot_swap_clean = _hot_swap_is_clean(model)

    acceptance = {
        "target": (
            f"best chunked configuration >= {TARGET_SPEEDUP}x the naive "
            "per-user predict loop (users/s)"
        ),
        "best": best,
        "best_speedup_vs_naive": best["speedup_vs_naive"],
        "met": best["speedup_vs_naive"] >= TARGET_SPEEDUP,
        "single_shared_copy": single_shared_copy,
        "hot_swap_clean": hot_swap_clean,
    }

    payload = {
        "model_shape": {
            "users": N_USERS,
            "items": N_ITEMS,
            "latent_factors": LATENT,
        },
        "top_k": TOP_K,
        "pool": len(pool),
        "profile": bench_profile,
        "hardware": {"cpu_count": os.cpu_count(), "usable_cores": cores},
        "baselines": {
            "naive_users_per_s": round(naive.users_per_s),
            "full_matmul_users_per_s": round(reference.users_per_s),
            "full_matmul_batch": max(BATCH_SIZES),
        },
        "serving": serving,
        "multi_reader": multi_reader,
        "acceptance": acceptance,
    }
    with open(BENCH_SERVE_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    emit(
        f"Serving throughput, {N_USERS} users x {N_ITEMS} items, k={LATENT}, "
        f"top-{TOP_K}, {len(pool)} requests ({cores} usable cores) -> "
        f"{BENCH_SERVE_JSON}",
        "\n".join(rows),
    )

    assert single_shared_copy, "a shared-memory segment leaked after serving"
    assert hot_swap_clean, "hot-swap left segments or refcounts behind"
    assert np.isfinite(naive.users_per_s) and naive.users_per_s > 0
    assert acceptance["met"], (
        f"chunked serving acceptance failed: best configuration "
        f"{best['batch_size']}x{best['chunk_items']} reached only "
        f"{best['speedup_vs_naive']}x the naive loop "
        f"(target {TARGET_SPEEDUP}x)"
    )


def test_ann_frontier(bench_profile):
    """Exact-vs-approximate frontier -> the ``ann_frontier`` section.

    Runs after ``test_serving_throughput`` and merges into the same
    ``BENCH_serve.json``; every number (exact reference, full-matmul
    normaliser, ANN sweep) is measured in *this* run so ratios compare
    like with like.
    """
    import time

    model = synthetic_model(N_USERS, N_ITEMS, LATENT, seed=0)
    pool = user_pool(N_USERS, _pool_size(bench_profile), seed=0)
    cores = _usable_cores()

    start = time.perf_counter()
    index = IvfIndex.build(model, nlist=ANN_NLIST, seed=ANN_SEED)
    build_seconds = time.perf_counter() - start

    # Same-run references: the guard normaliser and the exact bar the
    # ANN speedup is quoted against (the committed best configuration).
    reference = measure_full_matmul(
        model, pool, TOP_K, batch_size=max(BATCH_SIZES)
    )
    exact_best = None
    for batch_size in BATCH_SIZES:
        for chunk_items in CHUNK_SIZES:
            sample = measure_chunked(model, pool, TOP_K, batch_size, chunk_items)
            if exact_best is None or sample.users_per_s > exact_best.users_per_s:
                exact_best = sample

    # The oracle slates, once, reused across the sweep.
    exact_ids, _ = Scorer(model).top_k(pool, TOP_K)

    rows = [
        f"{'configuration':<34} {'tier':<6} {'users/s':>10} "
        f"{'vs exact':>9} {'recall@10':>10}"
    ]
    rows.append(
        f"{exact_best.label:<34} {'exact':<6} "
        f"{exact_best.users_per_s:>10.0f} {'1.00x':>9} {'1.0000':>10}"
    )
    frontier = []
    accept_point = None
    for nprobe in ANN_NPROBES:
        sample = measure_ann(
            model,
            index,
            pool,
            TOP_K,
            batch_size=max(BATCH_SIZES),
            nprobe=nprobe,
            exact_ids=exact_ids,
        )
        speedup = sample.users_per_s / exact_best.users_per_s
        rows.append(
            f"{sample.label:<34} {sample.tier:<6} "
            f"{sample.users_per_s:>10.0f} {speedup:>8.2f}x "
            f"{sample.recall_at_k:>10.4f}"
        )
        entry = {
            "nprobe": nprobe,
            "users_per_s": round(sample.users_per_s),
            "recall_at_k": round(sample.recall_at_k, 4),
            "speedup_vs_exact_best": round(speedup, 3),
            "normalised_vs_full_matmul": round(
                sample.users_per_s / reference.users_per_s, 4
            ),
        }
        frontier.append(entry)

    # The accept point is the *fastest* sweep point whose recall clears
    # the floor — which nprobe that is depends on how fast exact GEMM
    # runs on the host, so pinning one nprobe would make the bar
    # machine-dependent.  The frontier itself is what's published.
    eligible = [
        entry for entry in frontier
        if entry["recall_at_k"] >= ANN_RECALL_FLOOR
    ]
    accept_point = (
        max(eligible, key=lambda entry: entry["users_per_s"])
        if eligible
        else None
    )

    acceptance = {
        "target": (
            f"some nprobe with recall@{TOP_K} >= {ANN_RECALL_FLOOR} reaches "
            f">= {ANN_TARGET_SPEEDUP}x the best exact configuration's users/s"
        ),
        "accept_point": accept_point,
        "met": (
            accept_point is not None
            and accept_point["speedup_vs_exact_best"] >= ANN_TARGET_SPEEDUP
            and accept_point["recall_at_k"] >= ANN_RECALL_FLOOR
        ),
    }

    section = {
        "index": {
            "nlist": ANN_NLIST,
            "seed": ANN_SEED,
            "build_seconds": round(build_seconds, 2),
        },
        "exact_reference": {
            "label": exact_best.label,
            "users_per_s": round(exact_best.users_per_s),
        },
        "full_matmul_users_per_s": round(reference.users_per_s),
        "recall_floor": ANN_RECALL_FLOOR,
        "frontier": frontier,
        "acceptance": acceptance,
    }

    # Merge into the payload test_serving_throughput wrote (both tests
    # run in file order in CI; standalone runs start a fresh file).
    payload = {}
    if os.path.exists(BENCH_SERVE_JSON):
        with open(BENCH_SERVE_JSON, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    payload["ann_frontier"] = section
    with open(BENCH_SERVE_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    emit(
        f"ANN frontier, {N_USERS} users x {N_ITEMS} items, k={LATENT}, "
        f"top-{TOP_K}, nlist={ANN_NLIST} ({cores} usable cores, index "
        f"built in {build_seconds:.1f}s) -> {BENCH_SERVE_JSON}",
        "\n".join(rows),
    )

    assert live_segment_names() == (), "the ANN bench leaked a segment"
    assert acceptance["met"], (
        f"ann acceptance failed: best point at recall >= {ANN_RECALL_FLOOR} "
        f"was {accept_point} (target {ANN_TARGET_SPEEDUP}x exact)"
    )
