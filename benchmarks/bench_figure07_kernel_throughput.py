"""Figure 7: GPU kernel execution throughput vs block size."""

from conftest import emit

from repro.experiments import figure7_kernel_throughput


def test_figure7_kernel_throughput(benchmark):
    series = benchmark.pedantic(figure7_kernel_throughput, rounds=1, iterations=1)
    emit("Figure 7: GPU kernel throughput vs block size", series.render())

    values = series.values()
    assert values[-1] > 1.5 * values[0]
    assert all(b >= a for a, b in zip(values, values[1:]))
