"""Streaming-tier throughput: batched fold-in vs the per-user loop.

One benchmark at serving-realistic shapes (the paper's Netflix catalogue
of 17 770 items at ``k = 128``):

* ``test_stream_throughput`` — users/s of the batched least-squares
  fold-in (:meth:`repro.sgd.FactorModel.fold_in_users`: padded batched
  BLAS stacks + batched LAPACK solves in the dual form, d-by-d kernels
  instead of k-by-k Grams) over a newcomer-batch sweep, against the
  **naive per-user solve loop** (gather, Gram, k-by-k solve — one user
  at a time), which doubles as the runner-speed normaliser the CI perf
  guard divides by.  The two paths are asserted numerically
  equal before timing means anything.  Also times one end-to-end
  :class:`repro.stream.IngestSession` batch (append + fold-in + drift
  evaluation) to record whole-loop ingest throughput in ratings/s.

Results go to ``BENCH_stream.json`` (override with
``REPRO_BENCH_STREAM_OUT``; CI writes a fresh file and compares it
against the committed baseline).
"""

import json
import os
import time

import numpy as np

from conftest import emit

from repro.sgd import FactorModel

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_STREAM_JSON = os.environ.get(
    "REPRO_BENCH_STREAM_OUT", os.path.join(_ROOT, "BENCH_stream.json")
)

#: Serving-realistic shapes: the paper's Netflix catalogue and latent k.
N_USERS = 20_000
N_ITEMS = 17_770
LATENT = 128
RATINGS_PER_USER = 20
REGULARIZATION = 0.05

BATCHES = (64, 512, 2_048)

#: Acceptance bar: batched fold-in vs the per-user solve loop.  The
#: dual-form solver measures 5-13x here; 2x leaves ample headroom for
#: runner noise.
TARGET_SPEEDUP = 2.0


def _batch_sizes(profile: str):
    if profile == "quick":
        return (64, 256)
    if profile == "full":
        return BATCHES + (8_192,)
    return BATCHES


def _newcomer_batch(n_new: int, seed: int):
    rng = np.random.default_rng(seed)
    users = np.repeat(np.arange(n_new), RATINGS_PER_USER)
    items = rng.integers(0, N_ITEMS, size=len(users))
    vals = rng.uniform(1.0, 5.0, size=len(users))
    return users, items, vals


def _naive_fold_in(q_t, users, items, vals, n_new):
    """The loop a user would write without batching: solve one at a time."""
    k = q_t.shape[1]
    rows = np.empty((n_new, k))
    eye = np.eye(k)
    for user in range(n_new):
        mask = users == user
        factors = q_t[items[mask]]
        gram = factors.T @ factors + REGULARIZATION * mask.sum() * eye
        rows[user] = np.linalg.solve(gram, factors.T @ vals[mask])
    return rows


def _time(fn, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _ingest_ratings_per_s() -> float:
    """Whole-loop throughput of one IngestSession.ingest batch."""
    from repro import HardwareConfig, HeterogeneousTrainer, TrainingConfig
    from repro.sparse import SparseRatingMatrix
    from repro.stream import DriftPolicy, IngestSession

    rng = np.random.default_rng(3)
    base = 30_000
    matrix = SparseRatingMatrix(
        rng.integers(0, 2_000, base),
        rng.integers(0, 1_500, base),
        rng.uniform(1.0, 5.0, base),
    )
    trainer = HeterogeneousTrainer(
        hardware=HardwareConfig(cpu_threads=2, gpu_count=1),
        training=TrainingConfig(
            latent_factors=32, learning_rate=0.05, iterations=2
        ),
        seed=0,
    )
    session = IngestSession(
        trainer,
        matrix,
        window_size=2_000,
        # Thresholds high enough that the timed batches never retrain:
        # this measures the steady-state path (append + fold-in + drift
        # evaluation), not a training run.
        policy=DriftPolicy(rmse_increase=10.0, min_coverage=0.0),
        backend="simulate",
    )
    session.start()
    batch = 4_000
    timed = 0.0
    ratings = 0
    for index in range(3):
        users = rng.integers(0, 2_100, batch)
        items = rng.integers(0, 1_550, batch)
        vals = rng.uniform(1.0, 5.0, batch)
        start = time.perf_counter()
        report = session.ingest(users, items, vals)
        timed += time.perf_counter() - start
        ratings += batch
        assert not report.retrained
    return ratings / timed


def test_stream_throughput(bench_profile):
    """Fold-in sweep + naive baseline + ingest loop -> BENCH_stream.json."""
    model = FactorModel.initialize(N_USERS, N_ITEMS, LATENT, seed=0)
    q_t = np.ascontiguousarray(model.q.T)

    rows = [
        f"{'configuration':<30} {'users/s':>10} {'vs naive':>9}"
    ]
    sweep = []
    best = None
    for index, n_new in enumerate(_batch_sizes(bench_profile)):
        users, items, vals = _newcomer_batch(n_new, seed=index)

        naive_rows, naive_time = _time(
            lambda: _naive_fold_in(q_t, users, items, vals, n_new)
        )
        (unique_users, batched_rows), batched_time = _time(
            lambda: model.fold_in_users(
                users, items, vals, regularization=REGULARIZATION
            )
        )
        # Both paths must solve the same systems before timing them
        # means anything.
        assert len(unique_users) == n_new
        np.testing.assert_allclose(batched_rows, naive_rows, atol=1e-8)

        naive_users_per_s = n_new / naive_time
        users_per_s = n_new / batched_time
        entry = {
            "batch_users": n_new,
            "ratings_per_user": RATINGS_PER_USER,
            "users_per_s": round(users_per_s),
            "naive_users_per_s": round(naive_users_per_s),
            "speedup_vs_naive": round(users_per_s / naive_users_per_s, 3),
        }
        sweep.append(entry)
        rows.append(
            f"{'batched fold-in @ ' + str(n_new):<30} "
            f"{users_per_s:>10.0f} {entry['speedup_vs_naive']:>8.2f}x"
        )
        rows.append(
            f"{'naive loop @ ' + str(n_new):<30} "
            f"{naive_users_per_s:>10.0f} {'1.00x':>9}"
        )
        if best is None or entry["users_per_s"] > best["users_per_s"]:
            best = entry

    ingest_rate = _ingest_ratings_per_s()
    rows.append(f"{'ingest loop (ratings/s)':<30} {ingest_rate:>10.0f}")

    acceptance = {
        "target": (
            f"best batched fold-in >= {TARGET_SPEEDUP}x the per-user solve "
            "loop (users/s)"
        ),
        "best": best,
        "best_speedup_vs_naive": best["speedup_vs_naive"],
        "met": best["speedup_vs_naive"] >= TARGET_SPEEDUP,
    }

    payload = {
        "model_shape": {
            "users": N_USERS,
            "items": N_ITEMS,
            "latent_factors": LATENT,
        },
        "ratings_per_user": RATINGS_PER_USER,
        "regularization": REGULARIZATION,
        "profile": bench_profile,
        "hardware": {"cpu_count": os.cpu_count()},
        "fold_in": sweep,
        "ingest_loop_ratings_per_s": round(ingest_rate),
        "acceptance": acceptance,
    }
    with open(BENCH_STREAM_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    emit(
        f"Fold-in throughput, {N_ITEMS} items, k={LATENT}, "
        f"{RATINGS_PER_USER} ratings/newcomer -> {BENCH_STREAM_JSON}",
        "\n".join(rows),
    )

    assert acceptance["met"], (
        f"batched fold-in is only {best['speedup_vs_naive']}x the naive loop"
    )
