"""Ablation: sensitivity of HSGD* to the workload share alpha.

Forces the GPU share away from the cost model's choice and measures the
running-time penalty, quantifying how much the cost model buys.
"""

from conftest import emit

from repro.experiments import ablation_alpha_sensitivity
from repro.metrics.reporting import format_mapping


def test_ablation_alpha_sensitivity(benchmark, bench_context):
    dataset = bench_context.datasets[-1]
    result = benchmark.pedantic(
        ablation_alpha_sensitivity,
        kwargs={"context": bench_context, "dataset": dataset},
        rounds=1,
        iterations=1,
    )
    emit(f"Alpha sensitivity ({dataset})", format_mapping(result.times, "{:.6f}"))

    worst = max(result.times.values())
    # The cost-model split is near the best forced split and clearly
    # better than the worst one.
    best_forced = min(v for k, v in result.times.items() if k != "cost-model")
    assert result.times["cost-model"] <= best_forced * 1.15
    assert result.times["cost-model"] < worst
