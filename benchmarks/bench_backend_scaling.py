"""Worker-count scaling of the execution backends, and the block-major
data plane vs the legacy gather-per-task path.

Two benchmarks run on the Netflix-sized synthetic dataset:

* ``test_backend_scaling_curve`` — wall-clock ratings/s of the
  ``simulate`` (serial), ``threads`` (GIL-bound) and ``processes``
  (shared-memory, multicore) backends for worker counts in
  ``REPRO_BENCH_WORKERS`` (default ``1,2,4``), written to
  ``BENCH_exec.json`` (override the path with ``REPRO_BENCH_OUT`` — CI's
  regression guard writes a fresh file and compares it against the
  committed baseline with ``check_perf_regression.py``).  The
  acceptance target — processes >= 2x the serial simulator's ratings/s at
  4 workers — is asserted only when the machine actually has >= 4 usable
  cores; the JSON records the core count either way so a
  hardware-limited run is never mistaken for a scaling regression.
* ``test_kernel_data_plane_throughput`` — epoch throughput of the
  pre-PR-2 path (``kernel="minibatch"`` + per-task gather/validate) vs
  the block-major path (``kernel="auto"`` +
  :class:`repro.sparse.BlockStore`) for the simulate and threads
  engines, plus per-stage timings (gather vs validate vs kernel vs RMSE
  eval).  Results are written to ``BENCH_kernels.json``; the two paths
  are bitwise-identical, so the speedup is pure data-plane overhead
  removed.
"""

import json
import os
import time

from conftest import emit

from repro.config import HardwareConfig
from repro.core import HeterogeneousTrainer, factorize
from repro.datasets import load_dataset

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(_ROOT, "BENCH_kernels.json")
BENCH_EXEC_JSON = os.environ.get(
    "REPRO_BENCH_OUT", os.path.join(_ROOT, "BENCH_exec.json")
)

#: Worker counts of the scaling curve (CI trims this to "2" for speed).
SCALING_WORKERS = tuple(
    int(w) for w in os.environ.get("REPRO_BENCH_WORKERS", "1,2,4").split(",")
)

#: The acceptance bar of the process backend: ratings/s multiple over the
#: serial simulator at 4 workers, on a machine with >= 4 usable cores.
TARGET_SPEEDUP_AT_4 = 2.0

#: Threads previously delivered 0.83x at 4 workers (negative scaling);
#: the process backend must at least never be beaten by threads when the
#: cores exist to scale on.
SCALING_BACKENDS = ("simulate", "threads", "processes")


def _iterations(profile: str) -> int:
    return {"quick": 2, "full": 10}.get(profile, 5)


def _run(data, training, backend: str, kernel=None, use_block_store=True,
         calibrated_trainer=None):
    trainer = calibrated_trainer or HeterogeneousTrainer(
        algorithm="hsgd_star",
        hardware=HardwareConfig(cpu_threads=4, gpu_count=1),
        training=training,
        seed=0,
    )
    start = time.perf_counter()
    result = trainer.fit(
        data.train, data.test, iterations=training.iterations, backend=backend,
        kernel=kernel, use_block_store=use_block_store,
    )
    wall = time.perf_counter() - start
    return result, wall


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _scaling_run(data, training, backend: str, workers: int):
    """One timed fit: uniform-division HSGD, CPU workers only.

    The CPU-only greedy configuration needs no cost-model calibration,
    so the measured time is pure execution — the quantity the backends
    compete on.  Returns ``(result, total_wall, engine_wall)``:
    ``engine_wall`` is the pool's own clock (launch to last task
    completion) for the real backends, which excludes the one-time
    fork/shared-memory setup so quick CI runs and long baseline runs
    measure the same steady-state throughput; the simulator executes
    inline and its wall time is its engine time.
    """
    start = time.perf_counter()
    result = factorize(
        data.train,
        data.test,
        algorithm="hsgd",
        hardware=HardwareConfig(cpu_threads=workers, gpu_count=0),
        training=training,
        iterations=training.iterations,
        backend=backend,
        seed=0,
    )
    wall = time.perf_counter() - start
    assert len(result.trace.iterations) == training.iterations
    engine_wall = wall if backend == "simulate" else max(result.engine_time, 1e-9)
    return result, wall, engine_wall


def test_backend_scaling_curve(bench_profile):
    """Ratings/s of every backend at each worker count -> BENCH_exec.json."""
    data = load_dataset("netflix", seed=0)
    iterations = _iterations(bench_profile)
    training = data.spec.recommended_training(iterations=iterations, seed=0)
    cores = _usable_cores()

    rows = [
        f"{'workers':>7} {'backend':<10} {'wall s':>9} {'ratings/s':>12} "
        f"{'vs serial':>9}"
    ]
    scaling = []
    serial_tp = None
    for workers in SCALING_WORKERS:
        entry = {"workers": workers}
        for backend in SCALING_BACKENDS:
            result, wall, engine_wall = _scaling_run(
                data, training, backend, workers
            )
            tp = result.trace.total_points() / engine_wall
            entry[backend] = {
                "wall_s": round(wall, 4),
                "engine_wall_s": round(engine_wall, 4),
                "setup_s": round(wall - engine_wall, 4),
                "ratings_per_s": round(tp),
                "final_test_rmse": round(result.final_test_rmse, 4),
            }
            if backend == "simulate":
                # The simulator executes kernels serially regardless of
                # the scheduled worker count: its ratings/s IS the
                # serial baseline (measured per worker count, reported
                # against the 1-worker figure).
                if serial_tp is None:
                    serial_tp = tp
            speedup = tp / serial_tp
            entry[backend]["speedup_vs_serial"] = round(speedup, 3)
            rows.append(
                f"{workers:>7} {backend:<10} {wall:>9.3f} {tp:>12.0f} "
                f"{speedup:>8.2f}x"
            )
        scaling.append(entry)

    by_workers = {entry["workers"]: entry for entry in scaling}
    acceptance = {
        "target": (
            f"processes >= {TARGET_SPEEDUP_AT_4}x serial-simulator ratings/s "
            "at 4 workers"
        ),
        "usable_cores": cores,
        "hardware_limited": cores < 4,
    }
    if 4 in by_workers:
        acceptance["processes_speedup_at_4"] = by_workers[4]["processes"][
            "speedup_vs_serial"
        ]
        acceptance["threads_speedup_at_4"] = by_workers[4]["threads"][
            "speedup_vs_serial"
        ]
        acceptance["met"] = (
            acceptance["processes_speedup_at_4"] >= TARGET_SPEEDUP_AT_4
        )

    payload = {
        "dataset": "netflix",
        "train_nnz": int(data.train.nnz),
        "iterations": iterations,
        "profile": bench_profile,
        "hardware": {
            "cpu_count": os.cpu_count(),
            "usable_cores": cores,
        },
        "serial_baseline_ratings_per_s": round(serial_tp),
        "scaling": scaling,
        "acceptance": acceptance,
    }
    with open(BENCH_EXEC_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    emit(
        f"Backend scaling, netflix ({data.train.nnz} ratings, {iterations} "
        f"iterations, {cores} usable cores) -> {BENCH_EXEC_JSON}",
        "\n".join(rows),
    )

    # Quality parity: every backend trains the same model family to the
    # same ballpark; the schedulers only change interleaving.
    for entry in scaling:
        rmses = [entry[b]["final_test_rmse"] for b in SCALING_BACKENDS]
        assert max(rmses) - min(rmses) < 0.05

    # The acceptance gate is a *hardware* claim, so it only binds where
    # the hardware exists: with >= 4 usable cores, 4 process workers must
    # beat the serial simulator by the target factor (threads cannot —
    # that is the point of the backend).
    if cores >= 4 and 4 in by_workers:
        assert acceptance["met"], (
            "process backend failed the scaling acceptance: "
            f"{acceptance['processes_speedup_at_4']}x < "
            f"{TARGET_SPEEDUP_AT_4}x at 4 workers on {cores} cores"
        )


def _stage_timings(data, training):
    """Per-stage costs of one epoch: the legacy path's gather + validate,
    both kernels on pre-gathered data, and the RMSE evaluation."""
    from repro.core.partition import nonuniform_partition
    from repro.sgd import (
        FactorModel,
        rmse,
        sgd_block_minibatch,
        sgd_block_minibatch_local,
    )
    from repro.sparse import BlockStore

    train = data.train
    grid = nonuniform_partition(train, alpha=0.3, n_cpu_threads=4, n_gpus=1)
    blocks = [b for row in grid.blocks for b in row if b.nnz > 0]
    model = FactorModel.for_matrix(train, training)
    rate = training.learning_rate

    start = time.perf_counter()
    gathered = [
        (train.rows[b.indices], train.cols[b.indices], train.vals[b.indices])
        for b in blocks
    ]
    gather_s = time.perf_counter() - start

    start = time.perf_counter()
    for rows, cols, _ in gathered:
        rows.max(), rows.min(), cols.max(), cols.min()
    validate_s = time.perf_counter() - start

    start = time.perf_counter()
    for rows, cols, vals in gathered:
        sgd_block_minibatch(
            model.p, model.q, rows, cols, vals, rate,
            training.reg_p, training.reg_q, validate=False,
        )
    kernel_minibatch_s = time.perf_counter() - start

    store = BlockStore(train)
    records = [store.block_data(b) for b in blocks]
    start = time.perf_counter()
    for rec in records:
        sgd_block_minibatch_local(
            model.p, model.q, rec.local_rows, rec.local_cols, rec.vals,
            rate, training.reg_p, training.reg_q,
            rec.row_range, rec.col_range, validate=False,
        )
    kernel_local_s = time.perf_counter() - start

    start = time.perf_counter()
    rmse(model, data.test)
    eval_s = time.perf_counter() - start

    return {
        "gather_ms": round(1e3 * gather_s, 3),
        "validate_ms": round(1e3 * validate_s, 3),
        "kernel_minibatch_ms": round(1e3 * kernel_minibatch_s, 3),
        "kernel_minibatch_local_ms": round(1e3 * kernel_local_s, 3),
        "rmse_eval_ms": round(1e3 * eval_s, 3),
        "n_blocks": len(blocks),
        "train_nnz": int(train.nnz),
    }


def test_kernel_data_plane_throughput(bench_profile):
    """Old (gather-per-task + minibatch) vs new (BlockStore + local kernel)
    epoch throughput, both engines; writes BENCH_kernels.json."""
    data = load_dataset("netflix", seed=0)
    iterations = _iterations(bench_profile)
    training = data.spec.recommended_training(iterations=iterations, seed=0)

    def calibrated():
        trainer = HeterogeneousTrainer(
            algorithm="hsgd_star",
            hardware=HardwareConfig(cpu_threads=4, gpu_count=1),
            training=training,
            seed=0,
        )
        trainer.calibrate(data.train)  # keep the offline phase out of timing
        return trainer

    engines = {}
    rows = [
        f"{'engine':<10} {'path':<12} {'wall s':>9} {'ratings/s':>12} "
        f"{'speedup':>8}",
    ]
    for backend in ("simulate", "threads"):
        legacy_result, legacy_wall = _run(
            data, training, backend, kernel="minibatch", use_block_store=False,
            calibrated_trainer=calibrated(),
        )
        block_result, block_wall = _run(
            data, training, backend, calibrated_trainer=calibrated(),
        )
        legacy_tp = legacy_result.trace.total_points() / legacy_wall
        block_tp = block_result.trace.total_points() / block_wall
        speedup = block_tp / legacy_tp
        engines[backend] = {
            "legacy_wall_s": round(legacy_wall, 4),
            "legacy_ratings_per_s": round(legacy_tp),
            "block_major_wall_s": round(block_wall, 4),
            "block_major_ratings_per_s": round(block_tp),
            "speedup": round(speedup, 3),
        }
        rows.append(
            f"{backend:<10} {'legacy':<12} {legacy_wall:>9.3f} "
            f"{legacy_tp:>12.0f} {'1.00x':>8}"
        )
        rows.append(
            f"{backend:<10} {'block-major':<12} {block_wall:>9.3f} "
            f"{block_tp:>12.0f} {speedup:>7.2f}x"
        )
        # Bitwise identity is enforced by the test suite; here we only
        # require the data plane not to regress throughput.
        assert speedup > 1.0, f"{backend}: block-major path slower than legacy"

    stages = _stage_timings(data, training)
    payload = {
        "dataset": "netflix",
        "iterations": iterations,
        "profile": bench_profile,
        "train_nnz": stages["train_nnz"],
        "hardware": {"cpu_threads": 4, "gpu_count": 1},
        "engines": engines,
        "stages_per_epoch": stages,
    }
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    rows.append("")
    rows.append(
        "per-epoch stages (ms): "
        + ", ".join(
            f"{key.removesuffix('_ms')}={value}"
            for key, value in stages.items()
            if key.endswith("_ms")
        )
    )
    emit(
        f"Kernel data plane, netflix ({stages['train_nnz']} ratings, "
        f"{iterations} iterations) -> {BENCH_JSON}",
        "\n".join(rows),
    )
