"""Ablation: CUDA-stream overlap of transfers and kernel execution (Figure 8)."""

from conftest import emit

from repro.experiments import ablation_stream_overlap
from repro.metrics.reporting import format_mapping


def test_ablation_stream_overlap(benchmark, bench_context):
    results = benchmark.pedantic(
        ablation_stream_overlap,
        kwargs={"context": bench_context, "datasets": list(bench_context.datasets[:2])},
        rounds=1,
        iterations=1,
    )
    for entry in results:
        emit(f"Stream overlap ({entry.dataset})", format_mapping(entry.times, "{:.6f}"))

    for entry in results:
        assert entry.times["overlapped"] <= entry.times["serial"]
