"""Table III: effectiveness of dynamic scheduling (HSGD*-M vs HSGD*)."""

from conftest import emit

from repro.experiments import table3_dynamic_scheduling
from repro.metrics.reporting import format_table


def test_table3_dynamic_scheduling(benchmark, bench_context):
    comparisons = benchmark.pedantic(
        table3_dynamic_scheduling, args=(bench_context,), rounds=1, iterations=1
    )
    emit(
        "Table III: dynamic scheduling",
        format_table(
            ["dataset", "HSGD*-M (s)", "HSGD* (s)", "improvement %", "steals"],
            [
                (
                    entry.dataset,
                    entry.static_time,
                    entry.dynamic_time,
                    100 * entry.improvement,
                    entry.stolen_tasks,
                )
                for entry in comparisons
            ],
            "{:.4g}",
        ),
    )

    # Dynamic scheduling helps (or at worst ties) on every dataset and
    # strictly helps on most of them.
    assert all(entry.dynamic_time <= entry.static_time * 1.02 for entry in comparisons)
    strict_wins = sum(1 for entry in comparisons if entry.improvement > 0.0)
    assert strict_wins >= max(1, len(comparisons) - 1)
    assert any(entry.stolen_tasks > 0 for entry in comparisons)
