"""HTTP front-door latency under load: percentiles, ceiling, shedding.

One benchmark over the full serving path — loopback HTTP into
:class:`repro.service.RecommendServer`, through the reader pool, onto
the published shared-memory model — measuring what the in-process
serving bench (``bench_serving.py``) cannot: queueing, coalescing and
admission control under a *request stream*.

* **closed loop** (N back-to-back clients) finds the throughput
  ceiling; the best level's requests/s, **normalised by the same run's
  direct in-process** :class:`~repro.serve.RecommendationService`
  users/s (same model, same pool, no HTTP/no processes), is what the CI
  perf guard gates — dividing by the direct path cancels runner speed
  exactly like the full-matmul normaliser of ``BENCH_serve.json``;
* **open loop** at fixed offered rates below the ceiling reports the
  honest p50/p95/p99 (arrivals never wait for earlier requests, so the
  tail is not hidden by coordinated omission);
* **overload** drives 2x the measured ceiling and asserts admission
  control does its one job: a meaningful 503 rate, zero client-side
  errors, and the queue bound never exceeded.

Results go to ``BENCH_service.json`` (override with
``REPRO_BENCH_SERVICE_OUT``; CI writes a fresh file and compares it
against the committed baseline with ``check_perf_regression.py``).
"""

import asyncio
import json
import os
import time

from conftest import emit

from repro.serve import ModelStore, RecommendationService
from repro.serve.bench import synthetic_model, user_pool
from repro.service import RecommendServer, ServiceConfig, run_closed_loop, run_open_loop
from repro.shm import live_segment_names

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_SERVICE_JSON = os.environ.get(
    "REPRO_BENCH_SERVICE_OUT", os.path.join(_ROOT, "BENCH_service.json")
)

#: CI-sized model: the service cost is queueing + transport, not BLAS,
#: so the catalogue can be small without changing what is measured.
N_USERS = 5_000
N_ITEMS = 2_000
LATENT = 32
TOP_K = 10

WORKERS = 2
QUEUE_DEPTH = 16  # per reader: a crisp admission bound for the overload probe
DEADLINE_MS = 2_000.0

#: Offered-QPS fractions of the measured ceiling for the open-loop pass.
OPEN_LOOP_FRACTIONS = (0.25, 0.5, 1.0)
OVERLOAD_FACTOR = 2.0


def _durations(profile: str) -> dict:
    if profile == "quick":
        return {"closed": 1.0, "open": 1.0, "overload": 1.5}
    if profile == "full":
        return {"closed": 4.0, "open": 4.0, "overload": 5.0}
    return {"closed": 2.0, "open": 2.0, "overload": 3.0}


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _direct_users_per_s(model, users, seconds: float) -> float:
    """The normaliser: the same requests served in-process, no HTTP."""
    with RecommendationService(
        model, k=TOP_K, batch_size=64, cache_size=0
    ) as service:
        served = 0
        position = 0
        start = time.perf_counter()
        while time.perf_counter() - start < seconds:
            batch = [users[(position + i) % len(users)] for i in range(64)]
            position += 64
            service.recommend_many(batch)
            served += len(batch)
        elapsed = time.perf_counter() - start
    return served / elapsed


def test_service_latency_under_load(bench_profile):
    """Closed/open-loop HTTP measurements -> BENCH_service.json."""
    durations = _durations(bench_profile)
    model = synthetic_model(N_USERS, N_ITEMS, LATENT, seed=0)
    users = [int(u) for u in user_pool(N_USERS, 2_048, seed=0)]
    cores = _usable_cores()

    direct = _direct_users_per_s(model, users, seconds=durations["closed"] / 2)

    config = ServiceConfig(
        workers=WORKERS,
        k=TOP_K,
        queue_depth=QUEUE_DEPTH,
        deadline=DEADLINE_MS / 1000.0,
        cache_size=0,  # measure scoring round-trips, not dict lookups
    )

    async def measure():
        server = RecommendServer(store, config)
        await server.start()
        port = server.port
        try:
            closed = []
            for clients in (2, 8):
                report = await run_closed_loop(
                    "127.0.0.1", port, users, clients=clients,
                    duration=durations["closed"],
                )
                closed.append(
                    {"clients": clients, **report.as_dict()}
                )
            ceiling = max(entry["achieved_qps"] for entry in closed)

            open_loop = []
            for fraction in OPEN_LOOP_FRACTIONS:
                offered = max(10.0, ceiling * fraction)
                report = await run_open_loop(
                    "127.0.0.1", port, users, offered_qps=offered,
                    duration=durations["open"],
                )
                open_loop.append(
                    {"fraction_of_ceiling": fraction, **report.as_dict()}
                )

            overload_report = await run_open_loop(
                "127.0.0.1", port, users,
                offered_qps=max(20.0, ceiling * OVERLOAD_FACTOR),
                duration=durations["overload"],
            )
            overload = {
                "factor_of_ceiling": OVERLOAD_FACTOR,
                **overload_report.as_dict(),
            }
            queue_bound = config.queue_depth * config.workers
            max_in_flight = server.stats.max_in_flight
            server_stats = server.stats.as_dict()
        finally:
            await server.stop()
        return closed, ceiling, open_loop, overload, max_in_flight, server_stats, queue_bound

    with ModelStore() as store:
        store.publish(model)
        (
            closed,
            ceiling,
            open_loop,
            overload,
            max_in_flight,
            server_stats,
            queue_bound,
        ) = asyncio.run(measure())

    acceptance = {
        "target": (
            "overload at 2x the closed-loop ceiling is shed with 503s "
            "(bounded queue), with zero client-side transport errors"
        ),
        "ceiling_qps": round(ceiling, 2),
        "overload_rejection_rate": overload["rejection_rate"],
        "queue_bound": queue_bound,
        "max_in_flight": max_in_flight,
        "queue_stayed_bounded": max_in_flight <= queue_bound,
        "met": (
            overload["rejection_rate"] > 0.0
            and overload["errors"] == 0
            and max_in_flight <= queue_bound
        ),
    }

    payload = {
        "model_shape": {
            "users": N_USERS,
            "items": N_ITEMS,
            "latent_factors": LATENT,
        },
        "top_k": TOP_K,
        "profile": bench_profile,
        "hardware": {"cpu_count": os.cpu_count(), "usable_cores": cores},
        "config": {
            "workers": WORKERS,
            "queue_depth_per_reader": QUEUE_DEPTH,
            "deadline_ms": DEADLINE_MS,
        },
        "baselines": {"direct_users_per_s": round(direct)},
        "service": {
            "closed_loop": closed,
            "ceiling_qps": round(ceiling, 2),
            "normalised_ceiling_vs_direct": round(ceiling / direct, 5),
            "open_loop": open_loop,
            "overload": overload,
        },
        "server_stats": server_stats,
        "acceptance": acceptance,
    }
    with open(BENCH_SERVICE_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    rows = [
        f"{'load':<26} {'offered':>8} {'achieved':>9} {'p50':>7} "
        f"{'p95':>7} {'p99':>7} {'503%':>6}"
    ]
    for entry in closed:
        rows.append(
            f"closed loop x{entry['clients']:<12} {'-':>8} "
            f"{entry['achieved_qps']:>9.1f} {entry['p50_ms']:>7.2f} "
            f"{entry['p95_ms']:>7.2f} {entry['p99_ms']:>7.2f} "
            f"{100 * entry['rejection_rate']:>5.1f}%"
        )
    for entry in open_loop + [overload]:
        label = (
            f"open loop {entry.get('fraction_of_ceiling', OVERLOAD_FACTOR)}x"
        )
        rows.append(
            f"{label:<26} {entry['offered_qps']:>8.1f} "
            f"{entry['achieved_qps']:>9.1f} {entry['p50_ms']:>7.2f} "
            f"{entry['p95_ms']:>7.2f} {entry['p99_ms']:>7.2f} "
            f"{100 * entry['rejection_rate']:>5.1f}%"
        )
    emit(
        f"Service latency under load, {WORKERS} readers, top-{TOP_K}, "
        f"direct normaliser {direct:.0f} users/s ({cores} usable cores) -> "
        f"{BENCH_SERVICE_JSON}",
        "\n".join(rows),
    )

    assert live_segment_names() == (), "the service leaked a segment"
    assert ceiling > 0
    for entry in open_loop:
        assert entry["errors"] == 0, "transport errors during open loop"
    assert acceptance["met"], (
        f"admission control acceptance failed: rejection rate "
        f"{overload['rejection_rate']} at {OVERLOAD_FACTOR}x ceiling, "
        f"errors {overload['errors']}, max in-flight {max_in_flight} "
        f"vs bound {queue_bound}"
    )
