"""Observations 1-2 and Example 3: the motivating measurements of Section IV."""

from conftest import emit

from repro.experiments import example3_update_imbalance, observation_block_sensitivity
from repro.metrics.reporting import format_mapping


def test_observations_and_example3(benchmark, bench_context):
    def run():
        sensitivity = observation_block_sensitivity(bench_context)
        imbalance = example3_update_imbalance(
            bench_context, dataset=bench_context.datasets[0], iterations=4
        )
        return sensitivity, imbalance

    sensitivity, imbalance = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Observations 1 and 2",
        f"GPU large/small block speedup: {sensitivity.gpu_speedup_large_over_small:.2f}x\n"
        f"CPU large/small block speedup: {sensitivity.cpu_speedup_large_over_small:.2f}x",
    )
    for algorithm, stats in imbalance.items():
        emit(f"Example 3 update-count dispersion ({algorithm})", format_mapping(stats))

    assert sensitivity.observation1_holds
    assert sensitivity.observation2_holds
    assert imbalance["hsgd"]["cv"] > imbalance["hsgd_star"]["cv"]
    assert imbalance["hsgd"]["gini"] > imbalance["hsgd_star"]["gini"]
