"""Figure 11: running time to the RMSE target as the CPU thread count varies."""

from conftest import emit

from repro.experiments import figure11_vary_cpu_threads


def test_figure11_vary_cpu_threads(benchmark, sweep_context):
    results = benchmark.pedantic(
        figure11_vary_cpu_threads, args=(sweep_context,), rounds=1, iterations=1
    )
    for sweep in results:
        emit(
            f"Figure 11 ({sweep.dataset}), target RMSE {sweep.target_rmse}",
            sweep.render(),
        )

    for sweep in results:
        cpu_times = [t for t in sweep.times["cpu_only"] if t is not None]
        # CPU-Only gets faster with more threads.
        if len(cpu_times) >= 2:
            assert cpu_times[-1] < cpu_times[0]
        # At the paper's default thread count (the largest swept value)
        # HSGD* is the fastest algorithm; at lower thread counts it stays
        # competitive with the best single-resource baseline.
        for index, threads in enumerate(sweep.sweep_values):
            star_time = sweep.times["hsgd_star"][index]
            if star_time is None:
                continue
            others = [
                sweep.times[other][index]
                for other in ("cpu_only", "gpu_only")
                if sweep.times[other][index] is not None
            ]
            if not others:
                continue
            tolerance = 1.15 if threads >= max(sweep.sweep_values) else 1.35
            assert star_time <= min(others) * tolerance
