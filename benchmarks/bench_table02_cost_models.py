"""Table II: comparison of cost models (HSGD*-Q vs HSGD*-M).

Both variants run the same fixed number of iterations without dynamic
scheduling; the table reports the workload proportions each cost model
assigns to CPUs and GPUs and the resulting running times.  The paper's
finding — the tailored cost model balances better than Qilin's linear
model, so HSGD*-M is faster — must hold on (at least all but one of) the
datasets.
"""

from conftest import emit

from repro.experiments import table2_cost_models


def test_table2_cost_models(benchmark, bench_context):
    comparisons = benchmark.pedantic(
        table2_cost_models, args=(bench_context,), rounds=1, iterations=1
    )
    for entry in comparisons:
        emit(f"Table II ({entry.dataset})", entry.render())

    wins = sum(
        1
        for entry in comparisons
        if entry.running_time["HSGD*-M"] <= entry.running_time["HSGD*-Q"] * 1.02
    )
    assert wins >= max(1, len(comparisons) - 1)
    # The two models must actually produce different splits.
    for entry in comparisons:
        assert entry.gpu_share["HSGD*-M"] != entry.gpu_share["HSGD*-Q"]
