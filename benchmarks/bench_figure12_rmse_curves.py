"""Figure 12: test RMSE over training time for CPU-Only, GPU-Only and HSGD*."""

from conftest import emit

from repro.experiments import figure12_rmse_curves


def test_figure12_rmse_curves(benchmark, bench_context):
    results = benchmark.pedantic(
        figure12_rmse_curves, args=(bench_context,), rounds=1, iterations=1
    )
    for outcome in results:
        emit(f"Figure 12 ({outcome.dataset})", outcome.render())

    for outcome in results:
        finals = {name: outcome.final_rmse(name) for name in outcome.curves}
        # Every algorithm's RMSE decreases and they converge to similar values.
        for name, curve in outcome.curves.items():
            assert curve[-1][1] < curve[0][1]
        assert max(finals.values()) < 1.2 * min(finals.values())
        # HSGD* reaches the worst algorithm's final RMSE no later than it did.
        slowest = max(finals, key=finals.get)
        star_time = outcome.time_to_rmse("hsgd_star", finals[slowest])
        other_time = outcome.curves[slowest][-1][0]
        assert star_time is not None and star_time <= other_time * 1.05
