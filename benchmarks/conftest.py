"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures through
the experiment harness (:mod:`repro.experiments`) and reports the same
rows/series the paper does.  The workload profile is selected with the
``REPRO_BENCH_PROFILE`` environment variable:

* ``quick``   — two datasets, tiny sweeps (smoke test, ~1 minute);
* ``default`` — all four datasets for the fixed-iteration experiments and
  two datasets for the time-to-target sweeps (a few minutes);
* ``full``    — the paper's full sweep (32-512 GPU workers, 4-16 CPU
  threads, 20 iterations); expect tens of minutes.
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.experiments import ExperimentContext


def _profile() -> str:
    return os.environ.get("REPRO_BENCH_PROFILE", "default").lower()


@pytest.fixture(scope="session")
def bench_profile() -> str:
    """The selected benchmark profile name."""
    return _profile()


@pytest.fixture(scope="session")
def bench_context() -> ExperimentContext:
    """Context for fixed-iteration experiments (figures 12/13, tables)."""
    profile = _profile()
    if profile == "quick":
        return ExperimentContext.quick()
    if profile == "full":
        return ExperimentContext.full()
    context = ExperimentContext()
    context.iterations = 10
    return context


@pytest.fixture(scope="session")
def sweep_context() -> ExperimentContext:
    """Context for the time-to-target hardware sweeps (figures 10/11)."""
    profile = _profile()
    if profile == "quick":
        return ExperimentContext.quick()
    if profile == "full":
        return ExperimentContext.full()
    context = ExperimentContext()
    context.datasets = ["netflix", "r1"]
    context.max_iterations = 35
    return context


def emit(title: str, body: str) -> None:
    """Print a labelled result block (visible with ``pytest -s``)."""
    print(f"\n===== {title} =====")
    print(body)
