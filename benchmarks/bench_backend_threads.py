"""Wall-clock throughput of the threaded backend vs the simulator, and of
the block-major data plane vs the legacy gather-per-task path.

Two benchmarks run on the Netflix-sized synthetic dataset:

* ``test_backend_threads_throughput`` — HSGD* with both execution
  backends; measures how much *real* speedup the thread pool extracts
  over the serial simulator (bounded by how much of the kernel time
  numpy spends outside the GIL on the machine at hand).
* ``test_kernel_data_plane_throughput`` — epoch throughput of the
  pre-PR path (``kernel="minibatch"`` + per-task gather/validate) vs the
  block-major path (``kernel="auto"`` + :class:`repro.sparse.BlockStore`)
  for **both** engines, plus per-stage timings (gather vs validate vs
  kernel vs RMSE eval).  Results are written to ``BENCH_kernels.json``
  at the repository root; the two paths are bitwise-identical, so the
  speedup is pure data-plane overhead removed.
"""

import json
import os
import time

from conftest import emit

from repro.config import HardwareConfig
from repro.core import HeterogeneousTrainer
from repro.datasets import load_dataset

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_kernels.json",
)


def _iterations(profile: str) -> int:
    return {"quick": 2, "full": 10}.get(profile, 5)


def _run(data, training, backend: str, kernel=None, use_block_store=True,
         calibrated_trainer=None):
    trainer = calibrated_trainer or HeterogeneousTrainer(
        algorithm="hsgd_star",
        hardware=HardwareConfig(cpu_threads=4, gpu_count=1),
        training=training,
        seed=0,
    )
    start = time.perf_counter()
    result = trainer.fit(
        data.train, data.test, iterations=training.iterations, backend=backend,
        kernel=kernel, use_block_store=use_block_store,
    )
    wall = time.perf_counter() - start
    return result, wall


def test_backend_threads_throughput(benchmark, bench_profile):
    data = load_dataset("netflix", seed=0)
    iterations = _iterations(bench_profile)
    training = data.spec.recommended_training(iterations=iterations, seed=0)

    sim_result, sim_wall = _run(data, training, "simulate")

    threaded_result, threaded_wall = benchmark.pedantic(
        lambda: _run(data, training, "threads"), rounds=1, iterations=1
    )

    points = threaded_result.trace.total_points()
    rows = [
        f"{'backend':<10} {'wall s':>9} {'ratings/s':>12} {'final RMSE':>11}",
        f"{'simulate':<10} {sim_wall:>9.3f} "
        f"{sim_result.trace.total_points() / sim_wall:>12.0f} "
        f"{sim_result.final_test_rmse:>11.4f}",
        f"{'threads':<10} {threaded_wall:>9.3f} "
        f"{points / threaded_wall:>12.0f} "
        f"{threaded_result.final_test_rmse:>11.4f}",
    ]
    emit(
        f"Backend throughput, netflix ({data.train.nnz} ratings, "
        f"{iterations} iterations, 4 CPU + 1 GPU workers)",
        "\n".join(rows),
    )

    # Both backends complete the same number of iterations and land on
    # comparable quality.  The wall-clock ordering is reported, not
    # asserted: the threads backend's margin over the serial simulator
    # depends on how much of the kernel time numpy spends outside the
    # GIL, which varies with BLAS build and core count — at the quick
    # profile the two are within noise of each other.  We only require
    # that real concurrency does not *cost* more than 2x.
    assert len(threaded_result.trace.iterations) == iterations
    assert abs(
        threaded_result.final_test_rmse - sim_result.final_test_rmse
    ) < 0.05
    assert threaded_wall < 2.0 * sim_wall


def _stage_timings(data, training):
    """Per-stage costs of one epoch: the legacy path's gather + validate,
    both kernels on pre-gathered data, and the RMSE evaluation."""
    import numpy as np

    from repro.core.partition import nonuniform_partition
    from repro.sgd import (
        FactorModel,
        rmse,
        sgd_block_minibatch,
        sgd_block_minibatch_local,
    )
    from repro.sparse import BlockStore

    train = data.train
    grid = nonuniform_partition(train, alpha=0.3, n_cpu_threads=4, n_gpus=1)
    blocks = [b for row in grid.blocks for b in row if b.nnz > 0]
    model = FactorModel.for_matrix(train, training)
    rate = training.learning_rate

    start = time.perf_counter()
    gathered = [
        (train.rows[b.indices], train.cols[b.indices], train.vals[b.indices])
        for b in blocks
    ]
    gather_s = time.perf_counter() - start

    start = time.perf_counter()
    for rows, cols, _ in gathered:
        rows.max(), rows.min(), cols.max(), cols.min()
    validate_s = time.perf_counter() - start

    start = time.perf_counter()
    for rows, cols, vals in gathered:
        sgd_block_minibatch(
            model.p, model.q, rows, cols, vals, rate,
            training.reg_p, training.reg_q, validate=False,
        )
    kernel_minibatch_s = time.perf_counter() - start

    store = BlockStore(train)
    records = [store.block_data(b) for b in blocks]
    start = time.perf_counter()
    for rec in records:
        sgd_block_minibatch_local(
            model.p, model.q, rec.local_rows, rec.local_cols, rec.vals,
            rate, training.reg_p, training.reg_q,
            rec.row_range, rec.col_range, validate=False,
        )
    kernel_local_s = time.perf_counter() - start

    start = time.perf_counter()
    rmse(model, data.test)
    eval_s = time.perf_counter() - start

    return {
        "gather_ms": round(1e3 * gather_s, 3),
        "validate_ms": round(1e3 * validate_s, 3),
        "kernel_minibatch_ms": round(1e3 * kernel_minibatch_s, 3),
        "kernel_minibatch_local_ms": round(1e3 * kernel_local_s, 3),
        "rmse_eval_ms": round(1e3 * eval_s, 3),
        "n_blocks": len(blocks),
        "train_nnz": int(train.nnz),
    }


def test_kernel_data_plane_throughput(bench_profile):
    """Old (gather-per-task + minibatch) vs new (BlockStore + local kernel)
    epoch throughput, both engines; writes BENCH_kernels.json."""
    data = load_dataset("netflix", seed=0)
    iterations = _iterations(bench_profile)
    training = data.spec.recommended_training(iterations=iterations, seed=0)

    def calibrated():
        trainer = HeterogeneousTrainer(
            algorithm="hsgd_star",
            hardware=HardwareConfig(cpu_threads=4, gpu_count=1),
            training=training,
            seed=0,
        )
        trainer.calibrate(data.train)  # keep the offline phase out of timing
        return trainer

    engines = {}
    rows = [
        f"{'engine':<10} {'path':<12} {'wall s':>9} {'ratings/s':>12} "
        f"{'speedup':>8}",
    ]
    for backend in ("simulate", "threads"):
        legacy_result, legacy_wall = _run(
            data, training, backend, kernel="minibatch", use_block_store=False,
            calibrated_trainer=calibrated(),
        )
        block_result, block_wall = _run(
            data, training, backend, calibrated_trainer=calibrated(),
        )
        legacy_tp = legacy_result.trace.total_points() / legacy_wall
        block_tp = block_result.trace.total_points() / block_wall
        speedup = block_tp / legacy_tp
        engines[backend] = {
            "legacy_wall_s": round(legacy_wall, 4),
            "legacy_ratings_per_s": round(legacy_tp),
            "block_major_wall_s": round(block_wall, 4),
            "block_major_ratings_per_s": round(block_tp),
            "speedup": round(speedup, 3),
        }
        rows.append(
            f"{backend:<10} {'legacy':<12} {legacy_wall:>9.3f} "
            f"{legacy_tp:>12.0f} {'1.00x':>8}"
        )
        rows.append(
            f"{backend:<10} {'block-major':<12} {block_wall:>9.3f} "
            f"{block_tp:>12.0f} {speedup:>7.2f}x"
        )
        # Bitwise identity is enforced by the test suite; here we only
        # require the data plane not to regress throughput.
        assert speedup > 1.0, f"{backend}: block-major path slower than legacy"

    stages = _stage_timings(data, training)
    payload = {
        "dataset": "netflix",
        "iterations": iterations,
        "profile": bench_profile,
        "train_nnz": stages["train_nnz"],
        "hardware": {"cpu_threads": 4, "gpu_count": 1},
        "engines": engines,
        "stages_per_epoch": stages,
    }
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    rows.append("")
    rows.append(
        "per-epoch stages (ms): "
        + ", ".join(
            f"{key.removesuffix('_ms')}={value}"
            for key, value in stages.items()
            if key.endswith("_ms")
        )
    )
    emit(
        f"Kernel data plane, netflix ({stages['train_nnz']} ratings, "
        f"{iterations} iterations) -> {BENCH_JSON}",
        "\n".join(rows),
    )
