"""Wall-clock throughput of the threaded backend vs the simulator.

Trains HSGD* on the Netflix-sized synthetic dataset with both execution
backends and reports, for each, the wall-clock seconds one run takes and
the resulting throughput in ratings per wall-clock second.  The
simulator applies the same updates serially (its parallelism is only
virtual), so this measures how much *real* speedup the thread pool
extracts — which is bounded by how much of the kernel time numpy spends
outside the GIL on the machine at hand.
"""

import time

from conftest import emit

from repro.config import HardwareConfig
from repro.core import HeterogeneousTrainer
from repro.datasets import load_dataset


def _iterations(profile: str) -> int:
    return {"quick": 2, "full": 10}.get(profile, 5)


def _run(data, training, backend: str):
    trainer = HeterogeneousTrainer(
        algorithm="hsgd_star",
        hardware=HardwareConfig(cpu_threads=4, gpu_count=1),
        training=training,
        seed=0,
    )
    start = time.perf_counter()
    result = trainer.fit(
        data.train, data.test, iterations=training.iterations, backend=backend
    )
    wall = time.perf_counter() - start
    return result, wall


def test_backend_threads_throughput(benchmark, bench_profile):
    data = load_dataset("netflix", seed=0)
    iterations = _iterations(bench_profile)
    training = data.spec.recommended_training(iterations=iterations, seed=0)

    sim_result, sim_wall = _run(data, training, "simulate")

    threaded_result, threaded_wall = benchmark.pedantic(
        lambda: _run(data, training, "threads"), rounds=1, iterations=1
    )

    points = threaded_result.trace.total_points()
    rows = [
        f"{'backend':<10} {'wall s':>9} {'ratings/s':>12} {'final RMSE':>11}",
        f"{'simulate':<10} {sim_wall:>9.3f} "
        f"{sim_result.trace.total_points() / sim_wall:>12.0f} "
        f"{sim_result.final_test_rmse:>11.4f}",
        f"{'threads':<10} {threaded_wall:>9.3f} "
        f"{points / threaded_wall:>12.0f} "
        f"{threaded_result.final_test_rmse:>11.4f}",
    ]
    emit(
        f"Backend throughput, netflix ({data.train.nnz} ratings, "
        f"{iterations} iterations, 4 CPU + 1 GPU workers)",
        "\n".join(rows),
    )

    # Both backends complete the same number of iterations and land on
    # comparable quality.  The wall-clock ordering is reported, not
    # asserted: the threads backend's margin over the serial simulator
    # depends on how much of the kernel time numpy spends outside the
    # GIL, which varies with BLAS build and core count — at the quick
    # profile the two are within noise of each other.  We only require
    # that real concurrency does not *cost* more than 2x.
    assert len(threaded_result.trace.iterations) == iterations
    assert abs(
        threaded_result.final_test_rmse - sim_result.final_test_rmse
    ) < 0.05
    assert threaded_wall < 2.0 * sim_wall
