"""Figure 3: device update speed vs block size.

Regenerates the two series of Figure 3 — GPU update throughput (a) and
single-CPU-thread throughput (b) as the block size grows — and checks
their shapes: the GPU curve rises steeply and flattens (Observation 1),
the CPU curve is flat (Observation 2).
"""

from conftest import emit

from repro.experiments import figure3_block_throughput


def test_figure3_block_throughput(benchmark):
    gpu_series, cpu_series = benchmark.pedantic(
        figure3_block_throughput, rounds=1, iterations=1
    )
    emit("Figure 3(a): GPU update speed vs block size", gpu_series.render())
    emit("Figure 3(b): CPU thread update speed vs block size", cpu_series.render())

    gpu_values = gpu_series.values()
    cpu_values = cpu_series.values()
    assert gpu_values[-1] > 1.5 * gpu_values[0]
    assert all(b >= a for a, b in zip(gpu_values, gpu_values[1:]))
    assert max(cpu_values) < 1.1 * min(cpu_values)
