#!/usr/bin/env python
"""Assert a tuned profile round-trips and resolves every "auto" knob legally.

CI's ``tune-profile`` job runs this against the profile ``repro tune
--quick`` just emitted on the runner::

    PYTHONPATH=src python benchmarks/check_tuned_profile.py tuned_profile.json

Two properties, both machine-independent:

1. **Round-trip**: ``TunedProfile.load(path)`` must equal the profile
   rebuilt from its own JSON (``loads(dumps(p)) == p``) — the on-disk
   format loses nothing.
2. **Legal resolution everywhere**: with the profile active, every
   ``"auto"`` tunable in the library must resolve to a value the target
   subsystem accepts — including on a 1-core machine (the dev-container
   degenerate case), where a profile calibrated elsewhere must still
   demote ``"processes"`` to a backend that can actually run.

Exit 0 on success, 1 with a per-check report otherwise.
"""

import sys

from repro.config import TrainingConfig
from repro.exec.registry import backend_names, resolve_backend_name
from repro.hardware import fingerprint_matches, usable_cores
from repro.serve.scorer import DEFAULT_CHUNK_ITEMS
from repro.serve.service import DEFAULT_SERVICE_BATCH
from repro.service.server import ServiceConfig
from repro.sgd.kernels import KERNELS, resolve_kernel_name
from repro.tune import (
    TunedProfile,
    resolve_foldin_batch_users,
    resolve_foldin_gram_chunk,
    resolve_serving_batch_size,
    resolve_serving_chunk_items,
    resolve_training_batch_size,
    resolve_workers,
    use_profile,
)


def check_profile(path: str) -> int:
    failures = []

    def check(label: str, ok: bool, detail: str = "") -> None:
        print(f"  {'ok' if ok else 'FAIL':>4} {label}{': ' + detail if detail else ''}")
        if not ok:
            failures.append(label)

    profile = TunedProfile.load(path)
    check(
        "round-trip",
        TunedProfile.loads(profile.dumps()) == profile,
        "load(dump(p)) == p",
    )
    check(
        "fingerprint",
        fingerprint_matches(profile.fingerprint),
        "profile was calibrated on this machine",
    )

    with use_profile(profile):
        backend = resolve_backend_name("auto", n_workers=None)
        check(
            "backend",
            backend in backend_names() and backend != "auto",
            f"auto -> {backend}",
        )
        workers = resolve_workers("auto", 1)
        check("workers", isinstance(workers, int) and workers >= 1, f"auto -> {workers}")
        if backend == "processes":
            check(
                "backend-workers coherence",
                workers > 1,
                "processes only pays for multi-worker runs",
            )
        kernel = resolve_kernel_name("auto")
        check(
            "kernel",
            kernel in KERNELS and kernel not in ("auto", "sequential"),
            f"auto -> {kernel}",
        )
        batch = TrainingConfig(batch_size="auto").effective_batch_size
        check("train batch_size", isinstance(batch, int) and batch >= 1, f"auto -> {batch}")
        chunk = resolve_serving_chunk_items("auto", DEFAULT_CHUNK_ITEMS)
        check("serving chunk_items", chunk >= 1, f"auto -> {chunk}")
        sbatch = resolve_serving_batch_size("auto", DEFAULT_SERVICE_BATCH)
        check("serving batch_size", sbatch >= 1, f"auto -> {sbatch}")
        config = ServiceConfig(batch_size="auto", chunk_items="auto")
        check(
            "ServiceConfig",
            isinstance(config.batch_size, int) and isinstance(config.chunk_items, int),
            f"auto -> batch {config.batch_size}, chunk {config.chunk_items}",
        )
        gram = resolve_foldin_gram_chunk(0)
        check("foldin gram chunk", gram >= 1, f"profile -> {gram}")
        fbatch = resolve_foldin_batch_users(0)
        check("foldin batch users", fbatch >= 1, f"profile -> {fbatch}")

    cores = usable_cores()
    if failures:
        print(f"\n{len(failures)} check(s) failed on a {cores}-core machine: {failures}")
        return 1
    print(f"\nprofile is round-trip-exact and fully resolvable on this {cores}-core machine")
    return 0


def main(argv) -> int:
    if len(argv) != 2:
        print(f"usage: {argv[0]} PROFILE.json")
        return 2
    return check_profile(argv[1])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
