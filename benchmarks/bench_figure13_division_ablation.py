"""Figure 13: HSGD vs HSGD* — the matrix-division / training-quality ablation."""

from conftest import emit

from repro.experiments import figure13_division_ablation


def test_figure13_division_ablation(benchmark, bench_context):
    results = benchmark.pedantic(
        figure13_division_ablation, args=(bench_context,), rounds=1, iterations=1
    )
    for outcome in results:
        emit(f"Figure 13 ({outcome.dataset})", outcome.render())

    better, total = 0, 0
    for outcome in results:
        total += 1
        # Given the time HSGD needed for its final RMSE, HSGD* reaches that
        # RMSE sooner (or at least as soon) — the paper's quality advantage.
        hsgd_final_rmse = outcome.final_rmse("hsgd")
        hsgd_final_time = outcome.curves["hsgd"][-1][0]
        star_time = outcome.time_to_rmse("hsgd_star", hsgd_final_rmse)
        if star_time is not None and star_time <= hsgd_final_time * 1.02:
            better += 1
    assert better >= max(1, total - 1)
