"""Ablation: the column-count rule (nc + 2 ng + 1) of the nonuniform division."""

from conftest import emit

from repro.experiments import ablation_column_rule
from repro.metrics.reporting import format_mapping


def test_ablation_column_rule(benchmark, bench_context):
    dataset = bench_context.datasets[-1]
    result = benchmark.pedantic(
        ablation_column_rule,
        kwargs={"context": bench_context, "dataset": dataset},
        rounds=1,
        iterations=1,
    )
    emit(f"Column-count rule ({dataset})", format_mapping(result.times, "{:.6f}"))

    # The paper's rule (scale 1.0) is within 20% of the best swept setting:
    # far finer grids shrink GPU blocks, far coarser grids starve workers.
    best = min(result.times.values())
    assert result.times["columns x1"] <= best * 1.2
