"""Offline line-coverage measurement for pinning the CI coverage gate.

The CI coverage job runs ``pytest --cov=repro --cov-fail-under=N`` (see
``.github/workflows/ci.yml``); ``N`` is pinned at the measured baseline
minus a 2-point tolerance so future PRs cannot silently drop coverage.
This machine has no ``coverage``/``pytest-cov`` wheel (fully offline), so
the baseline is measured with a stdlib ``sys.settrace`` tracer instead:

* executable lines per file come from compiling the source and walking
  every code object's ``co_lines()`` (the same universe coverage.py
  counts, minus its pragma/exclusion handling — this tool applies the
  one exclusion that matters at module granularity, ``pragma: no cover``
  lines, so the two measurements agree to within ~1 point);
* executed lines are collected by a global trace function that only
  pays the per-line callback inside ``src/repro``.

Run it the way the CI job runs pytest::

    PYTHONPATH=src python benchmarks/measure_coverage.py -q -m "not slow and not examples"

Extra arguments are passed to pytest verbatim.  Prints per-file and
total percentages; the total is what the workflow's ``--cov-fail-under``
is derived from.
"""

from __future__ import annotations

import os
import re
import sys
from collections import defaultdict

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
_PKG = os.path.join(_SRC, "repro")

_EXCLUDE_RE = re.compile(r"#\s*pragma:\s*no\s+cover")


def _executable_lines(path: str) -> set:
    """All line numbers the compiler can attribute code to, minus
    ``pragma: no cover`` lines (coverage.py's default exclusion)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    lines = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _, _, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    source_lines = source.splitlines()
    excluded = {
        index + 1
        for index, text in enumerate(source_lines)
        if _EXCLUDE_RE.search(text)
    }
    # Docstring-only "lines" the compiler attributes to the module/class
    # header are counted by co_lines but not by coverage.py; the effect
    # is under a tenth of a point on this tree and ignored.
    return lines - excluded


def main() -> int:
    executed = defaultdict(set)

    def global_tracer(frame, event, arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not filename.startswith(_PKG):
            return None

        def local_tracer(frame, event, arg):
            if event == "line":
                executed[frame.f_code.co_filename].add(frame.f_lineno)
            return local_tracer

        return local_tracer

    import pytest

    sys.settrace(global_tracer)
    try:
        exit_code = pytest.main(sys.argv[1:])
    finally:
        sys.settrace(None)

    total_executable = 0
    total_executed = 0
    print(f"\n{'file':<52} {'lines':>6} {'hit':>6} {'cover':>7}")
    for dirpath, _, filenames in sorted(os.walk(_PKG)):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            executable = _executable_lines(path)
            hit = executed.get(path, set()) & executable
            total_executable += len(executable)
            total_executed += len(hit)
            percent = 100.0 * len(hit) / len(executable) if executable else 100.0
            rel = os.path.relpath(path, _SRC)
            print(f"{rel:<52} {len(executable):>6} {len(hit):>6} {percent:>6.1f}%")
    percent = 100.0 * total_executed / max(total_executable, 1)
    print(f"{'TOTAL':<52} {total_executable:>6} {total_executed:>6} {percent:>6.1f}%")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
