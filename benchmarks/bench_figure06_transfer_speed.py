"""Figure 6: PCIe transfer speed vs data size (both directions)."""

from conftest import emit

from repro.experiments import figure6_transfer_speed


def test_figure6_transfer_speed(benchmark):
    h2d, d2h = benchmark.pedantic(figure6_transfer_speed, rounds=1, iterations=1)
    emit("Figure 6(a): CPU to GPU transfer speed", h2d.render())
    emit("Figure 6(b): GPU to CPU transfer speed", d2h.render())

    # Bandwidth ramps with transfer size and saturates near the link peak.
    assert h2d.values()[-1] > 2.0 * h2d.values()[0]
    assert h2d.values()[-1] <= 12.5
    assert d2h.values()[-1] <= h2d.values()[-1] + 1e-9
