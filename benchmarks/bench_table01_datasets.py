"""Table I: dataset statistics and parameter settings."""

from conftest import emit

from repro.experiments import table1_datasets
from repro.experiments.tables import render_table1


def test_table1_datasets(benchmark, bench_context):
    rows = benchmark.pedantic(
        table1_datasets, args=(bench_context,), rounds=1, iterations=1
    )
    emit("Table I: datasets and parameter settings", render_table1(rows))

    names = [row.name for row in rows]
    assert names == bench_context.datasets
    # Size ordering of the analogues matches the paper's datasets.
    paper_sizes = [row.paper_training for row in rows]
    repro_sizes = [row.synthetic_training for row in rows]
    assert sorted(range(len(rows)), key=lambda i: paper_sizes[i]) == sorted(
        range(len(rows)), key=lambda i: repro_sizes[i]
    )
