"""Thresholded perf-regression guard over the scaling benchmark.

Compares a freshly measured scaling run (``REPRO_BENCH_OUT`` of
``bench_backend_scaling.py::test_backend_scaling_curve``) against the
committed ``BENCH_exec.json`` baseline and **fails** (exit 1) when any
real backend's throughput dropped more than ``--max-drop`` (default
30%) below the baseline at a worker count both files measured.

The compared quantity is each backend's ratings/s **normalised by the
same run's serial-simulator ratings/s** at the same worker count.  The
simulator executes the identical kernels inline, so it is a live probe
of the machine the run happened on — dividing by it cancels
machine-speed and load differences between the baseline host and the CI
runner, leaving exactly the thing this guard exists to catch: a backend
becoming slower *relative to the same work executed serially* (a new
copy on the hot path, lock contention, a dispatch stall).  A global
slowdown that hits every backend equally is the kernels' business and is
covered by ``BENCH_kernels.json`` and the tier-1 suite; the simulator
row is the normaliser here and is reported but never gated.

Usage (what the CI perf-guard job runs)::

    REPRO_BENCH_WORKERS=2 REPRO_BENCH_OUT=bench_current.json \\
        python -m pytest benchmarks/bench_backend_scaling.py \\
        -k scaling_curve -q -s
    python benchmarks/check_perf_regression.py \\
        --baseline BENCH_exec.json --current bench_current.json

Improvements and new worker counts are reported but never fail; a
backend or worker count missing from the baseline is skipped (it has no
reference to regress against).
"""

from __future__ import annotations

import argparse
import json
import sys


def _index(payload: dict) -> dict:
    """``{(workers, backend): ratings_per_s}`` from a bench JSON."""
    table = {}
    for entry in payload.get("scaling", []):
        workers = entry["workers"]
        for backend, stats in entry.items():
            if backend == "workers" or not isinstance(stats, dict):
                continue
            table[(workers, backend)] = float(stats["ratings_per_s"])
    return table


def _normalised(table: dict) -> dict:
    """``{(workers, backend): tp / simulate_tp}`` for the real backends."""
    out = {}
    for (workers, backend), tp in table.items():
        if backend == "simulate":
            continue
        serial = table.get((workers, "simulate"))
        if serial and serial > 0:
            out[(workers, backend)] = tp / serial
    return out


def compare(baseline: dict, current: dict, max_drop: float) -> int:
    cur_raw = _index(current)
    base = _normalised(_index(baseline))
    cur = _normalised(cur_raw)
    if not cur:
        print("error: current run contains no comparable scaling measurements")
        return 1
    for (workers, backend), tp in sorted(cur_raw.items()):
        if backend == "simulate":
            print(f"  normaliser simulate @ {workers}w: {tp:.0f} ratings/s")
    failures = []
    for key in sorted(cur):
        workers, backend = key
        if key not in base:
            print(
                f"  (new)    {backend} @ {workers}w: {cur[key]:.2f}x of serial "
                "(no baseline, skipped)"
            )
            continue
        ratio = cur[key] / base[key] if base[key] > 0 else float("inf")
        status = "ok" if ratio >= 1.0 - max_drop else "REGRESSED"
        print(
            f"  {status:>9} {backend} @ {workers}w: {cur[key]:.2f}x of serial "
            f"vs baseline {base[key]:.2f}x ({ratio:.2f} of baseline)"
        )
        if status == "REGRESSED":
            failures.append((workers, backend, ratio))
    if failures:
        print(
            f"\nperf regression: {len(failures)} backend(s) dropped more than "
            f"{max_drop:.0%} below the committed baseline (serial-normalised)"
        )
        return 1
    print("\nno backend regressed beyond the threshold")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed BENCH_exec.json")
    parser.add_argument("--current", required=True, help="freshly measured run")
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.30,
        help=(
            "maximum tolerated fractional drop of serial-normalised "
            "ratings/s (default 0.30)"
        ),
    )
    args = parser.parse_args(argv)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(args.current, encoding="utf-8") as handle:
        current = json.load(handle)
    print(
        f"baseline: {args.baseline} "
        f"({baseline.get('hardware', {}).get('usable_cores', '?')} cores); "
        f"current: {args.current} "
        f"({current.get('hardware', {}).get('usable_cores', '?')} cores)"
    )
    return compare(baseline, current, args.max_drop)


if __name__ == "__main__":
    sys.exit(main())
