"""Thresholded perf-regression guard over the scaling and serving benchmarks.

Compares a freshly measured run against a committed baseline and
**fails** (exit 1) when any measured configuration dropped more than
``--max-drop`` (default 30%) below the baseline.  The payload kind is
auto-detected:

* **execution scaling** (``BENCH_exec.json`` /
  ``bench_backend_scaling.py``): each real backend's ratings/s at each
  worker count, **normalised by the same run's serial-simulator
  ratings/s** — the simulator executes the identical kernels inline, so
  dividing by it cancels machine-speed and load differences between the
  baseline host and the CI runner;
* **serving throughput** (``BENCH_serve.json`` / ``bench_serving.py``):
  each ``(batch_size, chunk_items)`` configuration's users/s,
  **normalised by the same run's naive full-matmul users/s** — pure
  BLAS + selection with no serving-layer logic, the serving analogue of
  the simulator normaliser;
* **streaming fold-in** (``BENCH_stream.json`` / ``bench_stream.py``):
  each newcomer-batch size's batched fold-in users/s, **normalised by
  the same run's naive per-user solve loop** (the payload's
  ``speedup_vs_naive``);
* **HTTP service** (``BENCH_service.json`` / ``bench_service.py``): each
  closed-loop client level's achieved requests/s, **normalised by the
  same run's direct in-process RecommendationService users/s** — the
  identical scoring work without HTTP, processes or queueing, so the
  ratio isolates the front door's own overhead from runner speed;
* **approximate retrieval** (the ``ann_frontier`` section that
  ``bench_serving.py`` merges into ``BENCH_serve.json``): each nprobe
  point's ANN users/s, **normalised by the same run's naive full-matmul
  users/s**, plus a *hard* recall gate — the measured recall@K at the
  accepted operating point must stay at or above the payload's
  ``recall_floor``.  Recall is a property of the (deterministic, seeded)
  index build, not of machine speed, so it is an absolute bound rather
  than a drop-relative one;
* **autotuning** (``BENCH_tune.json`` / ``repro tune --bench-out``): two
  *hard* gates plus one relative one.  Hard: every gated probe section's
  mean prediction error (``|predicted - measured| / measured``) must
  stay within the ``error_budget`` the payload itself carries — the
  fitted cost models predicting the machine they were fitted on is an
  absolute property, like ANN recall — and the run's ``acceptance.met``
  must hold (every resolved knob measured no slower than the hand-picked
  default it replaces).  Relative: each section's default-over-resolved
  time ratio is compared against the baseline with ``--max-drop``; both
  times come from the same run on the same machine, so the ratio is its
  own normaliser.  The ``backend`` section is report-only: linear
  scaling mispredicting GIL-bound threads is the Table II finding, not a
  regression.

A payload may carry several sections (``BENCH_serve.json`` holds both
``serving`` and ``ann_frontier``); every section present in *both* the
baseline and the current run is compared, and any one failing fails the
guard.

Either way the guard catches exactly what it exists to catch: the
subsystem becoming slower *relative to the same work done the obvious
way on the same machine* (a new copy on the hot path, lock contention, a
lost fast path).  A global slowdown that hits baseline and subsystem
equally is covered elsewhere (``BENCH_kernels.json``, the tier-1 suite);
normaliser rows are reported but never gated.

Usage (what the CI perf-guard job runs)::

    REPRO_BENCH_WORKERS=2 REPRO_BENCH_OUT=bench_current.json \\
        python -m pytest benchmarks/bench_backend_scaling.py \\
        -k scaling_curve -q -s
    python benchmarks/check_perf_regression.py \\
        --baseline BENCH_exec.json --current bench_current.json

    REPRO_BENCH_SERVE_OUT=bench_serve_current.json \\
        python -m pytest benchmarks/bench_serving.py -q -s
    python benchmarks/check_perf_regression.py \\
        --baseline BENCH_serve.json --current bench_serve_current.json

Improvements and new configurations are reported but never fail; a
configuration missing from the baseline is skipped (it has no reference
to regress against).
"""

from __future__ import annotations

import argparse
import json
import sys


def _index(payload: dict) -> dict:
    """``{(workers, backend): ratings_per_s}`` from a scaling bench JSON."""
    table = {}
    for entry in payload.get("scaling", []):
        workers = entry["workers"]
        for backend, stats in entry.items():
            if backend == "workers" or not isinstance(stats, dict):
                continue
            table[(workers, backend)] = float(stats["ratings_per_s"])
    return table


def _normalised(table: dict) -> dict:
    """``{(workers, backend): tp / simulate_tp}`` for the real backends."""
    out = {}
    for (workers, backend), tp in table.items():
        if backend == "simulate":
            continue
        serial = table.get((workers, "simulate"))
        if serial and serial > 0:
            out[(workers, backend)] = tp / serial
    return out


def _normalised_serving(payload: dict) -> dict:
    """``{(batch, chunk): users_per_s / full_matmul_users_per_s}``."""
    reference = float(
        payload.get("baselines", {}).get("full_matmul_users_per_s", 0.0)
    )
    out = {}
    if reference <= 0:
        return out
    for entry in payload.get("serving", []):
        key = (int(entry["batch_size"]), int(entry["chunk_items"]))
        out[key] = float(entry["users_per_s"]) / reference
    return out


def _report(base: dict, cur: dict, labeller, unit: str, max_drop: float) -> list:
    """Print the per-configuration comparison; return the failures."""
    failures = []
    for key in sorted(cur):
        label = labeller(key)
        if key not in base:
            print(
                f"  (new)    {label}: {cur[key]:.2f}x of {unit} "
                "(no baseline, skipped)"
            )
            continue
        ratio = cur[key] / base[key] if base[key] > 0 else float("inf")
        status = "ok" if ratio >= 1.0 - max_drop else "REGRESSED"
        print(
            f"  {status:>9} {label}: {cur[key]:.2f}x of {unit} "
            f"vs baseline {base[key]:.2f}x ({ratio:.2f} of baseline)"
        )
        if status == "REGRESSED":
            failures.append((key, ratio))
    return failures


def compare_scaling(baseline: dict, current: dict, max_drop: float) -> int:
    cur_raw = _index(current)
    base = _normalised(_index(baseline))
    cur = _normalised(cur_raw)
    if not cur:
        print("error: current run contains no comparable scaling measurements")
        return 1
    for (workers, backend), tp in sorted(cur_raw.items()):
        if backend == "simulate":
            print(f"  normaliser simulate @ {workers}w: {tp:.0f} ratings/s")
    failures = _report(
        base,
        cur,
        lambda key: f"{key[1]} @ {key[0]}w",
        "serial",
        max_drop,
    )
    if failures:
        print(
            f"\nperf regression: {len(failures)} backend(s) dropped more than "
            f"{max_drop:.0%} below the committed baseline (serial-normalised)"
        )
        return 1
    print("\nno backend regressed beyond the threshold")
    return 0


def compare_serving(baseline: dict, current: dict, max_drop: float) -> int:
    base = _normalised_serving(baseline)
    cur = _normalised_serving(current)
    if not cur:
        print("error: current run contains no comparable serving measurements")
        return 1
    reference = current.get("baselines", {}).get("full_matmul_users_per_s")
    print(f"  normaliser full-matmul: {reference} users/s")
    failures = _report(
        base,
        cur,
        lambda key: f"batch {key[0]} x chunk {key[1]}",
        "full-matmul",
        max_drop,
    )
    if failures:
        print(
            f"\nperf regression: {len(failures)} serving configuration(s) "
            f"dropped more than {max_drop:.0%} below the committed baseline "
            "(full-matmul-normalised)"
        )
        return 1
    print("\nno serving configuration regressed beyond the threshold")
    return 0


def _normalised_stream(payload: dict) -> dict:
    """``{batch_users: users_per_s / naive_users_per_s}``."""
    out = {}
    for entry in payload.get("fold_in", []):
        naive = float(entry.get("naive_users_per_s", 0.0))
        if naive > 0:
            out[int(entry["batch_users"])] = (
                float(entry["users_per_s"]) / naive
            )
    return out


def compare_stream(baseline: dict, current: dict, max_drop: float) -> int:
    base = _normalised_stream(baseline)
    cur = _normalised_stream(current)
    if not cur:
        print("error: current run contains no comparable fold-in measurements")
        return 1
    for entry in current.get("fold_in", []):
        print(
            f"  normaliser naive loop @ {entry['batch_users']}: "
            f"{entry['naive_users_per_s']} users/s"
        )
    failures = _report(
        base,
        cur,
        lambda key: f"fold-in batch {key}",
        "naive loop",
        max_drop,
    )
    if failures:
        print(
            f"\nperf regression: {len(failures)} fold-in batch size(s) "
            f"dropped more than {max_drop:.0%} below the committed baseline "
            "(naive-loop-normalised)"
        )
        return 1
    print("\nno fold-in batch size regressed beyond the threshold")
    return 0


def _normalised_service(payload: dict) -> dict:
    """``{clients: achieved_qps / direct_users_per_s}``."""
    direct = float(payload.get("baselines", {}).get("direct_users_per_s", 0.0))
    out = {}
    if direct <= 0:
        return out
    for entry in payload.get("service", {}).get("closed_loop", []):
        out[int(entry["clients"])] = float(entry["achieved_qps"]) / direct
    return out


def compare_service(baseline: dict, current: dict, max_drop: float) -> int:
    base = _normalised_service(baseline)
    cur = _normalised_service(current)
    if not cur:
        print("error: current run contains no comparable service measurements")
        return 1
    direct = current.get("baselines", {}).get("direct_users_per_s")
    print(f"  normaliser direct in-process serving: {direct} users/s")
    failures = _report(
        base,
        cur,
        lambda key: f"closed loop x{key}",
        "direct serving",
        max_drop,
    )
    if failures:
        print(
            f"\nperf regression: {len(failures)} closed-loop level(s) "
            f"dropped more than {max_drop:.0%} below the committed baseline "
            "(direct-serving-normalised)"
        )
        return 1
    print("\nno closed-loop level regressed beyond the threshold")
    return 0


def _normalised_ann(payload: dict) -> dict:
    """``{nprobe: users_per_s / full_matmul_users_per_s}``."""
    section = payload.get("ann_frontier", {})
    reference = float(section.get("full_matmul_users_per_s", 0.0))
    out = {}
    if reference <= 0:
        return out
    for entry in section.get("frontier", []):
        out[int(entry["nprobe"])] = float(entry["users_per_s"]) / reference
    return out


def compare_ann(baseline: dict, current: dict, max_drop: float) -> int:
    base = _normalised_ann(baseline)
    cur = _normalised_ann(current)
    if not cur:
        print("error: current run contains no comparable ANN measurements")
        return 1
    section = current.get("ann_frontier", {})
    reference = section.get("full_matmul_users_per_s")
    print(f"  normaliser full-matmul: {reference} users/s")
    failures = _report(
        base,
        cur,
        lambda key: f"ann nprobe {key}",
        "full-matmul",
        max_drop,
    )
    # Hard recall gate, independent of machine speed: the index build is
    # seeded and deterministic, so recall at the accepted operating point
    # is an absolute bound, not a drop-relative one.
    floor = float(section.get("recall_floor", 0.0))
    accept = section.get("acceptance", {}).get("accept_point") or {}
    recall = accept.get("recall_at_k")
    if recall is None:
        print("  RECALL GATE: no accept point in current run")
        failures.append(("recall", 0.0))
    elif float(recall) < floor:
        print(
            f"  RECALL GATE: recall@K {float(recall):.4f} at "
            f"nprobe {accept.get('nprobe')} is below the floor {floor}"
        )
        failures.append(("recall", float(recall)))
    else:
        print(
            f"  recall gate ok: recall@K {float(recall):.4f} at "
            f"nprobe {accept.get('nprobe')} >= floor {floor}"
        )
    if failures:
        print(
            f"\nperf regression: {len(failures)} ANN check(s) failed "
            f"(throughput drop > {max_drop:.0%} full-matmul-normalised, "
            "or recall below the floor)"
        )
        return 1
    print("\nno ANN operating point regressed beyond the threshold")
    return 0


def _tune_speedups(payload: dict) -> dict:
    """``{section: default_s / resolved_s}`` from a tune payload.

    >= 1.0 by construction (the resolver falls back to the default when
    it measured faster); both times come from the same run on the same
    machine, so the ratio needs no external normaliser.
    """
    out = {}
    sections = payload.get("tune", {}).get("acceptance", {}).get("sections", {})
    for name, acc in sections.items():
        resolved = float(acc.get("resolved_s", 0.0))
        default = float(acc.get("default_s", 0.0))
        if resolved > 0 and default > 0:
            out[name] = default / resolved
    return out


def compare_tune(baseline: dict, current: dict, max_drop: float) -> int:
    report = current.get("tune", {})
    sections = report.get("sections", {})
    if not sections:
        print("error: current run contains no tune probe sections")
        return 1
    failures = []
    # Hard gate 1: every gated section's cost model must predict the
    # machine it was fitted on within its own declared budget.
    for name in sorted(sections):
        section = sections[name]
        error = float(section.get("predict_error", 0.0))
        budget = section.get("error_budget")
        if not section.get("gated", False) or budget is None:
            print(f"  report-only {name}: predict error {error:.1%}")
            continue
        budget = float(budget)
        if error > budget:
            print(
                f"  ERROR BUDGET {name}: predict error {error:.1%} "
                f"exceeds the budget {budget:.0%}"
            )
            failures.append((name, error))
        else:
            print(
                f"  error budget ok {name}: predict error {error:.1%} "
                f"<= budget {budget:.0%}"
            )
    # Hard gate 2: no resolved knob may have measured slower than the
    # hand-picked default it replaces.
    acceptance = report.get("acceptance", {})
    if acceptance.get("met"):
        print("  acceptance ok: resolved knobs measured no slower than defaults")
    else:
        slower = [
            name
            for name, acc in acceptance.get("sections", {}).items()
            if not acc.get("ok")
        ]
        print(f"  ACCEPTANCE: resolved config measured slower than defaults {slower}")
        failures.append(("acceptance", 0.0))
    # Relative gate: the tuning win itself must not silently erode.
    failures += _report(
        _tune_speedups(baseline),
        _tune_speedups(current),
        lambda key: f"tuning win {key}",
        "default config",
        max_drop,
    )
    if failures:
        print(
            f"\nperf regression: {len(failures)} autotune check(s) failed "
            "(prediction error over budget, resolved config slower than "
            f"defaults, or tuning win down more than {max_drop:.0%})"
        )
        return 1
    print("\nno autotune check regressed beyond the threshold")
    return 0


_COMPARATORS = (
    ("scaling", "execution scaling", compare_scaling),
    ("serving", "serving throughput", compare_serving),
    ("fold_in", "streaming fold-in", compare_stream),
    ("service", "HTTP service", compare_service),
    ("ann_frontier", "approximate retrieval", compare_ann),
    ("tune", "autotune cost-model fidelity", compare_tune),
)


def compare(baseline: dict, current: dict, max_drop: float) -> int:
    """Run every comparator whose section both payloads carry."""
    worst = 0
    ran = []
    for key, title, comparator in _COMPARATORS:
        if key in baseline and key in current:
            if ran:
                print()
            print(f"== {title} ==")
            worst = max(worst, comparator(baseline, current, max_drop))
            ran.append(key)
    if not ran:
        print(
            "error: baseline and current share no comparable section; "
            "expected both to carry at least one of "
            f"{[key for key, _, _ in _COMPARATORS]}"
        )
        return 1
    return worst


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        required=True,
        help="committed BENCH_exec.json or BENCH_serve.json",
    )
    parser.add_argument("--current", required=True, help="freshly measured run")
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.30,
        help=(
            "maximum tolerated fractional drop of serial-normalised "
            "ratings/s (default 0.30)"
        ),
    )
    args = parser.parse_args(argv)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(args.current, encoding="utf-8") as handle:
        current = json.load(handle)
    print(
        f"baseline: {args.baseline} "
        f"({baseline.get('hardware', {}).get('usable_cores', '?')} cores); "
        f"current: {args.current} "
        f"({current.get('hardware', {}).get('usable_cores', '?')} cores)"
    )
    return compare(baseline, current, args.max_drop)


if __name__ == "__main__":
    sys.exit(main())
