"""Tests of the experiment harness and the command-line interface.

These use tiny contexts so the whole file stays fast while still running
the real experiment code paths end to end.
"""

import pytest

from repro.cli import main
from repro.datasets import get_dataset
from repro.experiments import (
    ExperimentContext,
    ablation_alpha_sensitivity,
    ablation_column_rule,
    ablation_stream_overlap,
    example3_update_imbalance,
    figure3_block_throughput,
    figure6_transfer_speed,
    figure7_kernel_throughput,
    observation_block_sensitivity,
    table1_datasets,
    table2_cost_models,
    table3_dynamic_scheduling,
)
from repro.experiments.convergence import figure13_division_ablation
from repro.experiments.runs import run_algorithm
from repro.experiments.tables import render_table1


@pytest.fixture(scope="module")
def tiny_context():
    """A context small enough for unit tests: one dataset, few iterations."""
    context = ExperimentContext.quick(datasets=["movielens"])
    context.iterations = 4
    context.max_iterations = 12
    context.cpu_threads = 8
    return context


class TestDeviceExperiments:
    def test_figure3_shapes(self):
        gpu, cpu = figure3_block_throughput()
        gpu_values = gpu.values()
        cpu_values = cpu.values()
        # Observation 1: GPU throughput rises with block size.
        assert gpu_values[-1] > 1.5 * gpu_values[0]
        assert all(b >= a for a, b in zip(gpu_values, gpu_values[1:]))
        # Observation 2: CPU throughput flat.
        assert max(cpu_values) == pytest.approx(min(cpu_values), rel=0.05)
        assert "Mpts/s" in gpu.render()

    def test_figure6_shapes(self):
        h2d, d2h = figure6_transfer_speed()
        assert h2d.values()[-1] > 2 * h2d.values()[0]
        assert d2h.values()[-1] <= h2d.values()[-1] + 1e-9
        assert len(h2d.points) == 13

    def test_figure7_kernel_throughput(self):
        series = figure7_kernel_throughput()
        values = series.values()
        assert values[-1] > values[0]
        assert all(v > 0 for v in values)

    def test_observation_summary(self):
        sensitivity = observation_block_sensitivity()
        assert sensitivity.observation1_holds
        assert sensitivity.observation2_holds


class TestTableExperiments:
    def test_table1_matches_registry(self):
        rows = table1_datasets()
        assert [row.name for row in rows] == [
            "movielens", "netflix", "r1", "yahoomusic",
        ]
        yahoo = rows[-1]
        assert yahoo.paper_training == get_dataset("yahoomusic").paper.n_training
        assert yahoo.synthetic_training > 0
        assert "lambda_P" in render_table1(rows)

    def test_table2_cost_model_comparison(self, tiny_context):
        comparisons = table2_cost_models(tiny_context, iterations=3)
        assert len(comparisons) == 1
        entry = comparisons[0]
        assert set(entry.running_time) == {"HSGD*-Q", "HSGD*-M"}
        for variant in entry.running_time:
            assert entry.running_time[variant] > 0
            assert entry.cpu_share[variant] + entry.gpu_share[variant] == pytest.approx(1.0)
        assert "HSGD*-M" in entry.render()

    def test_table3_dynamic_scheduling(self, tiny_context):
        comparisons = table3_dynamic_scheduling(tiny_context, iterations=3)
        entry = comparisons[0]
        assert entry.static_time > 0
        assert entry.dynamic_time > 0
        assert "improvement" in entry.render()


class TestRuntimeAndConvergenceExperiments:
    def test_run_algorithm_target_mode(self, tiny_context):
        target = get_dataset("movielens").target_rmse
        result = run_algorithm(
            tiny_context, "movielens", "hsgd_star", target_rmse=target
        )
        assert result.converged
        assert result.trace.target_reached_at is not None

    def test_figure13_quality_gap(self, tiny_context):
        outcomes = figure13_division_ablation(tiny_context)
        outcome = outcomes[0]
        assert set(outcome.curves) == {"hsgd", "hsgd_star"}
        assert outcome.final_rmse("hsgd_star") <= outcome.final_rmse("hsgd") + 0.02
        assert "hsgd" in outcome.render()

    def test_example3_imbalance_direction(self, tiny_context):
        stats = example3_update_imbalance(tiny_context, dataset="movielens", iterations=3)
        assert stats["hsgd"]["cv"] > stats["hsgd_star"]["cv"]


class TestAblations:
    def test_alpha_sensitivity_prefers_cost_model_region(self, tiny_context):
        result = ablation_alpha_sensitivity(
            tiny_context, dataset="movielens", alphas=(0.1, 0.7), iterations=3
        )
        assert "cost-model" in result.times
        assert result.times["cost-model"] <= result.times["alpha=0.70"]

    def test_column_rule_ablation_runs(self, tiny_context):
        result = ablation_column_rule(
            tiny_context, dataset="movielens", column_scales=(1.0, 2.0), iterations=3
        )
        assert len(result.times) == 2
        assert all(time > 0 for time in result.times.values())

    def test_stream_overlap_helps(self, tiny_context):
        results = ablation_stream_overlap(
            tiny_context, datasets=["movielens"], iterations=3
        )
        entry = results[0]
        assert entry.times["overlapped"] <= entry.times["serial"]


class TestContext:
    def test_quick_and_full_profiles(self):
        quick = ExperimentContext.quick()
        full = ExperimentContext.full()
        assert quick.iterations < full.iterations
        assert len(full.gpu_worker_sweep) == 5
        assert full.cpu_thread_sweep[-1] == 16

    def test_hardware_overrides(self):
        context = ExperimentContext()
        hardware = context.hardware(cpu_threads=4, gpu_parallel_workers=256)
        assert hardware.cpu_threads == 4
        assert hardware.gpu_parallel_workers == 256
        default = context.hardware()
        assert default.cpu_threads == 16


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "hsgd_star" in output
        assert "figure10" in output

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 1
        assert "usage: repro" in capsys.readouterr().out

    def test_train_command(self, capsys):
        code = main([
            "train", "--dataset", "movielens", "--algorithm", "hsgd",
            "--iterations", "2", "--cpu-threads", "4",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "final test RMSE" in output
        assert "simulated time" in output

    def test_train_reports_stopping_condition(self, capsys):
        code = main([
            "train", "--dataset", "movielens", "--algorithm", "hsgd",
            "--iterations", "2", "--cpu-threads", "4",
        ])
        assert code == 0
        assert "stopped because    : iteration cap reached" in capsys.readouterr().out

    def test_train_target_rmse_flag(self, capsys):
        code = main([
            "train", "--dataset", "movielens", "--algorithm", "hsgd_star",
            "--iterations", "50", "--cpu-threads", "4", "--target-rmse", "0.9",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "stopped because    : target RMSE reached" in output

    def test_train_max_time_flag(self, capsys):
        code = main([
            "train", "--dataset", "movielens", "--algorithm", "hsgd",
            "--iterations", "50", "--cpu-threads", "4", "--max-time", "1e-9",
        ])
        assert code == 0
        assert "stopped because    : time budget exhausted" in capsys.readouterr().out

    def test_train_early_stop_flag(self, capsys):
        code = main([
            "train", "--dataset", "movielens", "--algorithm", "hsgd",
            "--iterations", "50", "--cpu-threads", "4",
            "--early-stop-patience", "1", "--early-stop-min-delta", "10.0",
        ])
        assert code == 0
        assert "stopped because    : early stopping" in capsys.readouterr().out

    def test_train_checkpoint_resume_and_jsonl(self, capsys, tmp_path):
        import json

        ckpt = str(tmp_path / "cli-ckpt")
        log = str(tmp_path / "cli-log.jsonl")
        assert main([
            "train", "--dataset", "movielens", "--algorithm", "hsgd_star",
            "--iterations", "2", "--cpu-threads", "4",
            "--checkpoint", ckpt, "--log-jsonl", log,
        ]) == 0
        capsys.readouterr()
        assert main([
            "train", "--dataset", "movielens", "--algorithm", "hsgd_star",
            "--iterations", "4", "--cpu-threads", "4",
            "--resume", ckpt + ".npz", "--log-jsonl", log,
        ]) == 0
        output = capsys.readouterr().out
        assert "resumed from" in output
        assert "iterations         : 4" in output
        # The resumed run appends, so the combined trajectory survives.
        lines = [json.loads(line) for line in open(log, encoding="utf-8")]
        assert [l["epoch"] for l in lines if l["event"] == "epoch"] == [0, 1, 2, 3]
        assert lines[-1]["event"] == "end"

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        assert "movielens" in capsys.readouterr().out

    def test_figure3_command(self, capsys):
        assert main(["figure3"]) == 0
        assert "gpu-update-speed" in capsys.readouterr().out
