"""The autotuning loop: profiles, "auto" resolution, probes, CI gate.

Four properties carry the PR's guarantees:

1. **No-profile behaviour is pinned bitwise-unchanged**: with no active
   profile every ``"auto"`` knob resolves exactly as it did before
   autotuning existed (``resolve_backend_name``'s heuristic matrix,
   ``minibatch_local``, ``DEFAULT_BATCH_SIZE``, ``DEFAULT_CHUNK_ITEMS``,
   the fold-in Gram constant) — and passing ``profile=None`` explicitly
   forces that path even when a profile *is* installed.
2. **Profiles round-trip exactly** through JSON (``loads(dumps(p)) ==
   p``) and reject malformed payloads loudly.
3. **Profiles change speed, never results**: the fold-in solver is
   bitwise-identical across Gram-chunk ceilings, the scorer across
   chunk widths, and a profile can never pin the ``sequential`` kernel.
4. **The CI gate bites**: ``compare_tune`` fails on error-budget
   breaches, on ``acceptance.met`` false, and on relative tuning-win
   erosion — and passes a healthy payload.
"""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.config import DEFAULT_BATCH_SIZE, TrainingConfig
from repro.exceptions import ConfigurationError
from repro.exec import process_backend_supported, resolve_backend_name
from repro.serve.bench import synthetic_model
from repro.serve.scorer import DEFAULT_CHUNK_ITEMS, Scorer
from repro.serve.service import DEFAULT_SERVICE_BATCH, RecommendationService
from repro.service.server import ServiceConfig
from repro.sgd.foldin import _GRAM_CHUNK_ELEMENTS
from repro.sgd.kernels import resolve_kernel_name
from repro.tune import (
    AUTO,
    ServingTunables,
    StreamTunables,
    TrainingTunables,
    TunedProfile,
    active_profile,
    resolve_foldin_batch_users,
    resolve_foldin_gram_chunk,
    resolve_serving_chunk_items,
    resolve_training_batch_size,
    resolve_workers,
    run_tune,
    set_active_profile,
    use_profile,
)

_REPO = os.path.join(os.path.dirname(__file__), "..")


def _load_script(name):
    """Import a benchmarks/ script as a module (the dir is not a package)."""
    path = os.path.join(_REPO, "benchmarks", f"{name}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(autouse=True)
def _no_leaked_profile():
    """Every test starts and ends with no active profile."""
    set_active_profile(None)
    yield
    set_active_profile(None)


@pytest.fixture
def profile():
    """A hand-built profile whose every knob differs from the defaults."""
    return TunedProfile(
        fingerprint={"machine": "testbox"},
        training=TrainingTunables(
            backend="processes", workers=4, batch_size=1024, kernel="minibatch"
        ),
        serving=ServingTunables(chunk_items=2048, batch_size=128),
        stream=StreamTunables(gram_chunk_elements=750_000, foldin_batch_users=64),
        predict_error={"costmodel": 0.05},
        alpha=0.4,
    )


# --------------------------------------------------------------------------- #
# Round-trip and validation
# --------------------------------------------------------------------------- #
class TestProfileSerialization:
    def test_default_profile_round_trips(self):
        p = TunedProfile()
        assert TunedProfile.loads(p.dumps()) == p

    def test_populated_profile_round_trips(self, profile):
        assert TunedProfile.loads(profile.dumps()) == profile

    def test_file_round_trip(self, profile, tmp_path):
        path = tmp_path / "profile.json"
        profile.dump(path)
        assert TunedProfile.load(path) == profile

    def test_dump_is_plain_json(self, profile, tmp_path):
        path = tmp_path / "profile.json"
        profile.dump(path)
        payload = json.loads(path.read_text())
        assert payload["training"]["backend"] == "processes"
        assert payload["schema_version"] == 1

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fields"):
            TunedProfile.from_dict({"nonsense": 1})

    def test_wrong_schema_version_rejected(self):
        with pytest.raises(ConfigurationError, match="schema version"):
            TunedProfile.from_dict({"schema_version": 99})

    def test_malformed_nested_section_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed profile"):
            TunedProfile.from_dict({"training": {"no_such_knob": 3}})

    def test_non_json_rejected(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            TunedProfile.loads("{")

    def test_profile_rejects_auto_backend(self):
        with pytest.raises(ConfigurationError, match="concrete backend"):
            TrainingTunables(backend="auto")

    def test_profile_rejects_sequential_kernel(self):
        # ``sequential`` is a numerical contract, not a speed choice; a
        # profile pinning it would change training results.
        with pytest.raises(ConfigurationError, match="kernel"):
            TrainingTunables(kernel="sequential")

    def test_profile_rejects_nonpositive_knobs(self):
        with pytest.raises(ConfigurationError):
            TrainingTunables(workers=0)
        with pytest.raises(ConfigurationError):
            ServingTunables(chunk_items=-1)
        with pytest.raises(ConfigurationError):
            StreamTunables(gram_chunk_elements=0)

    def test_set_active_profile_type_checked(self):
        with pytest.raises(ConfigurationError, match="TunedProfile"):
            set_active_profile({"training": {}})

    def test_use_profile_restores_previous(self, profile):
        assert active_profile() is None
        with use_profile(profile):
            assert active_profile() is profile
            with use_profile(None):
                assert active_profile() is None
            assert active_profile() is profile
        assert active_profile() is None


# --------------------------------------------------------------------------- #
# The pinned no-profile path
# --------------------------------------------------------------------------- #
class TestNoProfilePinning:
    """The pre-autotuning behaviour, asserted value by value.

    These mirror (and extend) the resolution matrix pinned in
    ``test_process_backend.py`` — if autotuning ever changes a
    no-profile default, one of these fails.
    """

    def test_backend_heuristic_unchanged(self):
        assert resolve_backend_name("auto", n_workers=4) == "processes"
        assert resolve_backend_name("auto", n_workers=1) == "threads"
        assert resolve_backend_name("auto", n_workers=None) == "threads"
        assert (
            resolve_backend_name("auto", n_workers=4, use_block_store=False)
            == "threads"
        )
        assert resolve_backend_name("simulate", n_workers=8) == "simulate"

    def test_explicit_none_profile_forces_heuristic(self, profile):
        # Even with a profile installed, profile=None pins the legacy
        # path bitwise — the escape hatch callers rely on.
        with use_profile(profile):
            assert resolve_backend_name("auto", n_workers=1, profile=None) == "threads"
            assert (
                resolve_backend_name("auto", n_workers=4, profile=None) == "processes"
            )
            assert (
                resolve_backend_name(
                    "auto", n_workers=4, use_block_store=False, profile=None
                )
                == "threads"
            )

    def test_kernel_default_unchanged(self):
        assert resolve_kernel_name("auto") == "minibatch_local"
        assert resolve_kernel_name("auto", exact_kernel=True) == "sequential"

    def test_training_batch_default_unchanged(self):
        assert TrainingConfig().effective_batch_size == DEFAULT_BATCH_SIZE
        assert TrainingConfig(batch_size=AUTO).effective_batch_size == DEFAULT_BATCH_SIZE
        assert resolve_training_batch_size(None) == DEFAULT_BATCH_SIZE
        assert resolve_training_batch_size(AUTO) == DEFAULT_BATCH_SIZE
        assert resolve_training_batch_size(96) == 96

    def test_serving_defaults_unchanged(self):
        model = synthetic_model(40, 60, 4, seed=0)
        assert Scorer(model).chunk_items == DEFAULT_CHUNK_ITEMS
        assert Scorer(model, chunk_items=AUTO).chunk_items == DEFAULT_CHUNK_ITEMS
        service = RecommendationService(model, batch_size=AUTO, chunk_items=AUTO)
        assert service.batch_size == DEFAULT_SERVICE_BATCH
        config = ServiceConfig(batch_size=AUTO, chunk_items=AUTO)
        assert config.batch_size == DEFAULT_SERVICE_BATCH
        assert config.chunk_items == DEFAULT_CHUNK_ITEMS

    def test_foldin_defaults_unchanged(self):
        assert resolve_foldin_gram_chunk(_GRAM_CHUNK_ELEMENTS) == _GRAM_CHUNK_ELEMENTS
        assert resolve_foldin_batch_users(512) == 512

    def test_workers_default_passthrough(self):
        assert resolve_workers(None, 16) == 16
        assert resolve_workers(AUTO, 16) == 16
        assert resolve_workers(3, 16) == 3

    def test_auto_strings_other_than_auto_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_training_batch_size("fast")
        with pytest.raises(ConfigurationError):
            resolve_serving_chunk_items("big", DEFAULT_CHUNK_ITEMS)
        with pytest.raises(ConfigurationError):
            TrainingConfig(batch_size="fast")


# --------------------------------------------------------------------------- #
# Profile-driven resolution
# --------------------------------------------------------------------------- #
class TestProfileResolution:
    def test_training_knobs_resolve_through_profile(self, profile):
        with use_profile(profile):
            assert TrainingConfig(batch_size=AUTO).effective_batch_size == 1024
            assert resolve_kernel_name("auto") == "minibatch"
            assert resolve_workers(AUTO, 1) == 4
        # Explicit integers always win over the profile.
        with use_profile(profile):
            assert TrainingConfig(batch_size=64).effective_batch_size == 64

    def test_backend_resolves_through_profile_with_legality_bounds(self, profile):
        with use_profile(profile):
            if process_backend_supported():
                assert resolve_backend_name("auto", n_workers=4) == "processes"
            # A multi-worker profile choice still demotes for runs the
            # process backend cannot serve.
            assert resolve_backend_name("auto", n_workers=1) == "threads"
            assert (
                resolve_backend_name("auto", n_workers=4, use_block_store=False)
                == "threads"
            )
            # Concrete names bypass the profile entirely.
            assert resolve_backend_name("simulate", n_workers=8) == "simulate"

    def test_threads_profile_resolves_unconditionally(self):
        threads = TunedProfile(training=TrainingTunables(backend="threads", workers=2))
        with use_profile(threads):
            assert resolve_backend_name("auto", n_workers=8) == "threads"

    def test_serving_knobs_resolve_through_profile(self, profile):
        model = synthetic_model(40, 60, 4, seed=0)
        with use_profile(profile):
            assert Scorer(model, chunk_items=AUTO).chunk_items == 2048
            service = RecommendationService(model, batch_size=AUTO, chunk_items=AUTO)
            assert service.batch_size == 128
            config = ServiceConfig(batch_size=AUTO, chunk_items=AUTO)
            assert config.batch_size == 128
            assert config.chunk_items == 2048
        # Ints pass through untouched under a profile too.
        with use_profile(profile):
            assert Scorer(model, chunk_items=512).chunk_items == 512

    def test_foldin_knobs_resolve_through_profile(self, profile):
        with use_profile(profile):
            assert resolve_foldin_gram_chunk(_GRAM_CHUNK_ELEMENTS) == 750_000
            assert resolve_foldin_batch_users(512) == 64

    def test_explicit_profile_argument_beats_active(self, profile):
        other = TunedProfile(serving=ServingTunables(chunk_items=4096))
        with use_profile(profile):
            assert resolve_serving_chunk_items(AUTO, 8192, profile=other) == 4096


# --------------------------------------------------------------------------- #
# Profiles change speed, never results
# --------------------------------------------------------------------------- #
class TestBitwiseSafety:
    def test_scorer_slates_identical_across_profile_chunking(self, profile):
        model = synthetic_model(60, 500, 8, seed=3)
        users = np.arange(60, dtype=np.int64)
        baseline_ids, baseline_scores = Scorer(model).top_k(users, 10)
        with use_profile(profile):
            tuned = Scorer(model, chunk_items=AUTO)
            assert tuned.chunk_items == 2048
            ids, scores = tuned.top_k(users, 10)
        np.testing.assert_array_equal(ids, baseline_ids)
        np.testing.assert_array_equal(scores, baseline_scores)

    def test_fold_in_identical_across_gram_chunks(self):
        model = synthetic_model(50, 300, 8, seed=5)
        rng = np.random.default_rng(11)
        n = 600
        users = np.repeat(np.arange(50, 80, dtype=np.int64), 20)[:n]
        items = rng.integers(0, 300, size=n, dtype=np.int64)
        vals = rng.uniform(1.0, 5.0, size=n)
        reference_users, reference_rows = model.fold_in_users(users, items, vals)
        for gram in (1_000, 123_456, 8_000_000):
            override = TunedProfile(stream=StreamTunables(gram_chunk_elements=gram))
            with use_profile(override):
                got_users, got_rows = model.fold_in_users(users, items, vals)
            np.testing.assert_array_equal(got_users, reference_users)
            np.testing.assert_array_equal(got_rows, reference_rows)


# --------------------------------------------------------------------------- #
# The probes
# --------------------------------------------------------------------------- #
class TestRunTune:
    def test_quick_tune_end_to_end(self):
        outcome = run_tune(quick=True, seed=0)
        profile = outcome.profile
        # The profile must round-trip and be legal on this machine.
        assert TunedProfile.loads(profile.dumps()) == profile
        assert profile.quick is True
        assert profile.fingerprint["usable_cores"] >= 1
        with use_profile(profile):
            backend = resolve_backend_name("auto", n_workers=None)
            assert backend in ("threads", "processes")
            assert resolve_kernel_name("auto") in ("minibatch", "minibatch_local")
            assert TrainingConfig(batch_size=AUTO).effective_batch_size >= 1
        payload = outcome.payload
        sections = payload["tune"]["sections"]
        assert set(sections) == {
            "costmodel",
            "train_batch",
            "backend",
            "serve_chunk",
            "foldin",
        }
        for name, section in sections.items():
            gated = section["gated"]
            assert gated == (name != "backend")
            if gated:
                assert section["predict_error"] <= section["error_budget"], name
            for probe in section["probes"]:
                assert probe["measured_s"] > 0
        # The acceptance rule guarantees this by construction: resolved
        # knobs fall back to the default whenever the default measured
        # faster.
        assert payload["tune"]["acceptance"]["met"] is True
        assert payload["tune"]["defaults"]["training"]["batch_size"] == (
            DEFAULT_BATCH_SIZE
        )

    def test_section_subset_keeps_default_knobs(self):
        outcome = run_tune(quick=True, seed=0, sections=["serve_chunk"])
        assert list(outcome.payload["tune"]["sections"]) == ["serve_chunk"]
        # Unprobed subsystems keep their documented defaults.
        assert outcome.profile.training.batch_size == DEFAULT_BATCH_SIZE
        assert outcome.profile.training.kernel == "minibatch_local"
        assert outcome.profile.stream.gram_chunk_elements == _GRAM_CHUNK_ELEMENTS

    def test_costmodel_probe_validates_out_of_sample(self):
        outcome = run_tune(quick=True, seed=0, sections=["costmodel"])
        section = outcome.payload["tune"]["sections"]["costmodel"]
        devices = {probe["config"]["device"] for probe in section["probes"]}
        assert devices == {"cpu", "gpu_kernel"}
        assert 0.0 <= section["predict_error"] <= section["error_budget"]
        assert outcome.profile.alpha is not None
        assert 0.0 < outcome.profile.alpha < 1.0


# --------------------------------------------------------------------------- #
# The CI gate
# --------------------------------------------------------------------------- #
def _tune_payload(
    predict_error=0.05,
    budget=0.35,
    acceptance_ok=True,
    default_s=1.2,
    resolved_s=1.0,
):
    return {
        "schema_version": 1,
        "hardware": {"usable_cores": 1},
        "tune": {
            "sections": {
                "costmodel": {
                    "gated": True,
                    "error_budget": budget,
                    "predict_error": predict_error,
                    "probes": [],
                },
                "backend": {
                    "gated": False,
                    "error_budget": None,
                    "predict_error": 0.9,
                    "probes": [],
                },
            },
            "acceptance": {
                "sections": {
                    "train_batch": {
                        "default_s": default_s,
                        "resolved_s": resolved_s,
                        "ok": acceptance_ok,
                    }
                },
                "met": acceptance_ok,
            },
        },
    }


class TestCompareTune:
    @pytest.fixture(scope="class")
    def checker(self):
        return _load_script("check_perf_regression")

    def test_healthy_payload_passes(self, checker):
        payload = _tune_payload()
        assert checker.compare_tune(payload, payload, 0.30) == 0

    def test_error_budget_breach_fails(self, checker):
        good, bad = _tune_payload(), _tune_payload(predict_error=0.50)
        assert checker.compare_tune(good, bad, 0.30) == 1

    def test_report_only_section_never_fails(self, checker):
        # The backend section carries a 90% "error" in every payload
        # above; a healthy run still passes because it is ungated.
        payload = _tune_payload()
        assert payload["tune"]["sections"]["backend"]["predict_error"] == 0.9
        assert checker.compare_tune(payload, payload, 0.30) == 0

    def test_acceptance_not_met_fails(self, checker):
        good = _tune_payload()
        bad = _tune_payload(acceptance_ok=False, default_s=1.0, resolved_s=1.4)
        assert checker.compare_tune(good, bad, 0.30) == 1

    def test_tuning_win_erosion_fails(self, checker):
        # Baseline win 2.0x, current 1.0x: a 50% drop trips max_drop=0.3.
        good = _tune_payload(default_s=2.0, resolved_s=1.0)
        flat = _tune_payload(default_s=1.0, resolved_s=1.0)
        assert checker.compare_tune(good, flat, 0.30) == 1
        assert checker.compare_tune(good, flat, 0.60) == 0

    def test_empty_payload_fails(self, checker):
        assert checker.compare_tune({}, {}, 0.30) == 1

    def test_comparator_registered_for_tune_payloads(self, checker):
        assert "tune" in {key for key, _, _ in checker._COMPARATORS}
        payload = _tune_payload()
        # End-to-end through compare(): the tune section is auto-detected.
        assert checker.compare(payload, payload, 0.30) == 0

    def test_committed_baseline_passes_its_own_gate(self, checker):
        path = os.path.join(_REPO, "BENCH_tune.json")
        if not os.path.exists(path):
            pytest.skip("BENCH_tune.json not generated yet")
        with open(path) as handle:
            payload = json.load(handle)
        assert checker.compare_tune(payload, payload, 0.50) == 0


class TestCheckTunedProfileScript:
    def test_accepts_a_fresh_profile(self, tmp_path):
        outcome = run_tune(quick=True, seed=0, sections=["serve_chunk"])
        path = tmp_path / "profile.json"
        outcome.profile.dump(path)
        checker = _load_script("check_tuned_profile")
        assert checker.check_profile(str(path)) == 0

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text("{}")
        checker = _load_script("check_tuned_profile")
        # An empty profile round-trips but was not calibrated here.
        profile = TunedProfile.loads(path.read_text())
        assert profile.fingerprint == {}
        assert checker.check_profile(str(path)) == 1


# --------------------------------------------------------------------------- #
# The CLI
# --------------------------------------------------------------------------- #
class TestTuneCli:
    def test_tune_writes_profile_and_bench(self, tmp_path):
        profile_path = tmp_path / "profile.json"
        bench_path = tmp_path / "bench.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(_REPO, "src"), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "tune",
                "--quick",
                "--out",
                str(profile_path),
                "--bench-out",
                str(bench_path),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr
        assert "profile written" in result.stdout
        assert "acceptance         : met" in result.stdout
        profile = TunedProfile.load(profile_path)
        assert TunedProfile.loads(profile.dumps()) == profile
        payload = json.loads(bench_path.read_text())
        assert payload["tune"]["acceptance"]["met"] is True

    def test_profile_flag_resolves_auto_knobs(self, tmp_path):
        # `repro recommend --profile P --chunk-items auto` must accept
        # the profile end to end (recommend with a pre-saved model is
        # the cheapest --profile consumer — no training run).
        profile_path = tmp_path / "profile.json"
        TunedProfile(
            serving=ServingTunables(chunk_items=1024, batch_size=32)
        ).dump(profile_path)
        model_path = tmp_path / "model.npz"
        synthetic_model(30, 40, 4, seed=0).save(model_path)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(_REPO, "src"), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "recommend",
                "--model",
                str(model_path),
                "--users",
                "3",
                "--profile",
                str(profile_path),
                "--chunk-items",
                "auto",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr

    def test_bad_auto_value_rejected_by_argparse(self):
        from repro.cli import _int_or_auto

        assert _int_or_auto("auto") == "auto"
        assert _int_or_auto("128") == 128
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _int_or_auto("fast")


class TestTunePackageSurface:
    """The lazy package facade and validation corners of `repro.tune`."""

    def test_lazy_run_tune_wrapper(self):
        import repro.tune as tune_pkg

        outcome = tune_pkg.run_tune(quick=True, seed=0, sections=("costmodel",))
        assert outcome.profile.alpha is not None
        assert "costmodel" in outcome.payload["tune"]["sections"]

    def test_lazy_tune_outcome_attribute(self):
        import repro.tune as tune_pkg

        from repro.tune.probes import TuneOutcome

        assert tune_pkg.TuneOutcome is TuneOutcome
        with pytest.raises(AttributeError):
            tune_pkg.does_not_exist

    def test_from_dict_rejects_non_object_payload(self):
        with pytest.raises(ConfigurationError):
            TunedProfile.from_dict(["not", "an", "object"])

    def test_full_mode_serve_probe_uses_wider_ladder(self):
        # The non-quick serving sweep probes more (batch, chunk)
        # candidates over larger user pools; the resolved knobs must
        # still be legal and the fit must still validate out of sample.
        outcome = run_tune(quick=False, seed=0, sections=("serve_chunk",))
        section = outcome.payload["tune"]["sections"]["serve_chunk"]
        assert section["predict_error"] >= 0.0
        assert outcome.profile.serving.chunk_items >= 1
        assert outcome.profile.serving.batch_size >= 1
