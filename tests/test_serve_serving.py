"""Model publication, hot-swap lifecycle, and the serving front-end.

The lifecycle tests mirror the process-backend suite: after every
scenario — including hot-swaps and reader processes —
``repro.shm.live_segment_names()`` must be empty and nothing may remain
in ``/dev/shm``.
"""

import multiprocessing

import numpy as np
import pytest

from repro.exceptions import ExecutionError
from repro.serve import (
    ModelStore,
    Recommendation,
    RecommendationService,
    Scorer,
    attach_model,
)
from repro.sgd import FactorModel
from repro.shm import live_segment_names


@pytest.fixture()
def model() -> FactorModel:
    return FactorModel.initialize(30, 21, 4, seed=2)


@pytest.fixture()
def model_b() -> FactorModel:
    return FactorModel.initialize(30, 21, 4, seed=77)


def _assert_no_segments():
    assert live_segment_names() == ()


class TestModelStore:
    def test_publish_acquire_roundtrip(self, model):
        with ModelStore() as store:
            handle = store.publish(model)
            assert handle.version == 1
            assert store.current_version == 1
            with store.acquire() as lease:
                np.testing.assert_array_equal(lease.model.p, model.p)
                np.testing.assert_array_equal(lease.model.q, model.q)
                # Zero-copy views, not copies: the lease maps the
                # published segment, so its buffers are read-only.
                assert not lease.model.p.flags.writeable
                # The published Q preserves the item-major layout
                # contract (contiguous transpose).
                assert lease.model.q.T.flags.c_contiguous
        _assert_no_segments()

    def test_acquire_before_publish_raises(self):
        with ModelStore() as store:
            with pytest.raises(ExecutionError):
                store.acquire()
            with pytest.raises(ExecutionError):
                store.current_handle()
        _assert_no_segments()

    def test_hot_swap_unlinks_unpinned_old_version(self, model, model_b):
        with ModelStore() as store:
            store.publish(model)
            assert store.live_versions == (1,)
            store.publish(model_b)
            # Nothing pinned version 1: it is gone already.
            assert store.live_versions == (2,)
            assert store.current_version == 2
        _assert_no_segments()

    def test_hot_swap_defers_unlink_until_release(self, model, model_b):
        with ModelStore() as store:
            store.publish(model)
            lease = store.acquire()
            store.publish(model_b)
            # Version 1 is retired but pinned by the lease.
            assert store.live_versions == (1, 2)
            old_p = lease.model.p.copy()
            np.testing.assert_array_equal(old_p, model.p)
            lease.release()
            assert store.live_versions == (2,)
            lease.release()  # idempotent
        _assert_no_segments()

    def test_acquire_specific_retired_version(self, model, model_b):
        with ModelStore() as store:
            store.publish(model)
            pin = store.acquire()
            store.publish(model_b)
            with store.acquire(version=1) as lease:
                np.testing.assert_array_equal(lease.model.p, model.p)
            pin.release()
            with pytest.raises(ExecutionError):
                store.acquire(version=1)
        _assert_no_segments()

    def test_close_with_outstanding_lease_raises(self, model):
        store = ModelStore()
        store.publish(model)
        lease = store.acquire()
        with pytest.raises(ExecutionError):
            store.close()
        lease.release()
        store.close()
        store.close()  # idempotent
        _assert_no_segments()

    def test_publish_after_close_raises(self, model):
        store = ModelStore()
        store.close()
        with pytest.raises(ExecutionError):
            store.publish(model)

    def test_reader_process_attaches_one_copy(self, model):
        with ModelStore() as store:
            handle = store.publish(model)
            ctx = multiprocessing.get_context(
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            queue = ctx.Queue()
            proc = ctx.Process(
                target=_reader_check, args=(handle, queue), daemon=True
            )
            proc.start()
            segment_name, top = queue.get(timeout=120)
            proc.join(timeout=60)
            assert proc.exitcode == 0
            # The reader mapped the very segment the store published —
            # one physical copy of the factors.
            assert segment_name == handle.segment
            expected = Scorer(model).top_k_single(3, 5)
            np.testing.assert_array_equal(np.asarray(top), expected)
        _assert_no_segments()

    def test_attach_in_process_is_zero_copy(self, model, model_b):
        with ModelStore() as store:
            store.publish(model)
            attached, segment = attach_model(store.current_handle())
            # Publish v2, then mutate... nothing: the attachment still
            # reads v1's pages even after v1 is retired and unlinked.
            store.publish(model_b)
            np.testing.assert_array_equal(attached.p, model.p)
            attached = None
            segment.close()
        _assert_no_segments()


def _reader_check(handle, queue):
    model, segment = attach_model(handle)
    try:
        top = Scorer(model).top_k_single(3, 5)
        queue.put((segment.name, top.tolist()))
    finally:
        model = None
        segment.close()


class TestRecommendationService:
    def test_plain_model_source(self, model):
        with RecommendationService(model, k=5) as service:
            rec = service.recommend(4)
            assert isinstance(rec, Recommendation)
            assert rec.model_version == 0
            np.testing.assert_array_equal(
                rec.items, Scorer(model).top_k_single(4, 5)
            )

    def test_coalescing_scores_one_batch(self, model):
        with RecommendationService(model, k=5, batch_size=64) as service:
            handles = [service.enqueue(user) for user in range(10)]
            assert not any(h.ready for h in handles)
            scored = service.flush()
            assert scored == 10
            assert service.stats.batches_scored == 1
            assert all(h.ready for h in handles)

    def test_enqueue_autoflushes_at_batch_size(self, model):
        with RecommendationService(model, k=3, batch_size=4) as service:
            handles = [service.enqueue(user) for user in range(4)]
            # The 4th enqueue crossed the threshold and flushed.
            assert all(h.ready for h in handles)
            assert service.stats.batches_scored == 1

    def test_duplicate_users_share_one_row(self, model):
        with RecommendationService(model, k=3, batch_size=64) as service:
            first = service.enqueue(7)
            second = service.enqueue(7)
            assert service.flush() == 1
            assert first.result is second.result

    def test_cache_hits_skip_scoring(self, model):
        with RecommendationService(model, k=5, batch_size=8) as service:
            service.recommend(3)
            before = service.stats.batches_scored
            again = service.recommend(3)
            assert service.stats.batches_scored == before
            assert service.stats.cache_hits == 1
            assert again.user == 3

    def test_cache_eviction_is_lru(self, model):
        with RecommendationService(
            model, k=3, batch_size=1, cache_size=2
        ) as service:
            service.recommend(0)
            service.recommend(1)
            service.recommend(0)  # refresh user 0
            service.recommend(2)  # evicts user 1
            hits = service.stats.cache_hits
            service.recommend(0)
            assert service.stats.cache_hits == hits + 1
            service.recommend(1)  # was evicted: a fresh batch
            assert service.stats.cache_hits == hits + 1

    def test_queue_depth_and_high_water_mark(self, model):
        with RecommendationService(model, k=3, batch_size=64) as service:
            assert service.queue_depth == 0
            for user in range(5):
                service.enqueue(user)
            service.enqueue(2)  # duplicate: no new pending user
            assert service.queue_depth == 5
            assert service.stats.max_queue_depth == 5
            service.flush()
            assert service.queue_depth == 0
            # The high-water mark survives the flush.
            assert service.stats.max_queue_depth == 5
            service.enqueue(9)
            assert service.stats.max_queue_depth == 5

    def test_last_batch_users_tracks_coalesced_size(self, model):
        with RecommendationService(model, k=3, batch_size=64) as service:
            service.recommend_many([0, 1, 2])
            assert service.stats.last_batch_users == 3
            service.recommend(7)
            assert service.stats.last_batch_users == 1
            service.recommend(7)  # cache hit: no new batch
            assert service.stats.last_batch_users == 1

    def test_requests_by_version_counts_across_a_swap(self, model, model_b):
        with ModelStore() as store:
            store.publish(model)
            with RecommendationService(store, k=3, batch_size=8) as service:
                service.recommend(1)
                service.recommend(2)
                store.publish(model_b)
                service.recommend(3)
                assert service.stats.requests_by_version == {1: 2, 2: 1}
        _assert_no_segments()

    def test_explicit_model_version_keys_stats_and_cache(self, model):
        with RecommendationService(model, k=3, model_version=7) as service:
            rec = service.recommend(0)
            assert rec.model_version == 7
            assert service.model_version == 7
            assert service.stats.requests_by_version == {7: 1}

    def test_stats_as_dict_is_a_detached_copy(self, model):
        with RecommendationService(model, k=3) as service:
            service.recommend(0)
            snapshot = service.stats.as_dict()
            assert snapshot["requests"] == 1
            snapshot["requests_by_version"][0] = 999
            assert service.stats.requests_by_version[0] == 1

    def test_recommend_many_scores_misses_in_one_batch(self, model):
        with RecommendationService(model, k=4, batch_size=64) as service:
            service.recommend(2)
            batches = service.stats.batches_scored
            results = service.recommend_many([0, 1, 2, 3])
            assert [r.user for r in results] == [0, 1, 2, 3]
            assert service.stats.batches_scored == batches + 1
            assert service.stats.cache_hits == 1

    def test_hot_swap_reload_and_cache_rollover(self, model, model_b):
        with ModelStore() as store:
            store.publish(model)
            with RecommendationService(store, k=5, batch_size=8) as service:
                first = service.recommend(6)
                assert first.model_version == 1
                store.publish(model_b)
                # Even a cached user must notice the swap immediately.
                second = service.recommend(6)
                assert second.model_version == 2
                assert service.stats.reloads == 1
                np.testing.assert_array_equal(
                    second.items, Scorer(model_b).top_k_single(6, 5)
                )
                # The retired version was released by the reload.
                assert store.live_versions == (2,)
        _assert_no_segments()

    def test_exclusion_respected(self, model):
        from repro.sparse import SparseRatingMatrix

        m, n = model.shape
        train = SparseRatingMatrix.from_triples(
            [(5, v, 1.0) for v in range(5)], shape=(m, n)
        )
        with RecommendationService(
            model, k=n, batch_size=4, exclude=train
        ) as service:
            rec = service.recommend(5)
            assert set(range(5)).isdisjoint(rec.items.tolist())

    def test_closed_service_rejects_requests(self, model):
        service = RecommendationService(model, k=3)
        service.close()
        service.close()  # idempotent
        with pytest.raises(ExecutionError):
            service.recommend(0)

    def test_validation(self, model):
        with pytest.raises(ExecutionError):
            RecommendationService(model, k=0)
        with pytest.raises(ExecutionError):
            RecommendationService(model, batch_size=0)
        with pytest.raises(ExecutionError):
            RecommendationService(model, cache_size=-1)
