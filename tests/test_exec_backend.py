"""Tests of the threaded execution backend and its parity with the simulator.

The discrete-event simulator is the reproduction's numerical reference:
with one worker it is a fully deterministic serial execution.  The
threaded backend drives the *same* scheduler objects, so with one worker
and a fixed seed the two backends must make exactly the same sequence of
scheduling decisions and kernel calls — identical per-block update
counts and bitwise-identical factor matrices.  With many workers the
schedules diverge (real completion order is nondeterministic) but the
accounting invariants and the converged quality must match.
"""

import numpy as np
import pytest

from repro.config import BACKENDS, HardwareConfig, TrainingConfig
from repro.core import GreedyBlockScheduler, HSGDStarScheduler, HeterogeneousTrainer, factorize
from repro.core.partition import hsgd_partition, nonuniform_partition, uniform_partition
from repro.exceptions import ConfigurationError, ExecutionError
from repro.exec import BACKENDS as EXEC_BACKENDS
from repro.exec import Engine, EngineResult, ThreadedEngine, ThreadedResult
from repro.hardware import HeterogeneousPlatform
from repro.sim import SimulationEngine, SimulationResult


@pytest.fixture(scope="module")
def one_worker_platform(scaled_preset):
    """A platform with a single CPU worker (for parity runs)."""
    return HeterogeneousPlatform.from_preset(
        HardwareConfig(cpu_threads=1, gpu_count=0), scaled_preset
    )


def _paired_schedulers(train, n_cpu, n_gpu, seed=0):
    """Two independent, identically-seeded schedulers over identical grids."""
    def build():
        grid = hsgd_partition(train, n_cpu, n_gpu) if n_gpu else uniform_partition(
            train, n_cpu + 1, n_cpu + 1
        )
        return grid, GreedyBlockScheduler(grid, n_cpu, n_gpu, seed=seed)

    return build(), build()


class TestEngineProtocol:
    def test_both_engines_implement_protocol(self, small_split, small_platform, small_training):
        train, test = small_split
        (g1, s1), (g2, s2) = _paired_schedulers(train, 4, 1)
        sim = SimulationEngine(
            scheduler=s1, platform=small_platform, train=train,
            training=small_training, test=test,
        )
        threaded = ThreadedEngine(
            scheduler=s2, train=train, training=small_training, test=test,
        )
        assert isinstance(sim, Engine)
        assert isinstance(threaded, Engine)

    def test_results_share_the_result_type(self, small_split, small_platform, small_training):
        train, test = small_split
        (g1, s1), (g2, s2) = _paired_schedulers(train, 4, 1)
        sim_result = SimulationEngine(
            scheduler=s1, platform=small_platform, train=train,
            training=small_training, test=test,
        ).run(iterations=1)
        threaded_result = ThreadedEngine(
            scheduler=s2, train=train, training=small_training, test=test,
        ).run(iterations=1)
        assert isinstance(sim_result, SimulationResult)
        assert isinstance(sim_result, EngineResult)
        assert isinstance(threaded_result, ThreadedResult)
        assert isinstance(threaded_result, EngineResult)
        assert threaded_result.wall_time == threaded_result.trace.final_time
        assert threaded_result.throughput > 0

    def test_backend_names_agree(self):
        assert EXEC_BACKENDS == BACKENDS == ("simulate", "threads", "processes")


class TestSimParity:
    """One worker + fixed seed => the backends are numerically identical."""

    def _run_pair(self, train, test, platform, training, iterations=3):
        grid_s = uniform_partition(train, 3, 3)
        sched_s = GreedyBlockScheduler(grid_s, 1, 0, seed=0)
        sim = SimulationEngine(
            scheduler=sched_s, platform=platform, train=train,
            training=training, test=test,
        ).run(iterations=iterations)

        grid_t = uniform_partition(train, 3, 3)
        sched_t = GreedyBlockScheduler(grid_t, 1, 0, seed=0)
        threaded = ThreadedEngine(
            scheduler=sched_t, train=train, training=training, test=test,
        ).run(iterations=iterations)
        return (grid_s, sim), (grid_t, threaded)

    def test_identical_update_counts(self, small_split, one_worker_platform, small_training):
        train, test = small_split
        (grid_s, sim), (grid_t, threaded) = self._run_pair(
            train, test, one_worker_platform, small_training
        )
        np.testing.assert_array_equal(grid_s.update_counts(), grid_t.update_counts())
        assert len(sim.trace.tasks) == len(threaded.trace.tasks)

    def test_identical_task_sequence(self, small_split, one_worker_platform, small_training):
        """Same blocks, in the same order, with the same point counts."""
        train, test = small_split
        (_, sim), (_, threaded) = self._run_pair(
            train, test, one_worker_platform, small_training
        )
        sim_points = [task.points for task in sim.trace.tasks]
        threaded_points = [task.points for task in threaded.trace.tasks]
        assert sim_points == threaded_points

    def test_matching_final_rmse(self, small_split, one_worker_platform, small_training):
        """Identical update sequences give bitwise-identical factors."""
        train, test = small_split
        (_, sim), (_, threaded) = self._run_pair(
            train, test, one_worker_platform, small_training
        )
        assert threaded.final_test_rmse == pytest.approx(
            sim.final_test_rmse, abs=1e-12
        )
        np.testing.assert_array_equal(sim.model.p, threaded.model.p)
        np.testing.assert_array_equal(sim.model.q, threaded.model.q)

    def test_identical_iteration_accounting(self, small_split, one_worker_platform, small_training):
        train, test = small_split
        (_, sim), (_, threaded) = self._run_pair(
            train, test, one_worker_platform, small_training
        )
        assert [r.points_processed for r in sim.trace.iterations] == [
            r.points_processed for r in threaded.trace.iterations
        ]
        assert [r.test_rmse for r in sim.trace.iterations] == [
            r.test_rmse for r in threaded.trace.iterations
        ]


class TestResumeParitySimVsThreads:
    """One worker + fixed seed: checkpoint/resume preserves the backends'
    bitwise equality.  Each backend checkpoints its own run at epoch 3
    and resumes to epoch 6; both resumed runs — and a threads checkpoint
    resumed on the simulator — must equal the uninterrupted 6-epoch
    simulator run exactly."""

    def _engine(self, backend, train, test, training, platform):
        grid = uniform_partition(train, 3, 3)
        scheduler = GreedyBlockScheduler(grid, 1, 0, seed=0)
        if backend == "simulate":
            return SimulationEngine(
                scheduler=scheduler, platform=platform, train=train,
                training=training, test=test,
            )
        return ThreadedEngine(
            scheduler=scheduler, train=train, training=training, test=test,
        )

    def _checkpoint_at(self, backend, train, test, training, platform, epoch):
        from repro.exec import TrainCheckpoint

        engine = self._engine(backend, train, test, training, platform)
        session = engine.start(iterations=epoch, pause_on_epoch=True)
        while session.step() is not None:
            pass
        checkpoint = TrainCheckpoint.capture(session)
        session.finish()
        return checkpoint

    def _resume(self, backend, checkpoint, train, test, training, platform, total):
        engine = self._engine(backend, train, test, training, platform)
        session = engine.start(iterations=total)
        checkpoint.restore(session)
        while session.step() is not None:
            pass
        return session.finish()

    def test_one_worker_resume_matches_across_backends(
        self, small_split, one_worker_platform, small_training
    ):
        train, test = small_split
        args = (train, test, small_training, one_worker_platform)

        reference = self._engine("simulate", *args).run(iterations=6)

        sim_ckpt = self._checkpoint_at("simulate", *args, epoch=3)
        thr_ckpt = self._checkpoint_at("threads", *args, epoch=3)

        resumed_sim = self._resume("simulate", sim_ckpt, *args, total=6)
        resumed_thr = self._resume("threads", thr_ckpt, *args, total=6)
        # A 1-worker checkpoint is quiescent on both backends, so the
        # threads checkpoint also resumes on the simulator.
        resumed_cross = self._resume("simulate", thr_ckpt, *args, total=6)

        for resumed in (resumed_sim, resumed_thr, resumed_cross):
            np.testing.assert_array_equal(reference.model.p, resumed.model.p)
            np.testing.assert_array_equal(reference.model.q, resumed.model.q)
        assert [t.points for t in reference.trace.tasks] == [
            t.points for t in resumed_thr.trace.tasks
        ]
        assert [r.test_rmse for r in reference.trace.iterations] == [
            r.test_rmse for r in resumed_thr.trace.iterations
        ]

    def test_one_worker_checkpoints_agree_across_backends(
        self, small_split, one_worker_platform, small_training
    ):
        """The serialized factor state at an epoch boundary is itself
        backend-independent with one worker."""
        train, test = small_split
        args = (train, test, small_training, one_worker_platform)
        sim_ckpt = self._checkpoint_at("simulate", *args, epoch=2)
        thr_ckpt = self._checkpoint_at("threads", *args, epoch=2)
        np.testing.assert_array_equal(sim_ckpt.p, thr_ckpt.p)
        np.testing.assert_array_equal(sim_ckpt.q, thr_ckpt.q)
        np.testing.assert_array_equal(sim_ckpt.update_counts, thr_ckpt.update_counts)


class TestConcurrentInvariants:
    """With N workers the schedule is nondeterministic but accounting holds."""

    def _run_threaded(self, train, test, training, n_cpu=4, n_gpu=1, iterations=3,
                      dynamic=True):
        grid = nonuniform_partition(train, alpha=0.3, n_cpu_threads=n_cpu, n_gpus=n_gpu)
        scheduler = HSGDStarScheduler(
            grid, n_cpu, n_gpu, dynamic_scheduling=dynamic, seed=0
        )
        engine = ThreadedEngine(
            scheduler=scheduler, train=train, training=training, test=test,
        )
        return grid, engine.run(iterations=iterations)

    def test_total_updates_per_iteration_cover_the_grid(self, small_split, small_training):
        """Every iteration processes grid.total_nnz ratings, up to the
        bounded overshoot of tasks that straddle the boundary (at most one
        in-flight task per worker, same as the simulator)."""
        train, test = small_split
        grid, result = self._run_threaded(train, test, small_training)
        total = grid.total_nnz
        assert total == train.nnz
        max_task = max(task.points for task in result.trace.tasks)
        n_workers = 5
        for index, record in enumerate(result.trace.iterations):
            target = (index + 1) * total
            assert record.points_processed >= target
            assert record.points_processed < target + n_workers * max_task + 1

    def test_work_is_spread_across_workers(self, small_split, small_training):
        """On a dataset this small a late-starting thread can legitimately
        be starved (CPU threads may steal the whole GPU region before the
        GPU thread is first scheduled), so full five-worker participation
        is only asserted on the Netflix-sized slow run.  Here we require
        genuine multi-worker dispatch and valid worker indices."""
        train, test = small_split
        _, result = self._run_threaded(train, test, small_training)
        workers = {task.worker_index for task in result.trace.tasks}
        assert workers <= set(range(5))
        assert len(workers) >= 2

    def test_iteration_timestamps_are_monotonic(self, small_split, small_training):
        """Epoch records must never run backwards in time, even when the
        worker that closes an iteration was pre-empted between finishing
        its kernel and acquiring the completion lock."""
        train, test = small_split
        _, result = self._run_threaded(train, test, small_training, iterations=4)
        times = [record.simulated_time for record in result.trace.iterations]
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_rmse_decreases(self, small_split, small_training):
        train, test = small_split
        _, result = self._run_threaded(train, test, small_training, iterations=5)
        curve = [record.test_rmse for record in result.trace.iterations]
        assert curve[-1] < curve[0]

    def test_wall_clock_budget_stops_the_run(self, small_split, small_training):
        train, test = small_split
        grid = nonuniform_partition(train, alpha=0.3, n_cpu_threads=4, n_gpus=1)
        scheduler = HSGDStarScheduler(grid, 4, 1, seed=0)
        engine = ThreadedEngine(
            scheduler=scheduler, train=train, training=small_training, test=test,
        )
        result = engine.run(iterations=10_000, max_simulated_time=0.2)
        # Bounded by the budget plus one in-flight task per worker and the
        # idle-poll latency.
        assert result.trace.final_time < 5.0
        assert not result.converged


class TestThreadedEngineValidation:
    def test_target_rmse_requires_test_set(self, small_split, small_training):
        train, _ = small_split
        grid = uniform_partition(train, 3, 3)
        engine = ThreadedEngine(
            scheduler=GreedyBlockScheduler(grid, 1, 0), train=train,
            training=small_training,
        )
        with pytest.raises(ExecutionError):
            engine.run(target_rmse=0.5)

    def test_single_use(self, small_split, small_training):
        train, test = small_split
        grid = uniform_partition(train, 3, 3)
        engine = ThreadedEngine(
            scheduler=GreedyBlockScheduler(grid, 1, 0), train=train,
            training=small_training, test=test,
        )
        engine.run(iterations=1)
        with pytest.raises(ExecutionError):
            engine.run(iterations=1)

    def test_platform_worker_mismatch_rejected(self, small_split, small_platform, small_training):
        train, test = small_split
        grid = uniform_partition(train, 3, 3)
        with pytest.raises(ExecutionError):
            ThreadedEngine(
                scheduler=GreedyBlockScheduler(grid, 1, 0),  # 1 worker vs 5
                train=train, training=small_training, test=test,
                platform=small_platform,
            )

    def test_gpu_latency_scale_needs_platform(self, small_split, small_training):
        train, test = small_split
        grid = uniform_partition(train, 3, 3)
        with pytest.raises(ExecutionError):
            ThreadedEngine(
                scheduler=GreedyBlockScheduler(grid, 1, 0), train=train,
                training=small_training, test=test, gpu_latency_scale=0.5,
            )


class TestBackendPlumbing:
    def test_training_config_backend_validation(self):
        assert TrainingConfig().backend == "simulate"
        assert TrainingConfig(backend="threads").backend == "threads"
        assert TrainingConfig().with_backend("threads").backend == "threads"
        with pytest.raises(ConfigurationError):
            TrainingConfig(backend="cuda")

    def test_fit_backend_threads(self, small_split, small_hardware, small_training, scaled_preset):
        train, test = small_split
        trainer = HeterogeneousTrainer(
            algorithm="hsgd_star", hardware=small_hardware,
            training=small_training, preset=scaled_preset, seed=0,
        )
        result = trainer.fit(train, test, iterations=3, backend="threads")
        assert result.backend == "threads"
        assert len(result.trace.iterations) == 3
        assert result.engine_time > 0
        assert result.final_test_rmse is not None

    def test_fit_backend_defaults_to_training_config(self, small_split, small_hardware, small_training, scaled_preset):
        train, test = small_split
        trainer = HeterogeneousTrainer(
            algorithm="hsgd_star", hardware=small_hardware,
            training=small_training.with_backend("threads"),
            preset=scaled_preset, seed=0,
        )
        result = trainer.fit(train, test, iterations=2)
        assert result.backend == "threads"

    def test_fit_rejects_unknown_backend(self, small_split, small_hardware, small_training, scaled_preset):
        train, test = small_split
        trainer = HeterogeneousTrainer(
            algorithm="hsgd_star", hardware=small_hardware,
            training=small_training, preset=scaled_preset, seed=0,
        )
        with pytest.raises(ConfigurationError):
            trainer.fit(train, test, iterations=1, backend="cuda")

    def test_factorize_backend(self, small_split, small_hardware, small_training, scaled_preset):
        train, test = small_split
        result = factorize(
            train, test, algorithm="hsgd", hardware=small_hardware,
            training=small_training, preset=scaled_preset, iterations=2,
            backend="threads",
        )
        assert result.backend == "threads"
        assert len(result.trace.iterations) == 2

    def test_cli_backend_flag(self, capsys):
        from repro.cli import main

        code = main([
            "train", "--dataset", "movielens", "--algorithm", "hsgd_star",
            "--iterations", "2", "--cpu-threads", "4", "--backend", "threads",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "backend            : threads" in out
        assert "wall time" in out


@pytest.mark.slow
class TestNetflixSizedStress:
    """The acceptance run: Netflix-sized data, >=4 genuinely concurrent workers."""

    def test_threads_match_simulator_quality_on_netflix(self):
        from repro.datasets import load_dataset

        data = load_dataset("netflix", seed=0)
        hardware = HardwareConfig(cpu_threads=4, gpu_count=1)
        training = data.spec.recommended_training(iterations=3, seed=0)

        def run(backend):
            trainer = HeterogeneousTrainer(
                algorithm="hsgd_star", hardware=hardware, training=training,
                seed=0,
            )
            return trainer.fit(
                data.train, data.test, iterations=3, backend=backend
            )

        simulated = run("simulate")
        threaded = run("threads")

        assert threaded.backend == "threads"
        assert len(threaded.trace.iterations) == 3
        # All five workers (4 CPU threads + the GPU stand-in) did real work.
        workers = {task.worker_index for task in threaded.trace.tasks}
        assert workers == set(range(5))
        # Real concurrency: some task started before another one finished.
        tasks = sorted(threaded.trace.tasks, key=lambda t: t.start_time)
        overlaps = sum(
            1 for a, b in zip(tasks, tasks[1:]) if b.start_time < a.end_time
        )
        assert overlaps > 0
        # Same data, same seed, same iteration count: the backends reach
        # the same quality even though their update interleavings differ.
        assert threaded.final_test_rmse == pytest.approx(
            simulated.final_test_rmse, abs=0.05
        )
