"""Tests of grid banding and block extraction."""

import numpy as np
import pytest

from repro.exceptions import InvalidPartitionError
from repro.sparse import (
    balanced_boundaries,
    extract_grid,
    uniform_boundaries,
)
from repro.sparse.blocking import grid_nnz


class TestUniformBoundaries:
    def test_covers_extent(self):
        bounds = uniform_boundaries(100, 4)
        assert bounds[0] == 0 and bounds[-1] == 100
        assert len(bounds) == 5

    def test_strictly_increasing(self):
        bounds = uniform_boundaries(10, 7)
        assert np.all(np.diff(bounds) > 0)

    def test_single_part(self):
        assert uniform_boundaries(10, 1).tolist() == [0, 10]

    def test_extent_equal_parts(self):
        bounds = uniform_boundaries(5, 5)
        assert bounds.tolist() == [0, 1, 2, 3, 4, 5]

    def test_rejects_too_many_parts(self):
        with pytest.raises(InvalidPartitionError):
            uniform_boundaries(3, 4)

    def test_rejects_non_positive_parts(self):
        with pytest.raises(InvalidPartitionError):
            uniform_boundaries(10, 0)


class TestBalancedBoundaries:
    def test_balances_skewed_counts(self):
        counts = np.array([100, 1, 1, 1, 1, 1, 1, 1, 1, 100])
        bounds = balanced_boundaries(counts, 2)
        left = counts[bounds[0]:bounds[1]].sum()
        right = counts[bounds[1]:bounds[2]].sum()
        assert abs(int(left) - int(right)) <= 100

    def test_covers_extent(self):
        counts = np.ones(50, dtype=int)
        bounds = balanced_boundaries(counts, 5)
        assert bounds[0] == 0 and bounds[-1] == 50
        assert np.all(np.diff(bounds) > 0)

    def test_zero_counts_fall_back_to_uniform(self):
        bounds = balanced_boundaries(np.zeros(10, dtype=int), 2)
        assert bounds.tolist() == [0, 5, 10]

    def test_rejects_more_parts_than_indices(self):
        with pytest.raises(InvalidPartitionError):
            balanced_boundaries(np.ones(3, dtype=int), 5)

    def test_balanced_on_real_counts(self, small_matrix):
        bounds = balanced_boundaries(small_matrix.row_counts(), 6)
        sums = [
            small_matrix.row_counts()[bounds[i]:bounds[i + 1]].sum()
            for i in range(6)
        ]
        assert max(sums) <= 2.0 * small_matrix.nnz / 6


class TestExtractGrid:
    def test_every_rating_in_exactly_one_block(self, small_matrix):
        rows = balanced_boundaries(small_matrix.row_counts(), 4)
        cols = balanced_boundaries(small_matrix.col_counts(), 3)
        grid = extract_grid(small_matrix, rows, cols)
        total = sum(block.nnz for row in grid for block in row)
        assert total == small_matrix.nnz
        all_indices = np.concatenate(
            [block.indices for row in grid for block in row]
        )
        assert len(np.unique(all_indices)) == small_matrix.nnz

    def test_blocks_respect_ranges(self, small_matrix):
        rows = uniform_boundaries(small_matrix.n_rows, 3)
        cols = uniform_boundaries(small_matrix.n_cols, 2)
        grid = extract_grid(small_matrix, rows, cols)
        for row in grid:
            for block in row:
                if block.nnz == 0:
                    continue
                r = small_matrix.rows[block.indices]
                c = small_matrix.cols[block.indices]
                assert r.min() >= block.row_range[0]
                assert r.max() < block.row_range[1]
                assert c.min() >= block.col_range[0]
                assert c.max() < block.col_range[1]

    def test_grid_shape(self, tiny_matrix):
        grid = extract_grid(tiny_matrix, [0, 3, 6], [0, 2, 5])
        assert len(grid) == 2
        assert len(grid[0]) == 2

    def test_grid_nnz_matrix(self, tiny_matrix):
        grid = extract_grid(tiny_matrix, [0, 3, 6], [0, 2, 5])
        nnz = grid_nnz(grid)
        assert nnz.shape == (2, 2)
        assert nnz.sum() == tiny_matrix.nnz

    def test_single_block_via_grid_bucketing(self, tiny_matrix):
        """The one-pass grid bucketing serves ad-hoc single-block lookups
        (the migration target of the removed extract_block shim)."""
        reference = (
            (tiny_matrix.rows >= 1)
            & (tiny_matrix.rows < 4)
            & (tiny_matrix.cols >= 1)
            & (tiny_matrix.cols < 3)
        )
        grid = extract_grid(tiny_matrix, [0, 1, 4, 6], [0, 1, 3, 5])
        np.testing.assert_array_equal(
            grid[1][1].indices, np.nonzero(reference)[0]
        )

    def test_extract_block_shim_is_gone(self):
        """PR 2 deprecated extract_block; this PR removes it for good."""
        import repro.sparse
        import repro.sparse.blocking

        assert not hasattr(repro.sparse, "extract_block")
        assert not hasattr(repro.sparse.blocking, "extract_block")
        assert "extract_block" not in repro.sparse.__all__

    def test_invalid_boundaries_rejected(self, tiny_matrix):
        with pytest.raises(InvalidPartitionError):
            extract_grid(tiny_matrix, [0, 6], [0, 3, 3, 5])
        with pytest.raises(InvalidPartitionError):
            extract_grid(tiny_matrix, [1, 6], [0, 5])
        with pytest.raises(InvalidPartitionError):
            extract_grid(tiny_matrix, [0, 4], [0, 5])

    def test_block_slice_repr(self, tiny_matrix):
        grid = extract_grid(tiny_matrix, [0, 6], [0, 5])
        assert "nnz=13" in repr(grid[0][0])
