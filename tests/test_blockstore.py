"""Tests of the block-major data plane (repro.sparse.blockstore)."""

import numpy as np
import pytest

from repro.core.grid import Region, RowBand, BlockGrid
from repro.core.partition import nonuniform_partition
from repro.core.schedulers import HSGDStarScheduler
from repro.core.tasks import Task
from repro.exceptions import InvalidMatrixError
from repro.sparse import (
    BlockData,
    BlockStore,
    balanced_boundaries,
    extract_grid,
    uniform_boundaries,
)


class TestBlockDataFromSlice:
    def test_round_trip_matches_index_gathering(self, small_matrix):
        """BlockData must hold exactly what gathering slice.indices yields."""
        rows = balanced_boundaries(small_matrix.row_counts(), 4)
        cols = balanced_boundaries(small_matrix.col_counts(), 3)
        grid = extract_grid(small_matrix, rows, cols)
        for row in grid:
            for block in row:
                data = BlockData.from_slice(small_matrix, block)
                idx = block.indices
                np.testing.assert_array_equal(data.rows, small_matrix.rows[idx])
                np.testing.assert_array_equal(data.cols, small_matrix.cols[idx])
                np.testing.assert_array_equal(data.vals, small_matrix.vals[idx])
                assert data.nnz == block.nnz
                assert data.row_range == block.row_range
                assert data.col_range == block.col_range

    def test_local_indices_are_band_relative(self, small_matrix):
        rows = uniform_boundaries(small_matrix.n_rows, 3)
        cols = uniform_boundaries(small_matrix.n_cols, 2)
        grid = extract_grid(small_matrix, rows, cols)
        for row in grid:
            for block in row:
                data = BlockData.from_slice(small_matrix, block)
                np.testing.assert_array_equal(
                    data.local_rows, data.rows - block.row_range[0]
                )
                np.testing.assert_array_equal(
                    data.local_cols, data.cols - block.col_range[0]
                )
                if data.nnz:
                    assert data.local_rows.min() >= 0
                    assert data.local_rows.max() < (
                        block.row_range[1] - block.row_range[0]
                    )
                    assert data.local_cols.min() >= 0
                    assert data.local_cols.max() < (
                        block.col_range[1] - block.col_range[0]
                    )

    def test_arrays_are_contiguous_typed_and_read_only(self, small_matrix):
        grid = extract_grid(
            small_matrix,
            uniform_boundaries(small_matrix.n_rows, 2),
            uniform_boundaries(small_matrix.n_cols, 2),
        )
        data = BlockData.from_slice(small_matrix, grid[0][0])
        for array, dtype in (
            (data.rows, np.int64),
            (data.cols, np.int64),
            (data.vals, np.float64),
            (data.local_rows, np.int64),
            (data.local_cols, np.int64),
        ):
            assert array.dtype == dtype
            assert array.flags.c_contiguous
            assert not array.flags.writeable


class TestBlockDataValidation:
    def test_out_of_band_rows_rejected(self):
        with pytest.raises(InvalidMatrixError, match="outside the row band"):
            BlockData.from_arrays(
                rows=np.array([5]), cols=np.array([0]), vals=np.array([1.0]),
                row_range=(0, 3), col_range=(0, 2),
            )

    def test_out_of_band_cols_rejected(self):
        with pytest.raises(InvalidMatrixError, match="outside the column band"):
            BlockData.from_arrays(
                rows=np.array([1]), cols=np.array([4]), vals=np.array([1.0]),
                row_range=(0, 3), col_range=(0, 2),
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidMatrixError, match="equal length"):
            BlockData.from_arrays(
                rows=np.array([1, 2]), cols=np.array([0]), vals=np.array([1.0]),
                row_range=(0, 3), col_range=(0, 2),
            )

    def test_invalid_ranges_rejected(self):
        with pytest.raises(InvalidMatrixError, match="invalid block ranges"):
            BlockData.from_arrays(
                rows=np.array([], dtype=np.int64),
                cols=np.array([], dtype=np.int64),
                vals=np.array([]),
                row_range=(3, 1), col_range=(0, 2),
            )

    def test_does_not_freeze_caller_arrays(self):
        rows = np.array([0, 1], dtype=np.int64)
        cols = np.array([0, 1], dtype=np.int64)
        vals = np.array([1.0, 2.0])
        BlockData.from_arrays(rows, cols, vals, (0, 2), (0, 2))
        assert rows.flags.writeable and cols.flags.writeable and vals.flags.writeable

    def test_bad_indices_rejected(self, tiny_matrix):
        class FakeBlock:
            indices = np.array([10_000])
            row_range = (0, 6)
            col_range = (0, 5)

        with pytest.raises(InvalidMatrixError, match="outside"):
            BlockData.from_slice(tiny_matrix, FakeBlock())


def _grid_and_scheduler(train):
    grid = nonuniform_partition(train, alpha=0.3, n_cpu_threads=4, n_gpus=1)
    return grid, HSGDStarScheduler(grid, 4, 1, seed=0)


class TestBlockStore:
    def test_block_records_are_cached(self, small_split):
        train, _ = small_split
        grid, _ = _grid_and_scheduler(train)
        store = BlockStore(train)
        block = grid.blocks[0][0]
        assert store.block_data(block) is store.block_data(block)

    def test_single_block_task_shares_block_record(self, small_split):
        train, _ = small_split
        grid, _ = _grid_and_scheduler(train)
        store = BlockStore(train)
        block = grid.blocks[0][0]
        task = Task(blocks=[block], worker_index=0)
        assert store.task_data(task) is store.block_data(block)

    def test_multi_block_task_concatenates_in_block_order(self, small_split):
        """Multi-block records must match Task.indices() gathering exactly."""
        train, _ = small_split
        grid, _ = _grid_and_scheduler(train)
        gpu_blocks = [row[1] for row in grid.blocks[:2]]
        task = Task(blocks=gpu_blocks, worker_index=4)
        store = BlockStore(train)
        data = store.task_data(task)

        idx = task.indices()
        np.testing.assert_array_equal(data.rows, train.rows[idx])
        np.testing.assert_array_equal(data.cols, train.cols[idx])
        np.testing.assert_array_equal(data.vals, train.vals[idx])
        # Covering ranges and consistent local indices.
        assert data.row_range[0] == min(b.row_range[0] for b in gpu_blocks)
        assert data.row_range[1] == max(b.row_range[1] for b in gpu_blocks)
        np.testing.assert_array_equal(
            data.local_rows, data.rows - data.row_range[0]
        )
        np.testing.assert_array_equal(
            data.local_cols, data.cols - data.col_range[0]
        )
        # And the merged record is cached as well.
        assert store.task_data(task) is data

    def test_scheduler_tasks_round_trip(self, small_split):
        """Every task an HSGD* scheduler emits must round-trip through the
        store to exactly the ratings Task.indices() selects."""
        train, _ = small_split
        _, scheduler = _grid_and_scheduler(train)
        store = BlockStore(train)
        scheduler.start_iteration()
        seen = 0
        for worker in range(scheduler.n_workers):
            task = scheduler.next_task(worker)
            if task is None:
                continue
            data = store.task_data(task)
            idx = task.indices()
            np.testing.assert_array_equal(data.rows, train.rows[idx])
            np.testing.assert_array_equal(data.vals, train.vals[idx])
            seen += 1
            scheduler.complete_task(task)
        assert seen > 0

    def test_grid_block_and_slice_both_accepted(self, small_matrix):
        """BlockStore keys on (row_band, col_band): GridBlock and BlockSlice
        records of the same cell coincide."""
        rows = uniform_boundaries(small_matrix.n_rows, 2)
        cols = uniform_boundaries(small_matrix.n_cols, 2)
        raw = extract_grid(small_matrix, rows, cols)
        bands = [
            RowBand(index=i, row_range=(int(rows[i]), int(rows[i + 1])),
                    region=Region.SHARED)
            for i in range(2)
        ]
        grid = BlockGrid.build(small_matrix, bands, cols)
        store = BlockStore(small_matrix)
        from_slice = store.block_data(raw[1][0])
        from_grid = store.block_data(grid.block(1, 0))
        assert from_slice is from_grid

    def test_repr(self, small_matrix):
        store = BlockStore(small_matrix)
        assert "cached_blocks=0" in repr(store)
        assert store.matrix is small_matrix
