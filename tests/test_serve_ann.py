"""The approximate retrieval tier: IVF index, PQ codes, AnnScorer.

Pins the properties the tier is built on:

* **deterministic builds** — same seed and factors give a
  bitwise-identical index (k-means, inverted lists, PQ codebooks and
  codes), across repeated builds and across a shared-memory
  serialisation round-trip;
* **the exact-scorer contract survives approximation** — scores
  descending, item ids ascending among ties, and the returned ids are
  invariant to batch size and ``chunk_items``; probing every list
  returns exactly the exact scorer's ids (scores may differ by an ulp
  from the different GEMM tiling, so ids are pinned bitwise and scores
  to ``allclose``);
* **recall** — at the default ``nlist``/``nprobe`` the index clears the
  CI-gated recall@10 floor on netflix-shaped synthetic factors;
* **publication** — the index rides the model's shared segment through
  :class:`ModelStore`, attaches zero-copy (in-process and from a forked
  reader), round-trips through the handle JSON, and old handles without
  an index still load;
* **degradation** — an ANN service whose store hot-swaps to an
  index-less version keeps serving the old model+index pair and counts
  a reload failure rather than mixing tiers.
"""

import multiprocessing
import os
import tempfile

import numpy as np
import pytest

from repro.exceptions import ExecutionError, InvalidMatrixError
from repro.serve import (
    PAD_ITEM,
    AnnScorer,
    IvfIndex,
    ModelStore,
    RecommendationService,
    Scorer,
    attach_model,
)
from repro.serve.ann import DEFAULT_NLIST, DEFAULT_NPROBE, AnnIndexMeta, kmeans
from repro.serve.bench import recall_at_k, synthetic_model
from repro.sgd import FactorModel
from repro.shm import SharedSegment, live_segment_names
from repro.sparse import SparseRatingMatrix


@pytest.fixture(scope="module")
def model() -> FactorModel:
    return FactorModel.initialize(60, 47, 8, seed=5)


@pytest.fixture(scope="module")
def index(model) -> IvfIndex:
    return IvfIndex.build(model, nlist=6, seed=0)


def _assert_no_segments():
    assert live_segment_names() == ()


class TestKmeans:
    def test_same_seed_is_bitwise_identical(self):
        points = np.random.default_rng(3).normal(size=(200, 6))
        c1, a1 = kmeans(points, 8, seed=4)
        c2, a2 = kmeans(points, 8, seed=4)
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_array_equal(a1, a2)

    def test_assignments_are_valid_and_every_cluster_nonempty(self):
        points = np.random.default_rng(7).normal(size=(100, 3))
        centroids, assignments = kmeans(points, 10, seed=0)
        assert centroids.shape == (10, 3)
        assert assignments.shape == (100,)
        assert set(np.unique(assignments)) == set(range(10))

    def test_assignment_is_nearest_centroid_lowest_id_ties(self):
        points = np.random.default_rng(11).normal(size=(80, 4))
        centroids, assignments = kmeans(points, 5, seed=1)
        dists = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_array_equal(assignments, np.argmin(dists, axis=1))

    def test_rejects_more_clusters_than_points(self):
        with pytest.raises(InvalidMatrixError):
            kmeans(np.ones((3, 2)), 4, seed=0)


class TestIndexBuild:
    def test_build_is_bitwise_deterministic(self, model, index):
        rebuilt = IvfIndex.build(model, nlist=6, seed=0)
        assert index.same_arrays(rebuilt)

    def test_different_seed_differs(self, model, index):
        other = IvfIndex.build(model, nlist=6, seed=1)
        assert not index.same_arrays(other)

    def test_lists_partition_the_catalogue(self, model, index):
        n = model.shape[1]
        np.testing.assert_array_equal(np.sort(index.ids), np.arange(n))
        assert index.offsets[0] == 0 and index.offsets[-1] == n
        assert (np.diff(index.offsets) >= 0).all()
        for lst in range(index.nlist):
            ids = index.list_ids(lst)
            assert (np.diff(ids) > 0).all(), "ids ascending within a list"

    def test_meta_roundtrips_through_dict(self, index):
        meta = index.meta
        assert AnnIndexMeta.from_dict(meta.as_dict()) == meta

    def test_build_accepts_raw_item_matrix(self, model, index):
        from_q = IvfIndex.build(model.q, nlist=6, seed=0)
        assert index.same_arrays(from_q)

    def test_build_validates_inputs(self, model):
        with pytest.raises(InvalidMatrixError):
            IvfIndex.build(model, nlist=0)
        with pytest.raises(InvalidMatrixError):
            IvfIndex.build(model, nlist=model.shape[1] + 1)


class TestAnnScorerContract:
    def test_full_probe_ids_match_exact(self, model, index):
        """nprobe == nlist scans everything: ids exactly the exact
        scorer's; scores allclose (different GEMM tiling, ulp noise)."""
        users = np.arange(model.shape[0])
        exact_ids, exact_scores = Scorer(model).top_k(users, 10)
        ids, scores = AnnScorer(model, index, nprobe=index.nlist).top_k(
            users, 10
        )
        np.testing.assert_array_equal(ids, exact_ids)
        np.testing.assert_allclose(scores, exact_scores, rtol=1e-12, atol=0)

    def test_scores_descend_ids_ascend_on_ties(self, model, index):
        ids, scores = AnnScorer(model, index, nprobe=3).top_k(
            np.arange(model.shape[0]), 10
        )
        assert (np.diff(scores, axis=1) <= 0).all()
        for row_ids, row_scores in zip(ids, scores):
            for j in range(len(row_ids) - 1):
                if row_scores[j] == row_scores[j + 1] != -np.inf:
                    assert row_ids[j] < row_ids[j + 1]

    @pytest.mark.parametrize("chunk", (1, 7, 64, 10_000))
    def test_ids_invariant_to_chunk_items(self, model, index, chunk):
        users = np.arange(model.shape[0])
        baseline, _ = AnnScorer(model, index, nprobe=3).top_k(users, 10)
        ids, _ = AnnScorer(model, index, nprobe=3, chunk_items=chunk).top_k(
            users, 10
        )
        np.testing.assert_array_equal(ids, baseline)

    def test_ids_invariant_to_batch_splits(self, model, index):
        users = np.arange(model.shape[0])
        scorer = AnnScorer(model, index, nprobe=3)
        whole, _ = scorer.top_k(users, 10)
        for split in (1, 7, 13):
            parts = [
                scorer.top_k(users[i : i + split], 10)[0]
                for i in range(0, len(users), split)
            ]
            np.testing.assert_array_equal(np.vstack(parts), whole)

    def test_single_user_matches_batch_row(self, model, index):
        scorer = AnnScorer(model, index, nprobe=3)
        batch_ids, _ = scorer.top_k(np.asarray([4]), 7)
        np.testing.assert_array_equal(scorer.top_k_single(4, 7), batch_ids[0])

    def test_exclusion_applied_after_candidate_generation(self, model, index):
        m, n = model.shape
        rng = np.random.default_rng(0)
        train = SparseRatingMatrix(
            rng.integers(0, m, size=300),
            rng.integers(0, n, size=300),
            np.ones(300),
            shape=(m, n),
            check=False,
        )
        users = np.arange(m)
        ids, _ = AnnScorer(model, index, exclude=train, nprobe=3).top_k(
            users, 10
        )
        indptr, seen = train.csr_rows()
        for row, user in enumerate(users):
            rated = set(seen[indptr[user] : indptr[user + 1]].tolist())
            assert rated.isdisjoint(set(ids[row].tolist()) - {PAD_ITEM})
        # Full probe + exclusion == the exact scorer with exclusion.
        full, _ = AnnScorer(
            model, index, exclude=train, nprobe=index.nlist
        ).top_k(users, 10)
        exact, _ = Scorer(model, exclude=train).top_k(users, 10)
        np.testing.assert_array_equal(full, exact)

    def test_user_with_everything_seen_gets_padding(self):
        model = FactorModel.initialize(3, 6, 2, seed=0)
        index = IvfIndex.build(model, nlist=2, seed=0)
        train = SparseRatingMatrix.from_triples(
            [(1, v, 1.0) for v in range(6)], shape=(3, 6)
        )
        ids, scores = AnnScorer(
            model, index, exclude=train, nprobe=2
        ).top_k(np.asarray([1]), 4)
        np.testing.assert_array_equal(ids[0], np.full(4, PAD_ITEM))
        assert np.isneginf(scores[0]).all()

    def test_validation(self, model, index):
        with pytest.raises(InvalidMatrixError):
            AnnScorer(model, index, nprobe=0)
        with pytest.raises(InvalidMatrixError):
            AnnScorer(model, index, chunk_items=0)
        with pytest.raises(InvalidMatrixError):
            AnnScorer(model, index, pq_refine=0)
        other = FactorModel.initialize(10, 12, 8, seed=0)
        with pytest.raises(InvalidMatrixError):
            AnnScorer(other, index)  # catalogue mismatch
        scorer = AnnScorer(model, index)
        with pytest.raises(InvalidMatrixError):
            scorer.top_k(np.asarray([model.shape[0]]), 5)
        with pytest.raises(InvalidMatrixError):
            scorer.top_k(np.asarray([0]), 0)

    def test_recall_floor_at_defaults_netflix_shaped(self):
        """The CI-gated property: recall@10 >= 0.95 at the default
        nlist/nprobe on factors shaped like the paper's catalogue."""
        model = synthetic_model(2_000, 17_770, 128, seed=0)
        index = IvfIndex.build(model, nlist=DEFAULT_NLIST, seed=0)
        users = np.arange(256)
        exact_ids, _ = Scorer(model).top_k(users, 10)
        approx_ids, _ = AnnScorer(
            model, index, nprobe=DEFAULT_NPROBE
        ).top_k(users, 10)
        assert recall_at_k(approx_ids, exact_ids) >= 0.95


class TestProductQuantization:
    @pytest.fixture(scope="class")
    def pq_index(self, model) -> IvfIndex:
        return IvfIndex.build(model, nlist=6, seed=0, pq_m=4)

    def test_pq_build_is_bitwise_deterministic(self, model, pq_index):
        rebuilt = IvfIndex.build(model, nlist=6, seed=0, pq_m=4)
        assert pq_index.same_arrays(rebuilt)
        assert pq_index.codebooks.shape == (4, 256, 2)
        assert pq_index.codes.shape == (model.shape[1], 4)

    def test_pq_dim_must_divide(self, model):
        with pytest.raises(InvalidMatrixError):
            IvfIndex.build(model, nlist=6, seed=0, pq_m=3)  # 8 % 3 != 0

    def test_full_refine_equals_exact_rerank_path(self, model, pq_index):
        """A shortlist that covers every probed item makes the PQ path's
        final exact re-rank return the exact-path ids."""
        users = np.arange(model.shape[0])
        via_pq, _ = AnnScorer(
            model, pq_index, nprobe=3, use_pq=True, pq_refine=1_000
        ).top_k(users, 10)
        via_exact, _ = AnnScorer(
            model, pq_index, nprobe=3, use_pq=False
        ).top_k(users, 10)
        np.testing.assert_array_equal(via_pq, via_exact)

    def test_pq_recall_is_reasonable(self, model, pq_index):
        users = np.arange(model.shape[0])
        exact_ids, _ = Scorer(model).top_k(users, 10)
        approx_ids, _ = AnnScorer(model, pq_index, nprobe=6).top_k(users, 10)
        assert recall_at_k(approx_ids, exact_ids) >= 0.9


class TestSerialization:
    def test_pack_attach_roundtrip_bitwise(self, model, index):
        segment = SharedSegment.create(index.meta.nbytes, purpose="annidx")
        try:
            index.pack_into(segment, 0)
            attached = IvfIndex.attach(segment, 0, index.meta)
            assert index.same_arrays(attached)
            assert not attached.centroids.flags.writeable
            attached = None
        finally:
            segment.close()
            segment.unlink()
        _assert_no_segments()

    def test_pq_pack_attach_roundtrip_bitwise(self, model):
        pq = IvfIndex.build(model, nlist=6, seed=0, pq_m=4)
        segment = SharedSegment.create(pq.meta.nbytes, purpose="annidx")
        try:
            pq.pack_into(segment, 0)
            attached = IvfIndex.attach(segment, 0, pq.meta)
            assert pq.same_arrays(attached)
            attached = None
        finally:
            segment.close()
            segment.unlink()
        _assert_no_segments()


class TestStorePublication:
    def test_publish_with_index_attach_zero_copy(self, model, index):
        with ModelStore() as store:
            handle = store.publish(model, index=index)
            assert handle.index == index.meta
            assert handle.nbytes == handle.model_nbytes + index.meta.nbytes
            attached_model, attached_index, segment = attach_model(
                handle, with_index=True
            )
            np.testing.assert_array_equal(attached_model.q, model.q)
            assert index.same_arrays(attached_index)
            attached_model = attached_index = None
            segment.close()
        _assert_no_segments()

    def test_two_tuple_attach_stays_backward_compatible(self, model, index):
        with ModelStore() as store:
            handle = store.publish(model, index=index)
            attached, segment = attach_model(handle)
            np.testing.assert_array_equal(attached.p, model.p)
            attached = None
            segment.close()
        _assert_no_segments()

    def test_publish_rejects_mismatched_index(self, model):
        other = IvfIndex.build(
            FactorModel.initialize(10, 12, 8, seed=0), nlist=3, seed=0
        )
        with ModelStore() as store:
            with pytest.raises(InvalidMatrixError):
                store.publish(model, index=other)
        _assert_no_segments()

    def test_lease_carries_the_index(self, model, index):
        with ModelStore() as store:
            store.publish(model, index=index)
            lease = store.acquire()
            try:
                assert lease.index is not None
                assert index.same_arrays(lease.index)
            finally:
                lease.release()
            assert lease.index is None
        _assert_no_segments()

    def test_handle_json_roundtrip_with_index(self, model, index):
        with ModelStore() as store:
            handle = store.publish(model, index=index)
            with tempfile.TemporaryDirectory() as tmp:
                path = os.path.join(tmp, "handle.json")
                handle.save(path)
                loaded = type(handle).load(path)
            assert loaded == handle
            assert loaded.index == index.meta
        _assert_no_segments()

    def test_handle_json_without_index_still_loads(self, model):
        """Handles written before the ANN tier carry no "index" key."""
        with ModelStore() as store:
            handle = store.publish(model)
            with tempfile.TemporaryDirectory() as tmp:
                path = os.path.join(tmp, "handle.json")
                handle.save(path)
                loaded = type(handle).load(path)
            assert loaded == handle
            assert loaded.index is None
        _assert_no_segments()

    def test_forked_reader_returns_identical_ids(self, model, index):
        with ModelStore() as store:
            handle = store.publish(model, index=index)
            ctx = multiprocessing.get_context(
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            queue = ctx.Queue()
            proc = ctx.Process(
                target=_ann_reader, args=(handle, queue), daemon=True
            )
            proc.start()
            segment_name, remote_ids = queue.get(timeout=120)
            proc.join(timeout=60)
            assert proc.exitcode == 0
            assert segment_name == handle.segment
            local_ids, _ = AnnScorer(model, index, nprobe=3).top_k(
                np.arange(model.shape[0]), 10
            )
            np.testing.assert_array_equal(np.asarray(remote_ids), local_ids)
        _assert_no_segments()


def _ann_reader(handle, queue):
    attached_model, attached_index, segment = attach_model(
        handle, with_index=True
    )
    try:
        ids, _ = AnnScorer(attached_model, attached_index, nprobe=3).top_k(
            np.arange(attached_model.shape[0]), 10
        )
        queue.put((segment.name, ids.tolist()))
    finally:
        attached_model = attached_index = None
        segment.close()


class TestAnnService:
    def test_service_serves_ann_tier_from_store(self, model, index):
        with ModelStore() as store:
            store.publish(model, index=index)
            with RecommendationService(
                store, k=10, ann=True, nprobe=3
            ) as service:
                assert service.tier == "ann"
                expected, _ = AnnScorer(model, index, nprobe=3).top_k(
                    np.asarray([7]), 10
                )
                rec = service.recommend(7)
                np.testing.assert_array_equal(rec.items, expected[0])
        _assert_no_segments()

    def test_ann_service_requires_a_published_index(self, model):
        with ModelStore() as store:
            store.publish(model)
            with pytest.raises(ExecutionError):
                RecommendationService(store, ann=True)
        _assert_no_segments()

    def test_reload_without_index_degrades_not_mixes(self, model, index):
        """Hot-swap to an index-less version: the ANN service keeps the
        old model+index pair and counts a reload failure."""
        with ModelStore() as store:
            store.publish(model, index=index)
            with RecommendationService(
                store, k=10, ann=True, nprobe=3
            ) as service:
                first = service.recommend(3)
                assert first.model_version == 1
                store.publish(FactorModel.initialize(60, 47, 8, seed=9))
                again = service.recommend(4)
                assert again.model_version == 1, "must not adopt v2"
                assert service.stats.reload_failures >= 1
                assert service.tier == "ann"
        _assert_no_segments()


class TestRecallAtK:
    def test_perfect_and_partial(self):
        exact = np.asarray([[1, 2, 3], [4, 5, 6]])
        assert recall_at_k(exact, exact) == 1.0
        approx = np.asarray([[1, 2, 9], [4, 5, 6]])
        assert recall_at_k(approx, exact) == pytest.approx(5 / 6)

    def test_order_within_slate_is_irrelevant(self):
        exact = np.asarray([[1, 2, 3]])
        assert recall_at_k(np.asarray([[3, 1, 2]]), exact) == 1.0

    def test_pad_in_exact_shrinks_denominator(self):
        exact = np.asarray([[1, 2, PAD_ITEM]])
        assert recall_at_k(np.asarray([[1, 2, PAD_ITEM]]), exact) == 1.0
        assert recall_at_k(np.asarray([[1, 9, PAD_ITEM]]), exact) == 0.5

    def test_pad_in_approx_never_counts_as_hit(self):
        exact = np.asarray([[PAD_ITEM, PAD_ITEM]])
        # Fully padded exact slate: nothing to find, recall 1.0 not 0/0.
        assert recall_at_k(np.asarray([[PAD_ITEM, PAD_ITEM]]), exact) == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidMatrixError):
            recall_at_k(np.zeros((2, 3)), np.zeros((2, 4)))
        with pytest.raises(InvalidMatrixError):
            recall_at_k(np.zeros(3), np.zeros(3))
