"""Tests of curve fitting, cost models, the alpha solver and calibration."""

import numpy as np
import pytest

from repro.costmodel import (
    CPUCostModel,
    GPUCostModel,
    KernelCostModel,
    QilinCostModel,
    QilinDeviceModel,
    TransferCostModel,
    calibrate_platform,
    fit_linear,
    fit_speed_log,
    fit_speed_sqrt_log,
    geometric_prefix_sizes,
    solve_alpha,
    stable_speed_threshold,
)
from repro.exceptions import CalibrationError, CostModelError
from repro.hardware import BlockWork, HeterogeneousPlatform
from repro.config import HardwareConfig


class TestFitting:
    def test_fit_linear_exact(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        line = fit_linear(x, 2.5 * x + 1.0)
        assert line.slope == pytest.approx(2.5)
        assert line.intercept == pytest.approx(1.0)
        assert line(10.0) == pytest.approx(26.0)

    def test_fit_linear_vectorised_evaluation(self):
        line = fit_linear([0.0, 1.0], [1.0, 3.0])
        np.testing.assert_allclose(line.evaluate([2.0, 3.0]), [5.0, 7.0])

    def test_fit_linear_needs_two_points(self):
        with pytest.raises(CostModelError):
            fit_linear([1.0], [1.0])

    def test_fit_linear_rejects_non_finite(self):
        with pytest.raises(CostModelError):
            fit_linear([1.0, np.nan], [1.0, 2.0])

    def test_fit_speed_sqrt_log_recovers_parameters(self):
        sizes = np.geomspace(1e3, 1e8, 20)
        speeds = 3.0 * np.sqrt(np.log(sizes)) + 7.0
        line = fit_speed_sqrt_log(sizes, speeds)
        assert line.slope == pytest.approx(3.0, rel=1e-6)
        assert line.intercept == pytest.approx(7.0, rel=1e-6)

    def test_fit_speed_log_recovers_parameters(self):
        sizes = np.geomspace(1e2, 1e7, 15)
        speeds = 2.0 * np.log(sizes) + 5.0
        line = fit_speed_log(sizes, speeds)
        assert line.slope == pytest.approx(2.0, rel=1e-6)

    def test_transform_fits_reject_tiny_sizes(self):
        with pytest.raises(CostModelError):
            fit_speed_sqrt_log([0.5, 2.0], [1.0, 2.0])
        with pytest.raises(CostModelError):
            fit_speed_log([0.0, 2.0], [1.0, 2.0])

    def test_stable_speed_threshold_finds_plateau(self):
        sizes = np.array([1e3, 1e4, 1e5, 1e6, 1e7, 1e8])
        speeds = np.array([10.0, 30.0, 60.0, 99.0, 100.0, 100.5])
        threshold = stable_speed_threshold(sizes, speeds)
        assert threshold == pytest.approx(1e7)

    def test_stable_speed_threshold_never_stable(self):
        sizes = np.array([1.0, 2.0, 3.0, 4.0])
        speeds = np.array([1.0, 2.0, 4.0, 8.0])
        assert stable_speed_threshold(sizes, speeds) == 4.0

    def test_stable_speed_threshold_validation(self):
        with pytest.raises(CostModelError):
            stable_speed_threshold([1.0, 2.0], [1.0, 1.0], relative_change=0.0)


class TestCPUCostModel:
    def test_fit_and_predict(self):
        points = np.array([1e4, 5e4, 1e5, 5e5])
        times = points / 5e6 + 1e-4
        model = CPUCostModel.fit(points, times)
        assert model.time_for_points(2e5) == pytest.approx(2e5 / 5e6 + 1e-4, rel=1e-6)
        assert model.speed_for_points(2e5) == pytest.approx(5e6, rel=0.05)

    def test_zero_points_is_free(self):
        model = CPUCostModel.fit([1e4, 1e5], [1e-3, 1e-2])
        assert model.time_for_points(0) == 0.0
        assert model.speed_for_points(0) == 0.0

    def test_rejects_negative_points(self):
        model = CPUCostModel.fit([1e4, 1e5], [1e-3, 1e-2])
        with pytest.raises(CostModelError):
            model.time_for_points(-5)

    def test_rejects_decreasing_cost(self):
        with pytest.raises(CostModelError):
            CPUCostModel.fit([1e4, 1e5], [1e-2, 1e-3])

    def test_predict_vectorised(self):
        model = CPUCostModel.fit([1e4, 1e5], [1e-3, 1e-2])
        predictions = model.predict(np.array([1e4, 1e5]))
        assert predictions.shape == (2,)


class TestPiecewiseGPUModels:
    @pytest.fixture(scope="class")
    def gpu_device(self, scaled_preset):
        platform = HeterogeneousPlatform.from_preset(
            HardwareConfig(cpu_threads=1, gpu_count=1), scaled_preset
        )
        return platform.representative_gpu()

    def test_kernel_model_tracks_device(self, gpu_device):
        sizes = np.geomspace(100, 200_000, 12)
        times = [gpu_device.kernel_time(BlockWork(nnz=int(s))) for s in sizes]
        model = KernelCostModel.fit(sizes, times)
        for size in (500, 5_000, 50_000):
            true_time = gpu_device.kernel_time(BlockWork(nnz=size))
            assert model.time_for_points(size) == pytest.approx(true_time, rel=0.25)

    def test_kernel_model_monotone(self, gpu_device):
        sizes = np.geomspace(100, 200_000, 12)
        times = [gpu_device.kernel_time(BlockWork(nnz=int(s))) for s in sizes]
        model = KernelCostModel.fit(sizes, times)
        predictions = [model.time_for_points(s) for s in np.geomspace(200, 100_000, 20)]
        assert all(b >= a * 0.99 for a, b in zip(predictions, predictions[1:]))

    def test_kernel_model_small_sizes_clamped(self, gpu_device):
        sizes = np.geomspace(1_000, 200_000, 8)
        times = [gpu_device.kernel_time(BlockWork(nnz=int(s))) for s in sizes]
        model = KernelCostModel.fit(sizes, times)
        # Far below the fitted range the model must stay positive and finite.
        assert 0 < model.time_for_points(10) < model.time_for_points(10_000)

    def test_kernel_model_needs_enough_samples(self):
        with pytest.raises(CostModelError):
            KernelCostModel.fit([1.0, 2.0], [1.0, 2.0])

    def test_transfer_model_tracks_link(self, gpu_device):
        sizes = [64 * 1024 * (2 ** i) for i in range(13)]
        times = [gpu_device.pcie.host_to_device_time(s) for s in sizes]
        model = TransferCostModel.fit(sizes, times)
        for size in (1e5, 1e6, 1e8):
            true_time = gpu_device.pcie.host_to_device_time(size)
            assert model.time_for_bytes(size) == pytest.approx(true_time, rel=0.35)

    def test_transfer_model_bandwidth_grows(self, gpu_device):
        sizes = [64 * 1024 * (2 ** i) for i in range(13)]
        times = [gpu_device.pcie.host_to_device_time(s) for s in sizes]
        model = TransferCostModel.fit(sizes, times)
        assert model.bandwidth_for_bytes(1e8) > model.bandwidth_for_bytes(1e5)

    def test_transfer_model_zero_free(self, gpu_device):
        sizes = [64 * 1024 * (2 ** i) for i in range(8)]
        times = [gpu_device.pcie.host_to_device_time(s) for s in sizes]
        model = TransferCostModel.fit(sizes, times)
        assert model.time_for_bytes(0) == 0.0

    def test_combined_model_is_maximum(self, gpu_device):
        sizes = np.geomspace(100, 200_000, 10)
        kernel_times = [gpu_device.kernel_time(BlockWork(nnz=int(s))) for s in sizes]
        kernel = KernelCostModel.fit(sizes, kernel_times)
        transfer_sizes = [64 * 1024 * (2 ** i) for i in range(13)]
        transfer_times = [
            gpu_device.pcie.host_to_device_time(s) for s in transfer_sizes
        ]
        transfer = TransferCostModel.fit(transfer_sizes, transfer_times)
        combined = GPUCostModel(
            kernel=kernel,
            host_to_device=transfer,
            device_to_host=transfer,
            bytes_per_point=20.0,
        )
        points = 50_000
        assert combined.time_for_points(points) == pytest.approx(
            max(
                combined.kernel_time_for_points(points),
                combined.transfer_time_for_points(points),
            )
        )
        assert combined.bottleneck(points) in ("transfer", "kernel")
        assert combined.speed_for_points(points) > 0

    def test_combined_model_validation(self, gpu_device):
        sizes = np.geomspace(100, 200_000, 10)
        kernel_times = [gpu_device.kernel_time(BlockWork(nnz=int(s))) for s in sizes]
        kernel = KernelCostModel.fit(sizes, kernel_times)
        transfer_sizes = [64 * 1024 * (2 ** i) for i in range(8)]
        transfer_times = [
            gpu_device.pcie.host_to_device_time(s) for s in transfer_sizes
        ]
        transfer = TransferCostModel.fit(transfer_sizes, transfer_times)
        with pytest.raises(CostModelError):
            GPUCostModel(kernel, transfer, transfer, bytes_per_point=0.0)


class TestQilin:
    def test_linear_device_model(self):
        model = QilinDeviceModel.fit([1e4, 1e5, 1e6], [1e-3, 1e-2, 1e-1])
        assert model.time_for_points(5e5) == pytest.approx(5e-2, rel=0.05)
        assert model.speed_for_points(5e5) == pytest.approx(1e7, rel=0.1)

    def test_qilin_pair(self):
        cpu = QilinDeviceModel.fit([1e4, 1e5], [2e-3, 2e-2])
        gpu = QilinDeviceModel.fit([1e4, 1e5], [1e-3, 1e-2])
        pair = QilinCostModel(cpu=cpu, gpu=gpu)
        assert pair.gpu_time_for_points(1e5) < pair.cpu_time_for_points(1e5)

    def test_rejects_decreasing_fit(self):
        with pytest.raises(CostModelError):
            QilinDeviceModel.fit([1e4, 1e5], [1e-2, 1e-3])


class TestAlphaSolver:
    def test_balanced_resources_give_half(self):
        split = solve_alpha(
            lambda p: p / 100.0,
            lambda p: p / 100.0,
            total_points=1000,
            n_gpus=1,
            n_cpu_threads=1,
        )
        assert split.alpha == pytest.approx(0.5, abs=0.01)
        assert split.imbalance < 1e-3

    def test_faster_gpu_gets_more_work(self):
        split = solve_alpha(
            lambda p: p / 300.0,          # GPU is 3x faster than one thread
            lambda p: p / 100.0,
            total_points=1000,
            n_gpus=1,
            n_cpu_threads=1,
        )
        assert split.alpha == pytest.approx(0.75, abs=0.02)

    def test_thread_count_scales_cpu_side(self):
        split = solve_alpha(
            lambda p: p / 100.0,
            lambda p: p / 100.0,
            total_points=1000,
            n_gpus=1,
            n_cpu_threads=3,
        )
        assert split.alpha == pytest.approx(0.25, abs=0.02)

    def test_no_gpu_forces_zero(self):
        split = solve_alpha(
            lambda p: p, lambda p: p, total_points=10, n_gpus=0, n_cpu_threads=4
        )
        assert split.alpha == 0.0

    def test_no_cpu_forces_one(self):
        split = solve_alpha(
            lambda p: p, lambda p: p, total_points=10, n_gpus=2, n_cpu_threads=0
        )
        assert split.alpha == 1.0

    def test_nonlinear_gpu_cost(self):
        """A saturating GPU speed still yields a balanced, sensible split."""
        def gpu_time(points):
            speed = 20.0 + 80.0 * min(1.0, points / 500.0)
            return points / speed

        split = solve_alpha(
            gpu_time, lambda p: p / 100.0, total_points=1000, n_gpus=1, n_cpu_threads=1
        )
        assert 0.3 < split.alpha < 0.7
        assert split.predicted_makespan >= split.gpu_time - 1e-9

    def test_properties(self):
        split = solve_alpha(
            lambda p: p / 100.0, lambda p: p / 100.0,
            total_points=100, n_gpus=1, n_cpu_threads=1,
        )
        assert split.cpu_share == pytest.approx(1.0 - split.alpha)
        assert split.predicted_makespan == max(split.gpu_time, split.cpu_time)

    def test_validation(self):
        with pytest.raises(CostModelError):
            solve_alpha(lambda p: p, lambda p: p, 0, 1, 1)
        with pytest.raises(CostModelError):
            solve_alpha(lambda p: p, lambda p: p, 10, 0, 0)
        with pytest.raises(CostModelError):
            solve_alpha(lambda p: p, lambda p: p, 10, -1, 1)


class TestCalibration:
    def test_geometric_prefix_sizes(self):
        sizes = geometric_prefix_sizes(100_000, 8)
        assert sizes[0] >= 2
        assert sizes[-1] == 100_000
        assert sizes == sorted(sizes)
        with pytest.raises(CalibrationError):
            geometric_prefix_sizes(0, 8)
        with pytest.raises(CalibrationError):
            geometric_prefix_sizes(100, 1)

    def test_full_calibration_produces_models(self, small_calibration):
        assert small_calibration.cpu_model is not None
        assert small_calibration.gpu_model is not None
        assert small_calibration.qilin_model is not None
        assert len(small_calibration.cpu_probes) >= 4
        assert len(small_calibration.gpu_kernel_probes) >= 4
        assert len(small_calibration.transfer_probes_h2d) > 4

    def test_calibrated_cpu_model_accurate(
        self, small_calibration, small_platform, small_training
    ):
        device = small_platform.representative_cpu()
        work = BlockWork(nnz=1_500, p_rows=200, q_cols=150,
                         latent_factors=small_training.latent_factors)
        predicted = small_calibration.cpu_time_for_points(1_500)
        assert predicted == pytest.approx(device.process_time(work), rel=0.15)

    def test_calibrated_gpu_model_reasonable(
        self, small_calibration, small_platform, small_training
    ):
        device = small_platform.representative_gpu()
        work = BlockWork(nnz=1_000, p_rows=120, q_cols=80,
                         latent_factors=small_training.latent_factors)
        predicted = small_calibration.gpu_time_for_points(1_000)
        assert predicted == pytest.approx(device.process_time(work), rel=0.5)

    def test_cost_model_dispatch(self, small_calibration):
        paper = small_calibration.gpu_time_for_points(1_000, "paper")
        qilin = small_calibration.gpu_time_for_points(1_000, "qilin")
        assert paper > 0 and qilin > 0
        with pytest.raises(CalibrationError):
            small_calibration.gpu_time_for_points(1_000, "unknown")
        with pytest.raises(CalibrationError):
            small_calibration.cpu_time_for_points(1_000, "unknown")

    def test_cpu_only_platform_calibration(self, small_matrix, scaled_preset, small_training):
        platform = HeterogeneousPlatform.from_preset(
            HardwareConfig(cpu_threads=2, gpu_count=0), scaled_preset
        )
        result = calibrate_platform(
            platform, small_matrix, training=small_training, segments=6
        )
        assert result.gpu_model is None
        assert result.qilin_model is None
        with pytest.raises(CalibrationError):
            result.gpu_time_for_points(100)

    def test_too_few_ratings_rejected(self, small_platform, small_training, tiny_matrix):
        with pytest.raises(CalibrationError):
            calibrate_platform(
                small_platform, tiny_matrix, training=small_training, segments=100
            )


class TestCostModelEdgeBranches:
    """Error paths and degenerate-split guards of the fitted models.

    These branches matter to the tune path: `run_tune` feeds measured
    ladders straight into `fit`, so a noisy probe on a busy machine can
    produce exactly the degenerate regime splits exercised here.
    """

    # -- fitting ----------------------------------------------------- #

    def test_fit_rejects_mismatched_shapes(self):
        with pytest.raises(CostModelError):
            fit_linear([1.0, 2.0, 3.0], [1.0, 2.0])
        with pytest.raises(CostModelError):
            fit_linear(np.ones((2, 2)), np.ones(4))

    # -- transfer model ---------------------------------------------- #

    def test_transfer_rejects_bad_threshold(self):
        line = fit_linear([0.0, 1.0], [1.0, 1.0])
        with pytest.raises(CostModelError):
            TransferCostModel(line, line, threshold_bytes=0.0)

    def test_transfer_fit_rejects_few_or_bad_samples(self):
        with pytest.raises(CostModelError):
            TransferCostModel.fit([10.0, 100.0, 1000.0], [1e-3, 1e-2, 1e-1])
        with pytest.raises(CostModelError):
            TransferCostModel.fit(
                [0.5, 100.0, 1000.0, 10000.0], [1e-3, 1e-2, 1e-1, 1.0]
            )
        with pytest.raises(CostModelError):
            TransferCostModel.fit(
                [10.0, 100.0, 1000.0, 10000.0], [1e-3, 0.0, 1e-1, 1.0]
            )

    def test_transfer_fit_survives_flat_speed_curve(self):
        # Constant speed settles immediately: the threshold lands on the
        # smallest sample and the small-regime guard must widen it.
        sizes = np.array([1e3, 1e4, 1e5, 1e6, 1e7])
        times = sizes / 1e8
        model = TransferCostModel.fit(sizes, times)
        assert model.time_for_bytes(5e5) > 0

    def test_transfer_fit_survives_never_settling_curve(self):
        # Speed doubles at every step: the threshold falls back to the
        # largest sample and the large-regime guard must reclaim points.
        sizes = np.array([1e3, 1e4, 1e5, 1e6, 1e7])
        speeds = 1e6 * 2.0 ** np.arange(len(sizes))
        model = TransferCostModel.fit(sizes, sizes / speeds)
        assert model.time_for_bytes(5e5) > 0

    def test_transfer_time_edge_inputs(self):
        sizes = np.geomspace(1e3, 1e8, 8)
        times = [(s / (1e8 + s)) for s in sizes]
        model = TransferCostModel.fit(sizes, times)
        with pytest.raises(CostModelError):
            model.time_for_bytes(-1.0)
        assert model.time_for_bytes(0.0) == 0.0
        assert model.bandwidth_for_bytes(0.0) == 0.0
        assert model.bandwidth_for_bytes(1e5) > 0
        assert "TransferCostModel" in repr(model)

    def test_transfer_nonpositive_fitted_speed_raises(self):
        negative = fit_linear([0.0, 1.0], [-1.0, -1.0])
        positive = fit_linear([0.0, 1.0], [1.0, 2.0])
        model = TransferCostModel(negative, positive, threshold_bytes=1e6)
        with pytest.raises(CostModelError):
            model.time_for_bytes(10.0)

    # -- kernel model ------------------------------------------------- #

    def test_kernel_rejects_bad_threshold(self):
        line = fit_linear([0.0, 1.0], [1.0, 1.0])
        with pytest.raises(CostModelError):
            KernelCostModel(line, line, threshold_points=-5.0)

    def test_kernel_fit_rejects_few_or_bad_samples(self):
        with pytest.raises(CostModelError):
            KernelCostModel.fit([10.0, 100.0, 1000.0], [1e-3, 1e-2, 1e-1])
        with pytest.raises(CostModelError):
            KernelCostModel.fit(
                [10.0, 100.0, 1000.0, 10000.0], [1e-3, -1e-2, 1e-1, 1.0]
            )

    def test_kernel_fit_survives_degenerate_splits(self):
        points = np.array([1e3, 1e4, 1e5, 1e6, 1e7])
        flat = KernelCostModel.fit(points, points / 1e7)
        assert flat.time_for_points(5e4) > 0
        speeds = 1e5 * 2.0 ** np.arange(len(points))
        rising = KernelCostModel.fit(points, points / speeds)
        assert rising.time_for_points(5e4) > 0

    def test_kernel_time_edge_inputs(self):
        points = np.geomspace(1e2, 1e7, 8)
        times = [(p / (1e7 + p)) for p in points]
        model = KernelCostModel.fit(points, times)
        with pytest.raises(CostModelError):
            model.time_for_points(-1.0)
        assert model.speed_for_points(0.0) == 0.0
        assert model.speed_for_points(1e4) > 0
        assert "KernelCostModel" in repr(model)

    def test_kernel_nonpositive_fitted_speed_raises(self):
        negative = fit_linear([0.0, 1.0], [-1.0, -1.0])
        positive = fit_linear([0.0, 1.0], [1.0, 2.0])
        model = KernelCostModel(negative, positive, threshold_points=1e6)
        with pytest.raises(CostModelError):
            model.time_for_points(10.0)

    # -- combined GPU model ------------------------------------------- #

    @pytest.fixture()
    def slow_kernel_gpu(self):
        points = np.geomspace(1e2, 1e7, 8)
        kernel = KernelCostModel.fit(points, [p / 1e5 for p in points])
        transfer = TransferCostModel.fit(points, [p / 1e12 for p in points])
        return GPUCostModel(
            kernel=kernel,
            host_to_device=transfer,
            device_to_host=transfer,
            bytes_per_point=1.0,
        )

    def test_gpu_model_edge_inputs(self, slow_kernel_gpu):
        with pytest.raises(CostModelError):
            slow_kernel_gpu.time_for_points(-1.0)
        assert slow_kernel_gpu.speed_for_points(0.0) == 0.0
        assert "GPUCostModel" in repr(slow_kernel_gpu)

    def test_gpu_bottleneck_reports_kernel(self, slow_kernel_gpu):
        # Kernel fitted ~1e7x slower than the transfer link: the
        # stream-overlapped maximum must be the kernel.
        assert slow_kernel_gpu.bottleneck(1e5) == "kernel"
        assert slow_kernel_gpu.time_for_points(
            1e5
        ) == slow_kernel_gpu.kernel_time_for_points(1e5)

    # -- qilin -------------------------------------------------------- #

    def test_qilin_device_edge_inputs(self):
        model = QilinDeviceModel.fit([1e3, 1e4, 1e5], [1e-3, 1e-2, 1e-1])
        with pytest.raises(CostModelError):
            model.time_for_points(-1.0)
        assert model.time_for_points(0.0) == 0.0
        assert model.speed_for_points(0.0) == 0.0
        assert "QilinDeviceModel" in repr(model)

    def test_qilin_nonpositive_time_raises(self):
        flat = QilinDeviceModel(fit_linear([0.0, 1.0], [-1.0, -1.0]))
        with pytest.raises(CostModelError):
            flat.speed_for_points(100.0)

    def test_qilin_pair_repr(self):
        dev = QilinDeviceModel.fit([1e3, 1e4, 1e5], [1e-3, 1e-2, 1e-1])
        assert "QilinCostModel" in repr(QilinCostModel(cpu=dev, gpu=dev))

    # -- cpu ---------------------------------------------------------- #

    def test_cpu_nonpositive_time_raises(self):
        from repro.costmodel import FittedLine

        model = CPUCostModel(FittedLine(slope=1e-12, intercept=-1.0))
        with pytest.raises(CostModelError):
            model.speed_for_points(1.0)
        assert model.speed_for_points(0.0) == 0.0
        assert "CPUCostModel" in repr(model)

    # -- calibration probes and results ------------------------------- #

    def test_probe_speed_handles_zero_seconds(self):
        from repro.costmodel import CalibrationProbe

        assert CalibrationProbe(points=10, seconds=0.0).speed == 0.0
        assert CalibrationProbe(points=10, seconds=2.0).speed == 5.0

    def test_probe_guards(self, small_platform):
        from repro.costmodel import (
            probe_cpu_kernel,
            probe_gpu_kernel,
            probe_transfer_link,
        )

        with pytest.raises(CalibrationError):
            probe_cpu_kernel(small_platform, [], 8, repeats=0)
        with pytest.raises(CalibrationError):
            probe_gpu_kernel(small_platform, [], 8, repeats=0)
        with pytest.raises(CalibrationError):
            probe_transfer_link(small_platform, [0], direction="h2d")
        with pytest.raises(CalibrationError):
            probe_transfer_link(small_platform, [1024], direction="sideways")

    def test_qilin_cpu_prediction_and_missing_gpu_fallback(self, small_calibration):
        import dataclasses

        via_qilin = small_calibration.cpu_time_for_points(1_000, "qilin")
        assert via_qilin > 0
        cpu_only = dataclasses.replace(small_calibration, qilin_model=None)
        with pytest.raises(CalibrationError):
            cpu_only.gpu_time_for_points(1_000, "qilin")
        # Qilin's CPU side is linear too, so the fallback is the paper model.
        assert cpu_only.cpu_time_for_points(1_000, "qilin") == pytest.approx(
            small_calibration.cpu_time_for_points(1_000, "paper")
        )
