"""End-to-end integration tests of the paper's central claims.

These run complete training pipelines (calibration, division, scheduling,
simulated execution, evaluation) on a mid-sized synthetic dataset and
assert the *qualitative* results of the paper's evaluation:

1. HSGD* is the fastest of CPU-Only / GPU-Only / HSGD / HSGD* (Fig. 10/11).
2. All algorithms converge to a comparable test RMSE (Fig. 12).
3. The nonuniform division gives HSGD* a better RMSE-for-time profile
   than HSGD, whose per-block update counts are far more imbalanced
   (Fig. 13 / Example 3).
4. The paper's cost model beats the Qilin baseline (Table II).
5. Dynamic scheduling improves on the static cost-model split (Table III).
"""

import pytest

from repro.config import HardwareConfig
from repro.core import HeterogeneousTrainer
from repro.datasets import load_dataset
from repro.experiments.context import default_preset
from repro.metrics import update_imbalance
from repro.core.algorithms import build_grid, build_scheduler, get_algorithm
from repro.sim import SimulationEngine


DATASET = "netflix"
ITERATIONS = 8


@pytest.fixture(scope="module")
def bundle():
    return load_dataset(DATASET)


@pytest.fixture(scope="module")
def training(bundle):
    return bundle.spec.recommended_training(iterations=ITERATIONS)


@pytest.fixture(scope="module")
def hardware():
    return HardwareConfig(cpu_threads=16, gpu_count=1, gpu_parallel_workers=128)


@pytest.fixture(scope="module")
def preset():
    return default_preset()


@pytest.fixture(scope="module")
def results(bundle, training, hardware, preset):
    """Train every algorithm once and share the results across tests."""
    outcomes = {}
    for algorithm in ("cpu_only", "gpu_only", "hsgd", "hsgd_star",
                      "hsgd_star_m", "hsgd_star_q"):
        trainer = HeterogeneousTrainer(
            algorithm=algorithm,
            hardware=hardware,
            training=training,
            preset=preset,
        )
        outcomes[algorithm] = trainer.fit(
            bundle.train, bundle.test, iterations=ITERATIONS
        )
    return outcomes


class TestHeadlineSpeedups:
    def test_hsgd_star_is_fastest(self, results):
        star = results["hsgd_star"].engine_time
        assert star < results["cpu_only"].engine_time
        assert star < results["gpu_only"].engine_time
        assert star < results["hsgd"].engine_time

    def test_speedup_magnitudes_in_paper_range(self, results):
        """The paper reports 1.4-2.3x over CPU-Only and GPU-Only at defaults."""
        star = results["hsgd_star"].engine_time
        speedup_cpu = results["cpu_only"].engine_time / star
        speedup_gpu = results["gpu_only"].engine_time / star
        assert 1.1 < speedup_cpu < 3.0
        assert 1.2 < speedup_gpu < 3.0

    def test_gpu_only_slower_than_cpu_only_at_default_workers(self, results):
        """At 128 parallel workers the paper's GPU-Only trails 16-thread CPU-Only."""
        assert results["gpu_only"].engine_time > results["cpu_only"].engine_time

    def test_both_resources_contribute_in_hsgd_star(self, results):
        share = results["hsgd_star"].trace.resource_share()
        assert 0.1 < share["gpu"] < 0.9
        assert 0.1 < share["cpu"] < 0.9


class TestConvergenceQuality:
    def test_all_algorithms_converge_to_similar_rmse(self, results, bundle):
        final = {
            name: result.final_test_rmse
            for name, result in results.items()
        }
        best = min(final.values())
        worst = max(final.values())
        assert worst < 1.15 * best
        assert best < 1.6 * bundle.spec.synthetic.noise_std

    def test_rmse_curves_are_decreasing_overall(self, results):
        for result in results.values():
            curve = [value for _, value in result.rmse_curve()]
            assert curve[-1] < curve[0]

    def test_hsgd_star_reaches_target_before_hsgd(self, results):
        """Figure 13: given the same RMSE target, HSGD* gets there sooner."""
        target = results["hsgd"].final_test_rmse
        star_time = results["hsgd_star"].time_to_rmse(target)
        hsgd_time = results["hsgd"].engine_time
        assert star_time is not None
        assert star_time <= hsgd_time * 1.02


class TestCostModelAndScheduling:
    def test_paper_cost_model_beats_qilin(self, results):
        """Table II: HSGD*-M is at least as fast as HSGD*-Q."""
        assert (
            results["hsgd_star_m"].engine_time
            <= results["hsgd_star_q"].engine_time * 1.02
        )

    def test_dynamic_scheduling_beats_static(self, results):
        """Table III: the full HSGD* is at least as fast as HSGD*-M."""
        assert (
            results["hsgd_star"].engine_time
            <= results["hsgd_star_m"].engine_time * 1.01
        )

    def test_dynamic_variant_actually_steals(self, results):
        assert results["hsgd_star"].trace.stolen_task_count() > 0
        assert results["hsgd_star_m"].trace.stolen_task_count() == 0

    def test_qilin_assigns_more_to_gpu_than_its_block_speed_supports(self, results):
        """Qilin's aggregate linear fit over-assigns the GPU (Section V)."""
        assert results["hsgd_star_q"].alpha > results["hsgd_star_m"].alpha


class TestUpdateImbalance:
    def test_hsgd_imbalance_exceeds_hsgd_star(self, bundle, training, hardware, preset):
        """Example 3: the greedy uniform scheduler concentrates updates."""
        stats = {}
        for algorithm in ("hsgd", "hsgd_star"):
            spec = get_algorithm(algorithm)
            trainer = HeterogeneousTrainer(
                algorithm=algorithm, hardware=hardware, training=training,
                preset=preset,
            )
            alpha = None
            if spec.division == "nonuniform":
                split = trainer.workload_split(bundle.train)
                alpha = split.alpha
            grid = build_grid(spec, bundle.train, hardware, alpha=alpha)
            scheduler = build_scheduler(spec, grid, hardware)
            engine = SimulationEngine(
                scheduler=scheduler,
                platform=trainer.platform,
                train=bundle.train,
                training=training,
                test=bundle.test,
            )
            engine.run(iterations=4)
            stats[algorithm] = update_imbalance(grid)
        assert stats["hsgd"]["cv"] > 1.5 * stats["hsgd_star"]["cv"]
        assert stats["hsgd"]["gini"] > stats["hsgd_star"]["gini"]


class TestHardwareSweepTrends:
    def test_more_gpu_workers_speed_up_gpu_only(self, bundle, training, preset):
        times = []
        for workers in (32, 512):
            trainer = HeterogeneousTrainer(
                algorithm="gpu_only",
                hardware=HardwareConfig(
                    cpu_threads=16, gpu_count=1, gpu_parallel_workers=workers
                ),
                training=training,
                preset=preset,
            )
            result = trainer.fit(bundle.train, bundle.test, iterations=3)
            times.append(result.engine_time)
        assert times[1] < times[0] / 2.0

    def test_more_cpu_threads_speed_up_cpu_only(self, bundle, training, preset):
        times = []
        for threads in (4, 16):
            trainer = HeterogeneousTrainer(
                algorithm="cpu_only",
                hardware=HardwareConfig(cpu_threads=threads, gpu_count=1),
                training=training,
                preset=preset,
            )
            result = trainer.fit(bundle.train, bundle.test, iterations=3)
            times.append(result.engine_time)
        assert times[1] < times[0] / 2.0

    def test_gpu_only_overtakes_cpu_only_at_512_workers(self, bundle, training, preset):
        """Figure 10: the GPU-Only / CPU-Only crossover as workers grow."""
        cpu_trainer = HeterogeneousTrainer(
            algorithm="cpu_only",
            hardware=HardwareConfig(cpu_threads=16, gpu_count=1),
            training=training,
            preset=preset,
        )
        cpu_time = cpu_trainer.fit(bundle.train, bundle.test, iterations=3).engine_time
        gpu_trainer = HeterogeneousTrainer(
            algorithm="gpu_only",
            hardware=HardwareConfig(
                cpu_threads=16, gpu_count=1, gpu_parallel_workers=512
            ),
            training=training,
            preset=preset,
        )
        gpu_time = gpu_trainer.fit(bundle.train, bundle.test, iterations=3).engine_time
        assert gpu_time < cpu_time
