"""Tests of the streaming tier (repro.stream) and its warm-start path.

Covers the four layers the streaming PR added, end to end:

* drift policy and monitor (``repro.stream.drift``);
* the BlockStore cache invalidation after matrix mutation (the
  regression a stale cache would turn into silent training on
  pre-append data);
* the fold-in API on :class:`~repro.sgd.FactorModel`;
* ``fit(resume_from=...)`` over grown matrices, pinned bitwise against
  plain resume on the ungrown path (simulate **and** threads backends)
  and by an accuracy bound on the grown path;
* the :class:`~repro.stream.IngestSession` loop — the CI end-to-end
  scenario: ingest → fold-in → drift-triggered warm-start retrain →
  publish, with the retrained model strictly beating the stale one on
  the held-out window;
* reader processes scoring concurrently while the session publishes
  (no torn reads, no leaked segments).
"""

import multiprocessing
import queue as queue_module

import numpy as np
import pytest

from repro import HeterogeneousTrainer
from repro.config import HardwareConfig, TrainingConfig
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    ExecutionError,
)
from repro.serve import ModelStore, attach_model
from repro.shm import live_segment_names
from repro.sgd import FactorModel, rmse
from repro.sparse import (
    BlockStore,
    SparseRatingMatrix,
    balanced_boundaries,
    extract_grid,
)
from repro.stream import (
    CaptureCheckpoint,
    DriftMonitor,
    DriftPolicy,
    IngestSession,
    window_rmse,
)


def _trainer(iterations=6, k=4, seed=0, one_worker=False):
    # Multi-worker threaded runs are intentionally nondeterministic
    # (see TestConcurrentInvariants in test_exec_backend.py); bitwise
    # parity pins across backends therefore use one worker.
    hardware = (
        HardwareConfig(cpu_threads=1, gpu_count=0)
        if one_worker
        else HardwareConfig(cpu_threads=4, gpu_count=1)
    )
    return HeterogeneousTrainer(
        algorithm="hsgd_star",
        hardware=hardware,
        training=TrainingConfig(
            latent_factors=k, learning_rate=0.05, iterations=iterations
        ),
        seed=seed,
    )


def _low_rank_world(m, n, k, seed=11):
    rng = np.random.default_rng(seed)
    p = rng.uniform(0.0, 1.0, (m, k))
    q = rng.uniform(0.0, 1.0, (k, n))
    return rng, p, q


def _ratings(rng, p, q, rows, cols):
    return np.einsum("ik,ki->i", p[rows], q[:, cols])


class TestDriftPolicy:
    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            DriftPolicy(rmse_increase=-0.1)
        with pytest.raises(ConfigurationError):
            DriftPolicy(min_coverage=1.5)
        with pytest.raises(ConfigurationError):
            DriftPolicy(min_window=0)

    def test_window_rmse_masks_out_of_shape_pairs(self):
        model = FactorModel(np.ones((3, 2)), np.ones((2, 4)))
        users = np.array([0, 1, 5, 2])
        items = np.array([0, 3, 0, 9])
        vals = np.array([2.0, 2.0, 2.0, 2.0])
        value, scorable = window_rmse(model, users, items, vals)
        assert scorable == 2  # (5, 0) and (2, 9) fall outside (3, 4)
        assert value == pytest.approx(0.0)  # 1·1 + 1·1 = 2 exactly

    def test_window_rmse_nothing_scorable(self):
        model = FactorModel(np.ones((2, 2)), np.ones((2, 2)))
        value, scorable = window_rmse(
            model, np.array([7]), np.array([7]), np.array([1.0])
        )
        assert value is None and scorable == 0

    def test_rmse_trigger_needs_rebase_and_min_window(self):
        monitor = DriftMonitor(
            DriftPolicy(rmse_increase=0.1, min_coverage=0.0, min_window=3)
        )
        model = FactorModel(np.ones((4, 2)), np.ones((2, 4)))
        users = np.array([0, 1, 2, 3])
        items = np.array([0, 1, 2, 3])
        good = np.full(4, 2.0)  # the model predicts exactly 2.0
        bad = np.full(4, 5.0)

        # No baseline yet: a terrible window cannot trigger on rmse.
        reading = monitor.evaluate(model, users, items, bad)
        assert not reading.retrain and reading.baseline_rmse is None

        monitor.rebase(model, users, items, good)
        assert monitor.baseline_rmse == pytest.approx(0.0)
        ok = monitor.evaluate(model, users, items, good)
        assert not ok.retrain and ok.reason == "ok"
        drifted = monitor.evaluate(model, users, items, bad)
        assert drifted.retrain and drifted.reason == "rmse"
        assert drifted.delta == pytest.approx(3.0)

        # Below min_window the same drift never triggers.
        small = monitor.evaluate(model, users[:2], items[:2], bad[:2])
        assert not small.retrain

    def test_coverage_trigger(self):
        monitor = DriftMonitor(
            DriftPolicy(rmse_increase=10.0, min_coverage=0.8, min_window=2)
        )
        model = FactorModel(np.ones((2, 2)), np.ones((2, 2)))
        users = np.array([0, 1, 9, 9])  # half the window is newcomers
        items = np.array([0, 1, 9, 9])
        vals = np.full(4, 2.0)
        reading = monitor.evaluate(model, users, items, vals)
        assert reading.retrain and reading.reason == "coverage"
        assert reading.coverage == pytest.approx(0.5)


class TestBlockStoreInvalidation:
    def test_append_invalidates_cached_blocks(self):
        """Regression pin: a mutated matrix must never serve stale blocks.

        The cache key is the (row band, col band) cell, which does not
        change across an append — without the version check the store
        would keep returning the pre-append record and a retrain would
        silently skip the graduated ratings.
        """
        matrix = SparseRatingMatrix.from_triples(
            [(0, 0, 5.0), (1, 1, 3.0), (2, 2, 4.0), (3, 0, 2.0)],
            shape=(4, 3),
        )
        rows = balanced_boundaries(matrix.row_counts(), 2)
        cols = balanced_boundaries(matrix.col_counts(), 2)
        store = BlockStore(matrix)
        block = extract_grid(matrix, rows, cols)[0][0]
        before = store.block_data(block)

        matrix.append(np.array([0]), np.array([0]), np.array([9.0]))
        after = store.block_data(extract_grid(matrix, rows, cols)[0][0])
        assert after.nnz == before.nnz + 1
        assert 9.0 in after.vals
        # The pre-append record was untouched (immutable, still valid
        # as a description of the old matrix).
        assert 9.0 not in before.vals


class TestFoldInAPI:
    def test_fold_in_users_returns_solution_without_mutating(self):
        model = FactorModel.initialize(5, 8, 3, seed=1)
        p_before = model.p.copy()
        users = np.array([9, 9, 7])
        items = np.array([0, 3, 2])
        vals = np.array([4.0, 2.0, 3.0])
        ids, rows = model.fold_in_users(users, items, vals, regularization=0.1)
        np.testing.assert_array_equal(ids, [7, 9])
        assert rows.shape == (2, 3)
        np.testing.assert_array_equal(model.p, p_before)  # not mutated
        # Each returned row solves its own ridge system exactly.
        q_t = model.q.T
        for row, user in zip(rows, ids):
            mask = users == user
            sub = q_t[items[mask]]
            expected = np.linalg.solve(
                sub.T @ sub + 0.1 * mask.sum() * np.eye(3),
                sub.T @ vals[mask],
            )
            np.testing.assert_allclose(row, expected, atol=1e-10)

    def test_fold_in_items_transposed_symmetry(self):
        model = FactorModel.initialize(6, 4, 3, seed=2)
        users = np.array([0, 2, 4])
        items = np.array([10, 10, 10])
        vals = np.array([1.0, 2.0, 3.0])
        ids, cols = model.fold_in_items(users, items, vals, regularization=0.05)
        np.testing.assert_array_equal(ids, [10])
        sub = model.p[users]
        expected = np.linalg.solve(
            sub.T @ sub + 0.05 * 3 * np.eye(3), sub.T @ vals
        )
        np.testing.assert_allclose(cols[0], expected, atol=1e-10)

    def test_empty_input(self):
        model = FactorModel.initialize(3, 3, 2, seed=0)
        empty = np.empty(0)
        ids, rows = model.fold_in_users(empty, empty, empty)
        assert len(ids) == 0 and rows.shape == (0, 2)

    def test_skew_fallback_matches_vectorised_path(self, monkeypatch):
        from repro.sgd import foldin

        model = FactorModel.initialize(4, 60, 5, seed=3)
        rng = np.random.default_rng(4)
        # One heavy newcomer amid light ones: the shape the fallback
        # exists for.
        counts = np.array([50, 2, 7])
        users = np.repeat(np.array([100, 101, 102]), counts)
        items = rng.integers(0, 60, counts.sum())
        vals = rng.uniform(1.0, 5.0, counts.sum())
        _, vectorised = model.fold_in_users(users, items, vals)
        monkeypatch.setattr(foldin, "_PAD_ELEMENT_BUDGET", 1)
        _, fallback = model.fold_in_users(users, items, vals)
        np.testing.assert_allclose(fallback, vectorised, atol=1e-9)


class TestWarmStartParity:
    """``fit(resume_from=...)``: bitwise on the ungrown path, accuracy
    bounded on the grown path."""

    def _matrix_and_checkpoint(
        self, backend, iterations=4, one_worker=False
    ):
        # The ground truth covers the grown shape (46, 34) so drifting
        # batches can draw newcomer ratings from the same world.
        rng, p_true, q_true = _low_rank_world(46, 34, 4)
        rows = rng.integers(0, 40, 1200)
        cols = rng.integers(0, 30, 1200)
        matrix = SparseRatingMatrix(
            rows, cols, _ratings(rng, p_true, q_true, rows, cols),
            shape=(40, 30),
        )
        capture = CaptureCheckpoint()
        half = _trainer(one_worker=one_worker).fit(
            matrix, iterations=iterations, backend=backend, callbacks=[capture]
        )
        return matrix, capture.checkpoint, half, (rng, p_true, q_true)

    @pytest.mark.parametrize("backend", ["simulate", "threads"])
    def test_ungrown_resume_bitwise_identical(self, backend):
        one_worker = backend == "threads"
        matrix, checkpoint, _, _ = self._matrix_and_checkpoint(
            backend, one_worker=one_worker
        )
        full = _trainer(one_worker=one_worker).fit(
            matrix, iterations=8, backend=backend
        )
        resumed = _trainer(one_worker=one_worker).fit(
            matrix, iterations=8, backend=backend, resume_from=checkpoint
        )
        np.testing.assert_array_equal(full.model.p, resumed.model.p)
        np.testing.assert_array_equal(full.model.q, resumed.model.q)

    def test_grown_resume_runs_and_keeps_old_accuracy(self):
        matrix, checkpoint, half, world = self._matrix_and_checkpoint(
            "simulate", iterations=6
        )
        rng, p_true, q_true = world
        old_entries = SparseRatingMatrix(
            matrix.rows, matrix.cols, matrix.vals, shape=matrix.shape
        )
        stale_rmse = rmse(half.model, old_entries)

        new_rows = rng.integers(40, 46, 300)
        new_cols = rng.integers(0, 34, 300)
        matrix.append(
            new_rows, new_cols, _ratings(rng, p_true, q_true, new_rows, new_cols)
        )
        assert matrix.shape == (46, 34)

        resumed = _trainer().fit(
            matrix, iterations=6, backend="simulate", resume_from=checkpoint
        )
        assert resumed.model.shape == (46, 34)
        # Learning the newcomers must not cost accuracy on the old
        # entries: the warm start preserves the trained factors and the
        # retrain only refines them.
        assert rmse(resumed.model, old_entries) <= stale_rmse + 0.05

    def test_grown_resume_conflicts_with_explicit_model(self):
        matrix, checkpoint, _, _ = self._matrix_and_checkpoint("simulate")
        matrix.append(np.array([50]), np.array([0]), np.array([3.0]))
        with pytest.raises(ConfigurationError):
            _trainer().fit(
                matrix,
                iterations=6,
                resume_from=checkpoint,
                model=FactorModel.initialize(51, 30, 4, seed=0),
            )

    def test_shrunk_matrix_rejected(self):
        matrix, checkpoint, _, _ = self._matrix_and_checkpoint("simulate")
        rng = np.random.default_rng(0)
        shrunk = SparseRatingMatrix(
            rng.integers(0, 20, 200), rng.integers(0, 30, 200),
            rng.uniform(1.0, 5.0, 200), shape=(20, 30),
        )
        with pytest.raises(CheckpointError):
            _trainer().fit(shrunk, iterations=6, resume_from=checkpoint)


class TestIngestSession:
    BASE_U, NEW_U = 40, 12
    BASE_I, NEW_I = 30, 8
    K = 4

    def _session(self, store=None, **kwargs):
        rng, p_true, q_true = _low_rank_world(
            self.BASE_U + self.NEW_U, self.BASE_I + self.NEW_I, self.K
        )
        rows = rng.integers(0, self.BASE_U, 1500)
        cols = rng.integers(0, self.BASE_I, 1500)
        matrix = SparseRatingMatrix(
            rows, cols, _ratings(rng, p_true, q_true, rows, cols),
            shape=(self.BASE_U, self.BASE_I),
        )
        session = IngestSession(
            _trainer(iterations=6, k=self.K),
            matrix,
            store=store,
            window_size=kwargs.pop("window_size", 300),
            policy=kwargs.pop(
                "policy", DriftPolicy(rmse_increase=0.02, min_coverage=0.85)
            ),
            backend="simulate",
            retrain_iterations=5,
            **kwargs,
        )
        return session, (rng, p_true, q_true)

    def _stream_batch(self, rng, p_true, q_true, size, newcomer_fraction):
        n_new = int(size * newcomer_fraction)
        users = np.concatenate([
            rng.integers(0, self.BASE_U, size - n_new),
            rng.integers(self.BASE_U, self.BASE_U + self.NEW_U, n_new),
        ])
        items = np.concatenate([
            rng.integers(0, self.BASE_I, size - n_new),
            rng.integers(self.BASE_I, self.BASE_I + self.NEW_I, n_new),
        ])
        return users, items, _ratings(rng, p_true, q_true, users, items)

    def test_requires_start(self):
        session, _ = self._session()
        with pytest.raises(ConfigurationError):
            session.model
        with pytest.raises(ConfigurationError):
            session.ingest(np.array([0]), np.array([0]), np.array([1.0]))
        session.start()
        with pytest.raises(ConfigurationError):
            session.start()  # double start

    def test_ingest_validates_lengths(self):
        session, _ = self._session()
        session.start()
        with pytest.raises(ConfigurationError):
            session.ingest(np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_window_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            IngestSession(_trainer(), None, window_size=0)

    def test_e2e_drift_retrain_beats_stale_model(self):
        """The CI end-to-end scenario: ingest → fold-in → drift-triggered
        warm-start retrain, with the retrained model strictly better on
        the held-out window than the stale (fold-in-only) model."""
        session, (rng, p_true, q_true) = self._session()
        session.start()
        base_shape = session.model.shape
        assert base_shape == (self.BASE_U, self.BASE_I)

        compared = False
        retrains = 0
        folded_users = 0
        for batch_index in range(8):
            users, items, vals = self._stream_batch(
                rng, p_true, q_true, 150,
                newcomer_fraction=min(1.0, 0.2 + 0.12 * batch_index),
            )
            stale = FactorModel(
                session.model.p.copy(), session.model.q.copy()
            )
            w_users, w_items, w_vals = session.window()
            # The window the monitor will evaluate: the newest
            # window_size of (pending + batch).
            w_users = np.concatenate([w_users, users])[-session.window_size:]
            w_items = np.concatenate([w_items, items])[-session.window_size:]
            w_vals = np.concatenate([w_vals, vals])[-session.window_size:]

            report = session.ingest(users, items, vals)
            folded_users += report.folded_users
            if report.retrained:
                retrains += 1
                assert report.drift is not None and report.drift.retrain
                stale_rmse, stale_scorable = window_rmse(
                    stale, w_users, w_items, w_vals
                )
                new_rmse, new_scorable = window_rmse(
                    session.model, w_users, w_items, w_vals
                )
                # The retrained model covers the whole window (all
                # newcomers graduated before the retrain) and beats the
                # stale model on it.
                assert new_scorable == len(w_vals)
                assert new_scorable >= stale_scorable
                assert new_rmse < stale_rmse
                compared = True

        assert retrains >= 1, "the drifting stream never tripped the policy"
        assert compared
        assert folded_users > 0, "no newcomer was ever folded in"
        assert session.stats.retrains == retrains
        # Newcomers graduated, so the matrix and model grew together.
        assert session.model.shape == session.matrix.shape
        assert session.model.shape[0] > base_shape[0]

    def test_flush_graduates_whole_window(self):
        session, (rng, p_true, q_true) = self._session(
            policy=DriftPolicy(rmse_increase=10.0, min_coverage=0.0)
        )
        session.start()
        users, items, vals = self._stream_batch(
            rng, p_true, q_true, 120, newcomer_fraction=0.5
        )
        session.ingest(users, items, vals)
        before = session.matrix.nnz
        report = session.flush()
        assert report.graduated == 120
        assert session.matrix.nnz == before + 120
        assert len(session.window()[0]) == 0
        # Newcomers in the flushed window were folded in.
        assert session.model.shape == session.matrix.shape
        assert report.folded_users > 0

    def test_publishes_monotonic_versions(self):
        with ModelStore() as store:
            session, (rng, p_true, q_true) = self._session(store=store)
            session.start()
            versions = [store.current_handle().version]
            for batch_index in range(6):
                users, items, vals = self._stream_batch(
                    rng, p_true, q_true, 150,
                    newcomer_fraction=min(1.0, 0.3 + 0.15 * batch_index),
                )
                report = session.ingest(users, items, vals)
                if report.published_version is not None:
                    versions.append(report.published_version)
            assert len(versions) >= 2, "the stream never published an update"
            assert versions == sorted(versions)
            assert len(set(versions)) == len(versions)
            assert session.stats.publishes == len(versions)
        assert live_segment_names() == ()


def _concurrent_reader(handle_queue, out_queue, latent):
    """Attach every published handle; detect torn factor state.

    Every published model is version-constant (``P[:] = Q[:] = v``), so
    a self-consistent read sees exactly one distinct value across both
    factor matrices.  A handle whose segment was already retired raises
    ``FileNotFoundError`` — that is a clean miss, not a torn read.
    """
    seen = []
    while True:
        handle = handle_queue.get(timeout=120)
        if handle is None:
            break
        try:
            model, segment = attach_model(handle)
        except (FileNotFoundError, ExecutionError):
            # The publisher already retired this version's segment — a
            # clean miss for a reader lagging behind, not a torn read.
            seen.append(("retired", handle.version))
            continue
        try:
            values = np.unique(np.concatenate([model.p.ravel(), model.q.ravel()]))
            score = model.predict_single(0, 0)
            seen.append(
                ("ok", handle.version, values.tolist(), float(score))
            )
        finally:
            model = None
            segment.close()
    out_queue.put(seen)


class TestConcurrentServing:
    def test_readers_never_see_torn_models(self):
        """Readers score while the publisher swaps N versions.

        Version v publishes constant factors ``P[:] = Q[:] = v``; any
        mix of two versions inside one attached model would show more
        than one distinct value, and the predicted score pins the
        version arithmetic (``k * v^2``).
        """
        latent = 3
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        handle_queue = ctx.Queue()
        out_queue = ctx.Queue()
        n_versions = 5
        with ModelStore() as store:
            first = FactorModel(
                np.full((6, latent), 1.0), np.full((latent, 4), 1.0)
            )
            handle = store.publish(first)
            # Fork after the first publish so the child inherits the
            # running resource tracker (matching the serving example).
            reader = ctx.Process(
                target=_concurrent_reader,
                args=(handle_queue, out_queue, latent),
                daemon=True,
            )
            reader.start()
            handle_queue.put(handle)
            for version_value in range(2, n_versions + 1):
                value = float(version_value)
                model = FactorModel(
                    np.full((6, latent), value), np.full((latent, 4), value)
                )
                handle_queue.put(store.publish(model))
            handle_queue.put(None)
            try:
                seen = out_queue.get(timeout=120)
            finally:
                reader.join(timeout=60)

        attached = [entry for entry in seen if entry[0] == "ok"]
        assert len(attached) + sum(
            1 for entry in seen if entry[0] == "retired"
        ) == n_versions
        assert attached, "the reader never attached a single version"
        for _, version, values, score in attached:
            assert len(values) == 1, f"torn read: {values} in v{version}"
            value = values[0]
            assert score == pytest.approx(latent * value * value)
        versions = [entry[1] for entry in seen]
        assert versions == sorted(versions)
        assert live_segment_names() == ()
