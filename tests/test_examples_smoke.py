"""Smoke-run every script in ``examples/`` on tiny synthetic data.

The examples are the documented entry points of the public API; an API
redesign that breaks one of them would otherwise only surface when a
user runs it.  Each script honours ``REPRO_EXAMPLES_DATASET`` /
``REPRO_EXAMPLES_ITERATIONS``, so the smoke runs use the smallest
synthetic analogue (movielens, ~30k ratings) with two epochs and finish
in seconds.  CI runs this module as its own job via the ``examples``
marker (excluded from the fast and slow matrix jobs so nothing runs
twice); a plain ``pytest`` from the repo root still includes it.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLE_SCRIPTS = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)

#: Substring each example must print when it succeeds end to end.
EXPECTED_OUTPUT = {
    "ann_serving.py": "clean shutdown, leaked segments: none",
    "autotune_pipeline.py": "autotune pipeline complete",
    "quickstart.py": "final test RMSE",
    "compare_schedulers.py": "speedup vs CPU",
    "cost_model_calibration.py": "Workload split chosen",
    "http_serving.py": "clean shutdown, leaked segments: none",
    "recommender_pipeline.py": "hit-rate@10",
    "resumable_training.py": "bitwise identical : True",
    "serving_pipeline.py": "clean shutdown, leaked segments: none",
    "streaming_pipeline.py": "clean shutdown, leaked segments: none",
}


def test_every_example_is_covered():
    """A new example script must be added to the expectations table."""
    assert set(EXAMPLE_SCRIPTS) == set(EXPECTED_OUTPUT)


@pytest.mark.examples
@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs_on_tiny_data(script):
    env = dict(os.environ)
    env["REPRO_EXAMPLES_DATASET"] = "movielens"
    env["REPRO_EXAMPLES_ITERATIONS"] = "2"
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert result.returncode == 0, (
        f"{script} failed\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert EXPECTED_OUTPUT[script] in result.stdout, (
        f"{script} ran but did not produce its expected output\n"
        f"stdout:\n{result.stdout}"
    )
