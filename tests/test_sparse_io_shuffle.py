"""Tests of triple-file I/O and calibration-shuffle helpers."""

import numpy as np
import pytest

from repro.exceptions import DatasetError, InvalidMatrixError
from repro.sparse import (
    read_triples,
    shuffled_copy,
    split_prefix_sums,
    write_triples,
)


class TestTripleIO:
    def test_round_trip(self, tiny_matrix, tmp_path):
        path = tmp_path / "ratings.txt"
        write_triples(tiny_matrix, path)
        loaded = read_triples(path, shape=tiny_matrix.shape)
        assert loaded == tiny_matrix

    def test_round_trip_one_based(self, tiny_matrix, tmp_path):
        path = tmp_path / "ratings_1based.txt"
        write_triples(tiny_matrix, path, one_based=True)
        loaded = read_triples(path, one_based=True, shape=tiny_matrix.shape)
        assert loaded == tiny_matrix

    def test_comma_delimiter_and_extra_fields(self, tmp_path):
        path = tmp_path / "ratings.csv"
        path.write_text("1,2,3.5,978300760\n2,1,4.0,978300761\n")
        loaded = read_triples(path, delimiter=",", one_based=True)
        assert loaded.nnz == 2
        assert loaded.vals.tolist() == [3.5, 4.0]

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ratings.txt"
        path.write_text("# header\n\n0 0 1.0\n% matrix market style\n1 1 2.0\n")
        loaded = read_triples(path)
        assert loaded.nnz == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            read_triples(tmp_path / "absent.txt")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing here\n")
        with pytest.raises(DatasetError):
            read_triples(path)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 0\n")
        with pytest.raises(DatasetError):
            read_triples(path)

    def test_unparseable_value(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 0 abc\n")
        with pytest.raises(DatasetError):
            read_triples(path)


class TestShuffleHelpers:
    def test_shuffled_copy_matches_method(self, small_matrix):
        assert shuffled_copy(small_matrix, seed=9) == small_matrix.shuffled(seed=9)

    def test_prefix_sums_are_cumulative(self, small_matrix):
        prefixes = split_prefix_sums(small_matrix, 5)
        assert len(prefixes) == 5
        sizes = [p.nnz for p in prefixes]
        assert sizes == sorted(sizes)
        assert sizes[-1] == small_matrix.nnz
        # Each prefix extends the previous one.
        for smaller, larger in zip(prefixes, prefixes[1:]):
            np.testing.assert_array_equal(
                smaller.rows, larger.rows[: smaller.nnz]
            )

    def test_prefix_sums_sizes_roughly_linear(self, small_matrix):
        prefixes = split_prefix_sums(small_matrix, 4)
        expected = small_matrix.nnz / 4
        assert prefixes[0].nnz == pytest.approx(expected, rel=0.05)

    def test_prefix_sums_rejects_bad_segments(self, tiny_matrix):
        with pytest.raises(InvalidMatrixError):
            split_prefix_sums(tiny_matrix, 0)
        with pytest.raises(InvalidMatrixError):
            split_prefix_sums(tiny_matrix, tiny_matrix.nnz + 1)
