"""Tests for the HTTP front door (:mod:`repro.service`).

Covers the wire protocol, the consistent-hash routing layer, and the
full server against a live reader pool: correctness vs the in-process
scorer, admission control (503, never unbounded queueing), deadline
propagation (504, late results dropped), zero-downtime hot swap under
load, and — in the chaos tier — a reader SIGKILLed mid-request with
recovery and zero leaked segments.
"""

import asyncio
import json

import numpy as np
import pytest

from repro import faults
from repro.exceptions import ExecutionError, ReproError
from repro.serve import AnnScorer, IvfIndex, ModelStore, Scorer
from repro.service import (
    HashRing,
    HttpClient,
    HttpRequest,
    ProtocolError,
    RecommendServer,
    ServiceConfig,
    read_request,
    read_response,
    render_response,
    run_closed_loop,
    run_open_loop,
)
from repro.sgd import FactorModel
from repro.shm import live_segment_names


@pytest.fixture(autouse=True)
def service_hygiene(monkeypatch, tmp_path):
    """Isolated runtime dir, no fault-plan bleed, no leaked segments."""
    monkeypatch.setenv("REPRO_RUNTIME_DIR", str(tmp_path / "runtime"))
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.clear()
    yield
    faults.clear()
    assert live_segment_names() == ()


def _model(m=60, n=45, k=5, seed=11):
    return FactorModel.initialize(m, n, k, seed=seed)


def _feed(raw: bytes) -> asyncio.StreamReader:
    """Build a pre-filled stream reader (must run inside a loop)."""
    reader = asyncio.StreamReader()
    reader.feed_data(raw)
    reader.feed_eof()
    return reader


def _parse(raw: bytes):
    async def scenario():
        return await read_request(_feed(raw))

    return asyncio.run(scenario())


class TestProtocol:
    def test_parses_request_line_query_and_headers(self):
        request = _parse(
            b"GET /recommend?user=7&k=3 HTTP/1.1\r\n"
            b"Host: localhost\r\nX-Tag: abc\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/recommend"
        assert request.query == {"user": "7", "k": "3"}
        assert request.headers["x-tag"] == "abc"
        assert request.keep_alive  # HTTP/1.1 default

    def test_connection_close_disables_keep_alive(self):
        request = HttpRequest(method="GET", path="/", headers={"connection": "Close"})
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    @pytest.mark.parametrize(
        "raw",
        [
            b"GET /x",  # truncated mid request line
            b"GARBAGE\r\n\r\n",  # not a request line
            b"GET /x HTTP/2\r\n\r\n",  # unsupported version
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ],
    )
    def test_malformed_requests_raise(self, raw):
        with pytest.raises(ProtocolError):
            _parse(raw)

    def test_too_many_headers_rejected(self):
        headers = b"".join(b"H%d: v\r\n" % i for i in range(80))
        with pytest.raises(ProtocolError):
            _parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")

    def test_content_length_body_is_read(self):
        request = _parse(b"GET /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody")
        assert request.body == b"body"

    def test_render_read_roundtrip(self):
        payload = {"user": 3, "items": [1, 2]}
        raw = render_response(200, payload, extra_headers={"Retry-After": "1"})

        async def scenario():
            return await read_response(_feed(raw))

        status, headers, parsed = asyncio.run(scenario())
        assert status == 200
        assert headers["retry-after"] == "1"
        assert parsed == payload

    def test_render_sets_connection_header(self):
        assert b"Connection: close" in render_response(503, keep_alive=False)
        assert b"Connection: keep-alive" in render_response(200, {})


class TestHashRing:
    def test_routing_is_deterministic_across_instances(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        users = range(500)
        assert [a.route(u) for u in users] == [b.route(u) for u in users]

    def test_all_shards_receive_traffic(self):
        ring = HashRing(range(4))
        owners = {ring.route(user) for user in range(2000)}
        assert owners == {0, 1, 2, 3}

    def test_removal_remaps_only_the_dead_shards_arc(self):
        ring = HashRing(range(4))
        users = list(range(2000))
        before = {user: ring.route(user) for user in users}
        ring.remove_shard(2)
        moved = sum(
            1 for user in users if before[user] != 2 and ring.route(user) != before[user]
        )
        # Users not owned by shard 2 must keep their warm reader.
        assert moved == 0
        assert all(ring.route(u) != 2 for u in users)

    def test_cannot_remove_last_shard(self):
        ring = HashRing([0])
        with pytest.raises(ReproError):
            ring.remove_shard(0)

    def test_add_and_len(self):
        ring = HashRing([0])
        ring.add_shard(1)
        ring.add_shard(1)  # idempotent
        assert len(ring) == 2
        assert ring.shards == (0, 1)


def _serve(store, config, scenario):
    """Run ``scenario(server, client)`` against a started server."""

    async def body():
        server = RecommendServer(store, config)
        await server.start()
        client = HttpClient("127.0.0.1", server.port)
        try:
            return await scenario(server, client)
        finally:
            await client.close()
            await server.stop()

    return asyncio.run(body())


class TestRecommendServer:
    def test_recommendations_match_the_in_process_scorer(self):
        model = _model()
        with ModelStore() as store:
            store.publish(model)
            expected_items, expected_scores = Scorer(model).top_k(
                np.asarray([7]), 5
            )

            async def scenario(server, client):
                status, payload = await client.get("/recommend?user=7&k=5")
                assert status == 200
                assert payload["user"] == 7
                assert payload["model_version"] == 1
                assert payload["items"] == [int(i) for i in expected_items[0]]
                np.testing.assert_allclose(payload["scores"], expected_scores[0])

            _serve(store, ServiceConfig(workers=1, k=5), scenario)

    def test_k_is_sliced_from_the_cached_slate(self):
        with ModelStore() as store:
            store.publish(_model())

            async def scenario(server, client):
                status, full = await client.get("/recommend?user=3&k=5")
                assert status == 200
                status, short = await client.get("/recommend?user=3&k=2")
                assert status == 200
                assert short["items"] == full["items"][:2]

            _serve(store, ServiceConfig(workers=1, k=5), scenario)

    def test_http_error_statuses(self):
        with ModelStore() as store:
            store.publish(_model())

            async def scenario(server, client):
                for target, expected in [
                    ("/recommend", 400),  # no user
                    ("/recommend?user=abc", 400),
                    ("/recommend?user=1&k=99", 400),  # k above config.k
                    ("/recommend?user=1&deadline_ms=-5", 400),
                    ("/nope", 404),
                ]:
                    status, _ = await client.get(target)
                    assert status == expected, target
                # Non-GET -> 405.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"POST /recommend HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                status, _, _ = await read_response(reader)
                assert status == 405
                writer.close()
                await writer.wait_closed()

            _serve(store, ServiceConfig(workers=1, k=5), scenario)

    def test_malformed_request_gets_400_and_close(self):
        with ModelStore() as store:
            store.publish(_model())

            async def scenario(server, client):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"NOT-HTTP\r\n\r\n")
                await writer.drain()
                status, headers, _ = await read_response(reader)
                assert status == 400
                assert headers["connection"] == "close"
                writer.close()
                await writer.wait_closed()
                assert server.stats.bad_requests >= 1

            _serve(store, ServiceConfig(workers=1, k=5), scenario)

    def test_healthz_and_stats_payloads(self):
        with ModelStore() as store:
            store.publish(_model())

            async def scenario(server, client):
                status, health = await client.get("/healthz")
                assert status == 200
                assert health["status"] == "ok"
                assert health["model_version"] == 1
                assert health["readers"] == 2
                for user in range(8):
                    status, _ = await client.get(f"/recommend?user={user}")
                    assert status == 200
                status, _ = await client.get("/recommend?user=0")  # cache hit
                status, stats = await client.get("/stats")
                assert status == 200
                assert stats["server"]["served"] == 9
                assert stats["queue_limit"] == server.config.queue_depth * 2
                # Reader snapshots piggyback on results: the service's
                # extended counters are visible through /stats.
                reader_stats = list(stats["readers"].values())
                assert reader_stats, "no reader snapshot arrived"
                merged_requests = sum(s["requests"] for s in reader_stats)
                assert merged_requests >= 8
                for snapshot in reader_stats:
                    assert "requests_by_version" in snapshot
                    assert "max_queue_depth" in snapshot
                    assert "queue_depth" in snapshot
                assert 0.0 <= stats["cache_hit_rate"] <= 1.0

            _serve(store, ServiceConfig(workers=2, k=5), scenario)

    def test_deadline_fires_as_504_and_late_result_is_dropped(self, monkeypatch):
        with ModelStore() as store:
            store.publish(_model())
            monkeypatch.setenv(
                faults.FAULTS_ENV,
                json.dumps(
                    [
                        {
                            "point": "service.reader.request",
                            "mode": "stall",
                            "seconds": 0.8,
                        }
                    ]
                ),
            )

            async def scenario(server, client):
                monkeypatch.delenv(faults.FAULTS_ENV)
                status, _ = await client.get("/recommend?user=1&deadline_ms=100")
                assert status == 504
                assert server.stats.expired_deadline == 1
                # The stalled batch's late result must be dropped, and
                # the reader then serves normally.
                await asyncio.sleep(0.9)
                status, payload = await client.get("/recommend?user=1")
                assert status == 200
                assert server.stats.served == 1
                assert len(server._in_flight) == 0

            _serve(store, ServiceConfig(workers=1, k=5, deadline=2.0), scenario)

    def test_overload_sheds_503_with_retry_after(self, monkeypatch):
        with ModelStore() as store:
            store.publish(_model())
            monkeypatch.setenv(
                faults.FAULTS_ENV,
                json.dumps(
                    [
                        {
                            "point": "service.reader.request",
                            "mode": "stall",
                            "seconds": 0.6,
                        }
                    ]
                ),
            )
            config = ServiceConfig(
                workers=1, k=5, queue_depth=2, deadline=5.0, retry_after=2.0
            )

            async def scenario(server, client):
                monkeypatch.delenv(faults.FAULTS_ENV)

                async def one(user):
                    mine = HttpClient("127.0.0.1", server.port)
                    try:
                        return await mine.get(f"/recommend?user={user}")
                    finally:
                        await mine.close()

                results = await asyncio.gather(*(one(user) for user in range(8)))
                statuses = [status for status, _ in results]
                # The queue bound admits at most queue_depth requests;
                # everyone else is shed immediately with a hint.
                assert statuses.count(503) >= 6
                assert statuses.count(200) >= 1
                rejected = next(p for s, p in results if s == 503)
                assert "overloaded" in rejected["error"]
                assert server.stats.rejected_overload >= 6

            _serve(store, config, scenario)

    def test_retry_after_header_present_on_503(self, monkeypatch):
        with ModelStore() as store:
            store.publish(_model())
            monkeypatch.setenv(
                faults.FAULTS_ENV,
                json.dumps(
                    [
                        {
                            "point": "service.reader.request",
                            "mode": "stall",
                            "seconds": 0.6,
                        }
                    ]
                ),
            )
            config = ServiceConfig(
                workers=1, k=5, queue_depth=1, deadline=5.0, retry_after=2.5
            )

            async def scenario(server, client):
                monkeypatch.delenv(faults.FAULTS_ENV)
                first = asyncio.ensure_future(client.get("/recommend?user=0"))
                await asyncio.sleep(0.1)  # let it occupy the queue slot
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"GET /recommend?user=1 HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                status, headers, _ = await read_response(reader)
                assert status == 503
                assert headers["retry-after"] == "2.5"
                writer.close()
                await writer.wait_closed()
                await first

            _serve(store, config, scenario)

    def test_hot_swap_under_load_is_zero_downtime(self):
        """The pinned acceptance test: publish mid-load, nothing fails."""
        with ModelStore() as store:
            store.publish(_model(seed=1))

            async def scenario(server, client):
                versions = []
                for user in range(120):
                    if user == 30:
                        store.publish(_model(seed=2))
                    status, payload = await client.get(
                        f"/recommend?user={user % 60}"
                    )
                    assert status == 200, f"request {user} failed during swap"
                    versions.append(payload["model_version"])
                    if user == 30:
                        await asyncio.sleep(0.1)  # give the watcher a tick
                assert versions[0] == 1
                assert versions[-1] == 2, "swap never reached the readers"
                assert server.stats.model_swaps == 1
                assert server.model_version == 2
                # Readers confirm the version roll through their stats.
                status, stats = await client.get("/stats")
                by_version = {}
                for snapshot in stats["readers"].values():
                    for version, count in snapshot["requests_by_version"].items():
                        by_version[version] = by_version.get(version, 0) + count
                assert set(by_version) == {"1", "2"}

            _serve(
                store,
                ServiceConfig(workers=2, k=5, supervise_interval=0.02),
                scenario,
            )

    def test_ann_hot_swap_never_mixes_model_and_index_versions(self):
        """Every ANN response matches a pure-v1 or pure-v2 slate.

        Model and index share one segment and one commit stamp, so a
        reader can never score version-2 factors through the version-1
        index (or vice versa).  Each response's slate must equal the
        slate an :class:`AnnScorer` built from that version's own
        model+index pair produces for that user.
        """
        model_v1, model_v2 = _model(seed=1), _model(seed=2)
        index_v1 = IvfIndex.build(model_v1, nlist=8, seed=0)
        index_v2 = IvfIndex.build(model_v2, nlist=8, seed=0)
        users = np.arange(60)
        slates = {
            1: AnnScorer(model_v1, index_v1, nprobe=4).top_k(users, 5)[0],
            2: AnnScorer(model_v2, index_v2, nprobe=4).top_k(users, 5)[0],
        }
        with ModelStore() as store:
            store.publish(model_v1, index=index_v1)

            async def scenario(server, client):
                versions = []
                for request in range(120):
                    user = request % 60
                    if request == 30:
                        store.publish(model_v2, index=index_v2)
                    status, payload = await client.get(f"/recommend?user={user}")
                    assert status == 200, f"request {request} failed during swap"
                    version = payload["model_version"]
                    assert version in slates, f"unknown version {version}"
                    assert payload["items"] == [
                        int(i) for i in slates[version][user]
                    ], f"request {request} mixed versions"
                    versions.append(version)
                    if request == 30:
                        await asyncio.sleep(0.1)  # give the watcher a tick
                assert versions[0] == 1
                assert versions[-1] == 2, "swap never reached the readers"
                assert server.model_version == 2
                status, stats = await client.get("/stats")
                assert stats["tier"] == "ann"
                for snapshot in stats["readers"].values():
                    assert snapshot["tier"] == "ann"

            _serve(
                store,
                ServiceConfig(
                    workers=2,
                    k=5,
                    ann=True,
                    nprobe=4,
                    supervise_interval=0.02,
                ),
                scenario,
            )

    def test_config_validation(self):
        with pytest.raises(ExecutionError):
            ServiceConfig(workers=0)
        with pytest.raises(ExecutionError):
            ServiceConfig(queue_depth=0)
        with pytest.raises(ExecutionError):
            ServiceConfig(deadline=0)
        with pytest.raises(ExecutionError):
            ServiceConfig(k=-1)

    def test_port_property_requires_running_server(self):
        with ModelStore() as store:
            store.publish(_model())
            server = RecommendServer(store, ServiceConfig(workers=1))
            with pytest.raises(ExecutionError):
                server.port


class TestLoadGenerators:
    def test_closed_loop_reports_throughput_and_percentiles(self):
        with ModelStore() as store:
            store.publish(_model())

            async def scenario(server, client):
                report = await run_closed_loop(
                    "127.0.0.1", server.port, users=list(range(40)),
                    clients=4, duration=0.5,
                )
                assert report.ok > 0
                assert report.errors == 0
                assert report.achieved_qps > 0
                assert report.percentile_ms(50) <= report.percentile_ms(99)
                payload = report.as_dict()
                assert payload["requests"] == report.requests
                assert payload["p95_ms"] >= payload["p50_ms"]

            _serve(store, ServiceConfig(workers=2, k=5), scenario)

    def test_open_loop_respects_offered_rate(self):
        with ModelStore() as store:
            store.publish(_model())

            async def scenario(server, client):
                report = await run_open_loop(
                    "127.0.0.1", server.port, users=list(range(40)),
                    offered_qps=40.0, duration=0.5,
                )
                # ~20 arrivals in half a second, all served.
                assert 10 <= report.requests <= 30
                assert report.ok == report.requests
                assert report.offered_qps == 40.0

            _serve(store, ServiceConfig(workers=1, k=5), scenario)


@pytest.mark.chaos
class TestServiceChaos:
    def test_reader_sigkill_mid_request_recovers(self, monkeypatch):
        """SIGKILL a reader mid-request: the in-flight request is
        answered 503, the reader is respawned, serving resumes, and no
        segment leaks (the autouse fixture asserts the last part)."""
        with ModelStore() as store:
            store.publish(_model())
            monkeypatch.setenv(
                faults.FAULTS_ENV,
                json.dumps([{"point": "service.reader.request", "mode": "kill"}]),
            )

            async def scenario(server, client):
                monkeypatch.delenv(faults.FAULTS_ENV)
                status, payload = await client.get("/recommend?user=5")
                assert status == 503
                assert "retry" in payload["error"]
                assert server.stats.reader_deaths == 1
                for _ in range(100):
                    await asyncio.sleep(0.05)
                    status, payload = await client.get("/recommend?user=5")
                    if status == 200:
                        break
                assert status == 200, "reader never came back"
                assert server.stats.reader_respawns == 1
                status, health = await client.get("/healthz")
                assert health["status"] == "ok"

            _serve(store, ServiceConfig(workers=1, k=5, deadline=2.0), scenario)

    def test_restart_budget_exhaustion_degrades_to_503(self, monkeypatch):
        """A reader that dies on every spawn is retired; the server
        keeps answering (503) instead of crash-looping."""
        with ModelStore() as store:
            store.publish(_model())
            monkeypatch.setenv(
                faults.FAULTS_ENV,
                json.dumps(
                    [
                        {
                            "point": "service.reader.start",
                            "mode": "kill",
                            "count": 10,
                        }
                    ]
                ),
            )
            config = ServiceConfig(workers=1, k=5, max_reader_restarts=2)

            async def scenario(server, client):
                for _ in range(100):
                    await asyncio.sleep(0.05)
                    if server._ring is None:
                        break
                assert server._ring is None, "budget never exhausted"
                monkeypatch.delenv(faults.FAULTS_ENV)
                status, payload = await client.get("/recommend?user=1")
                assert status == 503
                status, health = await client.get("/healthz")
                assert health["status"] == "degraded"
                assert health["readers"] == 0

            _serve(store, config, scenario)

    def test_reader_death_with_multiple_workers_stays_available(self, monkeypatch):
        """Killing one of two readers only fails its own arc; the other
        reader keeps serving throughout."""
        with ModelStore() as store:
            store.publish(_model())
            monkeypatch.setenv(
                faults.FAULTS_ENV,
                json.dumps(
                    [
                        {
                            "point": "service.reader.request",
                            "mode": "kill",
                            "worker": 0,
                        }
                    ]
                ),
            )

            async def scenario(server, client):
                monkeypatch.delenv(faults.FAULTS_ENV)
                ring = server._ring
                on_zero = next(u for u in range(100) if ring.route(u) == 0)
                on_one = next(u for u in range(100) if ring.route(u) == 1)
                status, _ = await client.get(f"/recommend?user={on_zero}")
                assert status == 503  # reader 0 died mid-request
                status, _ = await client.get(f"/recommend?user={on_one}")
                assert status == 200  # reader 1 unaffected

            _serve(store, ServiceConfig(workers=2, k=5, deadline=2.0), scenario)
