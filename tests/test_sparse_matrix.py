"""Tests of the COO sparse rating matrix container."""

import numpy as np
import pytest

from repro.exceptions import InvalidMatrixError
from repro.sparse import SparseRatingMatrix


class TestConstruction:
    def test_from_triples_shape_inferred(self):
        matrix = SparseRatingMatrix.from_triples([(0, 0, 1.0), (2, 3, 4.0)])
        assert matrix.shape == (3, 4)
        assert matrix.nnz == 2

    def test_explicit_shape(self, tiny_matrix):
        assert tiny_matrix.shape == (6, 5)
        assert tiny_matrix.nnz == 13

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(InvalidMatrixError):
            SparseRatingMatrix(
                np.array([0, 1]), np.array([0]), np.array([1.0, 2.0]), shape=(2, 2)
            )

    def test_out_of_range_row_rejected(self):
        with pytest.raises(InvalidMatrixError):
            SparseRatingMatrix(
                np.array([5]), np.array([0]), np.array([1.0]), shape=(3, 3)
            )

    def test_out_of_range_col_rejected(self):
        with pytest.raises(InvalidMatrixError):
            SparseRatingMatrix(
                np.array([0]), np.array([9]), np.array([1.0]), shape=(3, 3)
            )

    def test_negative_index_rejected(self):
        with pytest.raises(InvalidMatrixError):
            SparseRatingMatrix(
                np.array([-1]), np.array([0]), np.array([1.0]), shape=(3, 3)
            )

    def test_non_finite_value_rejected(self):
        with pytest.raises(InvalidMatrixError):
            SparseRatingMatrix(
                np.array([0]), np.array([0]), np.array([np.nan]), shape=(3, 3)
            )

    def test_empty_matrix_requires_shape(self):
        with pytest.raises(InvalidMatrixError):
            SparseRatingMatrix.from_triples([])

    def test_empty_matrix_with_shape(self):
        matrix = SparseRatingMatrix.from_triples([], shape=(4, 4))
        assert matrix.nnz == 0
        assert matrix.shape == (4, 4)

    def test_arrays_are_read_only(self, tiny_matrix):
        with pytest.raises(ValueError):
            tiny_matrix.vals[0] = 99.0

    def test_from_dense_round_trip(self):
        dense = np.array([[0.0, 2.0], [3.0, 0.0]])
        matrix = SparseRatingMatrix.from_dense(dense)
        assert matrix.nnz == 2
        np.testing.assert_array_equal(matrix.to_dense(), dense)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(InvalidMatrixError):
            SparseRatingMatrix.from_dense(np.array([1.0, 2.0]))

    def test_repr_mentions_shape_and_nnz(self, tiny_matrix):
        text = repr(tiny_matrix)
        assert "6" in text and "13" in text


class TestStatistics:
    def test_len_equals_nnz(self, tiny_matrix):
        assert len(tiny_matrix) == tiny_matrix.nnz

    def test_density(self, tiny_matrix):
        assert tiny_matrix.density == pytest.approx(13 / 30)

    def test_rating_mean_and_std(self, tiny_matrix):
        values = tiny_matrix.vals
        assert tiny_matrix.rating_mean() == pytest.approx(values.mean())
        assert tiny_matrix.rating_std() == pytest.approx(values.std())

    def test_rating_range(self, tiny_matrix):
        assert tiny_matrix.rating_range() == (1.0, 5.0)

    def test_row_counts_sum_to_nnz(self, tiny_matrix):
        assert tiny_matrix.row_counts().sum() == tiny_matrix.nnz
        assert len(tiny_matrix.row_counts()) == tiny_matrix.n_rows

    def test_col_counts_sum_to_nnz(self, tiny_matrix):
        assert tiny_matrix.col_counts().sum() == tiny_matrix.nnz
        assert len(tiny_matrix.col_counts()) == tiny_matrix.n_cols

    def test_empty_matrix_statistics(self):
        matrix = SparseRatingMatrix.from_triples([], shape=(2, 2))
        assert matrix.rating_mean() == 0.0
        assert matrix.rating_std() == 0.0
        assert matrix.rating_range() == (0.0, 0.0)


class TestAppend:
    """The streaming mutation path: append-only growth."""

    def _matrix(self):
        return SparseRatingMatrix.from_triples(
            [(0, 0, 5.0), (1, 1, 3.0), (2, 0, 4.0)], shape=(3, 2)
        )

    def test_append_grows_shape_and_nnz(self):
        matrix = self._matrix()
        added = matrix.append(
            np.array([3, 4]), np.array([2, 0]), np.array([1.0, 2.0])
        )
        assert added == 2
        assert matrix.shape == (5, 3)
        assert matrix.nnz == 5

    def test_append_preserves_existing_triples_bitwise(self):
        matrix = self._matrix()
        before = (
            matrix.rows.copy(), matrix.cols.copy(), matrix.vals.copy()
        )
        matrix.append(np.array([7]), np.array([4]), np.array([2.5]))
        np.testing.assert_array_equal(matrix.rows[:3], before[0])
        np.testing.assert_array_equal(matrix.cols[:3], before[1])
        np.testing.assert_array_equal(matrix.vals[:3], before[2])
        assert (matrix.rows[3], matrix.cols[3], matrix.vals[3]) == (7, 4, 2.5)

    def test_empty_append_grows_dimensions_only(self):
        matrix = self._matrix()
        empty = np.empty(0)
        matrix.append(empty, empty, empty, n_rows=10, n_cols=6)
        assert matrix.shape == (10, 6)
        assert matrix.nnz == 3

    def test_dimensions_never_shrink(self):
        matrix = self._matrix()
        with pytest.raises(InvalidMatrixError):
            matrix.append(np.empty(0), np.empty(0), np.empty(0), n_rows=2)
        with pytest.raises(InvalidMatrixError):
            matrix.append(np.empty(0), np.empty(0), np.empty(0), n_cols=1)

    def test_append_validation(self):
        matrix = self._matrix()
        with pytest.raises(InvalidMatrixError):
            matrix.append(np.array([0, 1]), np.array([0]), np.array([1.0]))
        with pytest.raises(InvalidMatrixError):
            matrix.append(np.array([0]), np.array([0]), np.array([np.inf]))
        with pytest.raises(InvalidMatrixError):
            matrix.append(np.array([-1]), np.array([0]), np.array([1.0]))
        # A failed append leaves the matrix untouched.
        assert matrix.shape == (3, 2)
        assert matrix.nnz == 3

    def test_version_bumps_on_every_append(self):
        matrix = self._matrix()
        first = matrix.version
        matrix.append(np.array([0]), np.array([0]), np.array([1.0]))
        matrix.append(np.empty(0), np.empty(0), np.empty(0), n_rows=9)
        assert matrix.version == first + 2

    def test_csr_cache_invalidated_by_append(self):
        """Regression pin: ``items_of`` must see post-append ratings.

        The CSR rows are cached lazily; before the invalidation fix an
        append left the stale cache in place and the serving layer's
        seen-item exclusion silently missed the new ratings.
        """
        matrix = self._matrix()
        np.testing.assert_array_equal(matrix.items_of(0), [0])  # warms cache
        matrix.append(np.array([0, 3]), np.array([1, 0]), np.array([2.0, 4.5]))
        np.testing.assert_array_equal(matrix.items_of(0), [0, 1])
        np.testing.assert_array_equal(matrix.items_of(3), [0])
        np.testing.assert_array_equal(matrix.items_of(2), [0])

    def test_append_triples_convenience(self):
        matrix = self._matrix()
        assert matrix.append_triples([(5, 3, 1.5), (0, 1, 2.0)]) == 2
        assert matrix.shape == (6, 4)
        assert matrix.nnz == 5

    def test_arrays_stay_read_only_after_append(self):
        matrix = self._matrix()
        matrix.append(np.array([0]), np.array([0]), np.array([1.0]))
        with pytest.raises(ValueError):
            matrix.vals[0] = 99.0
        with pytest.raises(ValueError):
            matrix.rows[-1] = 0


class TestTransformations:
    def test_iter_triples_matches_storage(self, tiny_matrix):
        triples = list(tiny_matrix.iter_triples())
        assert len(triples) == tiny_matrix.nnz
        assert triples[0] == (0, 0, 5.0)

    def test_select_preserves_shape(self, tiny_matrix):
        subset = tiny_matrix.select(np.array([0, 2, 4]))
        assert subset.shape == tiny_matrix.shape
        assert subset.nnz == 3

    def test_shuffled_preserves_multiset(self, tiny_matrix):
        shuffled = tiny_matrix.shuffled(seed=1)
        assert shuffled.nnz == tiny_matrix.nnz
        assert sorted(shuffled.vals) == sorted(tiny_matrix.vals)
        assert shuffled.shape == tiny_matrix.shape

    def test_shuffled_is_deterministic(self, tiny_matrix):
        a = tiny_matrix.shuffled(seed=5)
        b = tiny_matrix.shuffled(seed=5)
        assert a == b

    def test_shuffled_differs_across_seeds(self, small_matrix):
        a = small_matrix.shuffled(seed=1)
        b = small_matrix.shuffled(seed=2)
        assert not np.array_equal(a.rows, b.rows)

    def test_sample_fraction(self, small_matrix):
        sample = small_matrix.sample(0.25, seed=0)
        assert sample.nnz == pytest.approx(small_matrix.nnz * 0.25, rel=0.05)

    def test_sample_rejects_bad_fraction(self, tiny_matrix):
        with pytest.raises(InvalidMatrixError):
            tiny_matrix.sample(0.0)
        with pytest.raises(InvalidMatrixError):
            tiny_matrix.sample(1.5)

    def test_prefix(self, tiny_matrix):
        prefix = tiny_matrix.prefix(4)
        assert prefix.nnz == 4
        np.testing.assert_array_equal(prefix.rows, tiny_matrix.rows[:4])

    def test_prefix_bounds(self, tiny_matrix):
        with pytest.raises(InvalidMatrixError):
            tiny_matrix.prefix(tiny_matrix.nnz + 1)
        with pytest.raises(InvalidMatrixError):
            tiny_matrix.prefix(-1)

    def test_row_band(self, tiny_matrix):
        band = tiny_matrix.row_band(0, 2)
        assert band.nnz == 5
        assert band.rows.max() <= 1

    def test_row_band_bounds(self, tiny_matrix):
        with pytest.raises(InvalidMatrixError):
            tiny_matrix.row_band(3, 2)
        with pytest.raises(InvalidMatrixError):
            tiny_matrix.row_band(0, 100)

    def test_col_band(self, tiny_matrix):
        band = tiny_matrix.col_band(0, 1)
        assert band.nnz == 3
        assert set(band.cols.tolist()) == {0}

    def test_bands_partition_matrix(self, small_matrix):
        top = small_matrix.row_band(0, 150)
        bottom = small_matrix.row_band(150, small_matrix.n_rows)
        assert top.nnz + bottom.nnz == small_matrix.nnz

    def test_transpose(self, tiny_matrix):
        transposed = tiny_matrix.transpose()
        assert transposed.shape == (5, 6)
        assert transposed.nnz == tiny_matrix.nnz
        np.testing.assert_array_equal(
            transposed.to_dense(), tiny_matrix.to_dense().T
        )

    def test_to_dense_refuses_huge(self):
        matrix = SparseRatingMatrix.from_triples(
            [(0, 0, 1.0)], shape=(100_000, 200_000)
        )
        with pytest.raises(InvalidMatrixError):
            matrix.to_dense()

    def test_equality(self, tiny_matrix):
        same = SparseRatingMatrix(
            tiny_matrix.rows, tiny_matrix.cols, tiny_matrix.vals, shape=(6, 5)
        )
        assert same == tiny_matrix
        assert tiny_matrix != tiny_matrix.transpose()
        assert (tiny_matrix == "not a matrix") is False or True  # NotImplemented path
