"""Tests of the greedy (FPSGD/HSGD) and HSGD* schedulers."""

import pytest

from repro.core import (
    GreedyBlockScheduler,
    HSGDStarScheduler,
    Region,
    nonuniform_partition,
    uniform_partition,
)
from repro.core.partition import hsgd_partition
from repro.exceptions import SchedulingError


def _drain(scheduler, worker_order, steps):
    """Dispatch and immediately complete tasks in a fixed worker order."""
    completed = []
    for step in range(steps):
        worker = worker_order[step % len(worker_order)]
        task = scheduler.next_task(worker)
        if task is None:
            continue
        scheduler.complete_task(task)
        completed.append(task)
    return completed


class TestGreedyScheduler:
    def test_tasks_never_conflict(self, small_matrix):
        grid = uniform_partition(small_matrix, 5, 4)
        scheduler = GreedyBlockScheduler(grid, n_cpu_workers=3, n_gpu_workers=1)
        in_flight = []
        for worker in range(4):
            task = scheduler.next_task(worker)
            assert task is not None
            for other in in_flight:
                assert not (task.row_bands & other.row_bands)
                assert not (task.col_bands & other.col_bands)
            in_flight.append(task)

    def test_returns_none_when_everything_locked(self, tiny_matrix):
        grid = uniform_partition(tiny_matrix, 2, 2)
        scheduler = GreedyBlockScheduler(grid, n_cpu_workers=4, n_gpu_workers=0)
        first = scheduler.next_task(0)
        second = scheduler.next_task(1)
        assert first is not None and second is not None
        # Both rows and both columns are now held.
        assert scheduler.next_task(2) is None

    def test_prefers_least_updated_blocks(self, small_matrix):
        grid = uniform_partition(small_matrix, 4, 4)
        scheduler = GreedyBlockScheduler(grid, n_cpu_workers=1, n_gpu_workers=0, seed=3)
        seen = set()
        for _ in range(16):
            task = scheduler.next_task(0)
            scheduler.complete_task(task)
            seen.add(task.blocks[0].block_id)
        # A lone worker cycling a 4x4 grid must visit every non-empty block
        # before revisiting any (least-updated-first).
        non_empty = sum(1 for block in grid.iter_blocks() if block.nnz > 0)
        assert len(seen) == non_empty

    def test_completion_releases_locks(self, small_matrix):
        grid = uniform_partition(small_matrix, 3, 3)
        scheduler = GreedyBlockScheduler(grid, n_cpu_workers=2, n_gpu_workers=0)
        task = scheduler.next_task(0)
        scheduler.complete_task(task)
        assert scheduler.locks.can_acquire(task.row_bands, task.col_bands)
        assert task.blocks[0].update_count == 1

    def test_abort_releases_without_counting(self, small_matrix):
        grid = uniform_partition(small_matrix, 3, 3)
        scheduler = GreedyBlockScheduler(grid, n_cpu_workers=1, n_gpu_workers=0)
        task = scheduler.next_task(0)
        scheduler.abort_task(task)
        assert task.blocks[0].update_count == 0
        assert scheduler.locks.can_acquire(task.row_bands, task.col_bands)

    def test_worker_identity(self, small_matrix):
        grid = hsgd_partition(small_matrix, 2, 1)
        scheduler = GreedyBlockScheduler(grid, n_cpu_workers=2, n_gpu_workers=1)
        assert not scheduler.is_gpu_worker(0)
        assert scheduler.is_gpu_worker(2)
        with pytest.raises(SchedulingError):
            scheduler.is_gpu_worker(5)

    def test_total_points(self, small_matrix):
        grid = uniform_partition(small_matrix, 2, 2)
        scheduler = GreedyBlockScheduler(grid, n_cpu_workers=1, n_gpu_workers=0)
        assert scheduler.total_points == small_matrix.nnz

    def test_requires_workers(self, small_matrix):
        grid = uniform_partition(small_matrix, 2, 2)
        with pytest.raises(SchedulingError):
            GreedyBlockScheduler(grid, n_cpu_workers=0, n_gpu_workers=0)


class TestHSGDStarScheduler:
    @pytest.fixture()
    def star(self, small_matrix):
        grid = nonuniform_partition(small_matrix, alpha=0.4, n_cpu_threads=4, n_gpus=1)
        return HSGDStarScheduler(
            grid, n_cpu_workers=4, n_gpu_workers=1, dynamic_scheduling=True, seed=0
        )

    def test_gpu_static_task_is_full_column_of_its_row(self, star):
        task = star.next_task(4)  # the GPU worker
        assert task is not None
        assert task.resident_p
        assert len(task.col_bands) == 1
        member_bands = {band.index for band in star.grid.gpu_row_members(0)}
        assert task.row_bands <= member_bands
        assert all(block.region == Region.GPU for block in task.blocks)

    def test_cpu_tasks_stay_in_cpu_region_during_static_phase(self, star):
        for worker in range(4):
            task = star.next_task(worker)
            assert task is not None
            assert len(task.blocks) == 1
            assert task.blocks[0].region == Region.CPU
            assert not task.stolen

    def test_no_conflicts_between_gpu_and_cpu_tasks(self, star):
        gpu_task = star.next_task(4)
        cpu_task = star.next_task(0)
        assert not (gpu_task.col_bands & cpu_task.col_bands)
        assert not (gpu_task.row_bands & cpu_task.row_bands)

    def test_gpu_steals_cpu_blocks_after_quota(self, small_matrix):
        grid = nonuniform_partition(small_matrix, alpha=0.05, n_cpu_threads=4, n_gpus=1)
        scheduler = HSGDStarScheduler(
            grid, n_cpu_workers=4, n_gpu_workers=1, dynamic_scheduling=True, seed=0
        )
        stolen = 0
        for _ in range(200):
            task = scheduler.next_task(4)
            if task is None:
                break
            scheduler.complete_task(task)
            if task.stolen:
                stolen += 1
                assert all(block.region == Region.CPU for block in task.blocks)
        assert stolen > 0
        assert scheduler.steal_counts["gpu"] == stolen

    def test_cpu_steals_gpu_blocks_after_quota(self, small_matrix):
        grid = nonuniform_partition(small_matrix, alpha=0.95, n_cpu_threads=4, n_gpus=1)
        scheduler = HSGDStarScheduler(
            grid, n_cpu_workers=4, n_gpu_workers=1, dynamic_scheduling=True, seed=0
        )
        stolen = 0
        for _ in range(300):
            task = scheduler.next_task(0)
            if task is None:
                break
            scheduler.complete_task(task)
            if task.stolen:
                stolen += 1
                assert all(block.region == Region.GPU for block in task.blocks)
        assert stolen > 0
        assert scheduler.steal_counts["cpu"] == stolen

    def test_static_variant_idles_instead_of_stealing(self, small_matrix):
        grid = nonuniform_partition(small_matrix, alpha=0.05, n_cpu_threads=4, n_gpus=1)
        scheduler = HSGDStarScheduler(
            grid, n_cpu_workers=4, n_gpu_workers=1, dynamic_scheduling=False, seed=0
        )
        saw_none = False
        for _ in range(200):
            task = scheduler.next_task(4)
            if task is None:
                saw_none = True
                break
            assert not task.stolen
            scheduler.complete_task(task)
        assert saw_none
        assert scheduler.steal_counts == {"gpu": 0, "cpu": 0}

    def test_start_iteration_resets_quota(self, small_matrix):
        grid = nonuniform_partition(small_matrix, alpha=0.05, n_cpu_threads=4, n_gpus=1)
        scheduler = HSGDStarScheduler(
            grid, n_cpu_workers=4, n_gpu_workers=1, dynamic_scheduling=False, seed=0
        )
        # Exhaust the GPU region.
        while True:
            task = scheduler.next_task(4)
            if task is None:
                break
            scheduler.complete_task(task)
        scheduler.start_iteration()
        assert scheduler.next_task(4) is not None

    def test_quota_tracks_region_nnz(self, star):
        completed = _drain(star, worker_order=[4, 0, 1, 2, 3], steps=400)
        gpu_points = sum(t.nnz for t in completed if star.is_gpu_worker(t.worker_index))
        total = sum(t.nnz for t in completed)
        # Within one iteration the GPU handles roughly its region share
        # (stealing can add a little on top).
        assert gpu_points <= 0.7 * total

    def test_gpu_falls_back_to_sub_blocks_when_row_partially_held(self, star):
        # A CPU worker steals nothing yet, but lock one GPU sub-row manually
        # to force the GPU out of the full-row static task.
        member = star.grid.gpu_row_members(0)[0]
        star.locks.acquire([member.index], [])
        task = star.next_task(4)
        assert task is not None
        assert len(task.blocks) == 1
        star.locks.release([member.index], [])
