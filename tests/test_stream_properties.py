"""Property-based tests (hypothesis) of the streaming tier's invariants.

Three families of properties pin the contracts ``repro.stream`` relies
on:

* **append interleavings** — any sequence of appends (ratings, pure
  dimension growth, or both) preserves the pre-existing triples bitwise
  as a storage-order prefix, never shrinks a dimension, and bumps the
  version exactly once per call;
* **fold-in optimality** — the fold-in row is the exact minimiser of
  the per-user regularised objective, so it never scores worse than any
  other row (including a perturbed copy of itself) and always matches
  the one-user reference solve;
* **model growth** — :func:`repro.sgd.grow_model` preserves every
  trained factor row bitwise and produces finite factors for newcomers.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sgd import (
    FactorModel,
    fold_in_objective,
    grow_model,
    solve_fold_in,
    train_als,
)
from repro.config import TrainingConfig
from repro.sparse import SparseRatingMatrix

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def append_batches(draw, max_batches=6, max_ratings=30, max_dim=50):
    """A base matrix plus a sequence of append operations."""
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    rng = np.random.default_rng(seed)
    n_batches = draw(st.integers(min_value=1, max_value=max_batches))
    batches = []
    for _ in range(n_batches):
        kind = draw(st.sampled_from(["ratings", "growth", "both"]))
        count = (
            0
            if kind == "growth"
            else draw(st.integers(min_value=1, max_value=max_ratings))
        )
        rows = rng.integers(0, max_dim, count)
        cols = rng.integers(0, max_dim, count)
        vals = rng.uniform(1.0, 5.0, count)
        n_rows = (
            draw(st.integers(min_value=0, max_value=max_dim * 2))
            if kind in ("growth", "both")
            else None
        )
        n_cols = (
            draw(st.integers(min_value=0, max_value=max_dim * 2))
            if kind in ("growth", "both")
            else None
        )
        batches.append((rows, cols, vals, n_rows, n_cols))
    base = SparseRatingMatrix(
        rng.integers(0, 8, 20), rng.integers(0, 6, 20),
        rng.uniform(1.0, 5.0, 20), shape=(8, 6),
    )
    return base, batches


@st.composite
def fold_in_problems(draw, max_groups=8, max_items=40, max_k=8):
    """Random fold-in systems: fixed factors plus grouped ratings."""
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    rng = np.random.default_rng(seed)
    n_items = draw(st.integers(min_value=1, max_value=max_items))
    k = draw(st.integers(min_value=1, max_value=max_k))
    n_groups = draw(st.integers(min_value=1, max_value=max_groups))
    counts = rng.integers(0, 12, n_groups)
    group_ids = np.repeat(np.arange(n_groups), counts)
    fixed_ids = rng.integers(0, n_items, len(group_ids))
    vals = rng.uniform(1.0, 5.0, len(group_ids))
    factors = rng.uniform(-1.0, 1.0, (n_items, k))
    reg = draw(st.floats(min_value=0.01, max_value=1.0))
    return factors, group_ids, fixed_ids, vals, n_groups, reg


class TestAppendInterleavings:
    @SETTINGS
    @given(scenario=append_batches())
    def test_prefix_bitwise_and_dims_monotone(self, scenario):
        matrix, batches = scenario
        rows0 = matrix.rows.copy()
        cols0 = matrix.cols.copy()
        vals0 = matrix.vals.copy()
        shape = matrix.shape
        version = matrix.version
        nnz = matrix.nnz
        for rows, cols, vals, n_rows, n_cols in batches:
            # A requested dimension below the current one must be
            # rejected without mutating anything; clamp it to keep the
            # interleaving going.
            if n_rows is not None and n_rows < matrix.n_rows:
                n_rows = matrix.n_rows
            if n_cols is not None and n_cols < matrix.n_cols:
                n_cols = matrix.n_cols
            added = matrix.append(rows, cols, vals, n_rows=n_rows, n_cols=n_cols)
            assert added == len(vals)
            nnz += added
            version += 1
            # Dimensions never shrink; every call bumps the version.
            assert matrix.n_rows >= shape[0]
            assert matrix.n_cols >= shape[1]
            assert matrix.version == version
            assert matrix.nnz == nnz
            shape = matrix.shape
            # The original triples survive bitwise as the storage prefix.
            np.testing.assert_array_equal(matrix.rows[: len(rows0)], rows0)
            np.testing.assert_array_equal(matrix.cols[: len(cols0)], cols0)
            np.testing.assert_array_equal(matrix.vals[: len(vals0)], vals0)

    @SETTINGS
    @given(scenario=append_batches())
    def test_csr_always_reflects_current_contents(self, scenario):
        matrix, batches = scenario
        for rows, cols, vals, n_rows, n_cols in batches:
            if n_rows is not None and n_rows < matrix.n_rows:
                n_rows = matrix.n_rows
            if n_cols is not None and n_cols < matrix.n_cols:
                n_cols = matrix.n_cols
            matrix.items_of(0)  # warm the CSR cache before mutating
            matrix.append(rows, cols, vals, n_rows=n_rows, n_cols=n_cols)
            indptr, indices = matrix.csr_rows()
            assert indptr[-1] == matrix.nnz
            user = int(matrix.rows[-1]) if matrix.nnz else 0
            expected = np.sort(matrix.cols[matrix.rows == user])
            np.testing.assert_array_equal(matrix.items_of(user), expected)


class TestFoldInOptimality:
    @SETTINGS
    @given(problem=fold_in_problems())
    def test_matches_reference_solve(self, problem):
        factors, group_ids, fixed_ids, vals, n_groups, reg = problem
        rows, counts = solve_fold_in(
            factors, group_ids, fixed_ids, vals, n_groups, reg
        )
        k = factors.shape[1]
        for group in range(n_groups):
            mask = group_ids == group
            if not mask.any():
                np.testing.assert_array_equal(rows[group], np.zeros(k))
                continue
            sub = factors[fixed_ids[mask]]
            expected = np.linalg.solve(
                sub.T @ sub + reg * mask.sum() * np.eye(k),
                sub.T @ vals[mask],
            )
            np.testing.assert_allclose(rows[group], expected, atol=1e-8)

    @SETTINGS
    @given(
        problem=fold_in_problems(),
        perturb_seed=st.integers(0, 2 ** 16),
        scale=st.floats(min_value=1e-4, max_value=10.0),
    )
    def test_fold_in_row_minimises_objective(
        self, problem, perturb_seed, scale
    ):
        factors, group_ids, fixed_ids, vals, n_groups, reg = problem
        rows, counts = solve_fold_in(
            factors, group_ids, fixed_ids, vals, n_groups, reg
        )
        rng = np.random.default_rng(perturb_seed)
        for group in np.flatnonzero(counts):
            mask = group_ids == group
            ids, group_vals = fixed_ids[mask], vals[mask]
            optimum = fold_in_objective(
                rows[group], factors, ids, group_vals, reg
            )
            other = rows[group] + rng.normal(0.0, scale, size=len(rows[group]))
            assert optimum <= fold_in_objective(
                other, factors, ids, group_vals, reg
            ) + 1e-9


class TestTrainedUserConsistency:
    @SETTINGS
    @given(seed=st.integers(0, 2 ** 10))
    def test_fold_in_of_trained_user_matches_trained_row(self, seed):
        """Fold-in against the final Q reproduces a trained user's row.

        ALS ends each iteration with the Q half-step, so the trained P
        row is the exact minimiser against the *previous* Q; near
        convergence that is within tolerance of the fold-in solution
        against the final Q — and by convexity the fold-in row can never
        score a worse regularised objective.
        """
        rng = np.random.default_rng(seed)
        m, n, k = 30, 20, 3
        p_true = rng.uniform(0.0, 1.0, (m, k))
        q_true = rng.uniform(0.0, 1.0, (k, n))
        rows = np.repeat(np.arange(m), 8)
        cols = rng.integers(0, n, len(rows))
        vals = np.einsum("ik,ki->i", p_true[rows], q_true[:, cols])
        matrix = SparseRatingMatrix(rows, cols, vals, shape=(m, n))
        config = TrainingConfig(
            latent_factors=k, learning_rate=0.05, iterations=25
        )
        model, _ = train_als(matrix, config)

        user = int(rng.integers(0, m))
        mask = rows == user
        ids, rated = model.fold_in_users(
            rows[mask], cols[mask], vals[mask], regularization=config.reg_p
        )
        assert ids.tolist() == [user]
        folded = rated[0]
        trained = model.p[user]
        np.testing.assert_allclose(folded, trained, atol=5e-2)
        q_t = model.q.T
        assert fold_in_objective(
            folded, q_t, cols[mask], vals[mask], config.reg_p
        ) <= fold_in_objective(
            trained, q_t, cols[mask], vals[mask], config.reg_p
        ) + 1e-9


class TestGrowModel:
    @SETTINGS
    @given(
        seed=st.integers(0, 2 ** 16),
        extra_users=st.integers(0, 10),
        extra_items=st.integers(0, 10),
    )
    def test_trained_rows_preserved_bitwise(
        self, seed, extra_users, extra_items
    ):
        rng = np.random.default_rng(seed)
        m, n, k = 12, 9, 4
        model = FactorModel.initialize(m, n, k, seed=seed)
        p_before = model.p.copy()
        q_before = model.q.copy()
        count = 40
        rows = rng.integers(0, m + extra_users, count)
        cols = rng.integers(0, n + extra_items, count)
        matrix = SparseRatingMatrix(
            rows, cols, rng.uniform(1.0, 5.0, count),
            shape=(m + extra_users, n + extra_items),
        )
        grown = grow_model(
            model, matrix, (m, n), reg_p=0.05, reg_q=0.05, seed=seed
        )
        assert grown.shape == matrix.shape
        np.testing.assert_array_equal(grown.p[:m], p_before)
        np.testing.assert_array_equal(grown.q[:, :n], q_before)
        assert np.all(np.isfinite(grown.p))
        assert np.all(np.isfinite(grown.q))
        # The input model is never mutated.
        np.testing.assert_array_equal(model.p, p_before)
        np.testing.assert_array_equal(model.q, q_before)
