"""Tests of the factor model and the loss/error metrics."""

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.exceptions import InvalidMatrixError
from repro.sgd import FactorModel, mae, pointwise_errors, regularized_loss, rmse
from repro.sparse import SparseRatingMatrix


class TestFactorModel:
    def test_initialize_shapes(self):
        model = FactorModel.initialize(10, 7, 4, seed=0)
        assert model.p.shape == (10, 4)
        assert model.q.shape == (4, 7)
        assert model.shape == (10, 7)
        assert model.latent_factors == 4

    def test_initialize_deterministic(self):
        a = FactorModel.initialize(5, 5, 3, seed=1)
        b = FactorModel.initialize(5, 5, 3, seed=1)
        np.testing.assert_array_equal(a.p, b.p)

    def test_initialize_scale(self):
        model = FactorModel.initialize(100, 100, 4, seed=0, scale=0.1)
        assert model.p.max() <= 0.1
        assert model.p.min() >= 0.0

    def test_initialize_validation(self):
        with pytest.raises(InvalidMatrixError):
            FactorModel.initialize(0, 5, 3)
        with pytest.raises(InvalidMatrixError):
            FactorModel.initialize(5, 5, 0)

    def test_constructor_validates_inner_dims(self):
        with pytest.raises(InvalidMatrixError):
            FactorModel(np.zeros((3, 2)), np.zeros((3, 4)))

    def test_for_matrix(self, tiny_matrix):
        config = TrainingConfig(latent_factors=6, seed=2)
        model = FactorModel.for_matrix(tiny_matrix, config)
        assert model.shape == tiny_matrix.shape
        assert model.latent_factors == 6

    def test_predict_matches_manual(self):
        p = np.array([[1.0, 2.0], [0.5, 0.5]])
        q = np.array([[1.0, 0.0], [0.0, 2.0]])
        model = FactorModel(p, q)
        assert model.predict_single(0, 1) == pytest.approx(4.0)
        np.testing.assert_allclose(
            model.predict(np.array([0, 1]), np.array([1, 0])), [4.0, 0.5]
        )

    def test_predict_matrix_order(self, tiny_matrix):
        model = FactorModel.initialize(6, 5, 3, seed=0)
        predictions = model.predict_matrix(tiny_matrix)
        assert len(predictions) == tiny_matrix.nnz
        assert predictions[0] == pytest.approx(
            model.predict_single(int(tiny_matrix.rows[0]), int(tiny_matrix.cols[0]))
        )

    def test_predict_rejects_out_of_range_users(self):
        model = FactorModel.initialize(6, 5, 3, seed=0)
        with pytest.raises(InvalidMatrixError):
            model.predict(np.array([6]), np.array([0]))
        with pytest.raises(InvalidMatrixError):
            model.predict(np.array([0]), np.array([5]))

    def test_predict_rejects_negative_ids(self):
        # Numpy fancy indexing would silently wrap -1 to the last row;
        # predict must refuse instead.
        model = FactorModel.initialize(6, 5, 3, seed=0)
        with pytest.raises(InvalidMatrixError):
            model.predict(np.array([-1]), np.array([0]))
        with pytest.raises(InvalidMatrixError):
            model.predict(np.array([0]), np.array([-1]))
        with pytest.raises(InvalidMatrixError):
            model.predict_single(-1, 0)
        with pytest.raises(InvalidMatrixError):
            model.predict_single(0, -2)

    def test_predict_rejects_mismatched_shapes(self):
        model = FactorModel.initialize(6, 5, 3, seed=0)
        with pytest.raises(InvalidMatrixError):
            model.predict(np.array([0, 1]), np.array([0]))

    def test_predict_preserves_float64_dtype(self):
        model = FactorModel.initialize(6, 5, 3, seed=0)
        out = model.predict([0, 1, 2], [0, 1, 2])
        assert out.dtype == np.float64
        # Python-list and int32 index inputs behave identically.
        np.testing.assert_array_equal(
            out,
            model.predict(
                np.array([0, 1, 2], dtype=np.int32),
                np.array([0, 1, 2], dtype=np.int32),
            ),
        )

    def test_predict_empty_arrays(self):
        model = FactorModel.initialize(6, 5, 3, seed=0)
        out = model.predict(np.array([], dtype=int), np.array([], dtype=int))
        assert out.shape == (0,)
        assert out.dtype == np.float64

    def test_full_reconstruction(self):
        model = FactorModel.initialize(4, 3, 2, seed=0)
        np.testing.assert_allclose(model.full_reconstruction(), model.p @ model.q)

    def test_top_items_ranking(self):
        p = np.array([[1.0, 0.0]])
        q = np.array([[0.1, 0.9, 0.5], [0.0, 0.0, 0.0]])
        model = FactorModel(p, q)
        top = model.top_items(0, count=2)
        assert top.tolist() == [1, 2]

    def test_top_items_caps_count(self):
        model = FactorModel.initialize(2, 3, 2, seed=0)
        assert len(model.top_items(0, count=10)) == 3

    def test_copy_is_independent(self):
        model = FactorModel.initialize(3, 3, 2, seed=0)
        clone = model.copy()
        clone.p[0, 0] = 99.0
        assert model.p[0, 0] != 99.0

    def test_save_and_load(self, tmp_path):
        model = FactorModel.initialize(4, 5, 3, seed=1)
        path = tmp_path / "model"
        model.save(path)
        loaded = FactorModel.load(path)
        np.testing.assert_array_equal(loaded.p, model.p)
        np.testing.assert_array_equal(loaded.q, model.q)


class TestLosses:
    @pytest.fixture()
    def perfect_model(self, tiny_matrix):
        """A rank-30 model that reproduces the tiny matrix exactly."""
        dense = tiny_matrix.to_dense()
        u, s, vt = np.linalg.svd(dense, full_matrices=False)
        p = u * s
        return FactorModel(p, vt)

    def test_rmse_zero_for_perfect_model(self, tiny_matrix, perfect_model):
        assert rmse(perfect_model, tiny_matrix) == pytest.approx(0.0, abs=1e-9)

    def test_mae_zero_for_perfect_model(self, tiny_matrix, perfect_model):
        assert mae(perfect_model, tiny_matrix) == pytest.approx(0.0, abs=1e-9)

    def test_rmse_of_zero_model(self, tiny_matrix):
        model = FactorModel(np.zeros((6, 2)), np.zeros((2, 5)))
        expected = float(np.sqrt(np.mean(tiny_matrix.vals ** 2)))
        assert rmse(model, tiny_matrix) == pytest.approx(expected)

    def test_pointwise_errors_sign(self, tiny_matrix):
        model = FactorModel(np.zeros((6, 2)), np.zeros((2, 5)))
        errors = pointwise_errors(model, tiny_matrix)
        np.testing.assert_allclose(errors, tiny_matrix.vals)

    def test_rmse_requires_ratings(self):
        empty = SparseRatingMatrix.from_triples([], shape=(2, 2))
        model = FactorModel.initialize(2, 2, 2)
        with pytest.raises(InvalidMatrixError):
            rmse(model, empty)
        with pytest.raises(InvalidMatrixError):
            mae(model, empty)

    def test_regularized_loss_exceeds_squared_error(self, tiny_matrix):
        model = FactorModel.initialize(6, 5, 3, seed=0)
        plain = regularized_loss(model, tiny_matrix, reg_p=0.0, reg_q=0.0)
        regularised = regularized_loss(model, tiny_matrix, reg_p=0.5, reg_q=0.5)
        assert regularised > plain

    def test_regularized_loss_matches_manual(self, tiny_matrix):
        model = FactorModel.initialize(6, 5, 2, seed=3)
        loss = regularized_loss(model, tiny_matrix, reg_p=0.1, reg_q=0.2)
        manual = 0.0
        for u, v, r in tiny_matrix.iter_triples():
            error = r - model.predict_single(u, v)
            manual += error ** 2
            manual += 0.1 * float(model.p[u] @ model.p[u])
            manual += 0.2 * float(model.q[:, v] @ model.q[:, v])
        assert loss == pytest.approx(manual)
