"""Tests of the block grid, locks, tasks and matrix-division strategies."""

import numpy as np
import pytest

from repro.core import (
    BlockGrid,
    GridBlock,
    LockTable,
    Region,
    RowBand,
    Task,
    gpu_only_partition,
    nonuniform_partition,
    rule1_grid_shape,
    uniform_partition,
)
from repro.core.partition import hsgd_partition
from repro.exceptions import InvalidPartitionError, SchedulingError


class TestRule1:
    def test_paper_example(self):
        """16 CPU threads + 1 GPU need at least an 18 x 17 grid."""
        assert rule1_grid_shape(16, 1) == (18, 17)

    def test_cpu_only(self):
        assert rule1_grid_shape(4, 0) == (5, 4)

    def test_single_worker(self):
        assert rule1_grid_shape(1, 0) == (2, 1)

    def test_rejects_no_workers(self):
        with pytest.raises(InvalidPartitionError):
            rule1_grid_shape(0, 0)


class TestUniformPartition:
    def test_covers_matrix(self, small_matrix):
        grid = uniform_partition(small_matrix, 5, 4)
        assert grid.n_row_bands == 5
        assert grid.n_col_bands == 4
        assert grid.total_nnz == small_matrix.nnz

    def test_blocks_are_shared_region(self, small_matrix):
        grid = uniform_partition(small_matrix, 3, 3)
        assert all(block.region == Region.SHARED for block in grid.iter_blocks())

    def test_blocks_load_balanced(self, small_matrix):
        grid = uniform_partition(small_matrix, 4, 4)
        nnz = grid.nnz_matrix()
        expected = small_matrix.nnz / 16
        assert nnz.max() < 4 * expected

    def test_band_count_clamped_to_extent(self, tiny_matrix):
        grid = uniform_partition(tiny_matrix, 100, 100)
        assert grid.n_row_bands <= tiny_matrix.n_rows
        assert grid.n_col_bands <= tiny_matrix.n_cols
        assert grid.total_nnz == tiny_matrix.nnz

    def test_rejects_bad_band_counts(self, tiny_matrix):
        with pytest.raises(InvalidPartitionError):
            uniform_partition(tiny_matrix, 0, 2)

    def test_hsgd_partition_obeys_rule1(self, small_matrix):
        grid = hsgd_partition(small_matrix, 4, 1)
        assert grid.n_row_bands == 6
        assert grid.n_col_bands == 5

    def test_gpu_only_partition(self, small_matrix):
        grid = gpu_only_partition(small_matrix, 1)
        assert grid.n_row_bands == 2
        assert grid.n_col_bands == 2
        assert grid.total_nnz == small_matrix.nnz
        with pytest.raises(InvalidPartitionError):
            gpu_only_partition(small_matrix, 0)


class TestNonuniformPartition:
    def test_figure9_structure(self, small_matrix):
        """nc=4, ng=1: 4+2+1=7 columns, 5 CPU rows, 1 GPU row of 5 sub-rows."""
        grid = nonuniform_partition(small_matrix, alpha=0.4, n_cpu_threads=4, n_gpus=1)
        assert grid.n_col_bands == 7
        cpu_bands = grid.row_bands_in_region(Region.CPU)
        gpu_bands = grid.row_bands_in_region(Region.GPU)
        assert len(cpu_bands) == 5            # nc + ng
        assert len(gpu_bands) == 5            # ng rows x ceil((nc+ng)/ng) sub-rows
        assert grid.n_gpu_rows() == 1
        assert grid.total_nnz == small_matrix.nnz

    def test_alpha_controls_gpu_share(self, small_matrix):
        for alpha in (0.2, 0.5, 0.8):
            grid = nonuniform_partition(
                small_matrix, alpha=alpha, n_cpu_threads=4, n_gpus=1
            )
            gpu_nnz = grid.region_nnz(Region.GPU)
            assert gpu_nnz / small_matrix.nnz == pytest.approx(alpha, abs=0.08)

    def test_multiple_gpus_get_multiple_rows(self, small_matrix):
        grid = nonuniform_partition(small_matrix, alpha=0.5, n_cpu_threads=4, n_gpus=2)
        assert grid.n_gpu_rows() == 2
        assert grid.n_col_bands == 4 + 4 + 1
        # Each GPU row is split into ceil((4+2)/2) = 3 sub-rows.
        assert len(grid.gpu_row_members(0)) == 3
        assert len(grid.gpu_row_members(1)) == 3

    def test_alpha_zero_is_cpu_only(self, small_matrix):
        grid = nonuniform_partition(small_matrix, alpha=0.0, n_cpu_threads=4, n_gpus=1)
        assert grid.region_nnz(Region.GPU) == 0
        assert grid.region_nnz(Region.CPU) == small_matrix.nnz

    def test_alpha_one_is_gpu_only(self, small_matrix):
        grid = nonuniform_partition(small_matrix, alpha=1.0, n_cpu_threads=0, n_gpus=1)
        assert grid.region_nnz(Region.CPU) == 0
        assert grid.region_nnz(Region.GPU) == small_matrix.nnz

    def test_column_scale(self, small_matrix):
        narrow = nonuniform_partition(
            small_matrix, 0.4, 4, 1, column_scale=0.5
        )
        wide = nonuniform_partition(small_matrix, 0.4, 4, 1, column_scale=2.0)
        assert narrow.n_col_bands < wide.n_col_bands

    def test_rows_tile_matrix(self, small_matrix):
        grid = nonuniform_partition(small_matrix, 0.45, 4, 1)
        stops = [band.row_range for band in grid.row_bands]
        assert stops[0][0] == 0
        assert stops[-1][1] == small_matrix.n_rows
        for previous, current in zip(stops, stops[1:]):
            assert previous[1] == current[0]

    def test_validation(self, small_matrix):
        with pytest.raises(InvalidPartitionError):
            nonuniform_partition(small_matrix, 1.5, 4, 1)
        with pytest.raises(InvalidPartitionError):
            nonuniform_partition(small_matrix, 0.5, 0, 0)


class TestBlockGrid:
    def test_build_validates_row_band_tiling(self, tiny_matrix):
        bands = [
            RowBand(index=0, row_range=(0, 2), region=Region.SHARED),
            RowBand(index=1, row_range=(3, 6), region=Region.SHARED),  # gap at 2
        ]
        with pytest.raises(InvalidPartitionError):
            BlockGrid.build(tiny_matrix, bands, [0, 5])

    def test_build_validates_coverage(self, tiny_matrix):
        bands = [RowBand(index=0, row_range=(0, 4), region=Region.SHARED)]
        with pytest.raises(InvalidPartitionError):
            BlockGrid.build(tiny_matrix, bands, [0, 5])

    def test_update_counts_and_reset(self, small_matrix):
        grid = uniform_partition(small_matrix, 2, 2)
        block = grid.block(0, 0)
        block.update_count += 3
        block.points_this_iteration += 10
        assert grid.update_counts()[0, 0] == 3
        grid.reset_iteration_counters()
        assert block.points_this_iteration == 0
        assert block.update_count == 3  # cumulative counter survives

    def test_block_geometry_properties(self, small_matrix):
        grid = uniform_partition(small_matrix, 2, 3)
        block = grid.block(1, 2)
        assert block.p_rows == block.row_range[1] - block.row_range[0]
        assert block.q_cols == block.col_range[1] - block.col_range[0]
        assert "GridBlock" in repr(block)

    def test_region_queries(self, small_matrix):
        grid = nonuniform_partition(small_matrix, 0.4, 4, 1)
        gpu_blocks = grid.blocks_in_region(Region.GPU)
        cpu_blocks = grid.blocks_in_region(Region.CPU)
        assert len(gpu_blocks) + len(cpu_blocks) == grid.n_blocks
        assert grid.region_nnz(Region.GPU) + grid.region_nnz(Region.CPU) == small_matrix.nnz


class TestLockTable:
    def test_acquire_release_cycle(self):
        locks = LockTable(4, 4)
        assert locks.can_acquire([0], [1])
        locks.acquire([0], [1])
        assert not locks.row_free(0)
        assert not locks.col_free(1)
        assert locks.row_free(1)
        locks.release([0], [1])
        assert locks.row_free(0)

    def test_conflicting_acquire_rejected(self):
        locks = LockTable(3, 3)
        locks.acquire([0], [0])
        with pytest.raises(SchedulingError):
            locks.acquire([0], [2])
        with pytest.raises(SchedulingError):
            locks.acquire([1], [0])

    def test_double_release_rejected(self):
        locks = LockTable(3, 3)
        locks.acquire([1], [1])
        locks.release([1], [1])
        with pytest.raises(SchedulingError):
            locks.release([1], [1])

    def test_multi_band_acquire(self):
        locks = LockTable(5, 5)
        locks.acquire([0, 1, 2], [3])
        assert not locks.can_acquire([2], [4])
        assert locks.can_acquire([3, 4], [0])
        locks.release([0, 1, 2], [3])
        assert locks.can_acquire([2], [4])

    def test_release_all(self):
        locks = LockTable(2, 2)
        locks.acquire([0, 1], [0, 1])
        locks.release_all()
        assert locks.can_acquire([0, 1], [0, 1])

    def test_out_of_range_band(self):
        locks = LockTable(2, 2)
        with pytest.raises(SchedulingError):
            locks.row_free(5)
        with pytest.raises(SchedulingError):
            locks.col_free(-1)

    def test_locked_sets_are_copies(self):
        locks = LockTable(2, 2)
        locks.acquire([0], [0])
        snapshot = locks.locked_rows
        snapshot.add(1)
        assert locks.row_free(1)


class TestTask:
    def _block(self, block_id, row, col, nnz=4, region=Region.CPU):
        return GridBlock(
            block_id=block_id,
            row_band=row,
            col_band=col,
            row_range=(row * 10, row * 10 + 10),
            col_range=(col * 10, col * 10 + 10),
            indices=np.arange(nnz),
            region=region,
        )

    def test_single_block_task(self):
        task = Task(blocks=[self._block(0, 0, 0)], worker_index=2)
        assert task.nnz == 4
        assert task.row_bands == {0}
        assert task.col_bands == {0}
        assert task.p_rows == 10
        assert task.q_cols == 10

    def test_multi_block_column_task(self):
        blocks = [self._block(i, i, 3, nnz=2, region=Region.GPU) for i in range(3)]
        task = Task(blocks=blocks, worker_index=0, resident_p=True)
        assert task.nnz == 6
        assert task.row_bands == {0, 1, 2}
        assert task.col_bands == {3}
        assert task.q_cols == 10      # shared column range counted once
        assert task.p_rows == 30

    def test_block_work_respects_residency(self):
        block = self._block(0, 0, 0)
        resident = Task(blocks=[block], worker_index=0, resident_p=True)
        moving = Task(blocks=[block], worker_index=0, resident_p=False)
        assert resident.block_work(8).p_rows == 0
        assert moving.block_work(8).p_rows == 10

    def test_mark_processed_updates_counters(self):
        block = self._block(0, 0, 0, nnz=7)
        task = Task(blocks=[block], worker_index=1)
        task.mark_processed()
        assert block.update_count == 1
        assert block.points_this_iteration == 7

    def test_indices_concatenated_and_cached(self):
        blocks = [self._block(0, 0, 0, nnz=3), self._block(1, 1, 0, nnz=2)]
        task = Task(blocks=blocks, worker_index=0)
        assert len(task.indices()) == 5
        assert task.indices() is task.indices()

    def test_empty_task_rejected(self):
        with pytest.raises(SchedulingError):
            Task(blocks=[], worker_index=0)
