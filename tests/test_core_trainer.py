"""Tests of the algorithm registry and the high-level trainer API."""

import pytest

from repro.config import HardwareConfig
from repro.core import ALGORITHMS, HeterogeneousTrainer, factorize
from repro.core.algorithms import (
    build_grid,
    build_scheduler,
    effective_hardware,
    get_algorithm,
)
from repro.core.grid import Region
from repro.exceptions import ConfigurationError


class TestAlgorithmRegistry:
    def test_all_paper_algorithms_present(self):
        assert set(ALGORITHMS) == {
            "cpu_only", "gpu_only", "hsgd", "hsgd_star", "hsgd_star_m", "hsgd_star_q",
        }

    def test_labels_match_paper(self):
        assert ALGORITHMS["hsgd_star"].label == "HSGD*"
        assert ALGORITHMS["hsgd_star_q"].label == "HSGD*-Q"

    def test_variant_flags(self):
        assert ALGORITHMS["hsgd_star"].dynamic_scheduling
        assert not ALGORITHMS["hsgd_star_m"].dynamic_scheduling
        assert ALGORITHMS["hsgd_star_q"].cost_model == "qilin"
        assert ALGORITHMS["hsgd"].cost_model is None

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            get_algorithm("nope")

    def test_effective_hardware_restricts_resources(self, small_hardware):
        cpu_only = effective_hardware(get_algorithm("cpu_only"), small_hardware)
        assert cpu_only.gpu_count == 0 and cpu_only.cpu_threads == 4
        gpu_only = effective_hardware(get_algorithm("gpu_only"), small_hardware)
        assert gpu_only.cpu_threads == 0 and gpu_only.gpu_count == 1

    def test_effective_hardware_rejects_missing_resources(self):
        hardware = HardwareConfig(cpu_threads=4, gpu_count=0)
        with pytest.raises(ConfigurationError):
            effective_hardware(get_algorithm("gpu_only"), hardware)

    def test_build_grid_per_division(self, small_matrix, small_hardware):
        uniform = build_grid(get_algorithm("hsgd"), small_matrix, small_hardware)
        assert uniform.n_row_bands == 6 and uniform.n_col_bands == 5
        nonuniform = build_grid(
            get_algorithm("hsgd_star"), small_matrix, small_hardware, alpha=0.4
        )
        assert nonuniform.region_nnz(Region.GPU) > 0
        with pytest.raises(ConfigurationError):
            build_grid(get_algorithm("hsgd_star"), small_matrix, small_hardware)

    def test_build_scheduler_types(self, small_matrix, small_hardware):
        from repro.core import GreedyBlockScheduler, HSGDStarScheduler

        uniform = build_grid(get_algorithm("hsgd"), small_matrix, small_hardware)
        assert isinstance(
            build_scheduler(get_algorithm("hsgd"), uniform, small_hardware),
            GreedyBlockScheduler,
        )
        nonuniform = build_grid(
            get_algorithm("hsgd_star"), small_matrix, small_hardware, alpha=0.4
        )
        scheduler = build_scheduler(
            get_algorithm("hsgd_star_m"), nonuniform, small_hardware
        )
        assert isinstance(scheduler, HSGDStarScheduler)
        assert not scheduler.dynamic_scheduling


class TestHeterogeneousTrainer:
    def test_fit_returns_complete_result(
        self, small_split, small_hardware, small_training, scaled_preset
    ):
        train, test = small_split
        trainer = HeterogeneousTrainer(
            algorithm="hsgd_star",
            hardware=small_hardware,
            training=small_training,
            preset=scaled_preset,
        )
        result = trainer.fit(train, test, iterations=3)
        assert result.algorithm == "hsgd_star"
        assert result.engine_time > 0
        assert result.final_test_rmse is not None
        assert 0.0 <= result.alpha <= 1.0
        assert result.calibration is not None
        assert len(result.rmse_curve()) == 3

    def test_calibration_is_cached(
        self, small_split, small_hardware, small_training, scaled_preset
    ):
        train, test = small_split
        trainer = HeterogeneousTrainer(
            algorithm="hsgd_star_m",
            hardware=small_hardware,
            training=small_training,
            preset=scaled_preset,
        )
        first = trainer.calibrate(train)
        result = trainer.fit(train, test, iterations=2)
        assert result.calibration is first

    def test_workload_split_none_for_uniform(self, small_split, small_hardware, small_training, scaled_preset):
        train, _ = small_split
        trainer = HeterogeneousTrainer(
            algorithm="hsgd",
            hardware=small_hardware,
            training=small_training,
            preset=scaled_preset,
        )
        assert trainer.workload_split(train) is None

    def test_workload_split_differs_between_cost_models(
        self, small_split, small_hardware, small_training, scaled_preset
    ):
        train, _ = small_split
        paper = HeterogeneousTrainer(
            "hsgd_star_m", small_hardware, small_training, scaled_preset
        ).workload_split(train)
        qilin = HeterogeneousTrainer(
            "hsgd_star_q", small_hardware, small_training, scaled_preset
        ).workload_split(train)
        assert paper is not None and qilin is not None
        assert paper.alpha != pytest.approx(qilin.alpha, abs=1e-3)

    def test_alpha_override(self, small_split, small_hardware, small_training, scaled_preset):
        train, test = small_split
        trainer = HeterogeneousTrainer(
            "hsgd_star_m", small_hardware, small_training, scaled_preset
        )
        result = trainer.fit(train, test, iterations=2, alpha_override=0.6)
        assert result.alpha == pytest.approx(0.6)

    def test_cpu_only_and_gpu_only_trainers(
        self, small_split, small_hardware, small_training, scaled_preset
    ):
        train, test = small_split
        for algorithm, expected_gpu_share in (("cpu_only", 0.0), ("gpu_only", 1.0)):
            trainer = HeterogeneousTrainer(
                algorithm, small_hardware, small_training, scaled_preset
            )
            result = trainer.fit(train, test, iterations=2)
            share = result.trace.resource_share()
            assert share["gpu"] == pytest.approx(expected_gpu_share)
            assert result.alpha is None

    def test_target_rmse_path(self, small_split, small_hardware, small_training, scaled_preset):
        train, test = small_split
        trainer = HeterogeneousTrainer(
            "cpu_only", small_hardware, small_training, scaled_preset
        )
        probe = trainer.fit(train, test, iterations=6)
        target = probe.trace.iterations[2].test_rmse
        fresh = HeterogeneousTrainer(
            "cpu_only", small_hardware, small_training, scaled_preset
        )
        result = fresh.fit(train, test, iterations=10, target_rmse=target)
        assert result.converged
        assert result.time_to_rmse(target) is not None

    def test_unknown_algorithm(self, small_hardware):
        with pytest.raises(ConfigurationError):
            HeterogeneousTrainer(algorithm="fancy", hardware=small_hardware)

    def test_factorize_convenience(self, small_split, small_hardware, small_training, scaled_preset):
        train, test = small_split
        result = factorize(
            train,
            test,
            algorithm="hsgd",
            hardware=small_hardware,
            training=small_training,
            preset=scaled_preset,
            iterations=2,
        )
        assert result.algorithm == "hsgd"
        assert len(result.trace.iterations) == 2
