"""Tests of the discrete-event simulation engine and execution traces."""

import pytest

from repro.config import HardwareConfig
from repro.core import (
    GreedyBlockScheduler,
    HSGDStarScheduler,
    nonuniform_partition,
)
from repro.core.partition import hsgd_partition
from repro.exceptions import SimulationError
from repro.hardware import HeterogeneousPlatform
from repro.sgd import rmse
from repro.sim import ExecutionTrace, IterationRecord, SimulationEngine, TaskRecord
from repro.sim.trace import WorkerStats


def _engine(train, test, platform, training, scheduler, **kwargs):
    return SimulationEngine(
        scheduler=scheduler,
        platform=platform,
        train=train,
        training=training,
        test=test,
        **kwargs,
    )


class TestEngineBasics:
    def test_runs_requested_iterations(self, small_split, small_platform, small_training):
        train, test = small_split
        grid = hsgd_partition(train, 4, 1)
        scheduler = GreedyBlockScheduler(grid, 4, 1)
        engine = _engine(train, test, small_platform, small_training, scheduler)
        result = engine.run(iterations=3)
        assert len(result.trace.iterations) == 3
        assert result.trace.final_time > 0
        assert result.engine_time == result.trace.final_time

    def test_processed_points_match_iterations(self, small_split, small_platform, small_training):
        train, test = small_split
        grid = hsgd_partition(train, 4, 1)
        scheduler = GreedyBlockScheduler(grid, 4, 1)
        engine = _engine(train, test, small_platform, small_training, scheduler)
        result = engine.run(iterations=2)
        assert result.trace.total_points() >= 2 * train.nnz
        # Not much overshoot either: at most one in-flight task per worker.
        assert result.trace.total_points() < 2 * train.nnz + 5 * train.nnz / 4

    def test_rmse_decreases_over_iterations(self, small_split, small_platform, small_training):
        train, test = small_split
        grid = hsgd_partition(train, 4, 1)
        scheduler = GreedyBlockScheduler(grid, 4, 1)
        engine = _engine(train, test, small_platform, small_training, scheduler)
        result = engine.run(iterations=5)
        curve = [record.test_rmse for record in result.trace.iterations]
        assert curve[-1] < curve[0]

    def test_model_updates_are_real(self, small_split, small_platform, small_training):
        train, test = small_split
        grid = hsgd_partition(train, 4, 1)
        scheduler = GreedyBlockScheduler(grid, 4, 1)
        engine = _engine(train, test, small_platform, small_training, scheduler)
        before = rmse(engine.model, test)
        result = engine.run(iterations=4)
        assert rmse(result.model, test) < before

    def test_target_rmse_stops_early(self, small_split, small_platform, small_training):
        train, test = small_split
        grid = hsgd_partition(train, 4, 1)
        scheduler = GreedyBlockScheduler(grid, 4, 1)
        engine = _engine(train, test, small_platform, small_training, scheduler)
        baseline = _engine(
            train, test, small_platform, small_training,
            GreedyBlockScheduler(hsgd_partition(train, 4, 1), 4, 1),
        ).run(iterations=8)
        midway_rmse = baseline.trace.iterations[3].test_rmse
        result = engine.run(iterations=8, target_rmse=midway_rmse)
        assert result.converged
        assert result.trace.target_reached_at is not None
        assert len(result.trace.iterations) <= 8

    def test_unreachable_target_does_not_converge(self, small_split, small_platform, small_training):
        train, test = small_split
        grid = hsgd_partition(train, 4, 1)
        scheduler = GreedyBlockScheduler(grid, 4, 1)
        engine = _engine(train, test, small_platform, small_training, scheduler)
        result = engine.run(iterations=2, target_rmse=1e-9)
        assert not result.converged
        assert result.trace.target_reached_at is None

    def test_target_requires_test_set(self, small_split, small_platform, small_training):
        train, _ = small_split
        grid = hsgd_partition(train, 4, 1)
        scheduler = GreedyBlockScheduler(grid, 4, 1)
        engine = SimulationEngine(
            scheduler=scheduler, platform=small_platform, train=train,
            training=small_training,
        )
        with pytest.raises(SimulationError):
            engine.run(target_rmse=0.5)

    def test_max_simulated_time_cap(self, small_split, small_platform, small_training):
        train, test = small_split
        grid = hsgd_partition(train, 4, 1)
        scheduler = GreedyBlockScheduler(grid, 4, 1)
        engine = _engine(train, test, small_platform, small_training, scheduler)
        long_run = engine.run(iterations=4)
        budget = long_run.trace.final_time
        capped = _engine(
            train, test, small_platform, small_training,
            GreedyBlockScheduler(hsgd_partition(train, 4, 1), 4, 1),
        ).run(iterations=4, max_simulated_time=budget / 2)
        assert capped.trace.final_time <= budget / 2 + budget

    def test_worker_count_mismatch_rejected(self, small_split, small_platform, small_training):
        train, test = small_split
        grid = hsgd_partition(train, 2, 1)
        scheduler = GreedyBlockScheduler(grid, 2, 1)  # 3 workers vs platform's 5
        with pytest.raises(SimulationError):
            _engine(train, test, small_platform, small_training, scheduler)

    def test_workers_busy_most_of_the_time(self, small_split, small_platform, small_training):
        train, test = small_split
        grid = hsgd_partition(train, 4, 1)
        scheduler = GreedyBlockScheduler(grid, 4, 1)
        result = _engine(
            train, test, small_platform, small_training, scheduler
        ).run(iterations=3)
        assert result.trace.utilization(5) > 0.6

    def test_hsgd_star_scheduler_in_engine(self, small_split, small_platform, small_training):
        train, test = small_split
        grid = nonuniform_partition(train, alpha=0.3, n_cpu_threads=4, n_gpus=1)
        scheduler = HSGDStarScheduler(grid, 4, 1, dynamic_scheduling=True)
        result = _engine(
            train, test, small_platform, small_training, scheduler
        ).run(iterations=3)
        assert len(result.trace.iterations) == 3
        share = result.trace.resource_share()
        assert 0.0 < share["gpu"] < 1.0

    def test_gpu_contention_slows_hybrid_tasks(self, small_split, scaled_preset, small_training):
        """The same GPU task is slower in a hybrid run than in a GPU-only run."""
        train, test = small_split
        hybrid_platform = HeterogeneousPlatform.from_preset(
            HardwareConfig(cpu_threads=4, gpu_count=1), scaled_preset
        )
        gpu_platform = HeterogeneousPlatform.from_preset(
            HardwareConfig(cpu_threads=0, gpu_count=1), scaled_preset
        )
        grid_h = nonuniform_partition(train, alpha=1.0, n_cpu_threads=0, n_gpus=1)
        # Same all-GPU division, but one engine sees CPU threads on the
        # platform (idle — no stealing), which triggers host contention.
        hybrid_sched = HSGDStarScheduler(grid_h, 4, 1, dynamic_scheduling=False)
        gpu_sched = HSGDStarScheduler(
            nonuniform_partition(train, alpha=1.0, n_cpu_threads=0, n_gpus=1), 0, 1
        )
        hybrid = _engine(
            train, test, hybrid_platform, small_training, hybrid_sched
        ).run(iterations=1)
        gpu_only = _engine(
            train, test, gpu_platform, small_training, gpu_sched
        ).run(iterations=1)
        gpu_tasks_hybrid = [t for t in hybrid.trace.tasks if t.is_gpu]
        assert gpu_tasks_hybrid  # the GPU did all the work in both runs
        assert hybrid.trace.final_time > gpu_only.trace.final_time


class TestTrace:
    def _record(self, worker, start, end, points, gpu=False, stolen=False, iteration=0):
        return TaskRecord(
            worker_index=worker, is_gpu=gpu, start_time=start, end_time=end,
            points=points, n_blocks=1, stolen=stolen, iteration=iteration,
        )

    def test_worker_stats_aggregation(self):
        trace = ExecutionTrace()
        trace.record_task(self._record(0, 0.0, 1.0, 100))
        trace.record_task(self._record(0, 1.0, 3.0, 200))
        trace.record_task(self._record(1, 0.0, 0.5, 50, gpu=True, stolen=True))
        stats = trace.worker_stats()
        assert stats[0].busy_time == pytest.approx(3.0)
        assert stats[0].points == 300
        assert stats[0].tasks == 2
        assert stats[1].stolen_tasks == 1
        assert isinstance(stats[0], WorkerStats)

    def test_resource_share(self):
        trace = ExecutionTrace()
        trace.record_task(self._record(0, 0, 1, 300))
        trace.record_task(self._record(1, 0, 1, 700, gpu=True))
        share = trace.resource_share()
        assert share["gpu"] == pytest.approx(0.7)
        assert share["cpu"] == pytest.approx(0.3)

    def test_resource_share_empty(self):
        assert ExecutionTrace().resource_share() == {"cpu": 0.0, "gpu": 0.0}

    def test_rmse_curve_and_time_to_target(self):
        trace = ExecutionTrace()
        trace.record_iteration(IterationRecord(0, 1.0, None, 0.9, 100))
        trace.record_iteration(IterationRecord(1, 2.0, None, 0.7, 200))
        trace.record_iteration(IterationRecord(2, 3.0, None, 0.65, 300))
        assert trace.rmse_curve() == [(1.0, 0.9), (2.0, 0.7), (3.0, 0.65)]
        assert trace.time_to_rmse(0.7) == 2.0
        assert trace.time_to_rmse(0.1) is None

    def test_summary_fields(self):
        trace = ExecutionTrace()
        trace.record_task(self._record(0, 0, 1, 100))
        trace.record_iteration(IterationRecord(0, 1.0, None, 0.5, 100))
        trace.final_time = 1.0
        summary = trace.summary()
        assert summary["iterations"] == 1.0
        assert summary["total_points"] == 100.0
        assert summary["final_test_rmse"] == 0.5

    def test_utilization_bounds(self):
        trace = ExecutionTrace()
        trace.record_task(self._record(0, 0.0, 1.0, 10))
        trace.final_time = 2.0
        assert trace.utilization(1) == pytest.approx(0.5)
        assert trace.utilization(0) == 0.0
