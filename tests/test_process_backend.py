"""Tests of the shared-memory multiprocess execution backend.

Covers the three contracts the backend must honour:

* **numerics** — with one worker and a fixed seed, runs (and
  checkpoint/resume round trips) are bitwise-identical to the serial
  simulator, exactly like the threaded parity suite;
* **lifecycle** — every shared-memory segment is attached, detached and
  unlinked exactly once, even when a worker process is killed mid-epoch
  or a callback raises (asserted via :func:`repro.shm.live_segment_names`
  and a ``/dev/shm`` sweep);
* **plumbing** — the registry/auto rule, config validation, trainer,
  ``factorize`` and the CLI all reach the backend, and the configurable
  kernel mini-batch size crosses the process boundary.
"""

import glob
import os
import signal

import numpy as np
import pytest

from repro.config import DEFAULT_BATCH_SIZE, HardwareConfig, TrainingConfig
from repro.core import (
    GreedyBlockScheduler,
    HSGDStarScheduler,
    HeterogeneousTrainer,
    factorize,
)
from repro.core.partition import nonuniform_partition, uniform_partition
from repro.exceptions import ConfigurationError, ExecutionError, InvalidMatrixError
from repro.exec import (
    EngineResult,
    ProcessEngine,
    ProcessResult,
    TrainCheckpoint,
    process_backend_supported,
    resolve_backend_name,
)
from repro.exec.callbacks import CONTINUE, Callback
from repro.hardware import HeterogeneousPlatform
from repro.shm import SEGMENT_PREFIX, live_segment_names
from repro.sgd import FactorModel
from repro.sim import SimulationEngine


@pytest.fixture(scope="module")
def one_worker_platform(scaled_preset):
    return HeterogeneousPlatform.from_preset(
        HardwareConfig(cpu_threads=1, gpu_count=0), scaled_preset
    )


def _dev_shm_segments():
    return set(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test must leave the segment registry and /dev/shm clean."""
    before = _dev_shm_segments()
    yield
    assert live_segment_names() == ()
    assert _dev_shm_segments() == before


def _process_engine(train, test, training, n_workers=1, seed=0, **kwargs):
    if n_workers == 1:
        grid = uniform_partition(train, 3, 3)
        scheduler = GreedyBlockScheduler(grid, 1, 0, seed=seed)
    else:
        grid = nonuniform_partition(
            train, alpha=0.3, n_cpu_threads=n_workers - 1, n_gpus=1
        )
        scheduler = HSGDStarScheduler(
            grid, n_workers - 1, 1, dynamic_scheduling=True, seed=seed
        )
    return ProcessEngine(
        scheduler=scheduler, train=train, training=training, test=test, **kwargs
    )


def _sim_engine(train, test, training, platform, seed=0):
    grid = uniform_partition(train, 3, 3)
    scheduler = GreedyBlockScheduler(grid, 1, 0, seed=seed)
    return SimulationEngine(
        scheduler=scheduler, platform=platform, train=train,
        training=training, test=test,
    )


class TestSimParity:
    """One worker + fixed seed => processes and simulator are bitwise equal."""

    def test_bitwise_identical_factors_and_curves(
        self, small_split, one_worker_platform, small_training
    ):
        train, test = small_split
        sim = _sim_engine(train, test, small_training, one_worker_platform).run(
            iterations=3
        )
        proc = _process_engine(train, test, small_training).run(iterations=3)

        assert isinstance(proc, ProcessResult)
        assert isinstance(proc, EngineResult)
        np.testing.assert_array_equal(sim.model.p, proc.model.p)
        np.testing.assert_array_equal(sim.model.q, proc.model.q)
        assert [r.points_processed for r in sim.trace.iterations] == [
            r.points_processed for r in proc.trace.iterations
        ]
        assert [r.test_rmse for r in sim.trace.iterations] == [
            r.test_rmse for r in proc.trace.iterations
        ]
        assert [t.points for t in sim.trace.tasks] == [
            t.points for t in proc.trace.tasks
        ]

    def test_spawn_start_method_attaches_by_name(
        self, small_split, one_worker_platform, small_training
    ):
        """Nothing relies on fork inheritance: a spawned worker rebuilds
        every view from the pickled segment names."""
        train, test = small_split
        sim = _sim_engine(train, test, small_training, one_worker_platform).run(
            iterations=1
        )
        proc = _process_engine(
            train, test, small_training, start_method="spawn"
        ).run(iterations=1)
        np.testing.assert_array_equal(sim.model.p, proc.model.p)
        np.testing.assert_array_equal(sim.model.q, proc.model.q)

    def test_final_model_survives_segment_unlink(
        self, small_split, small_training
    ):
        """The result model is copied out of shared memory before unlink."""
        proc = _process_engine(train=small_split[0], test=small_split[1],
                               training=small_training).run(iterations=1)
        assert live_segment_names() == ()
        # The factors must be ordinary private memory, fully readable.
        assert np.isfinite(proc.model.p).all()
        assert np.isfinite(proc.model.q).all()


class TestResumeParity:
    """Checkpoint/resume stays bitwise across the process boundary."""

    def _engine(self, backend, train, test, training, platform):
        if backend == "simulate":
            return _sim_engine(train, test, training, platform)
        return _process_engine(train, test, training)

    def _checkpoint_at(self, backend, train, test, training, platform, epoch):
        engine = self._engine(backend, train, test, training, platform)
        session = engine.start(iterations=epoch, pause_on_epoch=True)
        while session.step() is not None:
            pass
        checkpoint = TrainCheckpoint.capture(session)
        session.finish()
        return checkpoint

    def _resume(self, backend, checkpoint, train, test, training, platform, total):
        engine = self._engine(backend, train, test, training, platform)
        session = engine.start(iterations=total)
        checkpoint.restore(session)
        while session.step() is not None:
            pass
        return session.finish()

    def test_resume_matches_uninterrupted_and_crosses_backends(
        self, small_split, one_worker_platform, small_training
    ):
        train, test = small_split
        args = (train, test, small_training, one_worker_platform)

        reference = self._engine("simulate", *args).run(iterations=6)

        proc_ckpt = self._checkpoint_at("processes", *args, epoch=3)
        assert proc_ckpt.meta["backend"] == "processes"
        sim_ckpt = self._checkpoint_at("simulate", *args, epoch=3)

        resumed_proc = self._resume("processes", proc_ckpt, *args, total=6)
        resumed_cross_to_sim = self._resume("simulate", proc_ckpt, *args, total=6)
        resumed_cross_to_proc = self._resume("processes", sim_ckpt, *args, total=6)

        for resumed in (resumed_proc, resumed_cross_to_sim, resumed_cross_to_proc):
            np.testing.assert_array_equal(reference.model.p, resumed.model.p)
            np.testing.assert_array_equal(reference.model.q, resumed.model.q)
        assert [r.test_rmse for r in reference.trace.iterations] == [
            r.test_rmse for r in resumed_proc.trace.iterations
        ]

    def test_checkpoint_copies_out_of_shared_memory(
        self, small_split, small_training
    ):
        """A checkpoint taken mid-run stays valid after the session's
        segments are unlinked (its arrays are copies, not views)."""
        train, test = small_split
        engine = _process_engine(train, test, small_training)
        session = engine.start(iterations=2, pause_on_epoch=True)
        session.step()
        checkpoint = TrainCheckpoint.capture(session)
        frozen = checkpoint.p.copy()
        while session.step() is not None:
            pass
        session.finish()
        assert live_segment_names() == ()
        np.testing.assert_array_equal(checkpoint.p, frozen)
        assert np.isfinite(checkpoint.p).all()


class TestConcurrentInvariants:
    def test_multi_worker_accounting_and_spread(self, small_split, small_training):
        train, test = small_split
        engine = _process_engine(train, test, small_training, n_workers=5)
        result = engine.run(iterations=3)
        total = train.nnz
        max_task = max(task.points for task in result.trace.tasks)
        for index, record in enumerate(result.trace.iterations):
            target = (index + 1) * total
            assert record.points_processed >= target
            assert record.points_processed < target + 5 * max_task + 1
        workers = {task.worker_index for task in result.trace.tasks}
        assert workers <= set(range(5))
        assert len(workers) >= 2
        curve = [record.test_rmse for record in result.trace.iterations]
        assert curve[-1] < curve[0]

    def test_wall_clock_budget_stops_the_run(self, small_split, small_training):
        train, test = small_split
        engine = _process_engine(train, test, small_training, n_workers=3)
        result = engine.run(iterations=10_000, max_simulated_time=0.2)
        assert result.trace.final_time < 5.0
        assert not result.converged
        assert result.stop_reason == "time_budget"


class _Boom(Callback):
    def on_epoch_end(self, report, session):
        raise RuntimeError("callback exploded")
        return CONTINUE  # pragma: no cover


class TestLifecycle:
    """Segments are attached, detached and unlinked exactly once."""

    def test_killed_worker_surfaces_and_cleans_up(
        self, small_split, small_training
    ):
        """With a zero restart budget a killed worker stays fatal (the
        pre-supervision fail-fast contract; recovery paths live in
        test_chaos.py)."""
        train, test = small_split
        training = small_training.with_max_worker_restarts(0)
        engine = _process_engine(train, test, training, n_workers=3)
        session = engine.start(iterations=10_000)
        assert session.step() is not None  # pool is live past one epoch
        victim = session._procs[0]
        os.kill(victim.pid, signal.SIGKILL)
        while session.step() is not None:
            pass
        with pytest.raises(ExecutionError, match="died|failed"):
            session.finish()
        # finish() already tore everything down despite the error.
        assert live_segment_names() == ()

    def test_raising_callback_cleans_up(self, small_split, small_training):
        train, test = small_split
        engine = _process_engine(train, test, small_training)
        with pytest.raises(RuntimeError, match="callback exploded"):
            engine.run(iterations=5, callbacks=[_Boom()])
        assert live_segment_names() == ()

    def test_finish_is_idempotent_and_unlinks_once(
        self, small_split, small_training
    ):
        train, test = small_split
        engine = _process_engine(train, test, small_training)
        session = engine.start(iterations=1)
        while session.step() is not None:
            pass
        first = session.finish()
        assert session.finish() is first
        assert live_segment_names() == ()

    def test_abandoned_session_cleans_up_on_finish(
        self, small_split, small_training
    ):
        train, test = small_split
        engine = _process_engine(train, test, small_training)
        session = engine.start(iterations=50)
        session.step()  # launch the pool, then abandon the run
        result = session.finish()
        assert result.stop_reason in ("aborted", "iterations")
        assert live_segment_names() == ()


class TestValidationAndPlumbing:
    def test_backend_is_registered_and_supported(self):
        assert process_backend_supported()
        assert TrainingConfig(backend="processes").backend == "processes"

    def test_auto_backend_resolution_rule(self):
        assert resolve_backend_name("auto", n_workers=4) == "processes"
        assert resolve_backend_name("auto", n_workers=1) == "threads"
        assert resolve_backend_name("auto", n_workers=None) == "threads"
        # The legacy gather path only exists on threads; auto must not
        # resolve to a backend that would reject the run.
        assert resolve_backend_name("auto", n_workers=4, use_block_store=False) == "threads"
        assert resolve_backend_name("simulate", n_workers=8) == "simulate"
        assert TrainingConfig(backend="auto").backend == "auto"

    def test_fit_auto_with_legacy_data_plane_falls_back_to_threads(
        self, small_split, small_hardware, small_training, scaled_preset
    ):
        train, test = small_split
        trainer = HeterogeneousTrainer(
            algorithm="hsgd_star", hardware=small_hardware,
            training=small_training, preset=scaled_preset, seed=0,
        )
        result = trainer.fit(
            train, test, iterations=1, backend="auto", use_block_store=False
        )
        assert result.backend == "threads"

    def test_controller_drops_private_block_copies_after_sharing(
        self, small_split, small_training
    ):
        """to_shared() must not leave a second resident copy of every
        block's arrays cached in the controller's BlockStore."""
        train, test = small_split
        engine = _process_engine(train, test, small_training)
        engine.run(iterations=1)
        assert engine._store._blocks == {}
        assert engine._store._tasks == {}

    def test_fit_auto_resolves_to_processes_for_multi_worker(
        self, small_split, small_hardware, small_training, scaled_preset
    ):
        train, test = small_split
        trainer = HeterogeneousTrainer(
            algorithm="hsgd_star", hardware=small_hardware,
            training=small_training, preset=scaled_preset, seed=0,
        )
        result = trainer.fit(train, test, iterations=2, backend="auto")
        assert result.backend == "processes"
        assert len(result.trace.iterations) == 2

    def test_factorize_workers_override(self, small_split, small_training, scaled_preset):
        train, test = small_split
        result = factorize(
            train, test, algorithm="hsgd", training=small_training,
            preset=scaled_preset, iterations=2, backend="processes", workers=2,
        )
        assert result.backend == "processes"
        # 2 CPU workers + the default GPU: worker indices stay in range.
        assert {t.worker_index for t in result.trace.tasks} <= set(range(3))

    def test_requires_block_store(self, small_split, small_training):
        train, test = small_split
        with pytest.raises(ExecutionError, match="block-major"):
            _process_engine(train, test, small_training, use_block_store=False)

    def test_single_use(self, small_split, small_training):
        train, test = small_split
        engine = _process_engine(train, test, small_training)
        engine.run(iterations=1)
        with pytest.raises(ExecutionError):
            engine.run(iterations=1)

    def test_target_rmse_requires_test_set(self, small_split, small_training):
        train, _ = small_split
        engine = _process_engine(train, None, small_training)
        with pytest.raises(ExecutionError):
            engine.run(target_rmse=0.5)

    def test_invalid_start_method_rejected(self, small_split, small_training):
        train, test = small_split
        with pytest.raises(ExecutionError, match="start_method"):
            _process_engine(train, test, small_training, start_method="teleport")

    def test_cli_processes_backend(self, capsys):
        from repro.cli import main

        code = main([
            "train", "--dataset", "movielens", "--algorithm", "hsgd_star",
            "--iterations", "2", "--workers", "2", "--backend", "processes",
            "--batch-size", "128",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "backend            : processes" in out
        assert "wall time" in out


class TestOverBuffers:
    def test_adopts_without_copy(self):
        p = np.zeros((4, 2))
        q = np.zeros((3, 2)).T
        model = FactorModel.over_buffers(p, q)
        assert model.p is p and model.q is q

    def test_rejects_wrong_dtype(self):
        with pytest.raises(InvalidMatrixError, match="float64"):
            FactorModel.over_buffers(
                np.zeros((4, 2), dtype=np.float32), np.zeros((2, 3))
            )
        with pytest.raises(InvalidMatrixError, match="float64"):
            FactorModel.over_buffers([[1.0]], np.zeros((1, 3)))


class TestBatchSizePlumbing:
    """The kernel mini-batch size is configurable end to end."""

    def test_config_validation(self):
        assert TrainingConfig().batch_size is None
        assert TrainingConfig().effective_batch_size == DEFAULT_BATCH_SIZE
        assert TrainingConfig(batch_size=64).effective_batch_size == 64
        assert TrainingConfig().with_batch_size(32).batch_size == 32
        with pytest.raises(ConfigurationError):
            TrainingConfig(batch_size=0)
        with pytest.raises(ConfigurationError):
            TrainingConfig(batch_size=-5)

    def _fit(self, split, training, scaled_preset, **kwargs):
        train, test = split
        return factorize(
            train, test, algorithm="hsgd", training=training,
            hardware=HardwareConfig(cpu_threads=2, gpu_count=0),
            preset=scaled_preset, iterations=2, **kwargs,
        )

    def test_batch_size_changes_minibatch_trajectory(
        self, small_split, small_training, scaled_preset
    ):
        base = self._fit(small_split, small_training, scaled_preset)
        small = self._fit(
            small_split, small_training, scaled_preset, batch_size=32
        )
        config_small = self._fit(
            small_split, small_training.with_batch_size(32), scaled_preset
        )
        # Different batch boundaries => genuinely different mini-batch
        # relaxation; identical settings => bitwise-identical runs.
        assert not np.array_equal(base.model.p, small.model.p)
        np.testing.assert_array_equal(small.model.p, config_small.model.p)
        np.testing.assert_array_equal(small.model.q, config_small.model.q)

    def test_sequential_kernel_ignores_batch_size(
        self, small_split, small_training, scaled_preset
    ):
        a = self._fit(
            small_split, small_training, scaled_preset,
            kernel="sequential", batch_size=7,
        )
        b = self._fit(
            small_split, small_training, scaled_preset,
            kernel="sequential", batch_size=999,
        )
        np.testing.assert_array_equal(a.model.p, b.model.p)
        np.testing.assert_array_equal(a.model.q, b.model.q)

    def test_batch_size_crosses_the_process_boundary(
        self, small_split, one_worker_platform, small_training
    ):
        """A non-default batch size must reach the worker processes: the
        1-worker process run stays bitwise-equal to the simulator at the
        same batch size (and differs from the default-batch run)."""
        train, test = small_split
        training = small_training.with_batch_size(64)
        sim = _sim_engine(train, test, training, one_worker_platform).run(
            iterations=2
        )
        proc = _process_engine(train, test, training).run(iterations=2)
        default = _process_engine(train, test, small_training).run(iterations=2)
        np.testing.assert_array_equal(sim.model.p, proc.model.p)
        np.testing.assert_array_equal(sim.model.q, proc.model.q)
        assert not np.array_equal(proc.model.p, default.model.p)
