"""The chunked top-K scorer: exactness, ties, masking, edge cases.

The scorer's determinism contract — score descending, item id ascending
among exact ties, independent of chunk size — is pinned against the
brute-force lexsort reference.  Float scores can differ by an ulp
between BLAS shapes (GEMV vs GEMM), so bitwise *score* assertions use
integer-valued factors whose dot products are exact in float64; index
assertions run on ordinary random models too.
"""

import numpy as np
import pytest

from repro.exceptions import InvalidMatrixError
from repro.serve import PAD_ITEM, Scorer, brute_force_top_k
from repro.sgd import FactorModel
from repro.sparse import SparseRatingMatrix

CHUNKS = (1, 3, 7, 16, 64, 10_000)


@pytest.fixture(scope="module")
def random_model() -> FactorModel:
    return FactorModel.initialize(60, 47, 8, seed=5)


@pytest.fixture(scope="module")
def integer_model() -> FactorModel:
    """Factors with small integer values: exact float64 dot products and
    plenty of tied scores."""
    rng = np.random.default_rng(17)
    p = rng.integers(0, 4, size=(40, 5)).astype(np.float64)
    q = rng.integers(0, 4, size=(5, 33)).astype(np.float64)
    return FactorModel(p, q)


def reference(model: FactorModel, users: np.ndarray, k: int):
    return brute_force_top_k(model.p[users] @ model.q, k)


class TestScorerExactness:
    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_indices_match_reference_any_chunking(self, random_model, chunk):
        users = np.arange(random_model.shape[0])
        ref_ids, ref_scores = reference(random_model, users, 10)
        ids, scores = Scorer(random_model, chunk_items=chunk).top_k(users, 10)
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_allclose(scores, ref_scores, rtol=1e-12, atol=0)

    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_bitwise_on_exact_scores_with_ties(self, integer_model, chunk):
        users = np.arange(integer_model.shape[0])
        ref_ids, ref_scores = reference(integer_model, users, 8)
        ids, scores = Scorer(integer_model, chunk_items=chunk).top_k(users, 8)
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(scores, ref_scores)

    @pytest.mark.parametrize("chunk", (2, 5, 9))
    def test_all_scores_tied_ranks_by_item_id(self, chunk):
        model = FactorModel(np.ones((4, 2)), np.ones((2, 9)))
        ids, scores = Scorer(model, chunk_items=chunk).top_k(np.arange(4), 5)
        np.testing.assert_array_equal(ids, np.tile(np.arange(5), (4, 1)))
        np.testing.assert_array_equal(scores, np.full((4, 5), 2.0))

    def test_k_greater_than_catalogue_returns_everything(self, integer_model):
        n = integer_model.shape[1]
        ids, scores = Scorer(integer_model, chunk_items=8).top_k(
            np.asarray([0, 3]), k=n + 100
        )
        assert ids.shape == (2, n)
        ref_ids, ref_scores = reference(integer_model, np.asarray([0, 3]), n)
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(scores, ref_scores)

    def test_k_equal_one(self, random_model):
        users = np.arange(20)
        ids, _ = Scorer(random_model, chunk_items=5).top_k(users, 1)
        ref_ids, _ = reference(random_model, users, 1)
        np.testing.assert_array_equal(ids, ref_ids)

    def test_output_dtypes(self, random_model):
        ids, scores = Scorer(random_model).top_k(np.asarray([1]), 5)
        assert ids.dtype == np.int64
        assert scores.dtype == np.float64


class TestScorerMasking:
    def test_seen_items_never_recommended(self, random_model):
        m, n = random_model.shape
        rng = np.random.default_rng(0)
        rows = rng.integers(0, m, size=300)
        cols = rng.integers(0, n, size=300)
        train = SparseRatingMatrix(
            rows, cols, np.ones(300), shape=(m, n), check=False
        )
        scorer = Scorer(random_model, exclude=train, chunk_items=11)
        users = np.arange(m)
        ids, _ = scorer.top_k(users, 10)
        indptr, seen = train.csr_rows()
        for row, user in enumerate(users):
            rated = set(seen[indptr[user] : indptr[user + 1]].tolist())
            assert rated.isdisjoint(set(ids[row].tolist()) - {PAD_ITEM})

    def test_masking_matches_masked_reference(self, integer_model):
        m, n = integer_model.shape
        train = SparseRatingMatrix.from_triples(
            [(0, 1, 1.0), (0, 5, 1.0), (2, 0, 1.0)], shape=(m, n)
        )
        full = integer_model.p @ integer_model.q
        full[0, [1, 5]] = -np.inf
        full[2, 0] = -np.inf
        ref_ids, _ = brute_force_top_k(full, 6)
        for chunk in (2, 8, 50):
            ids, _ = Scorer(
                integer_model, exclude=train, chunk_items=chunk
            ).top_k(np.arange(m), 6)
            np.testing.assert_array_equal(ids, ref_ids)

    def test_user_with_everything_seen_gets_padding(self):
        model = FactorModel.initialize(3, 6, 2, seed=0)
        triples = [(1, v, 1.0) for v in range(6)]
        train = SparseRatingMatrix.from_triples(triples, shape=(3, 6))
        ids, scores = Scorer(model, exclude=train, chunk_items=4).top_k(
            np.asarray([1]), 4
        )
        np.testing.assert_array_equal(ids[0], np.full(4, PAD_ITEM))
        assert np.isneginf(scores[0]).all()

    def test_precomputed_csr_accepted(self, random_model):
        m, n = random_model.shape
        train = SparseRatingMatrix.from_triples(
            [(0, 0, 1.0)], shape=(m, n)
        )
        by_matrix = Scorer(random_model, exclude=train)
        by_csr = Scorer(random_model, exclude=train.csr_rows())
        np.testing.assert_array_equal(
            by_matrix.top_k(np.arange(5), 5)[0],
            by_csr.top_k(np.arange(5), 5)[0],
        )

    def test_shape_mismatch_rejected(self, random_model):
        other = SparseRatingMatrix.from_triples([(0, 0, 1.0)], shape=(2, 2))
        with pytest.raises(InvalidMatrixError):
            Scorer(random_model, exclude=other)


class TestScorerValidation:
    def test_rejects_out_of_range_users(self, random_model):
        scorer = Scorer(random_model)
        with pytest.raises(InvalidMatrixError):
            scorer.top_k(np.asarray([random_model.shape[0]]), 5)
        with pytest.raises(InvalidMatrixError):
            scorer.top_k(np.asarray([-1]), 5)

    def test_rejects_bad_k_and_chunk(self, random_model):
        with pytest.raises(InvalidMatrixError):
            Scorer(random_model).top_k(np.asarray([0]), 0)
        with pytest.raises(InvalidMatrixError):
            Scorer(random_model, chunk_items=0)

    def test_empty_user_batch(self, random_model):
        ids, scores = Scorer(random_model).top_k(np.asarray([], dtype=int), 5)
        assert ids.shape == (0, 5)
        assert scores.shape == (0, 5)

    def test_single_scalar_user(self, random_model):
        ids = Scorer(random_model).top_k_single(3, 7)
        ref_ids, _ = reference(random_model, np.asarray([3]), 7)
        np.testing.assert_array_equal(ids, ref_ids[0])


class TestSparseCsrRows:
    def test_csr_rows_sorted_and_complete(self, small_matrix):
        indptr, indices = small_matrix.csr_rows()
        assert indptr[0] == 0 and indptr[-1] == small_matrix.nnz
        for user in range(small_matrix.n_rows):
            row = indices[indptr[user] : indptr[user + 1]]
            assert np.all(np.diff(row) >= 0)
        counts = np.diff(indptr)
        np.testing.assert_array_equal(counts, small_matrix.row_counts())

    def test_csr_rows_cached(self, small_matrix):
        first = small_matrix.csr_rows()
        second = small_matrix.csr_rows()
        assert first[0] is second[0] and first[1] is second[1]

    def test_items_of_matches_triples(self, tiny_matrix):
        items = tiny_matrix.items_of(0)
        np.testing.assert_array_equal(items, [0, 2, 4])
        with pytest.raises(InvalidMatrixError):
            tiny_matrix.items_of(tiny_matrix.n_rows)
