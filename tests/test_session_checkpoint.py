"""Tests of the stepwise session protocol, callbacks, checkpoints and
the backend registry.

The central pin is the resume guarantee: ``run(10 epochs)`` is
**bitwise-identical** to ``run(5) -> TrainCheckpoint.save ->
TrainCheckpoint.load -> run(5 more)`` on the simulate backend —
``assert_array_equal`` on ``P`` and ``Q``, identical trace tail — and a
hypothesis property extends this to arbitrary step/checkpoint/load
interleavings.  The registry pin is the other acceptance criterion:
``register_backend("dummy", ...)`` must round-trip through
``TrainingConfig`` validation, ``fit(backend="dummy")`` and the CLI
choices without any edit to ``core/`` or ``config.py`` internals.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import HardwareConfig, TrainingConfig
from repro.core import GreedyBlockScheduler, HeterogeneousTrainer, TrainResult, factorize
from repro.core.partition import uniform_partition
from repro.exceptions import CheckpointError, ConfigurationError
from repro.exec import (
    CONTINUE,
    STOP,
    Callback,
    CallbackList,
    Checkpoint,
    EarlyStopping,
    Engine,
    EngineResult,
    EngineSession,
    EpochReport,
    JsonlLogger,
    ThreadedEngine,
    TimeBudget,
    TrainCheckpoint,
    backend_names,
    get_backend,
    is_registered,
    register_backend,
    run_session,
    unregister_backend,
)
from repro.hardware import HeterogeneousPlatform
from repro.sim import SimulationEngine
from repro.sgd.schedules import InverseTimeDecaySchedule


# --------------------------------------------------------------------- #
# Engine-level helpers
# --------------------------------------------------------------------- #
def _sim_engine(train, test, training, scaled_preset, n_workers=2):
    grid = uniform_partition(train, n_workers + 1, n_workers + 1)
    scheduler = GreedyBlockScheduler(grid, n_workers, 0, seed=0)
    platform = HeterogeneousPlatform.from_preset(
        HardwareConfig(cpu_threads=n_workers, gpu_count=0), scaled_preset
    )
    return SimulationEngine(
        scheduler=scheduler, platform=platform, train=train,
        training=training, test=test,
    )


def _threaded_engine(train, test, training, n_workers=1):
    grid = uniform_partition(train, n_workers + 2, n_workers + 2)
    scheduler = GreedyBlockScheduler(grid, n_workers, 0, seed=0)
    return ThreadedEngine(
        scheduler=scheduler, train=train, training=training, test=test,
    )


class TestStepwiseProtocol:
    def test_step_reports_every_epoch(self, small_split, small_training, scaled_preset):
        train, test = small_split
        engine = _sim_engine(train, test, small_training, scaled_preset)
        session = engine.start(iterations=4)
        reports = []
        while (report := session.step()) is not None:
            reports.append(report)
        result = session.finish()
        assert [r.epoch for r in reports] == [0, 1, 2, 3]
        assert all(isinstance(r, EpochReport) for r in reports)
        assert all(r.test_rmse is not None for r in reports)
        assert reports[-1].points_processed >= 4 * train.nnz
        assert [r.engine_time for r in reports] == sorted(r.engine_time for r in reports)
        assert session.done
        assert len(result.trace.iterations) == 4
        assert result.stop_reason == "iterations"

    def test_step_matches_run_bitwise(self, small_split, small_training, scaled_preset):
        """Driving step() by hand equals the one-shot run() exactly."""
        train, test = small_split
        ran = _sim_engine(train, test, small_training, scaled_preset).run(iterations=3)
        session = _sim_engine(train, test, small_training, scaled_preset).start(iterations=3)
        while session.step() is not None:
            pass
        stepped = session.finish()
        np.testing.assert_array_equal(ran.model.p, stepped.model.p)
        np.testing.assert_array_equal(ran.model.q, stepped.model.q)
        assert [t.end_time for t in ran.trace.tasks] == [
            t.end_time for t in stepped.trace.tasks
        ]

    def test_session_stop_ends_the_run(self, small_split, small_training, scaled_preset):
        train, test = small_split
        session = _sim_engine(train, test, small_training, scaled_preset).start(iterations=10)
        assert session.step() is not None
        session.stop(reason="because")
        assert session.step() is None
        result = session.finish()
        assert len(result.trace.iterations) == 1
        assert result.stop_reason == "because"

    def test_finish_is_idempotent(self, small_split, small_training, scaled_preset):
        train, test = small_split
        session = _sim_engine(train, test, small_training, scaled_preset).start(iterations=1)
        while session.step() is not None:
            pass
        assert session.finish() is session.finish()

    def test_threaded_session_reports(self, small_split, small_training):
        train, test = small_split
        engine = _threaded_engine(train, test, small_training, n_workers=2)
        session = engine.start(iterations=3)
        reports = []
        while (report := session.step()) is not None:
            reports.append(report)
        result = session.finish()
        assert [r.epoch for r in reports] == [0, 1, 2]
        assert result.stop_reason == "iterations"
        assert len(result.trace.iterations) == 3

    def test_threaded_pause_on_epoch_quiesces(self, small_split, small_training):
        train, test = small_split
        engine = _threaded_engine(train, test, small_training, n_workers=2)
        session = engine.start(iterations=3, pause_on_epoch=True)
        report = session.step()
        assert report is not None and report.epoch == 0
        # Quiescent pause: the state dict is capturable mid-run.
        state = session.state_dict()
        assert state["in_flight"] == []
        assert state["iteration"] == 1
        while session.step() is not None:
            pass
        assert len(session.finish().trace.iterations) == 3

    def test_epoch_report_from_both_engines_match_fields(
        self, small_split, small_training, scaled_preset
    ):
        train, test = small_split
        sim = _sim_engine(train, test, small_training, scaled_preset, n_workers=1)
        thr = _threaded_engine(train, test, small_training, n_workers=1)
        sim_session = sim.start(iterations=2)
        thr_session = thr.start(iterations=2)
        sim_reports = []
        thr_reports = []
        while (r := sim_session.step()) is not None:
            sim_reports.append(r)
        while (r := thr_session.step()) is not None:
            thr_reports.append(r)
        sim_session.finish()
        thr_session.finish()
        assert [r.epoch for r in sim_reports] == [r.epoch for r in thr_reports]
        assert [r.points_processed for r in sim_reports] == [
            r.points_processed for r in thr_reports
        ]


class TestBitwiseResumeParity:
    """The pinned acceptance criterion: checkpoint-at-5-then-resume is
    bitwise-identical to an uninterrupted 10-epoch run on simulate."""

    def _trainer(self, training):
        return HeterogeneousTrainer(
            algorithm="hsgd_star",
            hardware=HardwareConfig(cpu_threads=4, gpu_count=1),
            training=training,
            seed=0,
        )

    def test_checkpoint_resume_bitwise_identical(
        self, small_split, small_training, tmp_path
    ):
        train, test = small_split
        training = small_training.with_iterations(10)

        full = self._trainer(training).fit(train, test, iterations=10)

        callback = Checkpoint(tmp_path / "ckpt", every_n=5)
        half = self._trainer(training).fit(
            train, test, iterations=5, callbacks=[callback]
        )
        assert len(half.trace.iterations) == 5
        assert callback.saved_paths, "checkpoint was never written"
        resumed = self._trainer(training).fit(
            train, test, iterations=10, resume_from=callback.saved_paths[-1]
        )

        np.testing.assert_array_equal(full.model.p, resumed.model.p)
        np.testing.assert_array_equal(full.model.q, resumed.model.q)
        # Identical trace: same epochs, same RMSE trajectory, and the
        # resumed tail replays the exact task schedule.
        assert len(resumed.trace.iterations) == 10
        assert [r.test_rmse for r in full.trace.iterations] == [
            r.test_rmse for r in resumed.trace.iterations
        ]
        assert [r.simulated_time for r in full.trace.iterations] == [
            r.simulated_time for r in resumed.trace.iterations
        ]
        assert [
            (t.worker_index, t.points, t.end_time) for t in full.trace.tasks
        ] == [(t.worker_index, t.points, t.end_time) for t in resumed.trace.tasks]

    def test_engine_level_save_load_roundtrip(
        self, small_split, small_training, scaled_preset, tmp_path
    ):
        """The raw engine API: start -> step x5 -> capture/save/load ->
        restore into a fresh session -> 5 more epochs == run(10)."""
        train, test = small_split
        full = _sim_engine(train, test, small_training, scaled_preset).run(iterations=10)

        first = _sim_engine(train, test, small_training, scaled_preset).start(iterations=5)
        while first.step() is not None:
            pass
        path = TrainCheckpoint.capture(first).save(tmp_path / "engine-ckpt")
        first.finish()

        second = _sim_engine(train, test, small_training, scaled_preset).start(iterations=10)
        TrainCheckpoint.load(path).restore(second)
        while second.step() is not None:
            pass
        resumed = second.finish()

        np.testing.assert_array_equal(full.model.p, resumed.model.p)
        np.testing.assert_array_equal(full.model.q, resumed.model.q)
        assert [t.end_time for t in full.trace.tasks] == [
            t.end_time for t in resumed.trace.tasks
        ]

    def test_resume_preserves_decaying_schedule(
        self, small_split, small_training, scaled_preset, tmp_path
    ):
        """The epoch index prices the learning rate, so a resumed run
        must continue the decay where it left off, not restart it."""
        train, test = small_split
        schedule = InverseTimeDecaySchedule(0.01, decay=0.5)

        def engine():
            built = _sim_engine(train, test, small_training, scaled_preset)
            built.schedule = schedule
            return built

        full = engine().run(iterations=6)
        first = engine().start(iterations=3)
        while first.step() is not None:
            pass
        path = TrainCheckpoint.capture(first).save(tmp_path / "decay")
        second = engine().start(iterations=6)
        TrainCheckpoint.load(path).restore(second)
        while second.step() is not None:
            pass
        resumed = second.finish()
        np.testing.assert_array_equal(full.model.p, resumed.model.p)
        np.testing.assert_array_equal(full.model.q, resumed.model.q)


class TestResumeAtCap:
    """A checkpoint taken at (or past) the epoch cap resumes to an
    immediate, clean end — not an extra epoch beyond the cap."""

    @pytest.mark.parametrize("backend", ["simulate", "threads"])
    def test_resume_at_cap_runs_no_extra_epoch(
        self, backend, small_split, small_training, scaled_preset, tmp_path
    ):
        train, test = small_split

        def engine():
            if backend == "simulate":
                return _sim_engine(train, test, small_training, scaled_preset, n_workers=1)
            return _threaded_engine(train, test, small_training)

        session = engine().start(iterations=3, pause_on_epoch=True)
        while session.step() is not None:
            pass
        checkpoint = TrainCheckpoint.capture(session)
        session.finish()
        p_before = checkpoint.p.copy()

        resumed_session = engine().start(iterations=3)
        checkpoint.restore(resumed_session)
        assert resumed_session.step() is None
        result = resumed_session.finish()
        assert len(result.trace.iterations) == 3
        assert result.stop_reason == "iterations"
        np.testing.assert_array_equal(result.model.p, p_before)


class TestCallbackFailureTeardown:
    def test_raising_callback_stops_threaded_workers(self, small_split, small_training):
        """A callback exception must tear the run down: fit() raises and
        no worker thread keeps mutating the model afterwards."""
        train, test = small_split
        sessions = []

        class Grab(Callback):
            def on_train_begin(self, session):
                sessions.append(session)

            def on_epoch_end(self, report, session):
                raise RuntimeError("boom")

        engine = _threaded_engine(train, test, small_training, n_workers=2)
        with pytest.raises(RuntimeError, match="boom"):
            engine.run(iterations=50, callbacks=[Grab()])
        (session,) = sessions
        assert session.done
        assert all(not t.is_alive() for t in session._threads)

    def test_done_reflects_stop_before_launch(self, small_split, small_training):
        train, test = small_split
        session = _threaded_engine(train, test, small_training).start(iterations=3)
        assert not session.done
        session.stop()
        assert session.done
        assert session.step() is None


class TestCheckpointValidation:
    def test_restore_rejects_mismatched_run(
        self, small_split, tiny_matrix, small_training, scaled_preset, tmp_path
    ):
        train, test = small_split
        session = _sim_engine(train, test, small_training, scaled_preset).start(iterations=2)
        while session.step() is not None:
            pass
        checkpoint = TrainCheckpoint.capture(session)

        other = _sim_engine(
            tiny_matrix, None, small_training, scaled_preset, n_workers=1
        ).start(iterations=2)
        with pytest.raises(CheckpointError, match="does not match"):
            checkpoint.restore(other)

    def test_restore_rejects_started_session(
        self, small_split, small_training, scaled_preset
    ):
        train, test = small_split
        session = _sim_engine(train, test, small_training, scaled_preset).start(iterations=3)
        while session.step() is not None:
            pass
        checkpoint = TrainCheckpoint.capture(session)
        running = _sim_engine(train, test, small_training, scaled_preset).start(iterations=3)
        running.step()
        with pytest.raises(CheckpointError, match="has not stepped"):
            checkpoint.restore(running)

    def test_threads_rejects_in_flight_simulator_checkpoint(
        self, small_split, small_training, scaled_preset
    ):
        """A multi-worker simulator checkpoint carries in-flight tasks
        with simulated completion times; the threaded backend cannot
        replay those and must say so."""
        train, test = small_split
        session = _sim_engine(
            train, test, small_training, scaled_preset, n_workers=2
        ).start(iterations=2)
        while session.step() is not None:
            pass
        checkpoint = TrainCheckpoint.capture(session)
        assert checkpoint.session_state["in_flight"], "expected in-flight tasks"
        # Same grid/worker fingerprint as the simulator run, so the
        # in-flight portability check is what fires.
        grid = uniform_partition(train, 3, 3)
        target = ThreadedEngine(
            scheduler=GreedyBlockScheduler(grid, 2, 0, seed=0),
            train=train, training=small_training, test=test,
        ).start(iterations=4)
        with pytest.raises(CheckpointError, match="in-flight"):
            checkpoint.restore(target)

    def test_load_rejects_garbage_file(self, tmp_path):
        path = tmp_path / "bogus.npz"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError):
            TrainCheckpoint.load(path)

    def test_load_rejects_truncated_zip(
        self, small_split, small_training, scaled_preset, tmp_path
    ):
        """A checkpoint truncated mid-write (disk full, killed process)
        is a broken zip and must still surface as CheckpointError."""
        train, test = small_split
        session = _sim_engine(train, test, small_training, scaled_preset).start(iterations=1)
        while session.step() is not None:
            pass
        saved = TrainCheckpoint.capture(session).save(tmp_path / "trunc")
        blob = open(saved, "rb").read()
        with open(saved, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="cannot read"):
            TrainCheckpoint.load(saved)

    def test_restore_rejects_different_grid_shape(
        self, small_split, small_training, scaled_preset
    ):
        """Same ratings, same workers, different block partition: the
        fingerprint must refuse before anything is mutated."""
        train, test = small_split
        session = _sim_engine(train, test, small_training, scaled_preset).start(iterations=1)
        while session.step() is not None:
            pass
        checkpoint = TrainCheckpoint.capture(session)

        grid = uniform_partition(train, 4, 4)  # checkpointed run used 3x3
        platform = HeterogeneousPlatform.from_preset(
            HardwareConfig(cpu_threads=2, gpu_count=0), scaled_preset
        )
        other = SimulationEngine(
            scheduler=GreedyBlockScheduler(grid, 2, 0, seed=0),
            platform=platform, train=train, training=small_training, test=test,
        ).start(iterations=2)
        with pytest.raises(CheckpointError, match="does not match"):
            checkpoint.restore(other)
        assert not other.started  # nothing was mutated; session still fresh

    def test_save_appends_npz_suffix(
        self, small_split, small_training, scaled_preset, tmp_path
    ):
        train, test = small_split
        session = _sim_engine(train, test, small_training, scaled_preset).start(iterations=1)
        while session.step() is not None:
            pass
        saved = TrainCheckpoint.capture(session).save(tmp_path / "plain")
        assert saved.endswith(".npz") and os.path.exists(saved)
        assert TrainCheckpoint.load(tmp_path / "plain").epoch == 1


class TestCallbacks:
    def test_early_stopping_stops_and_reports_reason(
        self, small_split, small_training, scaled_preset
    ):
        train, test = small_split
        # A min_delta no real epoch can beat forces patience to run out.
        callback = EarlyStopping(patience=2, min_delta=10.0)
        engine = _sim_engine(train, test, small_training, scaled_preset)
        result = engine.run(iterations=50, callbacks=[callback])
        assert result.stop_reason == "early_stopping"
        assert len(result.trace.iterations) == 3  # 1 best + 2 stale
        assert callback.stopped_at == 2

    def test_early_stopping_requires_monitored_metric(
        self, small_split, small_training, scaled_preset
    ):
        train, _ = small_split
        engine = _sim_engine(train, None, small_training, scaled_preset)
        with pytest.raises(ConfigurationError, match="monitors"):
            engine.run(iterations=2, callbacks=[EarlyStopping(patience=1)])

    def test_jsonl_logger_writes_trajectory(
        self, small_split, small_training, scaled_preset, tmp_path
    ):
        train, test = small_split
        path = tmp_path / "log.jsonl"
        engine = _sim_engine(train, test, small_training, scaled_preset)
        result = engine.run(iterations=3, callbacks=[JsonlLogger(path)])
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        epochs = [line for line in lines if line["event"] == "epoch"]
        assert [line["epoch"] for line in epochs] == [0, 1, 2]
        assert epochs[0]["test_rmse"] == result.trace.iterations[0].test_rmse
        assert lines[-1]["event"] == "end"
        assert lines[-1]["stop_reason"] == "iterations"

    def test_time_budget_stops_run(self, small_split, small_training, scaled_preset):
        train, test = small_split
        engine = _sim_engine(train, test, small_training, scaled_preset)
        # A budget that expires immediately: exactly one epoch completes.
        result = engine.run(iterations=50, callbacks=[TimeBudget(1e-9)])
        assert len(result.trace.iterations) == 1
        assert result.stop_reason == "wall_time_budget"

    def test_custom_callback_decision_stops(self, small_split, small_training, scaled_preset):
        train, test = small_split

        class StopAfterTwo(Callback):
            def on_epoch_end(self, report, session):
                return STOP if report.epoch >= 1 else CONTINUE

        engine = _sim_engine(train, test, small_training, scaled_preset)
        result = engine.run(iterations=50, callbacks=[StopAfterTwo()])
        assert len(result.trace.iterations) == 2
        assert result.stop_reason == "callback"

    def test_callback_list_requires_pause_aggregates(self):
        assert not CallbackList([EarlyStopping()]).requires_pause
        assert CallbackList([EarlyStopping(), Checkpoint("x")]).requires_pause

    def test_periodic_checkpoint_pauses_only_capture_epochs(self):
        """Checkpoint(every_n=N) must not quiesce the threaded pool at
        the N-1 boundaries it will ignore."""
        callbacks = CallbackList([EarlyStopping(), Checkpoint("x", every_n=3)])
        assert [callbacks.pause_at(epoch) for epoch in range(6)] == [
            False, False, True, False, False, True,
        ]
        assert all(CallbackList([Checkpoint("x")]).pause_at(e) for e in range(4))

    def test_periodic_checkpoint_on_threads_resumes(
        self, small_split, small_training, tmp_path
    ):
        train, test = small_split
        callback = Checkpoint(tmp_path / "every2", every_n=2)
        engine = _threaded_engine(train, test, small_training, n_workers=2)
        engine.run(iterations=4, callbacks=[callback])
        assert len(callback.saved_paths) == 2
        checkpoint = TrainCheckpoint.load(callback.saved_paths[-1])
        assert checkpoint.epoch == 4

    def test_callbacks_on_threads_backend(self, small_split, small_training, tmp_path):
        """Checkpoint + early stopping compose on the threaded backend."""
        train, test = small_split
        callback = Checkpoint(tmp_path / "thr", every_n=1)
        engine = _threaded_engine(train, test, small_training)
        result = engine.run(iterations=2, callbacks=[callback])
        assert len(result.trace.iterations) == 2
        assert len(callback.saved_paths) == 2
        checkpoint = TrainCheckpoint.load(callback.saved_paths[-1])
        assert checkpoint.meta["backend"] == "threads"
        assert checkpoint.epoch == 2


class TestBackendRegistry:
    """Acceptance pin: a registered backend round-trips through config
    validation, fit() and the CLI without touching core/ internals."""

    @pytest.fixture()
    def dummy_backend(self):
        calls = []

        def factory(**kwargs):
            calls.append(kwargs)
            from repro.exec.registry import _simulate_factory

            return _simulate_factory(**kwargs)

        register_backend("dummy", factory)
        yield calls
        unregister_backend("dummy")

    def test_builtins_registered(self):
        assert backend_names()[:2] == ("simulate", "threads")
        assert is_registered("simulate") and is_registered("threads")
        assert callable(get_backend("threads"))

    def test_get_unknown_backend_lists_names(self):
        with pytest.raises(ConfigurationError, match="simulate"):
            get_backend("warp-drive")

    def test_register_rejects_duplicates_and_bad_factories(self):
        with pytest.raises(ConfigurationError):
            register_backend("simulate", lambda **kw: None)
        with pytest.raises(ConfigurationError):
            register_backend("broken", "not-callable")
        with pytest.raises(ConfigurationError):
            unregister_backend("never-registered")

    def test_replace_allows_override(self):
        original = get_backend("simulate")
        register_backend("simulate", original, replace=True)
        assert get_backend("simulate") is original

    def test_training_config_accepts_registered_backend(self, dummy_backend):
        config = TrainingConfig(backend="dummy")
        assert config.backend == "dummy"
        with pytest.raises(ConfigurationError):
            TrainingConfig(backend="not-registered")

    def test_fit_routes_through_registered_factory(
        self, dummy_backend, small_split, small_hardware, small_training, scaled_preset
    ):
        train, test = small_split
        trainer = HeterogeneousTrainer(
            algorithm="hsgd_star", hardware=small_hardware,
            training=small_training, preset=scaled_preset, seed=0,
        )
        result = trainer.fit(train, test, iterations=2, backend="dummy")
        assert result.backend == "dummy"
        assert len(result.trace.iterations) == 2
        assert len(dummy_backend) == 1
        assert dummy_backend[0]["train"] is train

    def test_factorize_accepts_registered_backend(
        self, dummy_backend, small_split, small_hardware, small_training, scaled_preset
    ):
        train, test = small_split
        result = factorize(
            train, test, algorithm="hsgd", hardware=small_hardware,
            training=small_training, preset=scaled_preset, iterations=1,
            backend="dummy",
        )
        assert result.backend == "dummy"

    def test_cli_offers_registered_backend(self, dummy_backend, capsys):
        from repro.cli import main

        code = main([
            "train", "--dataset", "movielens", "--iterations", "1",
            "--cpu-threads", "4", "--backend", "dummy",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "backend            : dummy" in out


class TestResultDedup:
    def test_train_result_is_engine_result(self, small_split, small_hardware, small_training, scaled_preset):
        train, test = small_split
        trainer = HeterogeneousTrainer(
            algorithm="hsgd_star", hardware=small_hardware,
            training=small_training, preset=scaled_preset, seed=0,
        )
        result = trainer.fit(train, test, iterations=2)
        assert isinstance(result, TrainResult)
        assert isinstance(result, EngineResult)
        # engine_time is the canonical name; simulated_time the
        # deprecated alias, which must both warn and keep returning the
        # same value until it is removed.
        with pytest.warns(DeprecationWarning, match="engine_time"):
            alias = result.simulated_time
        assert result.engine_time == alias == result.trace.final_time
        assert result.time_to_rmse(10.0) is not None
        assert result.stop_reason == "iterations"

    def test_engine_result_exposes_engine_time(self, small_split, small_training, scaled_preset):
        train, test = small_split
        outcome = _sim_engine(train, test, small_training, scaled_preset).run(iterations=1)
        with pytest.warns(DeprecationWarning, match="simulated_time is deprecated"):
            alias = outcome.simulated_time
        assert outcome.engine_time == alias
        assert outcome.time_to_rmse(0.0) is None


class TestFactorizeParity:
    """factorize() exposes the fit() options it silently lacked."""

    def test_max_time_and_train_rmse_and_schedule(self, small_split, small_hardware, small_training, scaled_preset):
        train, test = small_split
        result = factorize(
            train, test, algorithm="hsgd_star", hardware=small_hardware,
            training=small_training, preset=scaled_preset,
            max_simulated_time=1e-9,
            compute_train_rmse=True,
            schedule=InverseTimeDecaySchedule(0.01, decay=0.1),
        )
        assert result.stop_reason == "time_budget"

    def test_compute_train_rmse_flows_through(self, small_split, small_hardware, small_training, scaled_preset):
        train, test = small_split
        result = factorize(
            train, test, algorithm="hsgd", hardware=small_hardware,
            training=small_training, preset=scaled_preset, iterations=2,
            compute_train_rmse=True,
        )
        assert all(r.train_rmse is not None for r in result.trace.iterations)

    def test_use_block_store_off_is_bitwise_identical(self, small_split, small_hardware, small_training, scaled_preset):
        train, test = small_split
        kwargs = dict(
            algorithm="hsgd", hardware=small_hardware, training=small_training,
            preset=scaled_preset, iterations=2,
        )
        with_store = factorize(train, test, **kwargs)
        without = factorize(train, test, use_block_store=False, **kwargs)
        np.testing.assert_array_equal(with_store.model.p, without.model.p)
        np.testing.assert_array_equal(with_store.model.q, without.model.q)

    def test_factorize_callbacks_and_resume(self, small_split, small_hardware, small_training, scaled_preset, tmp_path):
        train, test = small_split
        kwargs = dict(
            algorithm="hsgd_star", hardware=small_hardware,
            training=small_training, preset=scaled_preset,
        )
        full = factorize(train, test, iterations=6, **kwargs)
        callback = Checkpoint(tmp_path / "fz", every_n=3)
        factorize(train, test, iterations=3, callbacks=[callback], **kwargs)
        resumed = factorize(
            train, test, iterations=6, resume_from=callback.saved_paths[-1], **kwargs
        )
        np.testing.assert_array_equal(full.model.p, resumed.model.p)
        np.testing.assert_array_equal(full.model.q, resumed.model.q)


class TestInterleavingProperty:
    """Hypothesis pin: any interleaving of step()/checkpoint/load yields
    the same factors as a straight run() on the simulator."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture, HealthCheck.too_slow],
    )
    @given(plan=st.lists(st.booleans(), min_size=5, max_size=5))
    def test_any_checkpoint_interleaving_matches_straight_run(
        self, plan, small_split, small_training, scaled_preset
    ):
        train, test = small_split
        epochs = len(plan) + 1
        reference = _sim_engine(train, test, small_training, scaled_preset).run(
            iterations=epochs
        )

        session = _sim_engine(train, test, small_training, scaled_preset).start(
            iterations=epochs
        )
        completed = 0
        while True:
            report = session.step()
            if report is None:
                break
            completed = report.epoch + 1
            # At boundaries selected by the plan, checkpoint in memory,
            # throw the live session away, and continue from a freshly
            # restored one (save/load of the serialized form is covered
            # by TestBitwiseResumeParity).
            if completed <= len(plan) and plan[completed - 1]:
                checkpoint = TrainCheckpoint.capture(session)
                session = _sim_engine(
                    train, test, small_training, scaled_preset
                ).start(iterations=epochs)
                checkpoint.restore(session)
        result = session.finish()

        assert completed == epochs
        np.testing.assert_array_equal(reference.model.p, result.model.p)
        np.testing.assert_array_equal(reference.model.q, result.model.q)
        assert [t.end_time for t in reference.trace.tasks] == [
            t.end_time for t in result.trace.tasks
        ]


class TestEngineProtocolSurface:
    def test_engines_expose_backend_names(self):
        assert SimulationEngine.backend_name == "simulate"
        assert ThreadedEngine.backend_name == "threads"

    def test_sessions_are_engine_sessions(self, small_split, small_training, scaled_preset):
        train, test = small_split
        session = _sim_engine(train, test, small_training, scaled_preset).start(iterations=1)
        assert isinstance(session, EngineSession)
        assert session.backend_name == "simulate"
        assert not session.started
        assert session.epoch == 0
        session.step()
        assert session.started
        session.finish()

    def test_run_session_helper(self, small_split, small_training, scaled_preset):
        train, test = small_split
        session = _sim_engine(train, test, small_training, scaled_preset).start(iterations=2)
        result = run_session(session, None)
        assert len(result.trace.iterations) == 2

    def test_base_engine_requires_start(self):
        assert "start" in Engine.__abstractmethods__

    def test_simulation_engine_is_single_use(self, small_split, small_training, scaled_preset):
        """Like the threaded engine: a second run would silently continue
        on the mutated model and scheduler state."""
        from repro.exceptions import SimulationError

        train, test = small_split
        engine = _sim_engine(train, test, small_training, scaled_preset)
        engine.run(iterations=1)
        with pytest.raises(SimulationError, match="once"):
            engine.run(iterations=1)
