"""Chaos tier: injected worker crashes against the process backend.

Every test here SIGKILLs (or stalls) live worker processes through the
:mod:`repro.faults` switchboard and asserts the supervision machinery's
contracts:

* **determinism** — with one worker, a run that loses its worker at any
  point (before the kernel, mid-task after the factor writes, or after
  reporting) recovers by epoch-boundary rollback + replay to results
  **bitwise identical** to the failure-free run;
* **availability** — multi-worker runs survive a mid-task kill and keep
  converging (boundary snapshots are approximate under concurrency, so
  the pin is RMSE-level, not bitwise);
* **bounded retries** — exhausting ``TrainingConfig.max_worker_restarts``
  fails the run with a diagnostic :class:`ExecutionError` instead of
  respawning forever;
* **hygiene** — no run, recovered or failed, leaks a shared-memory
  segment (asserted by the autouse fixture);
* **fail-fast serving** — a benchmark reader killed on startup fails the
  reader collection within seconds instead of hanging it.

The tier is marked ``chaos`` so CI can run it in isolation with leak
diagnostics, but it is deliberately fast (tiny synthetic data, a few
epochs) — the default unfiltered ``pytest`` run includes it.
"""

import glob
import json

import numpy as np
import pytest

from repro import faults
from repro.core import GreedyBlockScheduler, HSGDStarScheduler
from repro.core.partition import nonuniform_partition, uniform_partition
from repro.exceptions import ExecutionError
from repro.exec import ProcessEngine
from repro.faults import FaultPlan, FaultSpec
from repro.serve.bench import measure_multi_reader
from repro.sgd import FactorModel
from repro.shm import SEGMENT_PREFIX, live_segment_names

pytestmark = pytest.mark.chaos


def _dev_shm_segments():
    return set(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


@pytest.fixture(autouse=True)
def chaos_hygiene(monkeypatch, tmp_path):
    """Isolated runtime dir + no plan bleed + no leaked segments."""
    monkeypatch.setenv("REPRO_RUNTIME_DIR", str(tmp_path / "runtime"))
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.clear()
    before = _dev_shm_segments()
    yield
    faults.clear()
    assert live_segment_names() == ()
    assert _dev_shm_segments() == before


def _process_engine(train, test, training, n_workers=1, seed=0, **kwargs):
    if n_workers == 1:
        grid = uniform_partition(train, 3, 3)
        scheduler = GreedyBlockScheduler(grid, 1, 0, seed=seed)
    else:
        grid = nonuniform_partition(
            train, alpha=0.3, n_cpu_threads=n_workers - 1, n_gpus=1
        )
        scheduler = HSGDStarScheduler(
            grid, n_workers - 1, 1, dynamic_scheduling=True, seed=seed
        )
    return ProcessEngine(
        scheduler=scheduler, train=train, training=training, test=test, **kwargs
    )


def _kill_plan(*specs):
    return FaultPlan([FaultSpec(point="worker.task", **spec) for spec in specs])


@pytest.fixture(scope="module")
def reference_run(small_split, small_training):
    """The failure-free single-worker run every recovery is pinned against."""
    train, test = small_split
    result = _process_engine(train, test, small_training).run(iterations=3)
    assert result.worker_restarts == 0
    return result


def _assert_bitwise(result, reference):
    np.testing.assert_array_equal(result.model.p, reference.model.p)
    np.testing.assert_array_equal(result.model.q, reference.model.q)
    assert [r.test_rmse for r in result.trace.iterations] == [
        r.test_rmse for r in reference.trace.iterations
    ]
    assert [t.points for t in result.trace.tasks] == [
        t.points for t in reference.trace.tasks
    ]


class TestSingleWorkerRecovery:
    """Kill the only worker at assorted points: recovery must be exact."""

    @pytest.mark.parametrize(
        "mode,ordinal",
        [
            ("kill", 0),       # dies before the very first kernel call
            ("kill", 4),       # dies mid-epoch, task untouched
            ("kill_mid", 1),   # dies AFTER writing factors: forces rollback
            ("kill_mid", 10),  # ... in a later epoch (mid-run snapshot)
        ],
    )
    def test_kill_recovers_bitwise(
        self, small_split, small_training, reference_run, mode, ordinal
    ):
        train, test = small_split
        faults.install(_kill_plan({"mode": mode, "task": ordinal}))
        result = _process_engine(train, test, small_training).run(iterations=3)
        assert result.worker_restarts == 1
        _assert_bitwise(result, reference_run)

    def test_idle_death_after_reporting(
        self, small_split, small_training, reference_run
    ):
        """kill_after flushes the completion first: the worker dies idle,
        so the respawn needs no rollback — and stays bitwise exact."""
        train, test = small_split
        faults.install(_kill_plan({"mode": "kill_after", "task": 2}))
        result = _process_engine(train, test, small_training).run(iterations=3)
        assert result.worker_restarts == 1
        _assert_bitwise(result, reference_run)

    def test_stall_is_survived_without_restart(
        self, small_split, small_training, reference_run
    ):
        train, test = small_split
        faults.install(
            _kill_plan({"mode": "stall", "task": 3, "seconds": 0.2})
        )
        result = _process_engine(train, test, small_training).run(iterations=3)
        assert result.worker_restarts == 0
        _assert_bitwise(result, reference_run)

    def test_acceptance_three_kills_one_run(
        self, small_split, small_training, reference_run
    ):
        """The ISSUE pin: >= 3 injected kills (one of them a mid-task
        SIGKILL) in a single run, which still completes bitwise-equal to
        the failure-free run and leaks nothing."""
        train, test = small_split
        faults.install(
            _kill_plan(
                {"mode": "kill", "task": 1},
                {"mode": "kill_mid", "task": 6},
                {"mode": "kill", "task": 13},
            )
        )
        result = _process_engine(train, test, small_training).run(iterations=3)
        assert result.worker_restarts == 3
        _assert_bitwise(result, reference_run)
        assert live_segment_names() == ()


class TestRestartBudget:
    def test_exhaustion_raises_with_diagnostics(
        self, small_split, small_training
    ):
        train, test = small_split
        training = small_training.with_max_worker_restarts(1)
        faults.install(
            _kill_plan({"mode": "kill", "task": 0}, {"mode": "kill", "task": 2})
        )
        engine = _process_engine(train, test, training)
        with pytest.raises(ExecutionError, match="restart budget is exhausted"):
            engine.run(iterations=3)

    def test_exhaustion_message_names_the_knob_and_the_worker(
        self, small_split, small_training
    ):
        train, test = small_split
        training = small_training.with_max_worker_restarts(0)
        faults.install(_kill_plan({"mode": "kill_mid", "task": 0}))
        engine = _process_engine(train, test, training)
        with pytest.raises(ExecutionError) as excinfo:
            engine.run(iterations=2)
        message = str(excinfo.value)
        assert "died" in message
        assert "worker 0" in message
        assert "max_worker_restarts" in message
        assert "0 of 0 restart(s) used" in message


class TestMultiWorkerRecovery:
    def test_mid_task_kill_keeps_converging(self, small_split, small_training):
        """Concurrent workers make boundary snapshots approximate, so the
        multi-worker pin is availability + accuracy, not bitwise."""
        train, test = small_split
        reference = _process_engine(
            train, test, small_training, n_workers=3
        ).run(iterations=3)
        faults.install(
            _kill_plan({"mode": "kill_mid", "worker": 1, "task": 2})
        )
        result = _process_engine(
            train, test, small_training, n_workers=3
        ).run(iterations=3)
        assert result.worker_restarts == 1
        curve = [r.test_rmse for r in result.trace.iterations]
        assert all(np.isfinite(curve))
        assert curve[-1] < curve[0]  # still learning after the crash
        # Same data, same epochs: recovery lands in the same RMSE regime.
        assert abs(curve[-1] - reference.trace.iterations[-1].test_rmse) < 0.25


class TestReaderFailFast:
    def test_dead_reader_fails_the_bench_quickly(self, monkeypatch):
        model = FactorModel.initialize(40, 30, 4, seed=5)
        monkeypatch.setenv(
            faults.FAULTS_ENV,
            json.dumps([{"point": "serve.reader.start", "worker": 0, "mode": "kill"}]),
        )
        with pytest.raises(ExecutionError, match="died without reporting"):
            measure_multi_reader(
                model,
                users=np.arange(40),
                k=5,
                batch_size=8,
                chunk_items=64,
                readers=2,
            )

    def test_healthy_readers_still_pass_under_empty_plan(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "[]")
        model = FactorModel.initialize(40, 30, 4, seed=5)
        sample = measure_multi_reader(
            model, users=np.arange(40), k=5, batch_size=8,
            chunk_items=64, readers=2,
        )
        assert sample.users_scored == 40
