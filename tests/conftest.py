"""Shared fixtures for the test suite.

The fixtures keep the expensive objects (synthetic matrices, platforms,
calibrations, short training runs) module- or session-scoped so the suite
stays fast while still exercising the real code paths end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import HardwareConfig, TrainingConfig
from repro.costmodel import calibrate_platform
from repro.datasets import SyntheticConfig, generate_synthetic_matrix, holdout_split
from repro.hardware import HeterogeneousPlatform, paper_machine_preset
from repro.sparse import SparseRatingMatrix


@pytest.fixture(scope="session")
def tiny_matrix() -> SparseRatingMatrix:
    """A 6x5 hand-written rating matrix used by exact-value tests."""
    triples = [
        (0, 0, 5.0), (0, 2, 3.0), (0, 4, 1.0),
        (1, 1, 4.0), (1, 3, 2.0),
        (2, 0, 3.5), (2, 2, 4.5),
        (3, 1, 2.5), (3, 4, 5.0),
        (4, 0, 1.5), (4, 3, 3.0),
        (5, 2, 2.0), (5, 4, 4.0),
    ]
    return SparseRatingMatrix.from_triples(triples, shape=(6, 5))


@pytest.fixture(scope="session")
def small_synthetic():
    """A small synthetic dataset (3 000 ratings) with its ground truth."""
    config = SyntheticConfig(
        n_rows=300,
        n_cols=200,
        n_ratings=3_000,
        rank=4,
        rating_min=1.0,
        rating_max=5.0,
        noise_std=0.3,
        seed=7,
    )
    matrix, true_p, true_q = generate_synthetic_matrix(config)
    return matrix, true_p, true_q, config


@pytest.fixture(scope="session")
def small_matrix(small_synthetic) -> SparseRatingMatrix:
    """The rating matrix of :func:`small_synthetic`."""
    return small_synthetic[0]


@pytest.fixture(scope="session")
def small_split(small_matrix):
    """An 85/15 train/test split of the small synthetic matrix."""
    return holdout_split(small_matrix, test_fraction=0.15, seed=3)


@pytest.fixture(scope="session")
def small_training() -> TrainingConfig:
    """A small, fast training configuration."""
    return TrainingConfig(
        latent_factors=8,
        learning_rate=0.01,
        reg_p=0.05,
        reg_q=0.05,
        iterations=5,
        seed=0,
        init_scale=0.6,
    )


@pytest.fixture(scope="session")
def small_hardware() -> HardwareConfig:
    """A small heterogeneous machine: 4 CPU threads and 1 GPU."""
    return HardwareConfig(cpu_threads=4, gpu_count=1, gpu_parallel_workers=128)


@pytest.fixture(scope="session")
def scaled_preset():
    """The paper machine scaled to the test datasets' size."""
    return paper_machine_preset().scaled(1e-3)


@pytest.fixture(scope="session")
def small_platform(small_hardware, scaled_preset) -> HeterogeneousPlatform:
    """A simulated platform for the small hardware configuration."""
    return HeterogeneousPlatform.from_preset(small_hardware, scaled_preset)


@pytest.fixture(scope="session")
def small_calibration(small_platform, small_matrix, small_training):
    """Cost models calibrated on the small platform and matrix."""
    return calibrate_platform(
        small_platform, small_matrix, training=small_training, segments=8
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(12345)
