"""Tests of the synthetic generator, the dataset registry and splits."""

import numpy as np
import pytest

from repro.datasets import (
    SyntheticConfig,
    dataset_names,
    generate_synthetic_matrix,
    get_dataset,
    holdout_split,
    load_dataset,
)
from repro.exceptions import DatasetError
from repro.sgd import FactorModel, rmse


class TestSyntheticGenerator:
    def test_shapes_and_bounds(self, small_synthetic):
        matrix, true_p, true_q, config = small_synthetic
        assert matrix.shape == (config.n_rows, config.n_cols)
        assert matrix.nnz <= config.n_ratings
        assert matrix.nnz > 0.9 * config.n_ratings
        low, high = matrix.rating_range()
        assert low >= config.rating_min
        assert high <= config.rating_max
        assert true_p.shape == (config.n_rows, config.rank)
        assert true_q.shape == (config.rank, config.n_cols)

    def test_no_duplicate_cells(self, small_synthetic):
        matrix = small_synthetic[0]
        cells = matrix.rows * matrix.n_cols + matrix.cols
        assert len(np.unique(cells)) == matrix.nnz

    def test_deterministic_in_seed(self):
        config = SyntheticConfig(n_rows=50, n_cols=40, n_ratings=300, seed=9)
        a, _, _ = generate_synthetic_matrix(config)
        b, _, _ = generate_synthetic_matrix(config)
        assert a == b

    def test_different_seeds_differ(self):
        base = SyntheticConfig(n_rows=50, n_cols=40, n_ratings=300, seed=1)
        other = SyntheticConfig(n_rows=50, n_cols=40, n_ratings=300, seed=2)
        a, _, _ = generate_synthetic_matrix(base)
        b, _, _ = generate_synthetic_matrix(other)
        assert a != b

    def test_popularity_skew(self):
        config = SyntheticConfig(
            n_rows=200, n_cols=200, n_ratings=4000, popularity_exponent=1.0, seed=0
        )
        matrix, _, _ = generate_synthetic_matrix(config)
        counts = np.sort(matrix.col_counts())[::-1]
        top_share = counts[:20].sum() / matrix.nnz
        assert top_share > 0.25  # the top 10% of items hold >25% of ratings

    def test_uniform_popularity_when_exponent_zero(self):
        config = SyntheticConfig(
            n_rows=100, n_cols=100, n_ratings=4000, popularity_exponent=0.0, seed=0
        )
        matrix, _, _ = generate_synthetic_matrix(config)
        counts = matrix.col_counts()
        assert counts.max() < 5 * max(1, counts.mean())

    def test_ground_truth_explains_ratings(self, small_synthetic):
        """The generating factors reach roughly the noise-floor RMSE."""
        matrix, true_p, true_q, config = small_synthetic
        model = FactorModel(true_p, true_q)
        assert rmse(model, matrix) < 1.5 * config.noise_std + 0.05

    def test_validation(self):
        with pytest.raises(DatasetError):
            SyntheticConfig(n_rows=0, n_cols=10, n_ratings=10)
        with pytest.raises(DatasetError):
            SyntheticConfig(n_rows=10, n_cols=10, n_ratings=0)
        with pytest.raises(DatasetError):
            SyntheticConfig(n_rows=10, n_cols=10, n_ratings=10, rating_max=0.5,
                            rating_min=1.0)
        with pytest.raises(DatasetError):
            SyntheticConfig(n_rows=10, n_cols=10, n_ratings=10, noise_std=-1)


class TestRegistry:
    def test_table1_datasets_registered(self):
        assert dataset_names() == ["movielens", "netflix", "r1", "yahoomusic"]

    def test_paper_statistics_match_table1(self):
        yahoo = get_dataset("yahoomusic").paper
        assert yahoo.n_rows == 1_000_990
        assert yahoo.n_cols == 624_961
        assert yahoo.n_training == 252_800_275
        assert yahoo.learning_rate == pytest.approx(0.01)
        netflix = get_dataset("netflix").paper
        assert netflix.n_training == 99_072_112
        assert netflix.reg_p == pytest.approx(0.05)
        movielens = get_dataset("movielens").paper
        assert movielens.latent_factors == 128
        r1 = get_dataset("r1").paper
        assert r1.reg_p == pytest.approx(1.0)

    def test_size_ordering_preserved(self):
        sizes = [get_dataset(n).synthetic.n_ratings for n in dataset_names()]
        assert sizes == sorted(sizes)
        assert sizes[-1] > 2 * sizes[0]

    def test_scale_is_roughly_one_thousandth(self):
        for name in ("netflix", "r1", "yahoomusic"):
            assert get_dataset(name).scale == pytest.approx(1e-3, rel=0.15)

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            get_dataset("imaginary")

    def test_recommended_training_follows_table1(self):
        config = get_dataset("movielens").recommended_training(iterations=7)
        assert config.iterations == 7
        assert config.reg_p == pytest.approx(0.05)
        assert config.learning_rate == pytest.approx(0.005)
        yahoo = get_dataset("yahoomusic").recommended_training()
        # 0-100 scale: the Table I rate is rescaled for the mini-batch kernel.
        assert yahoo.learning_rate < 0.01
        assert yahoo.reg_p == pytest.approx(1.0)
        assert yahoo.init_scale > 1.0

    def test_load_dataset_split_sizes(self):
        bundle = load_dataset("movielens")
        spec = bundle.spec
        total = bundle.train.nnz + bundle.test.nnz
        expected_fraction = spec.paper.n_test / (spec.paper.n_training + spec.paper.n_test)
        assert bundle.test.nnz / total == pytest.approx(expected_fraction, rel=0.1)

    def test_load_dataset_cached(self):
        a = load_dataset("movielens")
        b = load_dataset("movielens")
        assert a.train is b.train

    def test_target_rmse_above_noise_floor(self):
        for name in dataset_names():
            spec = get_dataset(name)
            assert spec.target_rmse > spec.synthetic.noise_std


class TestHoldoutSplit:
    def test_partition_property(self, small_matrix):
        train, test = holdout_split(small_matrix, 0.2, seed=1)
        assert train.nnz + test.nnz == small_matrix.nnz
        assert train.shape == small_matrix.shape == test.shape
        train_cells = set(zip(train.rows.tolist(), train.cols.tolist()))
        test_cells = set(zip(test.rows.tolist(), test.cols.tolist()))
        assert not (train_cells & test_cells)

    def test_fraction_respected(self, small_matrix):
        _, test = holdout_split(small_matrix, 0.3, seed=0)
        assert test.nnz == pytest.approx(0.3 * small_matrix.nnz, rel=0.02)

    def test_deterministic(self, small_matrix):
        a = holdout_split(small_matrix, 0.2, seed=5)
        b = holdout_split(small_matrix, 0.2, seed=5)
        assert a[0] == b[0] and a[1] == b[1]

    def test_validation(self, small_matrix, tiny_matrix):
        with pytest.raises(DatasetError):
            holdout_split(small_matrix, 0.0)
        with pytest.raises(DatasetError):
            holdout_split(small_matrix, 1.0)
        with pytest.raises(DatasetError):
            holdout_split(tiny_matrix, 0.001)
