"""Tests of the fault-injection harness and the crash-safety plumbing.

Everything here is fast and in-process (or spawns one short-lived child
that exits *cleanly* after manufacturing an orphan); the tests that
SIGKILL live training workers are the chaos tier in ``test_chaos.py``.

Covered contracts:

* :mod:`repro.faults` — spec validation/matching, plan parsing (env and
  programmatic), arrival counting, and the ``hit``/``execute`` actions
  that do not kill the calling process;
* shm manifests — owned segments are journaled under the runtime dir,
  ``abandon()`` manufactures the exact state a crash leaves behind, and
  :func:`repro.shm.reap_orphaned_segments` (plus the ``repro gc-shm``
  CLI) reaps segments of dead owners while never touching live ones;
* crash-atomic publication — a publisher that dies between the factor
  copy and the commit stamp leaves a torn segment that
  :func:`repro.serve.attach_model` refuses to map;
* graceful degradation — :class:`repro.stream.IngestSession` retries
  failed publishes with backoff and keeps the last committed version
  serving, and :class:`repro.serve.RecommendationService` keeps serving
  its pinned lease when a hot reload fails.
"""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro import HeterogeneousTrainer, faults
from repro.cli import main
from repro.config import HardwareConfig, TrainingConfig
from repro.exceptions import ConfigurationError, ExecutionError, ReproError
from repro.faults import FaultInjected, FaultPlan, FaultSpec
from repro.serve import ModelStore, RecommendationService, attach_model
from repro.serve.store import ModelHandle
from repro.sgd import FactorModel
from repro.shm import (
    SharedSegment,
    force_unlink,
    live_segment_names,
    reap_orphaned_segments,
)
from repro.sparse import SparseRatingMatrix
from repro.stream import IngestSession


@pytest.fixture(autouse=True)
def isolated_faults(monkeypatch, tmp_path):
    """Isolate every test: private runtime dir, no ambient fault plan."""
    monkeypatch.setenv("REPRO_RUNTIME_DIR", str(tmp_path / "runtime"))
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.clear()
    yield
    faults.clear()
    assert live_segment_names() == ()


def _manifest(runtime, pid=None):
    """Parse this (or another) pid's manifest, or None if absent."""
    path = os.path.join(str(runtime), f"segments-{pid or os.getpid()}.json")
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec(point="worker.task")
        assert spec.mode == "kill"
        assert spec.worker == -1 and spec.task == 0 and spec.count == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"point": ""},
            {"point": "p", "mode": "explode"},
            {"point": "p", "task": -1},
            {"point": "p", "count": 0},
            {"point": "p", "seconds": -0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ReproError):
            FaultSpec(**kwargs)

    def test_matching_window(self):
        spec = FaultSpec(point="p", task=3, count=2)
        assert [spec.matches(None, o) for o in range(6)] == [
            False, False, False, True, True, False,
        ]

    def test_worker_pinning(self):
        spec = FaultSpec(point="p", worker=1)
        assert spec.matches(1, 0)
        assert not spec.matches(0, 0)
        assert not spec.matches(None, 0)  # pinned spec, anonymous arrival
        assert FaultSpec(point="p", worker=-1).matches(7, 0)  # wildcard


class TestFaultPlan:
    def test_parse_list_and_single_object(self):
        plan = FaultPlan.parse('{"point": "p", "mode": "stall", "seconds": 1}')
        assert len(plan.specs) == 1 and plan.specs[0].mode == "stall"
        plan = FaultPlan.parse('[{"point": "a"}, {"point": "b", "worker": 2}]')
        assert [s.point for s in plan.specs] == ["a", "b"]

    @pytest.mark.parametrize(
        "text",
        [
            "not json",
            '"just a string"',
            '[{"point": "p", "typo_field": 1}]',
            "[42]",
            '[{"point": "p", "mode": "bogus"}]',
        ],
    )
    def test_parse_rejects(self, text):
        with pytest.raises(ReproError):
            FaultPlan.parse(text)

    def test_take_counts_arrivals_per_point_and_worker(self):
        plan = FaultPlan([FaultSpec(point="p", task=1)])
        # Separate (point, worker) streams: each fires on ITS 2nd arrival.
        assert plan.take("p", worker=0) is None
        assert plan.take("p", worker=1) is None
        assert plan.take("p", worker=0) is not None
        assert plan.take("p", worker=1) is not None
        assert plan.take("p", worker=0) is None  # window exhausted
        assert plan.take("q", worker=0) is None  # other points never match

    def test_take_with_explicit_ordinal_bypasses_counters(self):
        plan = FaultPlan([FaultSpec(point="p", worker=1, task=5)])
        # Durable controller-side ordinals: the plan keeps no state, so
        # re-presenting the same ordinal (a replayed dispatch) re-matches.
        assert plan.take("p", worker=1, ordinal=4) is None
        assert plan.take("p", worker=1, ordinal=5) is not None
        assert plan.take("p", worker=1, ordinal=5) is not None
        assert plan.take("p", worker=0, ordinal=5) is None

    def test_truthiness(self):
        assert not FaultPlan([])
        assert FaultPlan([FaultSpec(point="p")])


class TestActivePlan:
    def test_no_plan_by_default(self):
        assert faults.active_plan() is None
        faults.hit("worker.task", worker=0)  # cheap no-op

    def test_install_and_clear(self):
        plan = FaultPlan([FaultSpec(point="p", mode="raise")])
        faults.install(plan)
        assert faults.active_plan() is plan
        faults.clear()
        assert faults.active_plan() is None

    def test_environment_plan_parsed_fresh_each_call(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, '[{"point": "p", "mode": "raise"}]')
        first, second = faults.active_plan(), faults.active_plan()
        assert first is not second  # no caching: children re-parse too
        assert first.specs == second.specs
        faults.install(FaultPlan([]))  # installed plan wins over env
        assert faults.active_plan() is not first
        assert not faults.active_plan().specs

    @pytest.mark.parametrize(
        "text, complaint",
        [
            ("{not json", "cannot parse fault plan JSON"),
            ('"just a string"', "must be a JSON list"),
            ("42", "must be a JSON list"),
            ("[42]", "fault spec must be an object"),
            ('[{"point": "p", "bogus": 1}]', "unknown fault spec fields"),
            ('[{"point": "p", "mode": "explode"}]', "fault mode must be one of"),
            ('[{"point": "p", "count": 0}]', "count must be positive"),
            ('[{"point": "p", "task": -1}]', "task ordinal must be >= 0"),
            ('[{"point": "p", "seconds": -1}]', "seconds must be >= 0"),
        ],
    )
    def test_env_plan_errors_surface_through_active_plan(
        self, monkeypatch, text, complaint
    ):
        """A broken REPRO_FAULTS value must fail loudly at the first
        lookup — with the parser's diagnostic — not inject nothing."""
        monkeypatch.setenv(faults.FAULTS_ENV, text)
        with pytest.raises(ReproError, match=complaint):
            faults.active_plan()
        with pytest.raises(ReproError, match=complaint):
            faults.hit("p")

    def test_empty_env_value_means_no_plan(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "")
        assert faults.active_plan() is None
        faults.hit("p")  # no-op, no error

    def test_installed_plan_shields_a_broken_env(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "{not json")
        plan = FaultPlan([])
        faults.install(plan)
        assert faults.active_plan() is plan  # env never parsed

    def test_hit_raise_carries_point_spec_context(self):
        faults.install(FaultPlan([FaultSpec(point="p", mode="raise")]))
        with pytest.raises(FaultInjected) as excinfo:
            faults.hit("p", worker=3, segment="seg-name")
        assert excinfo.value.point == "p"
        assert excinfo.value.spec.mode == "raise"
        assert excinfo.value.context == {"segment": "seg-name"}

    def test_hit_stall_sleeps_and_returns(self):
        faults.install(FaultPlan([FaultSpec(point="p", mode="stall", seconds=0.0)]))
        faults.hit("p")  # must come back (seconds=0)


class TestManifest:
    def test_owned_segments_are_journaled_until_unlink(self, tmp_path):
        runtime = tmp_path / "runtime"
        a = SharedSegment.create(256, purpose="manifest-a")
        b = SharedSegment.create(256, purpose="manifest-b")
        manifest = _manifest(runtime)
        assert manifest["pid"] == os.getpid()
        assert set(manifest["segments"]) >= {a.name, b.name}
        a.unlink()
        assert a.name not in _manifest(runtime)["segments"]
        assert b.name in _manifest(runtime)["segments"]
        b.unlink()
        # Every owned name released -> this pid's manifest disappears
        # (unrelated suite-level segments would keep it; none exist here).
        manifest = _manifest(runtime)
        assert manifest is None or not manifest["segments"]

    def test_attached_segments_are_not_journaled(self, tmp_path):
        runtime = tmp_path / "runtime"
        owner = SharedSegment.create(256, purpose="owned")
        attached = SharedSegment.attach(owner.name)
        assert _manifest(runtime)["segments"].count(owner.name) == 1
        attached.close()
        owner.unlink()

    def test_abandon_manufactures_a_crash_orphan(self, tmp_path):
        runtime = tmp_path / "runtime"
        segment = SharedSegment.create(512, purpose="crash")
        name = segment.name
        segment.abandon()
        segment.abandon()  # idempotent
        # Gone from the live registry, still named in the kernel, still
        # journaled — exactly the state a SIGKILLed owner leaves.
        assert name not in live_segment_names()
        assert name in _manifest(runtime)["segments"]
        probe = SharedSegment.attach(name)
        probe.close()
        assert force_unlink(name) is True
        assert force_unlink(name) is False  # already reaped
        manifest = _manifest(runtime)
        assert manifest is None or name not in manifest["segments"]
        with pytest.raises(ExecutionError):
            SharedSegment.attach(name)

def _orphan_child(conn):
    """Create a segment, abandon it, report its name, exit cleanly.

    Run in a child process: once it exits, the segment is an orphan with
    a dead owner pid in the manifest — reap_orphaned_segments' prey.
    """
    segment = SharedSegment.create(1024, purpose="orphan")
    segment.abandon()
    conn.send((os.getpid(), segment.name))
    conn.close()


def _make_orphan():
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(target=_orphan_child, args=(child_conn,), daemon=True)
    proc.start()
    child_pid, name = parent_conn.recv()
    proc.join(timeout=30.0)
    assert proc.exitcode == 0
    parent_conn.close()
    child_conn.close()
    return child_pid, name


class TestReapOrphans:
    def test_dead_owner_segments_are_reaped(self, tmp_path):
        runtime = str(tmp_path / "runtime")
        child_pid, name = _make_orphan()
        assert name in _manifest(runtime, pid=child_pid)["segments"]

        dry = reap_orphaned_segments(runtime=runtime, dry_run=True)
        assert name in dry.reaped
        SharedSegment.attach(name).close()  # dry run unlinked nothing
        assert _manifest(runtime, pid=child_pid) is not None

        report = reap_orphaned_segments(runtime=runtime)
        assert name in report.reaped and report.scanned >= 1
        with pytest.raises(ExecutionError):
            SharedSegment.attach(name)
        assert _manifest(runtime, pid=child_pid) is None

        again = reap_orphaned_segments(runtime=runtime)
        assert again.total_reaped == 0  # idempotent

    def test_live_owners_are_never_touched(self, tmp_path):
        runtime = str(tmp_path / "runtime")
        segment = SharedSegment.create(256, purpose="live")
        report = reap_orphaned_segments(runtime=runtime)
        assert os.getpid() in report.skipped_live
        assert segment.name not in report.reaped
        SharedSegment.attach(segment.name).close()  # still exists
        segment.unlink()

    def test_torn_or_foreign_manifests_are_skipped(self, tmp_path):
        runtime = tmp_path / "runtime"
        runtime.mkdir(parents=True, exist_ok=True)
        (runtime / "segments-99999999.json").write_text("{torn json")
        (runtime / "segments-88888888.json").write_text('{"pid": "x"}')
        (runtime / "unrelated.txt").write_text("not a manifest")
        report = reap_orphaned_segments(runtime=str(runtime))
        assert report.scanned == 0
        assert report.total_reaped == 0

    def test_missing_segments_are_reported_not_fatal(self, tmp_path):
        runtime = tmp_path / "runtime"
        runtime.mkdir(parents=True, exist_ok=True)
        # A dead owner whose segment was already removed out-of-band.
        (runtime / "segments-4000000.json").write_text(
            json.dumps({"pid": 4000000, "segments": ["repro-shm-gone"]})
        )
        report = reap_orphaned_segments(runtime=str(runtime))
        assert report.missing == ["repro-shm-gone"]
        assert report.total_reaped == 0


class TestGcShmCli:
    def test_gc_shm_reaps_a_deliberate_orphan(self, tmp_path, capsys):
        runtime = str(tmp_path / "runtime")
        _, name = _make_orphan()

        assert main(["gc-shm", "--runtime-dir", runtime, "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert name in out and "would reap" in out
        SharedSegment.attach(name).close()  # dry run left it alone

        assert main(["gc-shm", "--runtime-dir", runtime]) == 0
        out = capsys.readouterr().out
        assert name in out and "reaped" in out
        with pytest.raises(ExecutionError):
            SharedSegment.attach(name)

    def test_gc_shm_on_empty_runtime(self, tmp_path, capsys):
        assert main(["gc-shm", "--runtime-dir", str(tmp_path / "empty")]) == 0
        assert "0" in capsys.readouterr().out

    def test_gc_shm_dry_run_output_format(self, tmp_path, capsys):
        """Pin the dry-run report shape: every summary line present, the
        conditional verb, and one 'would reap NAME' line per orphan."""
        runtime = str(tmp_path / "runtime")
        _, name = _make_orphan()

        assert main(["gc-shm", "--runtime-dir", runtime, "--dry-run"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0] == f"runtime dir        : {runtime}"
        assert any(line.startswith("manifests scanned  : ") for line in lines)
        assert any(line.startswith("owners still alive : ") for line in lines)
        assert "segments would reap : 1" in out
        assert f"  would reap {name}" in out
        # The unlinking verb must not appear anywhere in a dry run.
        assert "reaped" not in out
        SharedSegment.attach(name).close()  # still alive

        assert main(["gc-shm", "--runtime-dir", runtime]) == 0  # clean up


class TestCrashAtomicPublish:
    M, N, K = 12, 9, 4

    def _model(self, seed=3):
        return FactorModel.initialize(self.M, self.N, self.K, seed=seed)

    def test_torn_publish_never_attaches(self, tmp_path):
        runtime = tmp_path / "runtime"
        faults.install(
            FaultPlan([FaultSpec(point="store.publish.pre_commit", mode="torn")])
        )
        with ModelStore() as store:
            with pytest.raises(FaultInjected) as excinfo:
                store.publish(self._model())
            torn = excinfo.value.context["segment"]
            # Never registered: readers keep whatever was current (nothing).
            assert store.current_version is None
            assert store.live_versions == ()
            # The torn segment is abandoned, named, and journaled — a
            # reader that finds its handle must refuse to map it.
            assert torn not in live_segment_names()
            assert torn in _manifest(runtime)["segments"]
            handle = ModelHandle(
                version=1, segment=torn,
                n_rows=self.M, n_cols=self.N, latent_factors=self.K,
            )
            with pytest.raises(ExecutionError, match="torn publish"):
                attach_model(handle)

            # The publisher recovers: the next publish is a clean v1.
            faults.clear()
            handle = store.publish(self._model(seed=4))
            assert handle.version == 1 and store.current_version == 1
            model, segment = attach_model(handle)
            np.testing.assert_array_equal(model.p, self._model(seed=4).p)
            model = None
            segment.close()
        assert force_unlink(torn) is True

    def test_committed_publish_round_trips(self):
        with ModelStore() as store:
            reference = self._model()
            handle = store.publish(reference)
            model, segment = attach_model(handle)
            np.testing.assert_array_equal(model.p, reference.p)
            np.testing.assert_array_equal(model.q, reference.q)
            with pytest.raises((ValueError, ExecutionError)):
                model.p[0, 0] = 99.0  # reader views are read-only
            model = None
            segment.close()


class TestIngestPublishRetry:
    """A failing publish degrades the ingest loop, never crashes it."""

    BASE_U, BASE_I, K = 30, 24, 3

    def _session(self, store, **kwargs):
        rng = np.random.default_rng(7)
        rows = rng.integers(0, self.BASE_U, 400)
        cols = rng.integers(0, self.BASE_I, 400)
        matrix = SparseRatingMatrix(
            rows, cols, rng.uniform(1.0, 5.0, 400),
            shape=(self.BASE_U, self.BASE_I),
        )
        trainer = HeterogeneousTrainer(
            algorithm="hsgd_star",
            hardware=HardwareConfig(cpu_threads=2, gpu_count=1),
            training=TrainingConfig(
                latent_factors=self.K, learning_rate=0.05, iterations=2
            ),
            seed=0,
        )
        kwargs.setdefault("publish_backoff", 0.0)
        return IngestSession(
            trainer, matrix, store=store, window_size=16,
            backend="simulate", **kwargs,
        )

    def _batch(self, n=48, new_users=4, new_items=3, seed=11):
        rng = np.random.default_rng(seed)
        users = rng.integers(0, self.BASE_U + new_users, n)
        items = rng.integers(0, self.BASE_I + new_items, n)
        # Pin newcomers among the ratings that graduate immediately (the
        # oldest beyond the window) AND among the 16 the window retains,
        # so both ingest() and a later flush() change the model.
        users[0] = self.BASE_U + new_users - 1
        items[1] = self.BASE_I + new_items - 1
        users[-1] = self.BASE_U + new_users
        return users, items, rng.uniform(1.0, 5.0, n)

    def _reap_torn_leftovers(self, tmp_path, expected):
        """Force-unlink the segments abandoned by failed publish attempts."""
        manifest = _manifest(tmp_path / "runtime")
        leftovers = manifest["segments"] if manifest else []
        assert len(leftovers) == expected
        for name in leftovers:
            assert force_unlink(name) is True

    def test_retry_recovers_from_a_transient_failure(self, tmp_path):
        # count=1: only the FIRST publish attempt tears; the retry lands.
        faults.install(
            FaultPlan([FaultSpec(point="store.publish.pre_commit", mode="torn")])
        )
        with ModelStore() as store:
            session = self._session(store, publish_retries=2)
            session.start()
            assert store.current_version == 1
            assert session.stats.publishes == 1
            assert session.stats.publish_failures == 1
            assert session._publish_error is None
        self._reap_torn_leftovers(tmp_path, expected=1)

    def test_exhausted_retries_degrade_then_recover(self, tmp_path):
        faults.install(
            FaultPlan(
                [FaultSpec(point="store.publish.pre_commit", mode="torn", count=99)]
            )
        )
        with ModelStore() as store:
            session = self._session(store, publish_retries=1)
            session.start()  # publish fails (2 attempts) but start succeeds
            assert store.current_version is None
            assert session.stats.publishes == 0
            assert session.stats.publish_failures == 2

            # A model-changing ingest surfaces the structured error on
            # its report instead of raising out of the loop.
            report = session.ingest(*self._batch())
            assert report.folded_users >= 1
            assert report.published_version is None
            assert "publish failed after 2 attempt(s)" in report.publish_error
            assert "FaultInjected" in report.publish_error
            failures_so_far = session.stats.publish_failures
            assert failures_so_far >= 4

            # Once publishes heal, the next model change goes out and
            # readers finally get a (whole) version 1.
            faults.clear()
            report = session.flush()
            assert report.folded_users >= 1
            assert report.publish_error is None
            assert report.published_version == 1
            assert store.current_version == 1
            assert session.stats.publish_failures == failures_so_far
        self._reap_torn_leftovers(tmp_path, expected=failures_so_far)

    def test_retry_knobs_validated(self):
        with pytest.raises(ConfigurationError):
            self._session(None, publish_retries=-1)
        with pytest.raises(ConfigurationError):
            self._session(None, publish_backoff=-0.1)


class TestServiceReloadDegradation:
    def test_failed_reload_keeps_serving_pinned_lease(self, monkeypatch):
        model_v1 = FactorModel.initialize(10, 8, 3, seed=1)
        model_v2 = FactorModel.initialize(10, 8, 3, seed=2)
        with ModelStore() as store:
            store.publish(model_v1)
            with RecommendationService(store, k=3, cache_size=0) as service:
                assert service.recommend(0).items.shape == (3,)
                assert service.model_version == 1

                store.publish(model_v2)
                original_acquire = store.acquire

                def failing_acquire(version=None):
                    raise ExecutionError("injected reload failure")

                monkeypatch.setattr(store, "acquire", failing_acquire)
                # The reload fails but the request is still served — from
                # the old, still-pinned version.
                result = service.recommend(1)
                assert result.items.shape == (3,)
                assert service.model_version == 1
                failures = service.stats.reload_failures
                assert failures >= 1

                monkeypatch.setattr(store, "acquire", original_acquire)
                service.recommend(2)
                assert service.model_version == 2
                assert service.stats.reload_failures == failures
