"""Tests of the serial SGD reference and the non-SGD baselines."""

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.exceptions import ConfigurationError
from repro.sgd import (
    train_als,
    train_ccd,
    train_hogwild,
    train_serial_sgd,
)
from repro.sgd.schedules import (
    ConstantSchedule,
    InverseTimeDecaySchedule,
    TwinLearnersSchedule,
)


@pytest.fixture(scope="module")
def training() -> TrainingConfig:
    return TrainingConfig(
        latent_factors=8,
        learning_rate=0.02,
        reg_p=0.05,
        reg_q=0.05,
        iterations=6,
        seed=0,
        init_scale=0.6,
    )


class TestSerialSGD:
    def test_converges_and_records_history(self, small_split, training):
        train, test = small_split
        model, history = train_serial_sgd(train, training, test=test)
        assert history.iterations == training.iterations
        assert history.train_rmse[-1] < history.train_rmse[0]
        assert history.final_test_rmse() is not None
        assert model.shape == train.shape

    def test_test_rmse_approaches_noise_floor(self, small_split, small_synthetic, training):
        train, test = small_split
        noise = small_synthetic[3].noise_std
        _, history = train_serial_sgd(
            train, training.with_iterations(12), test=test
        )
        assert history.final_test_rmse() < 2.5 * noise

    def test_exact_kernel_option(self, tiny_matrix):
        config = TrainingConfig(
            latent_factors=4, learning_rate=0.05, reg_p=0.01, reg_q=0.01,
            iterations=3, seed=0,
        )
        model, history = train_serial_sgd(tiny_matrix, config, exact=True)
        assert history.iterations == 3
        assert np.all(np.isfinite(model.p))

    def test_warm_start_continues_from_model(self, small_split, training):
        train, test = small_split
        model, history1 = train_serial_sgd(train, training, test=test)
        _, history2 = train_serial_sgd(
            train, training.with_iterations(2), test=test, model=model
        )
        assert history2.test_rmse[-1] <= history1.test_rmse[0]

    def test_schedule_is_recorded(self, small_split, training):
        train, _ = small_split
        schedule = InverseTimeDecaySchedule(0.05, decay=0.5)
        _, history = train_serial_sgd(train, training, schedule=schedule)
        assert history.learning_rates[0] > history.learning_rates[-1]

    def test_no_shuffle_is_deterministic(self, small_split, training):
        train, _ = small_split
        model_a, _ = train_serial_sgd(
            train, training, shuffle_each_iteration=False
        )
        model_b, _ = train_serial_sgd(
            train, training, shuffle_each_iteration=False
        )
        np.testing.assert_array_equal(model_a.p, model_b.p)


class TestSchedules:
    def test_constant(self):
        assert ConstantSchedule(0.01)(5) == 0.01

    def test_constant_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            ConstantSchedule(0.0)

    def test_inverse_time_decay_monotone(self):
        schedule = InverseTimeDecaySchedule(0.1, decay=0.2)
        rates = [schedule(i) for i in range(10)]
        assert rates == sorted(rates, reverse=True)
        assert rates[0] == pytest.approx(0.1)

    def test_twin_learners_monotone_and_slow_start(self):
        schedule = TwinLearnersSchedule(0.1, alpha=1.0, beta=0.1)
        rates = [schedule(i) for i in range(20)]
        assert rates == sorted(rates, reverse=True)
        # Decay accelerates: the late drop exceeds the early drop.
        assert (rates[0] - rates[1]) < (rates[10] - rates[11]) * 10

    def test_negative_iteration_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantSchedule(0.1)(-1)

    def test_repr(self):
        assert "0.01" in repr(ConstantSchedule(0.01))
        assert "decay" in repr(InverseTimeDecaySchedule(0.01))
        assert "alpha" in repr(TwinLearnersSchedule(0.01))


class TestHogwild:
    def test_converges(self, small_split, training):
        train, test = small_split
        _, history = train_hogwild(train, training, workers=4, test=test)
        assert history.train_rmse[-1] < history.train_rmse[0]

    def test_worker_count_validation(self, small_split, training):
        train, _ = small_split
        with pytest.raises(ConfigurationError):
            train_hogwild(train, training, workers=0)
        with pytest.raises(ConfigurationError):
            train_hogwild(train, training, rounds_per_iteration=0)

    def test_more_workers_still_converge(self, small_split, training):
        train, test = small_split
        _, history = train_hogwild(
            train, training.with_iterations(4), workers=8, test=test
        )
        assert history.test_rmse[-1] < history.test_rmse[0]


class TestALS:
    def test_converges_fast(self, small_split, training):
        train, test = small_split
        _, history = train_als(train, training.with_iterations(3), test=test)
        assert history.train_rmse[-1] < history.train_rmse[0]
        assert history.train_rmse[-1] < 0.5

    def test_monotone_training_loss(self, small_split, training):
        train, _ = small_split
        _, history = train_als(train, training.with_iterations(4))
        assert all(
            later <= earlier + 1e-6
            for earlier, later in zip(history.train_rmse, history.train_rmse[1:])
        )


class TestCCD:
    def test_converges(self, small_split, training):
        train, test = small_split
        _, history = train_ccd(train, training.with_iterations(3), test=test)
        assert history.train_rmse[-1] < history.train_rmse[0]

    def test_comparable_to_als(self, small_split, training):
        train, _ = small_split
        _, ccd_history = train_ccd(train, training.with_iterations(3))
        _, als_history = train_als(train, training.with_iterations(3))
        assert ccd_history.train_rmse[-1] == pytest.approx(
            als_history.train_rmse[-1], rel=0.5, abs=0.2
        )
