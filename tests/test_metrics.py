"""Tests of the evaluation, imbalance and reporting helpers."""

import numpy as np
import pytest

from repro.core import uniform_partition
from repro.exceptions import ReproError
from repro.metrics import (
    format_curve,
    format_table,
    gini_coefficient,
    relative_speedup,
    summarize_convergence,
    time_to_target,
    update_imbalance,
)
from repro.metrics.reporting import format_mapping
from repro.sim import ExecutionTrace, IterationRecord


def _trace_with_curve(points):
    trace = ExecutionTrace()
    for index, (time, value) in enumerate(points):
        trace.record_iteration(IterationRecord(index, time, None, value, 0))
    trace.final_time = points[-1][0] if points else 0.0
    return trace


class TestEvaluation:
    def test_time_to_target(self):
        trace = _trace_with_curve([(1.0, 0.9), (2.0, 0.6), (3.0, 0.5)])
        assert time_to_target(trace, 0.6) == 2.0
        assert time_to_target(trace, 0.4) is None

    def test_relative_speedup(self):
        assert relative_speedup(10.0, 5.0) == pytest.approx(2.0)
        with pytest.raises(ReproError):
            relative_speedup(0.0, 5.0)
        with pytest.raises(ReproError):
            relative_speedup(5.0, -1.0)

    def test_summarize_convergence(self):
        trace = _trace_with_curve([(1.0, 0.9), (2.0, 0.5), (3.0, 0.55)])
        summary = summarize_convergence(trace)
        assert summary["iterations"] == 3.0
        assert summary["best_rmse"] == 0.5
        assert summary["final_rmse"] == 0.55

    def test_summarize_empty_trace(self):
        summary = summarize_convergence(ExecutionTrace())
        assert summary["iterations"] == 0.0
        assert np.isnan(summary["final_rmse"])


class TestImbalance:
    def test_gini_of_equal_values_is_zero(self):
        assert gini_coefficient(np.ones(10)) == pytest.approx(0.0, abs=1e-9)

    def test_gini_of_concentrated_values_near_one(self):
        values = np.zeros(100)
        values[0] = 1000.0
        assert gini_coefficient(values) > 0.9

    def test_gini_monotone_in_concentration(self):
        even = np.array([5.0, 5.0, 5.0, 5.0])
        skewed = np.array([17.0, 1.0, 1.0, 1.0])
        assert gini_coefficient(skewed) > gini_coefficient(even)

    def test_gini_validation(self):
        with pytest.raises(ReproError):
            gini_coefficient(np.array([]))
        with pytest.raises(ReproError):
            gini_coefficient(np.array([-1.0, 2.0]))
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_update_imbalance_uniform_counts(self, small_matrix):
        grid = uniform_partition(small_matrix, 3, 3)
        for block in grid.iter_blocks():
            block.update_count = 4
        stats = update_imbalance(grid)
        assert stats["cv"] == pytest.approx(0.0, abs=1e-9)
        assert stats["mean"] == 4.0
        assert stats["min"] == 4.0 and stats["max"] == 4.0

    def test_update_imbalance_detects_skew(self, small_matrix):
        grid = uniform_partition(small_matrix, 3, 3)
        blocks = list(grid.iter_blocks())
        for block in blocks:
            block.update_count = 1
        blocks[0].update_count = 50
        stats = update_imbalance(grid)
        assert stats["cv"] > 1.0
        assert stats["gini"] > 0.3
        assert stats["max"] == 50


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [("a", 1.5), ("bbbb", 22.25)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "22.250" in lines[3]

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [(1,)])

    def test_format_curve(self):
        text = format_curve([(0.5, 1.0), (1.0, 0.8)], x_label="t", y_label="rmse")
        assert "t" in text and "rmse" in text
        assert "0.8000" in text

    def test_format_mapping(self):
        text = format_mapping({"alpha": 0.25, "note": "ok"})
        assert "alpha: 0.2500" in text
        assert "note: ok" in text
