"""Tests of the simulated hardware substrate."""

import pytest

from repro.config import HardwareConfig
from repro.exceptions import ConfigurationError
from repro.hardware import (
    BlockWork,
    CPUThreadDevice,
    ConstantThroughputCurve,
    GPUDevice,
    HeterogeneousPlatform,
    PCIeLinkModel,
    SaturatingLogThroughputCurve,
    StreamPipelineModel,
    paper_machine_preset,
)
from repro.hardware.presets import (
    balanced_machine_preset,
    cpu_heavy_machine_preset,
    gpu_heavy_machine_preset,
)
from repro.hardware.throughput import scaled_curve


class TestThroughputCurves:
    def test_constant_curve_flat(self):
        curve = ConstantThroughputCurve(5e6)
        assert curve.points_per_second(1_000) == curve.points_per_second(1_000_000)

    def test_constant_curve_seconds(self):
        curve = ConstantThroughputCurve(1e6)
        assert curve.seconds_for(2_000_000) == pytest.approx(2.0)
        assert curve.seconds_for(0) == 0.0

    def test_constant_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            ConstantThroughputCurve(0.0)

    def test_saturating_curve_monotone(self):
        curve = SaturatingLogThroughputCurve(100e6, 10e6, 1_000_000, ramp_size=100_000)
        sizes = [1_000, 10_000, 100_000, 500_000, 1_000_000]
        speeds = [curve.points_per_second(s) for s in sizes]
        assert speeds == sorted(speeds)

    def test_saturating_curve_observation1(self):
        """Observation 1: small blocks are far below the plateau."""
        curve = paper_machine_preset().gpu_curve()
        small = curve.points_per_second(100_000)
        large = curve.points_per_second(20_000_000)
        assert large > 2.0 * small

    def test_saturating_curve_plateau(self):
        curve = SaturatingLogThroughputCurve(100e6, 10e6, 1_000_000)
        assert curve.points_per_second(1_000_000) == pytest.approx(100e6)
        assert curve.points_per_second(50_000_000) == pytest.approx(100e6)

    def test_saturating_curve_floor(self):
        curve = SaturatingLogThroughputCurve(100e6, 10e6, 1_000_000)
        assert curve.points_per_second(0) == pytest.approx(10e6)

    def test_saturating_validation(self):
        with pytest.raises(ConfigurationError):
            SaturatingLogThroughputCurve(10e6, 20e6, 1_000_000)
        with pytest.raises(ConfigurationError):
            SaturatingLogThroughputCurve(10e6, 1e6, -5)

    def test_scaled_curve(self):
        base = ConstantThroughputCurve(1e6)
        doubled = scaled_curve(base, 2.0)
        assert doubled.points_per_second(10) == pytest.approx(2e6)
        with pytest.raises(ConfigurationError):
            scaled_curve(base, 0.0)


class TestPCIeLink:
    def test_bandwidth_ramps_with_size(self):
        """Figure 6 shape: small transfers achieve a fraction of peak."""
        link = PCIeLinkModel(peak_bandwidth=12e9, latency=12e-6)
        small = link.host_to_device_bandwidth(64 * 1024)
        large = link.host_to_device_bandwidth(256 * 1024 * 1024)
        assert small < 0.5 * large
        assert large <= 12e9

    def test_time_monotone_in_size(self):
        link = PCIeLinkModel()
        assert link.host_to_device_time(1_000_000) < link.host_to_device_time(10_000_000)

    def test_zero_size_is_free(self):
        link = PCIeLinkModel()
        assert link.host_to_device_time(0) == 0.0
        assert link.device_to_host_bandwidth(0) == 0.0

    def test_d2h_direction_slower(self):
        link = PCIeLinkModel(asymmetry=0.9)
        size = 64 * 1024 * 1024
        assert link.device_to_host_time(size) > link.host_to_device_time(size)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PCIeLinkModel(peak_bandwidth=-1)
        with pytest.raises(ConfigurationError):
            PCIeLinkModel(latency=-1)
        with pytest.raises(ConfigurationError):
            PCIeLinkModel(asymmetry=1.5)


class TestStreamPipeline:
    def test_overlap_bounded_by_stage_sums(self):
        model = StreamPipelineModel()
        h2d = [1.0, 1.0, 1.0]
        kernel = [2.0, 2.0, 2.0]
        d2h = [0.5, 0.5, 0.5]
        makespan = model.makespan(h2d, kernel, d2h)
        assert makespan >= sum(kernel)
        assert makespan < sum(h2d) + sum(kernel) + sum(d2h)

    def test_overlap_dominated_by_slowest_stream(self):
        model = StreamPipelineModel()
        n = 50
        makespan = model.makespan([1.0] * n, [3.0] * n, [0.5] * n)
        assert makespan == pytest.approx(3.0 * n, rel=0.05)

    def test_serial_mode_is_sum(self):
        model = StreamPipelineModel(overlap_enabled=False)
        assert model.makespan([1.0], [2.0], [0.5]) == pytest.approx(3.5)

    def test_steady_state_block_time(self):
        model = StreamPipelineModel()
        assert model.steady_state_block_time(1.0, 3.0, 0.5) == 3.0
        serial = StreamPipelineModel(overlap_enabled=False)
        assert serial.steady_state_block_time(1.0, 3.0, 0.5) == 4.5

    def test_empty_pipeline(self):
        assert StreamPipelineModel().makespan([], [], []) == 0.0

    def test_validation(self):
        model = StreamPipelineModel()
        with pytest.raises(ConfigurationError):
            model.makespan([1.0], [1.0, 2.0], [1.0])
        with pytest.raises(ConfigurationError):
            model.makespan([-1.0], [1.0], [1.0])
        with pytest.raises(ConfigurationError):
            model.steady_state_block_time(-1.0, 1.0, 1.0)


class TestBlockWork:
    def test_transfer_bytes(self):
        work = BlockWork(nnz=1000, p_rows=100, q_cols=50, latent_factors=32)
        assert work.factor_bytes == (100 + 50) * 32 * 4
        assert work.host_to_device_bytes == 1000 * 12 + work.factor_bytes
        assert work.device_to_host_bytes == work.factor_bytes

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BlockWork(nnz=-1)
        with pytest.raises(ConfigurationError):
            BlockWork(nnz=1, latent_factors=0)


class TestDevices:
    def test_cpu_time_linear_in_size(self):
        device = CPUThreadDevice(throughput=ConstantThroughputCurve(5e6))
        small = device.process_time(BlockWork(nnz=10_000))
        large = device.process_time(BlockWork(nnz=100_000))
        assert large == pytest.approx(10 * small, rel=0.05)

    def test_cpu_observation2_speed_flat(self):
        device = CPUThreadDevice(per_block_overhead=0.0)
        speeds = [
            device.update_speed(BlockWork(nnz=s)) for s in (10_000, 100_000, 400_000)
        ]
        assert max(speeds) == pytest.approx(min(speeds), rel=1e-6)

    def test_gpu_observation1_speed_grows(self):
        device = GPUDevice()
        small = device.update_speed(BlockWork(nnz=100_000))
        large = device.update_speed(BlockWork(nnz=20_000_000))
        assert large > 2.0 * small

    def test_gpu_parallel_worker_scaling(self):
        base = GPUDevice(parallel_workers=128)
        more = base.with_parallel_workers(512)
        fewer = base.with_parallel_workers(32)
        work = BlockWork(nnz=5_000_000)
        assert more.update_speed(work) > base.update_speed(work)
        assert fewer.update_speed(work) < base.update_speed(work)
        # Diminishing returns: 4x workers gives less than 4x speed.
        assert more.update_speed(work) < 4.0 * base.update_speed(work)

    def test_gpu_process_time_is_stream_maximum(self):
        device = GPUDevice()
        work = BlockWork(nnz=1_000_000, p_rows=5_000, q_cols=5_000, latent_factors=128)
        expected = max(device.host_to_device_time(work), device.kernel_time(work))
        assert device.process_time(work) == pytest.approx(expected)

    def test_gpu_locality_penalty(self):
        device = GPUDevice(column_locality=0.5)
        compact = BlockWork(nnz=10_000, p_rows=100, q_cols=100)
        scattered = BlockWork(nnz=10_000, p_rows=100, q_cols=10_000)
        assert device.kernel_time(scattered) > device.kernel_time(compact)
        assert device.locality_factor(compact) > device.locality_factor(scattered)

    def test_gpu_pipeline_makespan(self):
        device = GPUDevice()
        works = [BlockWork(nnz=500_000, p_rows=100, q_cols=100)] * 4
        makespan = device.pipeline_makespan(works)
        assert makespan >= 4 * device.kernel_time(works[0]) * 0.9

    def test_measurement_noise_bounded(self):
        device = CPUThreadDevice(measurement_noise=0.05, seed=1)
        work = BlockWork(nnz=100_000)
        exact = device.process_time(work)
        samples = [device.measure_process_time(work) for _ in range(50)]
        assert all(0.5 * exact <= s <= 1.5 * exact for s in samples)
        assert len({round(s, 12) for s in samples}) > 1

    def test_zero_noise_measurement_is_exact(self):
        device = CPUThreadDevice(measurement_noise=0.0)
        work = BlockWork(nnz=50_000)
        assert device.measure_process_time(work) == device.process_time(work)

    def test_device_validation(self):
        with pytest.raises(ConfigurationError):
            CPUThreadDevice(per_block_overhead=-1)
        with pytest.raises(ConfigurationError):
            GPUDevice(parallel_workers=0)
        with pytest.raises(ConfigurationError):
            GPUDevice(column_locality=-0.1)
        with pytest.raises(ConfigurationError):
            GPUDevice(host_contention=-0.1)


class TestPlatform:
    def test_from_preset_counts(self, small_hardware, scaled_preset):
        platform = HeterogeneousPlatform.from_preset(small_hardware, scaled_preset)
        assert platform.n_cpu_threads == 4
        assert platform.n_gpus == 1
        assert platform.n_workers == 5
        assert len(platform.all_devices) == 5

    def test_worker_ordering_cpu_first(self, small_platform):
        assert not small_platform.is_gpu_worker(0)
        assert small_platform.is_gpu_worker(4)
        assert small_platform.device(4).is_gpu

    def test_device_index_validation(self, small_platform):
        with pytest.raises(ConfigurationError):
            small_platform.device(99)

    def test_representatives(self, small_platform):
        assert not small_platform.representative_cpu().is_gpu
        assert small_platform.representative_gpu().is_gpu

    def test_cpu_only_platform_has_no_gpu(self, scaled_preset):
        platform = HeterogeneousPlatform.from_preset(
            HardwareConfig(cpu_threads=2, gpu_count=0), scaled_preset
        )
        with pytest.raises(ConfigurationError):
            platform.representative_gpu()

    def test_aggregate_speeds(self, small_platform):
        work = BlockWork(nnz=5_000, p_rows=50, q_cols=50, latent_factors=8)
        total_cpu = small_platform.total_cpu_speed(work)
        single = small_platform.representative_cpu().update_speed(work)
        assert total_cpu == pytest.approx(4 * single)
        assert small_platform.total_gpu_speed(work) > 0

    def test_gpu_parallel_workers_propagated(self, scaled_preset):
        platform = HeterogeneousPlatform.from_preset(
            HardwareConfig(cpu_threads=1, gpu_count=1, gpu_parallel_workers=512),
            scaled_preset,
        )
        assert platform.representative_gpu().parallel_workers == 512


class TestPresets:
    def test_paper_machine_defaults(self):
        preset = paper_machine_preset()
        assert preset.cpu_points_per_second == pytest.approx(5e6)
        assert preset.scale == 1.0

    def test_scaled_preset_shrinks_sizes_not_speeds(self):
        base = paper_machine_preset()
        scaled = base.scaled(1e-3)
        assert scaled.gpu_saturation_size == pytest.approx(
            base.gpu_saturation_size * 1e-3
        )
        assert scaled.cpu_points_per_second == base.cpu_points_per_second
        assert scaled.scale == pytest.approx(1e-3)

    def test_scaled_preserves_curve_shape(self):
        base = paper_machine_preset()
        scaled = base.scaled(1e-3)
        ratio_base = (
            base.gpu_curve().points_per_second(1_000_000)
            / base.gpu_curve().points_per_second(100_000)
        )
        ratio_scaled = (
            scaled.gpu_curve().points_per_second(1_000)
            / scaled.gpu_curve().points_per_second(100)
        )
        assert ratio_scaled == pytest.approx(ratio_base, rel=1e-6)

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            paper_machine_preset().scaled(0.0)

    def test_with_noise(self):
        assert paper_machine_preset().with_noise(0.1).measurement_noise == 0.1

    def test_alternative_presets_are_consistent(self):
        for preset in (
            cpu_heavy_machine_preset(),
            gpu_heavy_machine_preset(),
            balanced_machine_preset(),
        ):
            assert preset.cpu_points_per_second > 0
            assert preset.gpu_curve().points_per_second(10_000_000) > 0

    def test_gpu_heavy_beats_cpu_heavy_gpu(self):
        work_size = 10_000_000
        gpu_heavy = gpu_heavy_machine_preset().gpu_curve().points_per_second(work_size)
        cpu_heavy = cpu_heavy_machine_preset().gpu_curve().points_per_second(work_size)
        assert gpu_heavy > cpu_heavy
