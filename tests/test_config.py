"""Tests of the configuration dataclasses."""

import pytest

from repro.config import (
    ExperimentConfig,
    HardwareConfig,
    SchedulingConfig,
    TrainingConfig,
)
from repro.exceptions import ConfigurationError


class TestTrainingConfig:
    def test_defaults_match_paper(self):
        config = TrainingConfig()
        assert config.latent_factors == 128
        assert config.learning_rate == pytest.approx(0.005)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrainingConfig(latent_factors=0)
        with pytest.raises(ConfigurationError):
            TrainingConfig(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            TrainingConfig(reg_p=-1.0)
        with pytest.raises(ConfigurationError):
            TrainingConfig(iterations=0)
        with pytest.raises(ConfigurationError):
            TrainingConfig(init_scale=0.0)

    def test_with_iterations_copy(self):
        config = TrainingConfig(iterations=5)
        other = config.with_iterations(20)
        assert other.iterations == 20
        assert config.iterations == 5

    def test_with_seed_copy(self):
        assert TrainingConfig().with_seed(7).seed == 7

    def test_effective_init_scale_default(self):
        config = TrainingConfig(latent_factors=64)
        assert config.effective_init_scale == pytest.approx(1 / 8)

    def test_effective_init_scale_explicit(self):
        assert TrainingConfig(init_scale=0.3).effective_init_scale == 0.3


class TestHardwareConfig:
    def test_defaults_match_paper(self):
        config = HardwareConfig()
        assert config.cpu_threads == 16
        assert config.gpu_count == 1
        assert config.gpu_parallel_workers == 128
        assert config.total_workers == 17

    def test_rejects_no_resources(self):
        with pytest.raises(ConfigurationError):
            HardwareConfig(cpu_threads=0, gpu_count=0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            HardwareConfig(cpu_threads=-1)
        with pytest.raises(ConfigurationError):
            HardwareConfig(gpu_count=-2)

    def test_rejects_bad_workers_with_gpu(self):
        with pytest.raises(ConfigurationError):
            HardwareConfig(gpu_count=1, gpu_parallel_workers=0)

    def test_cpu_only_allows_any_worker_setting(self):
        config = HardwareConfig(cpu_threads=4, gpu_count=0, gpu_parallel_workers=0)
        assert config.total_workers == 4

    def test_copy_helpers(self):
        config = HardwareConfig()
        assert config.with_cpu_threads(8).cpu_threads == 8
        assert config.with_gpu_parallel_workers(512).gpu_parallel_workers == 512


class TestSchedulingConfig:
    def test_defaults(self):
        config = SchedulingConfig()
        assert config.nonuniform_division
        assert config.dynamic_scheduling
        assert config.cost_model == "paper"

    def test_rejects_unknown_cost_model(self):
        with pytest.raises(ConfigurationError):
            SchedulingConfig(cost_model="magic")

    def test_rejects_bad_column_scale(self):
        with pytest.raises(ConfigurationError):
            SchedulingConfig(column_scale=0.0)


class TestExperimentConfig:
    def test_describe_mentions_key_settings(self):
        text = ExperimentConfig().describe()
        assert "k=128" in text
        assert "nc=16" in text
        assert "nonuniform" in text
