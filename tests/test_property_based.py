"""Property-based tests (hypothesis) of core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    GreedyBlockScheduler,
    HSGDStarScheduler,
    LockTable,
    Region,
    nonuniform_partition,
    uniform_partition,
)
from repro.costmodel import solve_alpha
from repro.hardware import StreamPipelineModel
from repro.sgd import FactorModel, regularized_loss, sgd_block_sequential
from repro.sparse import SparseRatingMatrix, balanced_boundaries

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def sparse_matrices(draw, max_rows=40, max_cols=40, max_ratings=200):
    """Random small sparse rating matrices."""
    n_rows = draw(st.integers(min_value=2, max_value=max_rows))
    n_cols = draw(st.integers(min_value=2, max_value=max_cols))
    n_ratings = draw(st.integers(min_value=1, max_value=max_ratings))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    rng = np.random.default_rng(seed)
    cells = rng.choice(n_rows * n_cols, size=min(n_ratings, n_rows * n_cols),
                       replace=False)
    rows = cells // n_cols
    cols = cells % n_cols
    vals = rng.uniform(1.0, 5.0, size=len(cells))
    return SparseRatingMatrix(rows, cols, vals, shape=(n_rows, n_cols))


class TestSparseProperties:
    @SETTINGS
    @given(matrix=sparse_matrices(), seed=st.integers(0, 1000))
    def test_shuffle_preserves_rating_multiset(self, matrix, seed):
        shuffled = matrix.shuffled(seed=seed)
        assert shuffled.nnz == matrix.nnz
        assert sorted(shuffled.vals.tolist()) == pytest.approx(
            sorted(matrix.vals.tolist())
        )

    @SETTINGS
    @given(matrix=sparse_matrices(), boundary=st.integers(0, 40))
    def test_row_band_partition(self, matrix, boundary):
        boundary = min(boundary, matrix.n_rows)
        top = matrix.row_band(0, boundary)
        bottom = matrix.row_band(boundary, matrix.n_rows)
        assert top.nnz + bottom.nnz == matrix.nnz

    @SETTINGS
    @given(matrix=sparse_matrices(), parts=st.integers(1, 6))
    def test_balanced_boundaries_cover_and_increase(self, matrix, parts):
        parts = min(parts, matrix.n_rows)
        bounds = balanced_boundaries(matrix.row_counts(), parts)
        assert bounds[0] == 0
        assert bounds[-1] == matrix.n_rows
        assert np.all(np.diff(bounds) > 0)

    @SETTINGS
    @given(
        matrix=sparse_matrices(),
        rows=st.integers(1, 5),
        cols=st.integers(1, 5),
    )
    def test_uniform_partition_conserves_ratings(self, matrix, rows, cols):
        grid = uniform_partition(matrix, rows, cols)
        assert grid.total_nnz == matrix.nnz
        all_indices = np.concatenate(
            [block.indices for block in grid.iter_blocks()]
        ) if grid.n_blocks else np.array([])
        assert len(np.unique(all_indices)) == matrix.nnz

    @SETTINGS
    @given(
        matrix=sparse_matrices(max_rows=60, max_ratings=300),
        alpha=st.floats(0.0, 1.0),
        nc=st.integers(1, 6),
        ng=st.integers(1, 2),
    )
    def test_nonuniform_partition_conserves_ratings(self, matrix, alpha, nc, ng):
        grid = nonuniform_partition(matrix, alpha, nc, ng)
        assert grid.total_nnz == matrix.nnz
        # Bands tile the row space.
        assert grid.row_bands[0].row_range[0] == 0
        assert grid.row_bands[-1].row_range[1] == matrix.n_rows


class TestKernelProperties:
    @SETTINGS
    @given(matrix=sparse_matrices(max_ratings=100), seed=st.integers(0, 100))
    def test_sequential_sgd_never_increases_regularised_loss_much(self, matrix, seed):
        """One small-step SGD sweep keeps the objective finite and (almost
        always) reduces it; we assert finiteness and boundedness."""
        model = FactorModel.initialize(
            matrix.n_rows, matrix.n_cols, 4, seed=seed, scale=0.5
        )
        before = regularized_loss(model, matrix, 0.05, 0.05)
        sgd_block_sequential(
            model.p, model.q, matrix.rows, matrix.cols, matrix.vals,
            0.001, 0.05, 0.05,
        )
        after = regularized_loss(model, matrix, 0.05, 0.05)
        assert np.isfinite(after)
        assert after <= before * 1.05 + 1e-6


class TestLockTableProperties:
    @SETTINGS
    @given(
        operations=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=1, max_size=30
        )
    )
    def test_acquired_bands_always_released_cleanly(self, operations):
        """Acquire/release pairs in random order never corrupt the table."""
        locks = LockTable(8, 8)
        held = []
        for row, col in operations:
            if locks.can_acquire([row], [col]):
                locks.acquire([row], [col])
                held.append((row, col))
            elif held:
                release_row, release_col = held.pop()
                locks.release([release_row], [release_col])
        for row, col in held:
            locks.release([row], [col])
        assert locks.locked_rows == set()
        assert locks.locked_cols == set()


#: Weighted interleaving actions: mostly dispatches, some completions and
#: the occasional iteration reset (which the engines perform while tasks
#: are still in flight, so the invariants must survive it).
scheduler_ops = st.lists(
    st.tuples(
        st.sampled_from(
            ["dispatch", "dispatch", "dispatch", "complete", "complete", "reset"]
        ),
        st.integers(0, 999),
    ),
    min_size=1,
    max_size=60,
)


class TestSchedulerInterleavingProperties:
    """Invariants of the schedulers under arbitrary dispatch/completion
    interleavings — exactly what the threaded backend subjects them to."""

    def _assert_disjoint(self, task, in_flight):
        for other in in_flight:
            assert not (task.row_bands & other.row_bands)
            assert not (task.col_bands & other.col_bands)

    @SETTINGS
    @given(
        matrix=sparse_matrices(max_rows=30, max_cols=30, max_ratings=150),
        n_workers=st.integers(1, 4),
        ops=scheduler_ops,
        seed=st.integers(0, 100),
    )
    def test_greedy_inflight_tasks_never_share_bands(
        self, matrix, n_workers, ops, seed
    ):
        grid = uniform_partition(matrix, 4, 4)
        scheduler = GreedyBlockScheduler(grid, n_workers, 0, seed=seed)
        scheduler.start_iteration()
        in_flight = []
        for kind, value in ops:
            if kind == "dispatch":
                task = scheduler.next_task(value % n_workers)
                if task is None:
                    continue
                self._assert_disjoint(task, in_flight)
                in_flight.append(task)
            elif kind == "complete" and in_flight:
                scheduler.complete_task(in_flight.pop(value % len(in_flight)))
            elif kind == "reset":
                scheduler.start_iteration()
        for task in in_flight:
            scheduler.complete_task(task)
        assert scheduler.locks.locked_rows == set()
        assert scheduler.locks.locked_cols == set()

    @SETTINGS
    @given(
        matrix=sparse_matrices(max_rows=60, max_ratings=300),
        alpha=st.floats(0.1, 0.9),
        nc=st.integers(1, 4),
        ng=st.integers(1, 2),
        ops=scheduler_ops,
        seed=st.integers(0, 100),
    )
    def test_hsgd_star_steals_only_after_quota_exhausted(
        self, matrix, alpha, nc, ng, ops, seed
    ):
        """Band disjointness plus the dynamic-scheduling contract: a task
        crosses regions only once the *origin* region of its worker has
        exhausted its per-iteration quota (Section VI-A)."""
        grid = nonuniform_partition(matrix, alpha, nc, ng)
        scheduler = HSGDStarScheduler(
            grid, nc, ng, dynamic_scheduling=True, seed=seed
        )
        scheduler.start_iteration()
        n_workers = nc + ng
        quota = {
            Region.CPU: grid.region_nnz(Region.CPU),
            Region.GPU: grid.region_nnz(Region.GPU),
        }
        assigned = {Region.CPU: 0, Region.GPU: 0}
        in_flight = []
        steals_seen = 0
        for kind, value in ops:
            if kind == "dispatch":
                worker = value % n_workers
                task = scheduler.next_task(worker)
                if task is None:
                    continue
                self._assert_disjoint(task, in_flight)
                regions = {block.region for block in task.blocks}
                assert len(regions) == 1, "tasks never mix regions"
                region = regions.pop()
                origin = (
                    Region.GPU if scheduler.is_gpu_worker(worker) else Region.CPU
                )
                if task.stolen:
                    steals_seen += 1
                    assert region != origin
                    assert assigned[origin] >= quota[origin], (
                        "stolen before the origin region's quota was exhausted"
                    )
                else:
                    assert region == origin
                assigned[region] += task.nnz
                in_flight.append(task)
            elif kind == "complete" and in_flight:
                scheduler.complete_task(in_flight.pop(value % len(in_flight)))
            elif kind == "reset":
                scheduler.start_iteration()
                assigned = {Region.CPU: 0, Region.GPU: 0}
        assert (
            scheduler.steal_counts["cpu"] + scheduler.steal_counts["gpu"]
            == steals_seen
        )
        for task in in_flight:
            scheduler.complete_task(task)
        assert scheduler.locks.locked_rows == set()
        assert scheduler.locks.locked_cols == set()


class TestStreamPipelineProperties:
    @SETTINGS
    @given(
        times=st.lists(
            st.tuples(
                st.floats(0.0, 10.0), st.floats(0.0, 10.0), st.floats(0.0, 10.0)
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_overlapped_makespan_bounds(self, times):
        """max(stage sums) <= overlapped makespan <= serial makespan."""
        h2d = [t[0] for t in times]
        kernel = [t[1] for t in times]
        d2h = [t[2] for t in times]
        overlapped = StreamPipelineModel(True).makespan(h2d, kernel, d2h)
        serial = StreamPipelineModel(False).makespan(h2d, kernel, d2h)
        assert overlapped <= serial + 1e-9
        assert overlapped >= max(sum(h2d), sum(kernel), sum(d2h)) - 1e-9


class TestAlphaSolverProperties:
    @SETTINGS
    @given(
        gpu_speed=st.floats(1.0, 500.0),
        cpu_speed=st.floats(1.0, 500.0),
        nc=st.integers(1, 32),
        ng=st.integers(1, 4),
        total=st.floats(1e3, 1e7),
    )
    def test_linear_costs_balance_exactly(self, gpu_speed, cpu_speed, nc, ng, total):
        """For linear costs the optimal alpha has a closed form."""
        split = solve_alpha(
            lambda p: p / gpu_speed,
            lambda p: p / cpu_speed,
            total_points=total,
            n_gpus=ng,
            n_cpu_threads=nc,
        )
        expected = (gpu_speed * ng) / (gpu_speed * ng + cpu_speed * nc)
        assert split.alpha == pytest.approx(expected, abs=0.02)
        assert 0.0 <= split.alpha <= 1.0
        assert split.imbalance <= 0.05 * max(split.gpu_time, split.cpu_time) + 1e-9
