"""Tests of the SGD update kernels."""

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.exceptions import InvalidMatrixError
from repro.sgd import FactorModel, rmse, sgd_block_minibatch, sgd_block_sequential


def _arrays(matrix):
    return matrix.rows, matrix.cols, matrix.vals


class TestSequentialKernel:
    def test_single_rating_update_matches_equations(self):
        """One rating update must follow Equations 4-6 exactly."""
        p = np.array([[0.5, 0.5]])
        q = np.array([[0.2], [0.4]])
        gamma, reg_p, reg_q = 0.1, 0.05, 0.07
        rating = 3.0
        error = rating - float(p[0] @ q[:, 0])
        expected_p = p[0] + gamma * (error * q[:, 0] - reg_p * p[0])
        expected_q = q[:, 0] + gamma * (error * p[0] - reg_q * q[:, 0])

        sgd_block_sequential(
            p, q, np.array([0]), np.array([0]), np.array([rating]), gamma, reg_p, reg_q
        )
        np.testing.assert_allclose(p[0], expected_p)
        np.testing.assert_allclose(q[:, 0], expected_q)

    def test_returns_count(self, tiny_matrix):
        model = FactorModel.initialize(6, 5, 3, seed=0)
        count = sgd_block_sequential(
            model.p, model.q, *_arrays(tiny_matrix), 0.01, 0.05, 0.05
        )
        assert count == tiny_matrix.nnz

    def test_reduces_training_error(self, tiny_matrix):
        model = FactorModel.initialize(6, 5, 4, seed=0, scale=0.5)
        before = rmse(model, tiny_matrix)
        for _ in range(30):
            sgd_block_sequential(
                model.p, model.q, *_arrays(tiny_matrix), 0.05, 0.01, 0.01
            )
        assert rmse(model, tiny_matrix) < before * 0.5

    def test_empty_block_is_noop(self):
        model = FactorModel.initialize(3, 3, 2, seed=0)
        p_before = model.p.copy()
        count = sgd_block_sequential(
            model.p,
            model.q,
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([]),
            0.01,
            0.0,
            0.0,
        )
        assert count == 0
        np.testing.assert_array_equal(model.p, p_before)

    def test_zero_regularization_no_shrink_without_error(self):
        """With zero error and zero regularisation, factors stay put."""
        p = np.array([[1.0, 0.0]])
        q = np.array([[2.0], [0.0]])
        sgd_block_sequential(
            p, q, np.array([0]), np.array([0]), np.array([2.0]), 0.1, 0.0, 0.0
        )
        np.testing.assert_allclose(p, [[1.0, 0.0]])
        np.testing.assert_allclose(q, [[2.0], [0.0]])

    def test_shape_validation(self):
        with pytest.raises(InvalidMatrixError):
            sgd_block_sequential(
                np.zeros((2, 3)),
                np.zeros((4, 2)),
                np.array([0]),
                np.array([0]),
                np.array([1.0]),
                0.01,
                0.0,
                0.0,
            )

    def test_index_validation(self):
        model = FactorModel.initialize(2, 2, 2, seed=0)
        with pytest.raises(InvalidMatrixError):
            sgd_block_sequential(
                model.p, model.q,
                np.array([5]), np.array([0]), np.array([1.0]), 0.01, 0.0, 0.0,
            )
        with pytest.raises(InvalidMatrixError):
            sgd_block_sequential(
                model.p, model.q,
                np.array([0]), np.array([5]), np.array([1.0]), 0.01, 0.0, 0.0,
            )


class TestMinibatchKernel:
    def test_matches_sequential_when_no_duplicates_in_batch(self):
        """With batch size 1 the vectorised kernel is exactly sequential SGD."""
        rows = np.array([0, 1, 2, 0, 1])
        cols = np.array([0, 1, 2, 1, 2])
        vals = np.array([3.0, 4.0, 2.0, 5.0, 1.0])
        model_a = FactorModel.initialize(3, 3, 4, seed=5)
        model_b = model_a.copy()

        sgd_block_sequential(model_a.p, model_a.q, rows, cols, vals, 0.05, 0.02, 0.02)
        sgd_block_minibatch(
            model_b.p, model_b.q, rows, cols, vals, 0.05, 0.02, 0.02, batch_size=1
        )
        np.testing.assert_allclose(model_a.p, model_b.p, rtol=1e-12)
        np.testing.assert_allclose(model_a.q, model_b.q, rtol=1e-12)

    def test_close_to_sequential_on_small_block(self, tiny_matrix):
        model_a = FactorModel.initialize(6, 5, 4, seed=1, scale=0.5)
        model_b = model_a.copy()
        sgd_block_sequential(
            model_a.p, model_a.q, *_arrays(tiny_matrix), 0.02, 0.05, 0.05
        )
        sgd_block_minibatch(
            model_b.p, model_b.q, *_arrays(tiny_matrix), 0.02, 0.05, 0.05,
            batch_size=4,
        )
        assert np.abs(model_a.p - model_b.p).max() < 0.05

    def test_reduces_training_error(self, small_matrix, small_training):
        model = FactorModel.for_matrix(small_matrix, small_training)
        before = rmse(model, small_matrix)
        for _ in range(10):
            sgd_block_minibatch(
                model.p, model.q, *_arrays(small_matrix), 0.02, 0.05, 0.05
            )
        assert rmse(model, small_matrix) < before * 0.6

    def test_stable_on_wide_rating_scale_with_duplicates(self):
        """Popular columns repeated in a batch must not blow up (0-100 scale)."""
        rng = np.random.default_rng(0)
        n = 5_000
        rows = rng.integers(0, 500, size=n)
        cols = rng.integers(0, 20, size=n)  # heavy column duplication
        vals = rng.uniform(0, 100, size=n)
        model = FactorModel.initialize(500, 20, 8, seed=0, scale=2.5)
        for _ in range(3):
            sgd_block_minibatch(
                model.p, model.q, rows, cols, vals, 0.01, 1.0, 1.0, batch_size=2048
            )
        assert np.all(np.isfinite(model.p))
        assert np.all(np.isfinite(model.q))

    def test_duplicate_rows_within_batch_step_bounded(self):
        """A row repeated B times in one batch moves by at most ~gamma * error * q."""
        p = np.array([[0.0, 0.0]])
        q = np.array([[1.0, 1.0, 1.0], [1.0, 1.0, 1.0]])
        rows = np.array([0, 0, 0])
        cols = np.array([0, 1, 2])
        vals = np.array([4.0, 4.0, 4.0])
        sgd_block_minibatch(p, q, rows, cols, vals, 0.1, 0.0, 0.0, batch_size=3)
        # Averaged: one effective step of gamma * 4 * [1, 1] = [0.4, 0.4].
        np.testing.assert_allclose(p[0], [0.4, 0.4], rtol=1e-12)

    def test_shuffling_with_rng_changes_order_not_result_quality(self, small_matrix):
        model_a = FactorModel.initialize(
            small_matrix.n_rows, small_matrix.n_cols, 4, seed=2
        )
        model_b = model_a.copy()
        sgd_block_minibatch(
            model_a.p, model_a.q, *_arrays(small_matrix), 0.02, 0.05, 0.05,
            rng=np.random.default_rng(0),
        )
        sgd_block_minibatch(
            model_b.p, model_b.q, *_arrays(small_matrix), 0.02, 0.05, 0.05,
            rng=np.random.default_rng(1),
        )
        # Different orders give different factors but comparable quality.
        assert not np.allclose(model_a.p, model_b.p)
        assert rmse(model_a, small_matrix) == pytest.approx(
            rmse(model_b, small_matrix), rel=0.2
        )

    def test_averaging_matches_bincount_reference(self, small_matrix):
        """The np.unique-based duplicate averaging must reproduce the old
        ``np.bincount(u)[u]`` formulation bit for bit.

        Regression test for the perf fix that stopped allocating
        ``max(index)+1``-sized count arrays every batch: both expressions
        compute the per-rating multiplicity of its row/column within the
        batch, so the kernel's output must be unchanged.
        """
        rows, cols, vals = _arrays(small_matrix)
        gamma, reg_p, reg_q, batch_size = 0.02, 0.05, 0.07, 64
        model = FactorModel.initialize(
            small_matrix.n_rows, small_matrix.n_cols, 6, seed=4
        )
        reference = model.copy()

        # Reference: the pre-optimisation kernel body, bincount averaging
        # over the global index space.
        p, q = reference.p, reference.q
        for start in range(0, len(vals), batch_size):
            stop = min(start + batch_size, len(vals))
            u, v, r = rows[start:stop], cols[start:stop], vals[start:stop]
            p_batch = p[u]
            q_batch = q[:, v].T
            errors = r - np.einsum("ij,ij->i", p_batch, q_batch)
            grad_p = gamma * (errors[:, None] * q_batch - reg_p * p_batch)
            grad_q = gamma * (errors[:, None] * p_batch - reg_q * q_batch)
            grad_p /= np.bincount(u)[u][:, None]
            grad_q /= np.bincount(v)[v][:, None]
            np.add.at(p, u, grad_p)
            np.add.at(q.T, v, grad_q)

        sgd_block_minibatch(
            model.p, model.q, rows, cols, vals, gamma, reg_p, reg_q,
            batch_size=batch_size,
        )
        np.testing.assert_array_equal(model.p, reference.p)
        np.testing.assert_array_equal(model.q, reference.q)

    def test_rejects_bad_batch_size(self, tiny_matrix):
        model = FactorModel.initialize(6, 5, 2, seed=0)
        with pytest.raises(InvalidMatrixError):
            sgd_block_minibatch(
                model.p, model.q, *_arrays(tiny_matrix), 0.01, 0.0, 0.0, batch_size=0
            )

    def test_empty_block_returns_zero(self):
        model = FactorModel.initialize(3, 3, 2, seed=0)
        count = sgd_block_minibatch(
            model.p,
            model.q,
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([]),
            0.01,
            0.0,
            0.0,
        )
        assert count == 0


class TestKernelConvergenceParity:
    def test_both_kernels_reach_similar_quality(self, small_matrix):
        """Both kernels must converge to a similar training RMSE."""
        config = TrainingConfig(
            latent_factors=8, learning_rate=0.02, reg_p=0.05, reg_q=0.05,
            iterations=1, seed=0, init_scale=0.6,
        )
        exact = FactorModel.for_matrix(small_matrix, config)
        batched = exact.copy()
        rng = np.random.default_rng(0)
        for _ in range(8):
            order = rng.permutation(small_matrix.nnz)
            args = (
                small_matrix.rows[order],
                small_matrix.cols[order],
                small_matrix.vals[order],
            )
            sgd_block_sequential(exact.p, exact.q, *args, 0.02, 0.05, 0.05)
            sgd_block_minibatch(batched.p, batched.q, *args, 0.02, 0.05, 0.05)
        exact_rmse = rmse(exact, small_matrix)
        batched_rmse = rmse(batched, small_matrix)
        # The mini-batch relaxation trains popular entities a little more
        # slowly per epoch; it must stay in the same quality regime.
        assert batched_rmse < 1.6 * exact_rmse
        assert batched_rmse < 0.8 * rmse(
            FactorModel.for_matrix(small_matrix, config), small_matrix
        )
