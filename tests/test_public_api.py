"""Tests of the public package surface: exports, exceptions, version."""

import pytest

import repro
from repro import exceptions


class TestExports:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.7.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_key_entry_points_present(self):
        assert callable(repro.factorize)
        assert callable(repro.load_dataset)
        assert callable(repro.calibrate_platform)
        assert callable(repro.solve_alpha)
        assert "hsgd_star" in repro.ALGORITHMS

    def test_subpackage_alls_resolve(self):
        import repro.core
        import repro.costmodel
        import repro.datasets
        import repro.exec
        import repro.experiments
        import repro.hardware
        import repro.metrics
        import repro.serve
        import repro.sgd
        import repro.sim
        import repro.sparse

        for module in (
            repro.core, repro.costmodel, repro.datasets, repro.exec,
            repro.experiments, repro.hardware, repro.metrics, repro.serve,
            repro.sgd, repro.sim, repro.sparse,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and name != "ReproError":
                assert issubclass(obj, exceptions.ReproError), name

    def test_calibration_error_is_cost_model_error(self):
        assert issubclass(exceptions.CalibrationError, exceptions.CostModelError)

    def test_library_errors_catchable_with_base_class(self):
        from repro.sparse import SparseRatingMatrix

        with pytest.raises(exceptions.ReproError):
            SparseRatingMatrix.from_triples([])

    def test_cli_console_script_entry_point(self):
        from repro.cli import main

        assert callable(main)
