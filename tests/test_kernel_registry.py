"""Tests of the kernel registry and the block-major local kernel.

The contract under test is strong: ``sgd_block_minibatch_local`` is a
*bitwise-identical* restatement of ``sgd_block_minibatch`` over the
block's own coordinate frame, and the engines' block-major data plane
(``kernel="auto"`` + :class:`repro.sparse.BlockStore`) is a
bitwise-identical replacement for the legacy gather-per-task path.
Every parity assertion below is ``assert_array_equal`` — exact equality,
no tolerances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import KERNEL_NAMES as CONFIG_KERNEL_NAMES
from repro.config import HardwareConfig, TrainingConfig
from repro.core import GreedyBlockScheduler, HeterogeneousTrainer
from repro.core.partition import uniform_partition
from repro.exceptions import ConfigurationError, InvalidMatrixError
from repro.hardware import HeterogeneousPlatform, paper_machine_preset
from repro.exec import ThreadedEngine
from repro.sgd import (
    KERNEL_NAMES,
    KERNELS,
    FactorModel,
    get_kernel,
    resolve_kernel_name,
    sgd_block_minibatch,
    sgd_block_minibatch_local,
    sgd_block_sequential,
)
from repro.sgd.kernels import _as_kernel_array
from repro.sim import SimulationEngine


def _skewed_block(seed, nnz=4_000, band_rows=120, band_cols=18, offset=(40, 7)):
    """A duplicate-heavy block: few columns, zipf-ish popularity."""
    rng = np.random.default_rng(seed)
    r0, c0 = offset
    rows = rng.integers(0, band_rows, nnz) + r0
    cols = (rng.zipf(1.4, nnz) % band_cols) + c0
    vals = rng.uniform(1.0, 5.0, nnz)
    return rows, cols, vals, (r0, r0 + band_rows), (c0, c0 + band_cols)


class TestRegistry:
    def test_names_match_config(self):
        assert set(KERNELS) | {"auto"} == set(CONFIG_KERNEL_NAMES)
        assert KERNEL_NAMES == CONFIG_KERNEL_NAMES

    def test_get_kernel(self):
        assert get_kernel("sequential") is sgd_block_sequential
        assert get_kernel("minibatch") is sgd_block_minibatch
        assert get_kernel("minibatch_local") is sgd_block_minibatch_local
        with pytest.raises(ConfigurationError):
            get_kernel("auto")  # config alias, not a registry entry
        with pytest.raises(ConfigurationError):
            get_kernel("cuda")

    def test_resolution(self):
        assert resolve_kernel_name("auto") == "minibatch_local"
        assert resolve_kernel_name("minibatch") == "minibatch"
        assert resolve_kernel_name("sequential") == "sequential"
        assert resolve_kernel_name("auto", exact_kernel=True) == "sequential"
        assert resolve_kernel_name("minibatch", exact_kernel=True) == "sequential"
        with pytest.raises(ConfigurationError):
            resolve_kernel_name("warp")

    def test_training_config_kernel_validation(self):
        assert TrainingConfig().kernel == "auto"
        assert TrainingConfig(kernel="minibatch").kernel == "minibatch"
        assert TrainingConfig().with_kernel("sequential").kernel == "sequential"
        with pytest.raises(ConfigurationError):
            TrainingConfig(kernel="warp")


class TestLocalKernelBitwiseParity:
    """minibatch_local == minibatch, bit for bit, additions and all."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("batch_size", [1, 7, 256, 4096])
    def test_parity_on_skewed_duplicate_heavy_block(self, seed, batch_size):
        rows, cols, vals, row_range, col_range = _skewed_block(seed)
        m, n, k = 220, 40, 16
        model_a = FactorModel.initialize(m, n, k, seed=seed)
        model_b = model_a.copy()

        sgd_block_minibatch(
            model_a.p, model_a.q, rows, cols, vals, 0.01, 0.05, 0.07,
            batch_size=batch_size,
        )
        sgd_block_minibatch_local(
            model_b.p, model_b.q,
            rows - row_range[0], cols - col_range[0], vals,
            0.01, 0.05, 0.07, row_range, col_range, batch_size=batch_size,
        )
        np.testing.assert_array_equal(model_a.p, model_b.p)
        np.testing.assert_array_equal(model_a.q, model_b.q)

    def test_parity_without_item_major_layout(self):
        """Plain C-order Q (no flat fast path) must take the 2-D scatter
        fallback and still be bitwise-identical."""
        rows, cols, vals, row_range, col_range = _skewed_block(3)
        rng = np.random.default_rng(3)
        p_a = rng.uniform(0, 0.3, size=(220, 16))
        q_a = rng.uniform(0, 0.3, size=(16, 40))
        assert not q_a.T.flags.c_contiguous
        p_b, q_b = p_a.copy(), q_a.copy()

        sgd_block_minibatch(p_a, q_a, rows, cols, vals, 0.01, 0.05, 0.05)
        sgd_block_minibatch_local(
            p_b, q_b, rows - row_range[0], cols - col_range[0], vals,
            0.01, 0.05, 0.05, row_range, col_range,
        )
        np.testing.assert_array_equal(p_a, p_b)
        np.testing.assert_array_equal(q_a, q_b)

    def test_parity_with_shuffling_rng(self):
        rows, cols, vals, row_range, col_range = _skewed_block(4, nnz=1_500)
        model_a = FactorModel.initialize(220, 40, 8, seed=4)
        model_b = model_a.copy()
        sgd_block_minibatch(
            model_a.p, model_a.q, rows, cols, vals, 0.02, 0.01, 0.01,
            rng=np.random.default_rng(99),
        )
        sgd_block_minibatch_local(
            model_b.p, model_b.q, rows - row_range[0], cols - col_range[0],
            vals, 0.02, 0.01, 0.01, row_range, col_range,
            rng=np.random.default_rng(99),
        )
        np.testing.assert_array_equal(model_a.p, model_b.p)
        np.testing.assert_array_equal(model_a.q, model_b.q)

    def test_empty_block_is_noop(self):
        model = FactorModel.initialize(4, 4, 2, seed=0)
        before = model.copy()
        count = sgd_block_minibatch_local(
            model.p, model.q,
            np.array([], dtype=np.int64), np.array([], dtype=np.int64),
            np.array([]), 0.01, 0.0, 0.0, (0, 2), (0, 2),
        )
        assert count == 0
        np.testing.assert_array_equal(model.p, before.p)

    def test_returns_count(self):
        rows, cols, vals, row_range, col_range = _skewed_block(5, nnz=333)
        model = FactorModel.initialize(220, 40, 4, seed=5)
        count = sgd_block_minibatch_local(
            model.p, model.q, rows - row_range[0], cols - col_range[0], vals,
            0.01, 0.05, 0.05, row_range, col_range,
        )
        assert count == 333


class TestLocalKernelValidation:
    def _model(self):
        return FactorModel.initialize(10, 8, 3, seed=0)

    def test_rejects_band_outside_p(self):
        model = self._model()
        with pytest.raises(InvalidMatrixError, match="does not fit P"):
            sgd_block_minibatch_local(
                model.p, model.q, np.array([0]), np.array([0]),
                np.array([1.0]), 0.01, 0.0, 0.0, (5, 12), (0, 4),
            )

    def test_rejects_band_outside_q(self):
        model = self._model()
        with pytest.raises(InvalidMatrixError, match="does not fit Q"):
            sgd_block_minibatch_local(
                model.p, model.q, np.array([0]), np.array([0]),
                np.array([1.0]), 0.01, 0.0, 0.0, (0, 4), (5, 9),
            )

    def test_rejects_local_index_outside_band(self):
        model = self._model()
        with pytest.raises(InvalidMatrixError, match="row index out of range"):
            sgd_block_minibatch_local(
                model.p, model.q, np.array([4]), np.array([0]),
                np.array([1.0]), 0.01, 0.0, 0.0, (0, 4), (0, 4),
            )
        with pytest.raises(InvalidMatrixError, match="column index out of range"):
            sgd_block_minibatch_local(
                model.p, model.q, np.array([0]), np.array([4]),
                np.array([1.0]), 0.01, 0.0, 0.0, (0, 4), (0, 4),
            )

    def test_validate_false_skips_checks_but_matches(self):
        rows, cols, vals, row_range, col_range = _skewed_block(6, nnz=500)
        model_a = FactorModel.initialize(220, 40, 4, seed=6)
        model_b = model_a.copy()
        args = (rows - row_range[0], cols - col_range[0], vals,
                0.01, 0.05, 0.05, row_range, col_range)
        sgd_block_minibatch_local(model_a.p, model_a.q, *args, validate=True)
        sgd_block_minibatch_local(model_b.p, model_b.q, *args, validate=False)
        np.testing.assert_array_equal(model_a.p, model_b.p)
        np.testing.assert_array_equal(model_a.q, model_b.q)

    def test_global_kernels_accept_validate_flag(self, tiny_matrix):
        model_a = FactorModel.initialize(6, 5, 3, seed=0)
        model_b = model_a.copy()
        args = (tiny_matrix.rows, tiny_matrix.cols, tiny_matrix.vals,
                0.01, 0.05, 0.05)
        sgd_block_minibatch(model_a.p, model_a.q, *args, validate=True)
        sgd_block_minibatch(model_b.p, model_b.q, *args, validate=False)
        np.testing.assert_array_equal(model_a.p, model_b.p)
        sgd_block_sequential(model_a.p, model_a.q, *args, validate=False)

    def test_rejects_bad_batch_size(self):
        model = self._model()
        with pytest.raises(InvalidMatrixError):
            sgd_block_minibatch_local(
                model.p, model.q, np.array([0]), np.array([0]),
                np.array([1.0]), 0.01, 0.0, 0.0, (0, 4), (0, 4), batch_size=0,
            )


class TestNoCopyPath:
    def test_pretyped_contiguous_inputs_are_not_copied(self):
        """The no-copy satellite: right-dtype contiguous arrays pass through
        the kernels' conversion untouched (same object, no allocation)."""
        rows = np.arange(10, dtype=np.int64)
        vals = np.ones(10, dtype=np.float64)
        assert _as_kernel_array(rows, np.int64) is rows
        assert _as_kernel_array(vals, np.float64) is vals

    def test_wrong_dtype_or_layout_is_converted(self):
        rows32 = np.arange(10, dtype=np.int32)
        converted = _as_kernel_array(rows32, np.int64)
        assert converted is not rows32 and converted.dtype == np.int64
        strided = np.arange(20, dtype=np.int64)[::2]
        converted = _as_kernel_array(strided, np.int64)
        assert converted.flags.c_contiguous
        as_list = _as_kernel_array([1, 2, 3], np.int64)
        assert as_list.dtype == np.int64

    def test_kernels_still_accept_python_lists(self):
        model = FactorModel.initialize(3, 3, 2, seed=0)
        count = sgd_block_minibatch(
            model.p, model.q, [0, 1], [0, 1], [1.0, 2.0], 0.01, 0.0, 0.0
        )
        assert count == 2


class TestScatterStaysInBand:
    """Property: the band-local kernel never writes outside its block."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        band_rows=st.integers(1, 30),
        band_cols=st.integers(1, 12),
        r0=st.integers(0, 20),
        c0=st.integers(0, 15),
        nnz=st.integers(1, 200),
        batch_size=st.integers(1, 64),
    )
    def test_factors_outside_block_untouched(
        self, seed, band_rows, band_cols, r0, c0, nnz, batch_size
    ):
        rng = np.random.default_rng(seed)
        m = r0 + band_rows + rng.integers(0, 10)
        n = c0 + band_cols + rng.integers(0, 10)
        local_rows = rng.integers(0, band_rows, nnz)
        local_cols = rng.integers(0, band_cols, nnz)
        vals = rng.uniform(1.0, 5.0, nnz)
        model = FactorModel.initialize(int(m), int(n), 4, seed=seed)
        p_before = model.p.copy()
        q_before = model.q.copy()

        sgd_block_minibatch_local(
            model.p, model.q, local_rows, local_cols, vals,
            0.05, 0.02, 0.02,
            (r0, r0 + band_rows), (c0, c0 + band_cols),
            batch_size=batch_size,
        )

        outside_rows = np.setdiff1d(
            np.arange(m), np.arange(r0, r0 + band_rows)
        )
        outside_cols = np.setdiff1d(
            np.arange(n), np.arange(c0, c0 + band_cols)
        )
        np.testing.assert_array_equal(
            model.p[outside_rows], p_before[outside_rows]
        )
        np.testing.assert_array_equal(
            model.q[:, outside_cols], q_before[:, outside_cols]
        )
        # And something inside did change (nonzero learning rate, ratings).
        touched = model.p[r0:r0 + band_rows]
        assert not np.array_equal(touched, p_before[r0:r0 + band_rows])


class TestEngineLevelParity:
    """kernel='auto' + BlockStore  ==  pre-PR minibatch path, bitwise."""

    def _one_worker_engines(self, train, test, training, kernel, use_block_store):
        grid = uniform_partition(train, 3, 3)
        scheduler = GreedyBlockScheduler(grid, 1, 0, seed=0)
        platform = HeterogeneousPlatform.from_preset(
            HardwareConfig(cpu_threads=1, gpu_count=0),
            paper_machine_preset().scaled(1e-3),
        )
        sim = SimulationEngine(
            scheduler=scheduler, platform=platform, train=train,
            training=training.with_kernel(kernel), test=test,
            use_block_store=use_block_store,
        )
        return sim

    def test_simulate_auto_matches_legacy_minibatch_path(
        self, small_split, small_training
    ):
        train, test = small_split
        new = self._one_worker_engines(
            train, test, small_training, "auto", True
        ).run(iterations=3)
        legacy = self._one_worker_engines(
            train, test, small_training, "minibatch", False
        ).run(iterations=3)
        np.testing.assert_array_equal(new.model.p, legacy.model.p)
        np.testing.assert_array_equal(new.model.q, legacy.model.q)
        assert [r.test_rmse for r in new.trace.iterations] == [
            r.test_rmse for r in legacy.trace.iterations
        ]

    def test_threaded_auto_matches_legacy_minibatch_path(
        self, small_split, small_training
    ):
        train, test = small_split

        def run(kernel, use_block_store):
            grid = uniform_partition(train, 3, 3)
            scheduler = GreedyBlockScheduler(grid, 1, 0, seed=0)
            engine = ThreadedEngine(
                scheduler=scheduler, train=train,
                training=small_training.with_kernel(kernel), test=test,
                use_block_store=use_block_store,
            )
            return engine.run(iterations=3)

        new = run("auto", True)
        legacy = run("minibatch", False)
        np.testing.assert_array_equal(new.model.p, legacy.model.p)
        np.testing.assert_array_equal(new.model.q, legacy.model.q)

    def test_trainer_kernel_override_plumbs_through(
        self, small_split, small_hardware, small_training, scaled_preset
    ):
        train, test = small_split

        def fit(kernel, use_block_store=True):
            trainer = HeterogeneousTrainer(
                algorithm="hsgd_star", hardware=small_hardware,
                training=small_training, preset=scaled_preset, seed=0,
            )
            return trainer.fit(
                train, test, iterations=2, kernel=kernel,
                use_block_store=use_block_store,
            )

        new = fit("auto")
        legacy = fit("minibatch", use_block_store=False)
        # The simulate backend is deterministic even with many workers,
        # so the full fit pipeline must agree bit for bit.
        np.testing.assert_array_equal(new.model.p, legacy.model.p)
        np.testing.assert_array_equal(new.model.q, legacy.model.q)
        with pytest.raises(ConfigurationError):
            fit("warp")

    def test_explicit_local_kernel_without_store_rejected(
        self, small_split, small_hardware, small_training, scaled_preset
    ):
        """An explicitly forced local kernel must not be silently swapped
        for the global one when the block store is disabled; only "auto"
        degrades gracefully."""
        train, test = small_split
        trainer = HeterogeneousTrainer(
            algorithm="hsgd_star", hardware=small_hardware,
            training=small_training, preset=scaled_preset, seed=0,
        )
        with pytest.raises(ConfigurationError, match="block-major data plane"):
            trainer.fit(
                train, test, iterations=1, kernel="minibatch_local",
                use_block_store=False,
            )
        # "auto" without a store falls back to the bitwise-identical
        # global kernel instead of failing.
        result = trainer.fit(
            train, test, iterations=1, kernel="auto", use_block_store=False,
        )
        assert result.final_test_rmse is not None

    def test_exact_kernel_still_overrides(self, small_split, small_training):
        """exact_kernel=True must force the sequential reference regardless
        of the configured kernel, store or not."""
        train, test = small_split
        grid_a = uniform_partition(train, 2, 2)
        grid_b = uniform_partition(train, 2, 2)
        platform = HeterogeneousPlatform.from_preset(
            HardwareConfig(cpu_threads=1, gpu_count=0),
            paper_machine_preset().scaled(1e-3),
        )
        with_store = SimulationEngine(
            scheduler=GreedyBlockScheduler(grid_a, 1, 0, seed=0),
            platform=platform, train=train, training=small_training,
            test=test, exact_kernel=True,
        ).run(iterations=1)
        without_store = SimulationEngine(
            scheduler=GreedyBlockScheduler(grid_b, 1, 0, seed=0),
            platform=platform, train=train, training=small_training,
            test=test, exact_kernel=True, use_block_store=False,
        ).run(iterations=1)
        np.testing.assert_array_equal(
            with_store.model.p, without_store.model.p
        )
