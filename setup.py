"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed in environments without the ``wheel``
package (legacy ``pip install -e . --no-use-pep517`` / ``setup.py develop``
code path), e.g. fully offline machines.
"""

from setuptools import setup

setup()
