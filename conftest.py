"""Pytest bootstrap.

Ensures ``src/`` is importable even when the package has not been
installed (e.g. on fully offline machines where ``pip install -e .``
cannot build an editable wheel).  When the package *is* installed this is
a harmless no-op because the installed location takes precedence only if
it appears earlier on ``sys.path``; inserting at position 0 keeps tests
exercising the checked-out sources.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_configure(config):
    """Register project markers (no pytest.ini / pyproject table exists)."""
    config.addinivalue_line(
        "markers",
        "slow: long-running stress tests (threaded-backend training on "
        'Netflix-sized data); deselect with -m "not slow"',
    )
    config.addinivalue_line(
        "markers",
        "examples: end-to-end smoke runs of the examples/ scripts on tiny "
        "synthetic data (their own CI job); deselect with "
        '-m "not examples"',
    )
    config.addinivalue_line(
        "markers",
        "chaos: fault-injection tests (worker kills, torn publishes, "
        "orphaned shm segments); run alone with -m chaos",
    )
