"""repro — Efficient Matrix Factorization on Heterogeneous CPU-GPU Systems.

A from-scratch Python reproduction of Yu et al., *Efficient Matrix
Factorization on Heterogeneous CPU-GPU Systems* (ICDE 2021): HSGD* —
SGD-based matrix factorization scheduled across CPU threads and GPUs with
a nonuniform matrix division, a tailored cost model and dynamic work
stealing — together with every substrate it needs (block grids, SGD
kernels, a simulated heterogeneous platform, cost-model calibration, a
discrete-event engine, datasets, metrics and the full experiment
harness).

Quick start::

    from repro import factorize, load_dataset

    data = load_dataset("movielens")
    result = factorize(data.train, data.test, algorithm="hsgd_star",
                       iterations=10)
    print(result.final_test_rmse, result.engine_time)

See ``README.md`` for the architecture overview and ``DESIGN.md`` for the
paper-to-module mapping.
"""

from .config import (
    BACKENDS,
    ExperimentConfig,
    HardwareConfig,
    SchedulingConfig,
    TrainingConfig,
)
from .core import (
    ALGORITHMS,
    HeterogeneousTrainer,
    TrainResult,
    factorize,
)
from .costmodel import CalibrationResult, WorkloadSplit, calibrate_platform, solve_alpha
from .datasets import dataset_names, get_dataset, load_dataset
from .exceptions import ReproError
from .exec import (
    Callback,
    Checkpoint,
    EarlyStopping,
    Engine,
    EngineResult,
    EngineSession,
    EpochReport,
    JsonlLogger,
    ProcessEngine,
    ProcessResult,
    ThreadedEngine,
    ThreadedResult,
    TimeBudget,
    TrainCheckpoint,
    backend_names,
    get_backend,
    register_backend,
    unregister_backend,
)
from .hardware import HeterogeneousPlatform, PlatformPreset, paper_machine_preset
from .serve import (
    ModelHandle,
    ModelStore,
    Recommendation,
    RecommendationService,
    Scorer,
    attach_model,
)
from .sgd import FactorModel, rmse, train_als, train_ccd, train_hogwild, train_serial_sgd
from .sparse import SparseRatingMatrix
from .stream import (
    DriftMonitor,
    DriftPolicy,
    DriftReading,
    IngestReport,
    IngestSession,
    IngestStats,
)
from .tune import TunedProfile, run_tune, set_active_profile, use_profile

__version__ = "1.7.0"

__all__ = [
    "BACKENDS",
    "ExperimentConfig",
    "HardwareConfig",
    "SchedulingConfig",
    "TrainingConfig",
    "Engine",
    "EngineResult",
    "EngineSession",
    "EpochReport",
    "Callback",
    "Checkpoint",
    "EarlyStopping",
    "JsonlLogger",
    "TimeBudget",
    "TrainCheckpoint",
    "backend_names",
    "get_backend",
    "register_backend",
    "unregister_backend",
    "ProcessEngine",
    "ProcessResult",
    "ThreadedEngine",
    "ThreadedResult",
    "ALGORITHMS",
    "HeterogeneousTrainer",
    "TrainResult",
    "factorize",
    "CalibrationResult",
    "WorkloadSplit",
    "calibrate_platform",
    "solve_alpha",
    "dataset_names",
    "get_dataset",
    "load_dataset",
    "ReproError",
    "HeterogeneousPlatform",
    "PlatformPreset",
    "paper_machine_preset",
    "ModelHandle",
    "ModelStore",
    "Recommendation",
    "RecommendationService",
    "Scorer",
    "attach_model",
    "FactorModel",
    "rmse",
    "train_als",
    "train_ccd",
    "train_hogwild",
    "train_serial_sgd",
    "SparseRatingMatrix",
    "DriftMonitor",
    "DriftPolicy",
    "DriftReading",
    "IngestReport",
    "IngestSession",
    "IngestStats",
    "TunedProfile",
    "run_tune",
    "set_active_profile",
    "use_profile",
    "__version__",
]
