"""Row/column occupancy table enforcing block independence.

Two blocks conflict when they share a row band or a column band
(Section III-A): processing them concurrently would race on the same rows
of ``P`` or columns of ``Q``.  The :class:`LockTable` tracks which row and
column bands are currently held by in-flight tasks; a task may only be
dispatched when every band it touches is free, and it must release those
bands when it completes.
"""

from __future__ import annotations

from typing import Iterable, Set

from ..exceptions import SchedulingError


class LockTable:
    """Occupancy of row bands and column bands by worker tasks."""

    def __init__(self, n_row_bands: int, n_col_bands: int) -> None:
        if n_row_bands <= 0 or n_col_bands <= 0:
            raise SchedulingError("lock table needs positive band counts")
        self.n_row_bands = n_row_bands
        self.n_col_bands = n_col_bands
        self._locked_rows: Set[int] = set()
        self._locked_cols: Set[int] = set()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def row_free(self, row_band: int) -> bool:
        """Whether a row band is currently unheld."""
        self._check_row(row_band)
        return row_band not in self._locked_rows

    def col_free(self, col_band: int) -> bool:
        """Whether a column band is currently unheld."""
        self._check_col(col_band)
        return col_band not in self._locked_cols

    def can_acquire(self, row_bands: Iterable[int], col_bands: Iterable[int]) -> bool:
        """Whether every listed band is free."""
        return all(self.row_free(r) for r in set(row_bands)) and all(
            self.col_free(c) for c in set(col_bands)
        )

    @property
    def locked_rows(self) -> Set[int]:
        """Currently held row bands (copy)."""
        return set(self._locked_rows)

    @property
    def locked_cols(self) -> Set[int]:
        """Currently held column bands (copy)."""
        return set(self._locked_cols)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def acquire(self, row_bands: Iterable[int], col_bands: Iterable[int]) -> None:
        """Atomically lock the listed bands.

        Raises
        ------
        SchedulingError
            If any band is already held — the scheduler must check
            :meth:`can_acquire` first; acquiring a held band means two
            conflicting blocks would run concurrently.
        """
        rows = set(row_bands)
        cols = set(col_bands)
        if not self.can_acquire(rows, cols):
            raise SchedulingError(
                f"attempted to acquire held bands: rows {sorted(rows & self._locked_rows)}, "
                f"cols {sorted(cols & self._locked_cols)}"
            )
        self._locked_rows |= rows
        self._locked_cols |= cols

    def release(self, row_bands: Iterable[int], col_bands: Iterable[int]) -> None:
        """Release previously acquired bands.

        Raises
        ------
        SchedulingError
            If a band being released is not currently held (double release
            or release of a never-acquired band).
        """
        rows = set(row_bands)
        cols = set(col_bands)
        missing_rows = rows - self._locked_rows
        missing_cols = cols - self._locked_cols
        if missing_rows or missing_cols:
            raise SchedulingError(
                f"attempted to release unheld bands: rows {sorted(missing_rows)}, "
                f"cols {sorted(missing_cols)}"
            )
        self._locked_rows -= rows
        self._locked_cols -= cols

    def release_all(self) -> None:
        """Release every held band (used when a run is aborted)."""
        self._locked_rows.clear()
        self._locked_cols.clear()

    # ------------------------------------------------------------------ #
    # Internal
    # ------------------------------------------------------------------ #
    def _check_row(self, row_band: int) -> None:
        if not 0 <= row_band < self.n_row_bands:
            raise SchedulingError(
                f"row band {row_band} outside [0, {self.n_row_bands})"
            )

    def _check_col(self, col_band: int) -> None:
        if not 0 <= col_band < self.n_col_bands:
            raise SchedulingError(
                f"column band {col_band} outside [0, {self.n_col_bands})"
            )

    def __repr__(self) -> str:
        return (
            f"LockTable(rows={sorted(self._locked_rows)}, "
            f"cols={sorted(self._locked_cols)})"
        )
