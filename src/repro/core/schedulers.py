"""Block schedulers: greedy uniform (FPSGD / HSGD) and HSGD*.

A scheduler owns a :class:`~repro.core.grid.BlockGrid` and a
:class:`~repro.core.locks.LockTable` and answers one question for the
simulation engine: *which blocks should this worker process next, given
what is currently in flight?*

Two schedulers are provided:

* :class:`GreedyBlockScheduler` — the FPSGD policy used by CPU-Only,
  GPU-Only and HSGD: when a worker frees up it receives the independent
  (conflict-free) block with the smallest update count.  There are no
  per-resource quotas, which is exactly what lets a much faster GPU
  concentrate its updates on the few blocks left free by the slower CPU
  threads (the paper's Example 3).
* :class:`HSGDStarScheduler` — the paper's contribution: CPU threads draw
  single blocks from the CPU band ``Rc``; each GPU draws an entire column
  of sub-blocks within its own GPU row of ``Rg`` (a "large block") and
  keeps its ``P`` segment resident; per-iteration quotas keep every
  region's data visited about once per iteration; and, when dynamic
  scheduling is enabled, a resource that exhausts its own quota steals
  blocks from the other region instead of idling.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

import numpy as np

from ..exceptions import SchedulingError
from .grid import BlockGrid, GridBlock, Region
from .locks import LockTable
from .tasks import Task


class Scheduler(ABC):
    """Base class for block schedulers."""

    def __init__(self, grid: BlockGrid, n_cpu_workers: int, n_gpu_workers: int,
                 seed: int = 0) -> None:
        if n_cpu_workers < 0 or n_gpu_workers < 0:
            raise SchedulingError("worker counts must be non-negative")
        if n_cpu_workers + n_gpu_workers == 0:
            raise SchedulingError("at least one worker is required")
        self.grid = grid
        self.n_cpu_workers = n_cpu_workers
        self.n_gpu_workers = n_gpu_workers
        self.locks = LockTable(grid.n_row_bands, grid.n_col_bands)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Worker identity helpers
    # ------------------------------------------------------------------ #
    @property
    def n_workers(self) -> int:
        """Total number of workers this scheduler serves."""
        return self.n_cpu_workers + self.n_gpu_workers

    def is_gpu_worker(self, worker_index: int) -> bool:
        """Whether ``worker_index`` denotes a GPU (GPUs follow CPU threads)."""
        if not 0 <= worker_index < self.n_workers:
            raise SchedulingError(
                f"worker index {worker_index} outside [0, {self.n_workers})"
            )
        return worker_index >= self.n_cpu_workers

    # ------------------------------------------------------------------ #
    # Scheduling interface
    # ------------------------------------------------------------------ #
    @abstractmethod
    def next_task(self, worker_index: int) -> Optional[Task]:
        """Select, lock and return the next task for a worker.

        Returns ``None`` when no conflict-free work is currently available
        for this worker (it should idle until another task completes or a
        new iteration starts).
        """

    def complete_task(self, task: Task) -> None:
        """Record completion of a task and release its bands."""
        task.mark_processed()
        self.locks.release(task.row_bands, task.col_bands)

    def abort_task(self, task: Task) -> None:
        """Release a task's bands without counting an update (run aborted)."""
        self.locks.release(task.row_bands, task.col_bands)

    def start_iteration(self) -> None:
        """Reset per-iteration accounting (a no-op for quota-free schedulers)."""
        self.grid.reset_iteration_counters()

    @property
    def total_points(self) -> int:
        """Total ratings across the grid (the size of one full iteration)."""
        return self.grid.total_nnz

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Serializable scheduler state for training checkpoints.

        Captures everything future scheduling decisions depend on: the
        tie-break RNG and the per-block counters.  Lock-table occupancy
        is *not* captured — it is implied by the in-flight tasks, which
        the engine session serializes and re-acquires on restore.
        """
        return {
            "rng_state": self._rng.bit_generator.state,
            "update_counts": self.grid.update_counts(),
            "points_this_iteration": np.array(
                [[block.points_this_iteration for block in row]
                 for row in self.grid.blocks],
                dtype=np.int64,
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`.

        Only valid on a freshly built scheduler over the identical grid
        (same division of the same ratings, same seed).
        """
        self._rng.bit_generator.state = state["rng_state"]
        update_counts = np.asarray(state["update_counts"], dtype=np.int64)
        points = np.asarray(state["points_this_iteration"], dtype=np.int64)
        expected = (self.grid.n_row_bands, self.grid.n_col_bands)
        if update_counts.shape != expected or points.shape != expected:
            raise SchedulingError(
                f"checkpointed counter grids {update_counts.shape} do not "
                f"match this scheduler's grid {expected}"
            )
        for i, row in enumerate(self.grid.blocks):
            for j, block in enumerate(row):
                block.update_count = int(update_counts[i, j])
                block.points_this_iteration = int(points[i, j])

    # ------------------------------------------------------------------ #
    # Shared selection helpers
    # ------------------------------------------------------------------ #
    def _freely_schedulable(self, blocks: List[GridBlock]) -> List[GridBlock]:
        """Filter ``blocks`` down to those whose row and column are free."""
        return [
            block
            for block in blocks
            if self.locks.row_free(block.row_band)
            and self.locks.col_free(block.col_band)
        ]

    def _pick_least_updated(self, blocks: List[GridBlock]) -> Optional[GridBlock]:
        """The block with the fewest updates; random tie-break."""
        if not blocks:
            return None
        counts = np.array([block.update_count for block in blocks])
        minimum = counts.min()
        candidates = [b for b, c in zip(blocks, counts) if c == minimum]
        return candidates[int(self._rng.integers(len(candidates)))]


class GreedyBlockScheduler(Scheduler):
    """The FPSGD assignment policy over a uniform grid.

    Used for the CPU-Only, GPU-Only and HSGD baselines: every worker —
    GPU or CPU alike — receives the least-updated block that conflicts
    with nothing currently in flight.
    """

    def next_task(self, worker_index: int) -> Optional[Task]:
        candidates = [block for block in self.grid.iter_blocks() if block.nnz > 0]
        free_blocks = self._freely_schedulable(candidates)
        block = self._pick_least_updated(free_blocks)
        if block is None:
            return None
        task = Task(blocks=[block], worker_index=worker_index)
        self.locks.acquire(task.row_bands, task.col_bands)
        return task


class HSGDStarScheduler(Scheduler):
    """The HSGD* scheduler: nonuniform division, quotas, work stealing.

    Parameters
    ----------
    grid:
        A grid produced by :func:`repro.core.partition.nonuniform_partition`
        (row bands tagged CPU / GPU with parent GPU rows).
    n_cpu_workers, n_gpu_workers:
        Worker counts; GPU workers follow CPU workers in the index space.
    dynamic_scheduling:
        Enable the work-stealing dynamic phase (Section VI-A).  When
        disabled, a resource whose per-iteration quota is exhausted idles —
        this is the HSGD*-M / HSGD*-Q configuration of Tables II and III.
    seed:
        Tie-breaking seed.
    """

    def __init__(
        self,
        grid: BlockGrid,
        n_cpu_workers: int,
        n_gpu_workers: int,
        dynamic_scheduling: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__(grid, n_cpu_workers, n_gpu_workers, seed=seed)
        self.dynamic_scheduling = dynamic_scheduling
        self._gpu_region_quota = grid.region_nnz(Region.GPU)
        self._cpu_region_quota = grid.region_nnz(Region.CPU)
        self._gpu_assigned = 0
        self._cpu_assigned = 0
        self._n_gpu_rows = max(1, grid.n_gpu_rows()) if self._gpu_region_quota else 0
        #: Count of tasks dispatched across region boundaries, per region
        #: of origin of the *worker* ("gpu" stole CPU blocks, and vice
        #: versa).  Exposed for the dynamic-scheduling analysis.
        self.steal_counts = {"gpu": 0, "cpu": 0}

    # ------------------------------------------------------------------ #
    # Iteration bookkeeping
    # ------------------------------------------------------------------ #
    def start_iteration(self) -> None:
        super().start_iteration()
        self._gpu_assigned = 0
        self._cpu_assigned = 0

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["gpu_assigned"] = self._gpu_assigned
        state["cpu_assigned"] = self._cpu_assigned
        state["steal_counts"] = dict(self.steal_counts)
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._gpu_assigned = int(state["gpu_assigned"])
        self._cpu_assigned = int(state["cpu_assigned"])
        self.steal_counts = {
            "gpu": int(state["steal_counts"]["gpu"]),
            "cpu": int(state["steal_counts"]["cpu"]),
        }

    def _gpu_quota_left(self) -> bool:
        return self._gpu_assigned < self._gpu_region_quota

    def _cpu_quota_left(self) -> bool:
        return self._cpu_assigned < self._cpu_region_quota

    # ------------------------------------------------------------------ #
    # Task selection
    # ------------------------------------------------------------------ #
    def next_task(self, worker_index: int) -> Optional[Task]:
        if self.is_gpu_worker(worker_index):
            return self._next_gpu_task(worker_index)
        return self._next_cpu_task(worker_index)

    # -- GPU ------------------------------------------------------------ #
    def _next_gpu_task(self, worker_index: int) -> Optional[Task]:
        gpu_index = worker_index - self.n_cpu_workers

        if self._gpu_quota_left():
            # The static phase ends — and the GPU drops to sub-block
            # granularity — once the CPUs have exhausted their own band
            # (Section VI-A): holding a whole GPU row then would keep the
            # idle CPU threads from stealing its remaining sub-blocks.
            dynamic_phase = self.dynamic_scheduling and not self._cpu_quota_left()
            if not dynamic_phase:
                task = self._gpu_static_task(worker_index, gpu_index)
                if task is not None:
                    self._gpu_assigned += task.nnz
                    return task
            # Sub-block granularity: either the dynamic phase has begun or
            # the preferred large block is blocked by a stolen sub-row.
            task = self._single_block_task(
                worker_index,
                self.grid.blocks_in_region(Region.GPU),
                stolen=False,
                resident_p=True,
            )
            if task is not None:
                self._gpu_assigned += task.nnz
                return task
            # Quota remains but every free GPU block is band-locked: idle
            # until a completion frees one.  Stealing CPU blocks now would
            # start the dynamic phase before the GPU region is exhausted,
            # violating the Section VI-A contract.
            return None

        if self.dynamic_scheduling and self._cpu_quota_left():
            task = self._single_block_task(
                worker_index, self.grid.blocks_in_region(Region.CPU), stolen=True
            )
            if task is not None:
                self._cpu_assigned += task.nnz
                self.steal_counts["gpu"] += 1
                return task
        return None

    def _gpu_static_task(
        self, worker_index: int, gpu_index: int
    ) -> Optional[Task]:
        """A "large block": every sub-block of one column within the GPU's row."""
        if self._n_gpu_rows == 0:
            return None
        gpu_row = gpu_index % self._n_gpu_rows
        member_bands = [band.index for band in self.grid.gpu_row_members(gpu_row)]
        if not member_bands:
            return None
        if not all(self.locks.row_free(band) for band in member_bands):
            return None

        best_col = None
        best_count = None
        for col in range(self.grid.n_col_bands):
            if not self.locks.col_free(col):
                continue
            column_blocks = [self.grid.block(band, col) for band in member_bands]
            if sum(block.nnz for block in column_blocks) == 0:
                continue
            count = sum(block.update_count for block in column_blocks)
            if best_count is None or count < best_count:
                best_count = count
                best_col = col
        if best_col is None:
            return None

        blocks = [self.grid.block(band, best_col) for band in member_bands]
        task = Task(
            blocks=blocks,
            worker_index=worker_index,
            stolen=False,
            resident_p=True,
        )
        self.locks.acquire(task.row_bands, task.col_bands)
        return task

    # -- CPU ------------------------------------------------------------ #
    def _next_cpu_task(self, worker_index: int) -> Optional[Task]:
        if self._cpu_quota_left():
            task = self._single_block_task(
                worker_index, self.grid.blocks_in_region(Region.CPU), stolen=False
            )
            if task is not None:
                self._cpu_assigned += task.nnz
                return task
            # Quota remains but every free CPU block is band-locked by a
            # sibling thread: idle rather than steal — steals may only
            # begin once the CPU band's quota is exhausted (Section VI-A).
            return None

        if self.dynamic_scheduling and self._gpu_quota_left():
            task = self._single_block_task(
                worker_index, self.grid.blocks_in_region(Region.GPU), stolen=True
            )
            if task is not None:
                self._gpu_assigned += task.nnz
                self.steal_counts["cpu"] += 1
                return task
        return None

    # -- shared ----------------------------------------------------------- #
    def _single_block_task(
        self,
        worker_index: int,
        candidates: List[GridBlock],
        stolen: bool,
        resident_p: bool = False,
    ) -> Optional[Task]:
        free_blocks = self._freely_schedulable(
            [block for block in candidates if block.nnz > 0]
        )
        block = self._pick_least_updated(free_blocks)
        if block is None:
            return None
        task = Task(
            blocks=[block],
            worker_index=worker_index,
            stolen=stolen,
            resident_p=resident_p,
        )
        self.locks.acquire(task.row_bands, task.col_bands)
        return task
