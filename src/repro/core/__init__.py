"""Block-scheduling core: the paper's primary contribution.

This package implements the matrix division strategies and block
schedulers of the paper:

* :mod:`repro.core.grid` — row/column banding of the rating matrix into a
  grid of lockable blocks, with CPU/GPU region tagging;
* :mod:`repro.core.partition` — the uniform (Rule 1) division used by
  FPSGD/HSGD and the nonuniform division of Figure 9 used by HSGD*;
* :mod:`repro.core.locks` — the row/column occupancy table that enforces
  block independence;
* :mod:`repro.core.tasks` — the unit of work a scheduler hands to a
  worker (one block, or a column of GPU sub-blocks in the static phase);
* :mod:`repro.core.schedulers` — the greedy uniform scheduler
  (CPU-Only / GPU-Only / HSGD) and the HSGD* scheduler with its static
  and dynamic (work-stealing) phases;
* :mod:`repro.core.algorithms` — named algorithm configurations mapping
  the paper's method names to scheduler factories;
* :mod:`repro.core.trainer` — the high-level user-facing API.
"""

from .grid import BlockGrid, GridBlock, Region, RowBand
from .locks import LockTable
from .partition import (
    gpu_only_partition,
    nonuniform_partition,
    rule1_grid_shape,
    uniform_partition,
)
from .tasks import Task
from .schedulers import GreedyBlockScheduler, HSGDStarScheduler, Scheduler
from .algorithms import ALGORITHMS, AlgorithmSpec, build_scheduler
from .trainer import HeterogeneousTrainer, TrainResult, factorize

__all__ = [
    "BlockGrid",
    "GridBlock",
    "Region",
    "RowBand",
    "LockTable",
    "gpu_only_partition",
    "nonuniform_partition",
    "rule1_grid_shape",
    "uniform_partition",
    "Task",
    "GreedyBlockScheduler",
    "HSGDStarScheduler",
    "Scheduler",
    "ALGORITHMS",
    "AlgorithmSpec",
    "build_scheduler",
    "HeterogeneousTrainer",
    "TrainResult",
    "factorize",
]
