"""Matrix division strategies.

Three divisions are implemented:

* :func:`uniform_partition` — the FPSGD/HSGD division: a single grid of
  at least ``(nc + ng + 1) x (nc + ng)`` equally loaded blocks (Rule 1),
  with every block available to every worker;
* :func:`gpu_only_partition` — the coarse division used by the GPU-Only
  baseline (the paper "varies the number of rows and columns ... and
  adopts the best one"; with a single GPU larger blocks are strictly
  better, so a minimal conflict-free grid is used);
* :func:`nonuniform_partition` — the HSGD* division of Figure 9: the
  matrix is split row-wise into a GPU band ``Rg`` holding a fraction
  ``alpha`` of the ratings and a CPU band ``Rc`` holding the rest; both
  bands share ``nc + 2 ng + 1`` column bands; ``Rc`` is cut into
  ``nc + ng`` rows; ``Rg`` is cut into ``ng`` GPU rows, each further cut
  into ``ceil((nc + ng) / ng)`` sub-rows that only matter once the
  dynamic (work-stealing) phase begins.

All divisions balance band boundaries by rating count rather than by raw
index range.  FPSGD achieves the same effect by randomly permuting user
and item ids before an index-uniform cut; balancing directly is
equivalent and keeps the synthetic datasets' skew from confounding the
scheduler comparison.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from ..exceptions import InvalidPartitionError
from ..sparse import SparseRatingMatrix, balanced_boundaries
from .grid import BlockGrid, Region, RowBand


def rule1_grid_shape(n_cpu_threads: int, n_gpus: int) -> Tuple[int, int]:
    """The minimum grid shape of Rule 1: ``(nc + ng + 1) x (nc + ng)``.

    Returns ``(n_row_bands, n_col_bands)``.  The extra band in one
    dimension guarantees that a worker releasing a block can always find a
    spare row or column not occupied by the other workers.
    """
    workers = n_cpu_threads + n_gpus
    if workers <= 0:
        raise InvalidPartitionError("at least one worker is required")
    return workers + 1, max(workers, 1)


def _clamp_parts(parts: int, extent: int) -> int:
    """Limit a band count to the number of available indices."""
    return max(1, min(parts, extent))


def uniform_partition(
    matrix: SparseRatingMatrix,
    n_row_bands: int,
    n_col_bands: int,
) -> BlockGrid:
    """Divide ``matrix`` into a load-balanced grid of shared blocks."""
    if n_row_bands <= 0 or n_col_bands <= 0:
        raise InvalidPartitionError("band counts must be positive")
    n_row_bands = _clamp_parts(n_row_bands, matrix.n_rows)
    n_col_bands = _clamp_parts(n_col_bands, matrix.n_cols)

    row_bounds = balanced_boundaries(matrix.row_counts(), n_row_bands)
    col_bounds = balanced_boundaries(matrix.col_counts(), n_col_bands)

    row_bands = [
        RowBand(
            index=i,
            row_range=(int(row_bounds[i]), int(row_bounds[i + 1])),
            region=Region.SHARED,
        )
        for i in range(n_row_bands)
    ]
    return BlockGrid.build(matrix, row_bands, col_bounds)


def gpu_only_partition(matrix: SparseRatingMatrix, n_gpus: int) -> BlockGrid:
    """Division used by the GPU-Only baseline.

    With ``ng`` GPUs a conflict-free schedule needs at least
    ``(ng + 1) x ng`` blocks (Rule 1 with ``nc = 0``); since larger blocks
    only help GPU throughput (Observation 1) the minimal grid is used,
    with a floor of 2 columns so the stream pipeline always has a next
    block to prefetch.
    """
    if n_gpus <= 0:
        raise InvalidPartitionError("gpu_only_partition requires at least one GPU")
    n_rows, n_cols = rule1_grid_shape(0, n_gpus)
    n_cols = max(n_cols, 2)
    return uniform_partition(matrix, n_rows, n_cols)


def hsgd_partition(
    matrix: SparseRatingMatrix, n_cpu_threads: int, n_gpus: int
) -> BlockGrid:
    """The HSGD division: the Rule 1 uniform grid shared by all workers."""
    n_rows, n_cols = rule1_grid_shape(n_cpu_threads, n_gpus)
    return uniform_partition(matrix, n_rows, n_cols)


def _split_rows_by_alpha(
    matrix: SparseRatingMatrix, alpha: float
) -> int:
    """Return the user-index boundary putting ~``alpha`` of the ratings above it."""
    counts = matrix.row_counts()
    cumulative = np.concatenate(([0], np.cumsum(counts)))
    target = alpha * matrix.nnz
    boundary = int(np.searchsorted(cumulative, target, side="left"))
    return int(np.clip(boundary, 0, matrix.n_rows))


def nonuniform_partition(
    matrix: SparseRatingMatrix,
    alpha: float,
    n_cpu_threads: int,
    n_gpus: int,
    column_scale: float = 1.0,
) -> BlockGrid:
    """The HSGD* division of Figure 9.

    Parameters
    ----------
    matrix:
        The rating matrix.
    alpha:
        Fraction of the ratings assigned to GPUs (``Rg``); produced by the
        cost-model solver.
    n_cpu_threads, n_gpus:
        Resource counts ``nc`` and ``ng``.
    column_scale:
        Multiplier on the ``nc + 2 ng + 1`` column count, for the
        column-count ablation; 1.0 reproduces the paper.

    Returns
    -------
    BlockGrid
        Row bands tagged :attr:`Region.GPU` (sub-rows, each knowing its
        parent GPU row) and :attr:`Region.CPU`.

    Notes
    -----
    Degenerate splits are handled explicitly: ``alpha = 0`` produces a
    CPU-only grid and ``alpha = 1`` a GPU-only grid, so the same code path
    serves platforms missing one resource.
    """
    if not 0.0 <= alpha <= 1.0:
        raise InvalidPartitionError(f"alpha must lie in [0, 1], got {alpha}")
    if n_cpu_threads < 0 or n_gpus < 0:
        raise InvalidPartitionError("resource counts must be non-negative")
    if n_cpu_threads + n_gpus == 0:
        raise InvalidPartitionError("at least one worker is required")

    n_columns = int(round((n_cpu_threads + 2 * n_gpus + 1) * column_scale))
    n_columns = _clamp_parts(max(n_columns, 2), matrix.n_cols)
    col_bounds = balanced_boundaries(matrix.col_counts(), n_columns)

    # Row boundary between Rg (top) and Rc (bottom).
    if n_gpus == 0:
        alpha = 0.0
    if n_cpu_threads == 0:
        alpha = 1.0
    gpu_boundary = _split_rows_by_alpha(matrix, alpha)

    row_counts = matrix.row_counts()
    row_bands: List[RowBand] = []
    band_index = 0

    # --- GPU band: ng rows, each split into ceil((nc+ng)/ng) sub-rows. --- #
    if gpu_boundary > 0 and n_gpus > 0:
        gpu_counts = row_counts[:gpu_boundary]
        n_gpu_rows = _clamp_parts(n_gpus, gpu_boundary)
        gpu_row_bounds = balanced_boundaries(gpu_counts, n_gpu_rows)
        sub_rows_per_gpu_row = max(
            1, math.ceil((n_cpu_threads + n_gpus) / max(1, n_gpus))
        )
        for g in range(n_gpu_rows):
            start = int(gpu_row_bounds[g])
            stop = int(gpu_row_bounds[g + 1])
            height = stop - start
            n_sub = _clamp_parts(sub_rows_per_gpu_row, height)
            sub_bounds = balanced_boundaries(row_counts[start:stop], n_sub)
            for s in range(n_sub):
                row_bands.append(
                    RowBand(
                        index=band_index,
                        row_range=(start + int(sub_bounds[s]), start + int(sub_bounds[s + 1])),
                        region=Region.GPU,
                        gpu_row=g,
                    )
                )
                band_index += 1

    # --- CPU band: nc + ng rows. --- #
    if gpu_boundary < matrix.n_rows and n_cpu_threads > 0:
        cpu_counts = row_counts[gpu_boundary:]
        n_cpu_rows = _clamp_parts(
            n_cpu_threads + n_gpus, matrix.n_rows - gpu_boundary
        )
        cpu_row_bounds = balanced_boundaries(cpu_counts, n_cpu_rows)
        for c in range(n_cpu_rows):
            row_bands.append(
                RowBand(
                    index=band_index,
                    row_range=(
                        gpu_boundary + int(cpu_row_bounds[c]),
                        gpu_boundary + int(cpu_row_bounds[c + 1]),
                    ),
                    region=Region.CPU,
                )
            )
            band_index += 1
    elif gpu_boundary < matrix.n_rows:
        # No CPU threads: attach the remaining rows to the last GPU row so
        # the bands still tile the matrix.
        row_bands.append(
            RowBand(
                index=band_index,
                row_range=(gpu_boundary, matrix.n_rows),
                region=Region.GPU,
                gpu_row=max(0, n_gpus - 1),
            )
        )
        band_index += 1

    if not row_bands:
        raise InvalidPartitionError(
            "nonuniform partition produced no row bands; check alpha and "
            "resource counts"
        )
    # Re-index bands defensively (construction above keeps them ordered).
    row_bands = [
        RowBand(
            index=i,
            row_range=band.row_range,
            region=band.region,
            gpu_row=band.gpu_row,
        )
        for i, band in enumerate(row_bands)
    ]
    return BlockGrid.build(matrix, row_bands, col_bounds)
