"""Named algorithm configurations.

Maps the method names used throughout the paper's evaluation onto the
library's building blocks:

=============  ======================================================
Name           Meaning (Section VII)
=============  ======================================================
``cpu_only``   FPSGD on the CPU threads only (uniform Rule-1 grid).
``gpu_only``   CuMF_SGD-style training on the GPUs only (coarse grid).
``hsgd``       The straightforward hybrid: the GPU is one more FPSGD
               worker over the uniform Rule-1 grid (Section IV-A).
``hsgd_star``  The full contribution: nonuniform division driven by the
               paper's cost model plus dynamic work stealing.
``hsgd_star_m``  HSGD* with the paper's cost model but *without* dynamic
               scheduling (the HSGD*-M row of Tables II and III).
``hsgd_star_q``  HSGD* with the Qilin linear cost model and no dynamic
               scheduling (the HSGD*-Q row of Table II).
=============  ======================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..config import HardwareConfig
from ..exceptions import ConfigurationError
from ..sparse import SparseRatingMatrix
from .grid import BlockGrid
from .partition import (
    gpu_only_partition,
    hsgd_partition,
    nonuniform_partition,
    rule1_grid_shape,
    uniform_partition,
)
from .schedulers import GreedyBlockScheduler, HSGDStarScheduler, Scheduler


@dataclass(frozen=True)
class AlgorithmSpec:
    """Description of one named algorithm configuration.

    Attributes
    ----------
    key:
        Machine-readable name (the keys of :data:`ALGORITHMS`).
    label:
        The paper's display name.
    uses_cpu, uses_gpu:
        Which resources participate.
    division:
        ``"uniform"``, ``"nonuniform"``, ``"gpu_only"`` or ``"cpu_only"``.
    cost_model:
        ``"paper"``, ``"qilin"`` or ``None`` (no cost-model-driven split).
    dynamic_scheduling:
        Whether the work-stealing dynamic phase is enabled.
    """

    key: str
    label: str
    uses_cpu: bool
    uses_gpu: bool
    division: str
    cost_model: Optional[str]
    dynamic_scheduling: bool


#: All named algorithm configurations of the paper's evaluation.
ALGORITHMS: Dict[str, AlgorithmSpec] = {
    "cpu_only": AlgorithmSpec(
        key="cpu_only",
        label="CPU-Only",
        uses_cpu=True,
        uses_gpu=False,
        division="cpu_only",
        cost_model=None,
        dynamic_scheduling=True,
    ),
    "gpu_only": AlgorithmSpec(
        key="gpu_only",
        label="GPU-Only",
        uses_cpu=False,
        uses_gpu=True,
        division="gpu_only",
        cost_model=None,
        dynamic_scheduling=True,
    ),
    "hsgd": AlgorithmSpec(
        key="hsgd",
        label="HSGD",
        uses_cpu=True,
        uses_gpu=True,
        division="uniform",
        cost_model=None,
        dynamic_scheduling=True,
    ),
    "hsgd_star": AlgorithmSpec(
        key="hsgd_star",
        label="HSGD*",
        uses_cpu=True,
        uses_gpu=True,
        division="nonuniform",
        cost_model="paper",
        dynamic_scheduling=True,
    ),
    "hsgd_star_m": AlgorithmSpec(
        key="hsgd_star_m",
        label="HSGD*-M",
        uses_cpu=True,
        uses_gpu=True,
        division="nonuniform",
        cost_model="paper",
        dynamic_scheduling=False,
    ),
    "hsgd_star_q": AlgorithmSpec(
        key="hsgd_star_q",
        label="HSGD*-Q",
        uses_cpu=True,
        uses_gpu=True,
        division="nonuniform",
        cost_model="qilin",
        dynamic_scheduling=False,
    ),
}


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up an algorithm configuration by key.

    Raises
    ------
    ConfigurationError
        If the key is unknown.
    """
    try:
        return ALGORITHMS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; available: {', '.join(ALGORITHMS)}"
        ) from exc


def effective_hardware(spec: AlgorithmSpec, hardware: HardwareConfig) -> HardwareConfig:
    """Restrict a hardware configuration to the resources the algorithm uses."""
    cpu_threads = hardware.cpu_threads if spec.uses_cpu else 0
    gpu_count = hardware.gpu_count if spec.uses_gpu else 0
    if cpu_threads == 0 and gpu_count == 0:
        raise ConfigurationError(
            f"algorithm {spec.key!r} needs resources the hardware config "
            f"does not provide (nc={hardware.cpu_threads}, ng={hardware.gpu_count})"
        )
    return HardwareConfig(
        cpu_threads=cpu_threads,
        gpu_count=gpu_count,
        gpu_parallel_workers=hardware.gpu_parallel_workers,
    )


def build_grid(
    spec: AlgorithmSpec,
    train: SparseRatingMatrix,
    hardware: HardwareConfig,
    alpha: Optional[float] = None,
    column_scale: float = 1.0,
) -> BlockGrid:
    """Build the matrix division required by an algorithm.

    ``alpha`` (the GPU workload share) is required for the nonuniform
    division and ignored otherwise.
    """
    nc = hardware.cpu_threads
    ng = hardware.gpu_count
    if spec.division == "cpu_only":
        n_rows, n_cols = rule1_grid_shape(nc, 0)
        return uniform_partition(train, n_rows, n_cols)
    if spec.division == "gpu_only":
        return gpu_only_partition(train, ng)
    if spec.division == "uniform":
        return hsgd_partition(train, nc, ng)
    if spec.division == "nonuniform":
        if alpha is None:
            raise ConfigurationError(
                "the nonuniform division needs a workload share alpha"
            )
        return nonuniform_partition(
            train, alpha, nc, ng, column_scale=column_scale
        )
    raise ConfigurationError(f"unknown division {spec.division!r}")


def build_scheduler(
    spec: AlgorithmSpec,
    grid: BlockGrid,
    hardware: HardwareConfig,
    seed: int = 0,
) -> Scheduler:
    """Build the scheduler implementing an algorithm over a prepared grid."""
    nc = hardware.cpu_threads
    ng = hardware.gpu_count
    if spec.division == "nonuniform":
        return HSGDStarScheduler(
            grid,
            n_cpu_workers=nc,
            n_gpu_workers=ng,
            dynamic_scheduling=spec.dynamic_scheduling,
            seed=seed,
        )
    return GreedyBlockScheduler(grid, n_cpu_workers=nc, n_gpu_workers=ng, seed=seed)
