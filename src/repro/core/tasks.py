"""Scheduling tasks: the unit of work handed to a worker.

A task bundles one or more grid blocks that a worker will process back to
back before reporting completion:

* CPU workers, and every worker of the uniform schedulers, receive a
  single block per task;
* a GPU in HSGD*'s **static phase** receives an entire column of sub-
  blocks within its GPU row (the "large block" of Figure 9), so the GPU
  sees one big contiguous workload that saturates its throughput while
  the lock table still tracks the underlying sub-rows;
* in the **dynamic phase** a stolen task is again a single (small) block.

The task also records which row/column bands it holds, how many ratings
it contains and the factor-segment geometry used to price its PCIe
transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

import numpy as np

from ..exceptions import SchedulingError
from ..hardware import BlockWork
from .grid import GridBlock


@dataclass
class Task:
    """A unit of schedulable work.

    Attributes
    ----------
    blocks:
        The grid blocks processed by this task, in processing order.
    worker_index:
        The worker the task is assigned to.
    stolen:
        Whether the task crosses regions (a dynamic-phase steal).
    resident_p:
        When ``True`` the worker already holds the task's ``P`` segment
        (HSGD*'s static phase pins each GPU to specific rows so the user-
        factor segment never moves over PCIe).
    """

    blocks: List[GridBlock]
    worker_index: int
    stolen: bool = False
    resident_p: bool = False
    _indices: np.ndarray = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.blocks:
            raise SchedulingError("a task must contain at least one block")

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Total ratings across the task's blocks."""
        return sum(block.nnz for block in self.blocks)

    @property
    def row_bands(self) -> Set[int]:
        """Row bands held by the task."""
        return {block.row_band for block in self.blocks}

    @property
    def col_bands(self) -> Set[int]:
        """Column bands held by the task."""
        return {block.col_band for block in self.blocks}

    @property
    def p_rows(self) -> int:
        """User rows spanned by the task (P segment size)."""
        return sum(
            block.row_range[1] - block.row_range[0] for block in self.blocks
        )

    @property
    def q_cols(self) -> int:
        """Item columns spanned (Q segment size).

        The blocks of a static-phase GPU task share one column band, so
        the distinct column ranges are counted once.
        """
        ranges = {block.col_range for block in self.blocks}
        return sum(stop - start for start, stop in ranges)

    def indices(self) -> np.ndarray:
        """COO positions of every rating in the task (concatenated, cached)."""
        if self._indices is None:
            if len(self.blocks) == 1:
                self._indices = self.blocks[0].indices
            else:
                self._indices = np.concatenate(
                    [block.indices for block in self.blocks]
                )
        return self._indices

    def block_work(self, latent_factors: int) -> BlockWork:
        """Describe the task as hardware work for device timing.

        When :attr:`resident_p` is set the P segment does not travel over
        PCIe, so it is excluded from the transfer size.
        """
        return BlockWork(
            nnz=self.nnz,
            p_rows=0 if self.resident_p else self.p_rows,
            q_cols=self.q_cols,
            latent_factors=latent_factors,
        )

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    def mark_processed(self) -> None:
        """Record one full update pass over every block of the task."""
        for block in self.blocks:
            block.update_count += 1
            block.points_this_iteration += block.nnz

    def __repr__(self) -> str:
        return (
            f"Task(worker={self.worker_index}, blocks={len(self.blocks)}, "
            f"nnz={self.nnz}, stolen={self.stolen})"
        )
