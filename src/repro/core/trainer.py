"""High-level training API.

:class:`HeterogeneousTrainer` wires together calibration, workload
division, scheduling and simulation into the two-phase workflow of the
paper's Algorithm 2 (HSGD*):

1. an **offline phase** — :meth:`HeterogeneousTrainer.calibrate` probes
   the platform and fits the cost models (run once per machine);
2. an **online phase** — :meth:`HeterogeneousTrainer.fit` divides the
   given matrix according to the cost models, builds the scheduler for
   the chosen algorithm and runs the simulated training.

The free function :func:`factorize` is a convenience one-liner for
examples and quick experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..config import BACKENDS, HardwareConfig, TrainingConfig
from ..costmodel import CalibrationResult, WorkloadSplit, calibrate_platform, solve_alpha
from ..exceptions import ConfigurationError
from ..exec import Engine, ThreadedEngine
from ..hardware import HeterogeneousPlatform, PlatformPreset, PAPER_MACHINE
from ..sgd import FactorModel
from ..sgd.schedules import LearningRateSchedule
from ..sim import ExecutionTrace, SimulationEngine
from ..sparse import SparseRatingMatrix
from .algorithms import (
    AlgorithmSpec,
    build_grid,
    build_scheduler,
    effective_hardware,
    get_algorithm,
)


@dataclass
class TrainResult:
    """Everything produced by one training run."""

    algorithm: str
    model: FactorModel
    trace: ExecutionTrace
    converged: bool
    alpha: Optional[float] = None
    calibration: Optional[CalibrationResult] = None
    backend: str = "simulate"
    """Which execution backend produced the run (``"simulate"`` or
    ``"threads"``); determines the time base of :attr:`simulated_time`."""

    @property
    def simulated_time(self) -> float:
        """Total engine seconds of the run.

        Simulated seconds for the ``"simulate"`` backend, wall-clock
        seconds for the ``"threads"`` backend.
        """
        return self.trace.final_time

    @property
    def final_test_rmse(self) -> Optional[float]:
        """Test RMSE after the last completed iteration."""
        if not self.trace.iterations:
            return None
        return self.trace.iterations[-1].test_rmse

    def rmse_curve(self) -> List[Tuple[float, float]]:
        """``(simulated_time, test_rmse)`` pairs, one per iteration."""
        return self.trace.rmse_curve()

    def time_to_rmse(self, target: float) -> Optional[float]:
        """Earliest simulated time at which the test RMSE reached ``target``."""
        return self.trace.time_to_rmse(target)


class HeterogeneousTrainer:
    """Train matrix-factorization models on a (simulated) CPU-GPU machine.

    Parameters
    ----------
    algorithm:
        One of the names in :data:`repro.core.algorithms.ALGORITHMS`
        (``"hsgd_star"`` by default).
    hardware:
        Worker counts and GPU parallel workers.
    training:
        SGD hyper-parameters.
    preset:
        Machine constants of the simulated platform (the paper's machine
        by default).  Use ``preset.scaled(...)`` when training scaled-down
        datasets.
    column_scale:
        Multiplier on the nonuniform division's column count (ablation
        knob; 1.0 reproduces the paper).
    stream_overlap:
        Disable to model a GPU without CUDA-stream overlap (ablation).
    seed:
        Seed for scheduling tie-breaks.
    """

    def __init__(
        self,
        algorithm: str = "hsgd_star",
        hardware: Optional[HardwareConfig] = None,
        training: Optional[TrainingConfig] = None,
        preset: Optional[PlatformPreset] = None,
        column_scale: float = 1.0,
        stream_overlap: bool = True,
        seed: int = 0,
    ) -> None:
        self.spec: AlgorithmSpec = get_algorithm(algorithm)
        self.hardware = hardware or HardwareConfig()
        self.training = training or TrainingConfig()
        self.preset = preset or PAPER_MACHINE
        self.column_scale = column_scale
        self.stream_overlap = stream_overlap
        self.seed = seed
        self._calibration: Optional[CalibrationResult] = None
        self._effective_hardware = effective_hardware(self.spec, self.hardware)
        self._platform = HeterogeneousPlatform.from_preset(
            self._effective_hardware, self.preset, stream_overlap=stream_overlap
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def platform(self) -> HeterogeneousPlatform:
        """The simulated platform the trainer schedules onto."""
        return self._platform

    @property
    def calibration(self) -> Optional[CalibrationResult]:
        """The cost models from the last :meth:`calibrate` call, if any."""
        return self._calibration

    # ------------------------------------------------------------------ #
    # Offline phase
    # ------------------------------------------------------------------ #
    def calibrate(
        self,
        matrix: SparseRatingMatrix,
        segments: int = 12,
        sample_fraction: float = 1.0,
    ) -> CalibrationResult:
        """Run the offline cost-model calibration (Algorithm 3).

        The result is cached on the trainer and reused by subsequent
        :meth:`fit` calls, mirroring the paper's "performed only once on a
        machine" offline phase.
        """
        self._calibration = calibrate_platform(
            self._platform,
            matrix,
            training=self.training,
            segments=segments,
            sample_fraction=sample_fraction,
            seed=self.seed,
        )
        return self._calibration

    def workload_split(
        self, matrix: SparseRatingMatrix
    ) -> Optional[WorkloadSplit]:
        """Compute the cost-model workload split for ``matrix``.

        Returns ``None`` for algorithms that do not use a cost model.
        Calibrates on demand if :meth:`calibrate` has not been called.

        The GPU cost is evaluated at the *block* granularity the
        nonuniform division will actually produce: a GPU assigned
        ``alpha * |R|`` ratings processes them as ``nc + 2 ng + 1``
        column blocks of its GPU row (Figure 9), and — per Observation 1 —
        GPU throughput depends on that block size, not on the aggregate
        workload.  The CPU cost is linear, so its granularity is
        irrelevant (Observation 2).
        """
        if self.spec.cost_model is None:
            return None
        if self._calibration is None:
            self.calibrate(matrix)
        calibration = self._calibration
        if calibration is None:  # pragma: no cover - defensive
            raise ConfigurationError("calibration failed to produce models")

        nc = self._effective_hardware.cpu_threads
        ng = self._effective_hardware.gpu_count
        n_columns = max(2, int(round((nc + 2 * ng + 1) * self.column_scale)))
        blocks_per_gpu_share = max(1, n_columns * max(ng, 1))
        cost_model = self.spec.cost_model

        def gpu_time(points: float) -> float:
            if points <= 0:
                return 0.0
            if cost_model == "qilin":
                # Qilin predicts the offloaded workload as a whole — it has
                # no notion of the block granularity the division imposes,
                # which is precisely the inaccuracy Table II exposes.
                return calibration.gpu_time_for_points(points, cost_model)
            block_points = points / blocks_per_gpu_share
            per_block = calibration.gpu_time_for_points(block_points, cost_model)
            return per_block * blocks_per_gpu_share

        def cpu_time(points: float) -> float:
            return calibration.cpu_time_for_points(points, cost_model)

        return solve_alpha(
            gpu_time,
            cpu_time,
            total_points=matrix.nnz,
            n_gpus=ng,
            n_cpu_threads=nc,
        )

    # ------------------------------------------------------------------ #
    # Online phase
    # ------------------------------------------------------------------ #
    def fit(
        self,
        train: SparseRatingMatrix,
        test: Optional[SparseRatingMatrix] = None,
        iterations: Optional[int] = None,
        target_rmse: Optional[float] = None,
        max_simulated_time: Optional[float] = None,
        model: Optional[FactorModel] = None,
        schedule: Optional[LearningRateSchedule] = None,
        alpha_override: Optional[float] = None,
        compute_train_rmse: bool = False,
        backend: Optional[str] = None,
        kernel: Optional[str] = None,
        use_block_store: bool = True,
    ) -> TrainResult:
        """Divide, schedule and train on ``train``.

        Parameters
        ----------
        train, test:
            Training ratings and optional held-out ratings.
        iterations:
            Number of full passes; defaults to ``training.iterations``.
        target_rmse:
            Stop as soon as the test RMSE reaches this value.
        max_simulated_time:
            Hard time budget (simulated seconds for the ``"simulate"``
            backend, wall-clock seconds for ``"threads"``).
        model:
            Optional warm-start factor model.
        schedule:
            Optional learning-rate schedule.
        alpha_override:
            Bypass the cost model and force a specific GPU workload share
            (used by the alpha-sensitivity ablation).
        compute_train_rmse:
            Also record training RMSE each iteration.
        backend:
            Execution backend override: ``"simulate"`` (discrete-event
            engine, the default) or ``"threads"`` (real concurrent worker
            threads).  Defaults to ``training.backend``.
        kernel:
            SGD kernel override (one of
            :data:`repro.config.KERNEL_NAMES`).  Defaults to
            ``training.kernel`` (normally ``"auto"``, the block-major
            local kernel).
        use_block_store:
            Feed the engines through the block-major data plane (the
            default).  ``False`` restores the legacy gather-per-task
            path; bitwise-identical, kept for benchmarking.
        """
        alpha: Optional[float] = None
        if self.spec.division == "nonuniform":
            if alpha_override is not None:
                alpha = float(alpha_override)
            else:
                split = self.workload_split(train)
                alpha = split.alpha if split is not None else 0.0

        grid = build_grid(
            self.spec,
            train,
            self._effective_hardware,
            alpha=alpha,
            column_scale=self.column_scale,
        )
        scheduler = build_scheduler(
            self.spec, grid, self._effective_hardware, seed=self.seed
        )
        backend = backend if backend is not None else self.training.backend
        training = (
            self.training if kernel is None else self.training.with_kernel(kernel)
        )
        engine = self._build_engine(
            backend,
            scheduler,
            train,
            training=training,
            test=test,
            model=model,
            schedule=schedule,
            compute_train_rmse=compute_train_rmse,
            use_block_store=use_block_store,
        )
        outcome = engine.run(
            iterations=iterations,
            target_rmse=target_rmse,
            max_simulated_time=max_simulated_time,
        )
        return TrainResult(
            algorithm=self.spec.key,
            model=outcome.model,
            trace=outcome.trace,
            converged=outcome.converged,
            alpha=alpha,
            calibration=self._calibration,
            backend=backend,
        )

    def _build_engine(
        self,
        backend: str,
        scheduler,
        train: SparseRatingMatrix,
        training: TrainingConfig,
        test: Optional[SparseRatingMatrix],
        model: Optional[FactorModel],
        schedule: Optional[LearningRateSchedule],
        compute_train_rmse: bool,
        use_block_store: bool = True,
    ) -> Engine:
        """Construct the execution backend for one run."""
        if backend == "simulate":
            return SimulationEngine(
                scheduler=scheduler,
                platform=self._platform,
                train=train,
                training=training,
                test=test,
                model=model,
                schedule=schedule,
                compute_train_rmse=compute_train_rmse,
                use_block_store=use_block_store,
            )
        if backend == "threads":
            return ThreadedEngine(
                scheduler=scheduler,
                train=train,
                training=training,
                test=test,
                model=model,
                schedule=schedule,
                platform=self._platform,
                compute_train_rmse=compute_train_rmse,
                use_block_store=use_block_store,
            )
        raise ConfigurationError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )


def factorize(
    train: SparseRatingMatrix,
    test: Optional[SparseRatingMatrix] = None,
    algorithm: str = "hsgd_star",
    hardware: Optional[HardwareConfig] = None,
    training: Optional[TrainingConfig] = None,
    preset: Optional[PlatformPreset] = None,
    iterations: Optional[int] = None,
    target_rmse: Optional[float] = None,
    seed: int = 0,
    backend: Optional[str] = None,
    kernel: Optional[str] = None,
) -> TrainResult:
    """One-call matrix factorization on the heterogeneous machine.

    A thin convenience wrapper around :class:`HeterogeneousTrainer` for
    examples and quick experiments; see the class for parameter details.
    ``backend`` selects the execution backend (``"simulate"`` or
    ``"threads"``); ``kernel`` the SGD update kernel (``"auto"`` default).
    """
    trainer = HeterogeneousTrainer(
        algorithm=algorithm,
        hardware=hardware,
        training=training,
        preset=preset,
        seed=seed,
    )
    return trainer.fit(
        train,
        test=test,
        iterations=iterations,
        target_rmse=target_rmse,
        backend=backend,
        kernel=kernel,
    )
