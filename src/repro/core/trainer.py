"""High-level training API.

:class:`HeterogeneousTrainer` wires together calibration, workload
division, scheduling and simulation into the two-phase workflow of the
paper's Algorithm 2 (HSGD*):

1. an **offline phase** — :meth:`HeterogeneousTrainer.calibrate` probes
   the platform and fits the cost models (run once per machine);
2. an **online phase** — :meth:`HeterogeneousTrainer.fit` divides the
   given matrix according to the cost models, builds the scheduler for
   the chosen algorithm and runs the simulated training.

The free function :func:`factorize` is a convenience one-liner for
examples and quick experiments.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..config import HardwareConfig, TrainingConfig
from ..costmodel import CalibrationResult, WorkloadSplit, calibrate_platform, solve_alpha
from ..exceptions import CheckpointError, ConfigurationError
from ..exec import Engine
from ..exec.base import EngineResult
from ..exec.callbacks import Callback, CallbackList
from ..exec.checkpoint import TrainCheckpoint
from ..exec.registry import get_backend, resolve_backend_name
from ..exec.session import run_session
from ..hardware import HeterogeneousPlatform, PlatformPreset, PAPER_MACHINE
from ..sgd import FactorModel
from ..sgd.schedules import LearningRateSchedule
from ..sparse import SparseRatingMatrix
from .algorithms import (
    AlgorithmSpec,
    build_grid,
    build_scheduler,
    effective_hardware,
    get_algorithm,
)


@dataclass
class TrainResult(EngineResult):
    """Everything produced by one training run.

    Extends the backend-agnostic :class:`~repro.exec.base.EngineResult`
    (which supplies :attr:`engine_time`, :attr:`final_test_rmse`,
    :meth:`rmse_curve` and :meth:`time_to_rmse`) with what only the
    trainer knows: the algorithm, the cost-model split and the backend
    that executed the run.
    """

    algorithm: str = ""
    alpha: Optional[float] = None
    calibration: Optional[CalibrationResult] = None
    backend: str = "simulate"
    """Which execution backend produced the run (a
    :mod:`repro.exec.registry` name, e.g. ``"simulate"`` or
    ``"threads"``); determines the time base of :attr:`engine_time`."""


class HeterogeneousTrainer:
    """Train matrix-factorization models on a (simulated) CPU-GPU machine.

    Parameters
    ----------
    algorithm:
        One of the names in :data:`repro.core.algorithms.ALGORITHMS`
        (``"hsgd_star"`` by default).
    hardware:
        Worker counts and GPU parallel workers.
    training:
        SGD hyper-parameters.
    preset:
        Machine constants of the simulated platform (the paper's machine
        by default).  Use ``preset.scaled(...)`` when training scaled-down
        datasets.
    column_scale:
        Multiplier on the nonuniform division's column count (ablation
        knob; 1.0 reproduces the paper).
    stream_overlap:
        Disable to model a GPU without CUDA-stream overlap (ablation).
    seed:
        Seed for scheduling tie-breaks.
    """

    def __init__(
        self,
        algorithm: str = "hsgd_star",
        hardware: Optional[HardwareConfig] = None,
        training: Optional[TrainingConfig] = None,
        preset: Optional[PlatformPreset] = None,
        column_scale: float = 1.0,
        stream_overlap: bool = True,
        seed: int = 0,
    ) -> None:
        self.spec: AlgorithmSpec = get_algorithm(algorithm)
        self.hardware = hardware or HardwareConfig()
        self.training = training or TrainingConfig()
        self.preset = preset or PAPER_MACHINE
        self.column_scale = column_scale
        self.stream_overlap = stream_overlap
        self.seed = seed
        self._calibration: Optional[CalibrationResult] = None
        self._effective_hardware = effective_hardware(self.spec, self.hardware)
        self._platform = HeterogeneousPlatform.from_preset(
            self._effective_hardware, self.preset, stream_overlap=stream_overlap
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def platform(self) -> HeterogeneousPlatform:
        """The simulated platform the trainer schedules onto."""
        return self._platform

    @property
    def calibration(self) -> Optional[CalibrationResult]:
        """The cost models from the last :meth:`calibrate` call, if any."""
        return self._calibration

    # ------------------------------------------------------------------ #
    # Offline phase
    # ------------------------------------------------------------------ #
    def calibrate(
        self,
        matrix: SparseRatingMatrix,
        segments: int = 12,
        sample_fraction: float = 1.0,
    ) -> CalibrationResult:
        """Run the offline cost-model calibration (Algorithm 3).

        The result is cached on the trainer and reused by subsequent
        :meth:`fit` calls, mirroring the paper's "performed only once on a
        machine" offline phase.
        """
        self._calibration = calibrate_platform(
            self._platform,
            matrix,
            training=self.training,
            segments=segments,
            sample_fraction=sample_fraction,
            seed=self.seed,
        )
        return self._calibration

    def workload_split(
        self, matrix: SparseRatingMatrix
    ) -> Optional[WorkloadSplit]:
        """Compute the cost-model workload split for ``matrix``.

        Returns ``None`` for algorithms that do not use a cost model.
        Calibrates on demand if :meth:`calibrate` has not been called.

        The GPU cost is evaluated at the *block* granularity the
        nonuniform division will actually produce: a GPU assigned
        ``alpha * |R|`` ratings processes them as ``nc + 2 ng + 1``
        column blocks of its GPU row (Figure 9), and — per Observation 1 —
        GPU throughput depends on that block size, not on the aggregate
        workload.  The CPU cost is linear, so its granularity is
        irrelevant (Observation 2).
        """
        if self.spec.cost_model is None:
            return None
        if self._calibration is None:
            self.calibrate(matrix)
        calibration = self._calibration
        if calibration is None:  # pragma: no cover - defensive
            raise ConfigurationError("calibration failed to produce models")

        nc = self._effective_hardware.cpu_threads
        ng = self._effective_hardware.gpu_count
        n_columns = max(2, int(round((nc + 2 * ng + 1) * self.column_scale)))
        blocks_per_gpu_share = max(1, n_columns * max(ng, 1))
        cost_model = self.spec.cost_model

        def gpu_time(points: float) -> float:
            if points <= 0:
                return 0.0
            if cost_model == "qilin":
                # Qilin predicts the offloaded workload as a whole — it has
                # no notion of the block granularity the division imposes,
                # which is precisely the inaccuracy Table II exposes.
                return calibration.gpu_time_for_points(points, cost_model)
            block_points = points / blocks_per_gpu_share
            per_block = calibration.gpu_time_for_points(block_points, cost_model)
            return per_block * blocks_per_gpu_share

        def cpu_time(points: float) -> float:
            return calibration.cpu_time_for_points(points, cost_model)

        return solve_alpha(
            gpu_time,
            cpu_time,
            total_points=matrix.nnz,
            n_gpus=ng,
            n_cpu_threads=nc,
        )

    # ------------------------------------------------------------------ #
    # Online phase
    # ------------------------------------------------------------------ #
    def fit(
        self,
        train: SparseRatingMatrix,
        test: Optional[SparseRatingMatrix] = None,
        iterations: Optional[int] = None,
        target_rmse: Optional[float] = None,
        max_simulated_time: Optional[float] = None,
        model: Optional[FactorModel] = None,
        schedule: Optional[LearningRateSchedule] = None,
        alpha_override: Optional[float] = None,
        compute_train_rmse: bool = False,
        backend: Optional[str] = None,
        kernel: Optional[str] = None,
        batch_size: Optional[int] = None,
        use_block_store: bool = True,
        callbacks: Optional[Sequence[Callback]] = None,
        resume_from: Optional[Union[str, os.PathLike, TrainCheckpoint]] = None,
    ) -> TrainResult:
        """Divide, schedule and train on ``train``.

        Parameters
        ----------
        train, test:
            Training ratings and optional held-out ratings.
        iterations:
            Number of full passes; defaults to ``training.iterations``.
            When resuming from a checkpoint, this is the *total* epoch
            cap — checkpointed epochs included — so ``fit(...,
            iterations=10, resume_from=ckpt)`` after a 5-epoch
            checkpoint runs 5 more epochs.
        target_rmse:
            Stop as soon as the test RMSE reaches this value.
        max_simulated_time:
            Hard time budget (simulated seconds for the ``"simulate"``
            backend, wall-clock seconds for ``"threads"``).
        model:
            Optional warm-start factor model.
        schedule:
            Optional learning-rate schedule.
        alpha_override:
            Bypass the cost model and force a specific GPU workload share
            (used by the alpha-sensitivity ablation).
        compute_train_rmse:
            Also record training RMSE each iteration.
        backend:
            Execution backend override: any name registered with
            :func:`repro.exec.register_backend` (built-ins:
            ``"simulate"``, the discrete-event engine; ``"threads"``,
            real concurrent worker threads; ``"processes"``, worker
            processes over shared-memory factors), or ``"auto"`` to pick
            processes when the run has more than one worker and the
            platform supports them, threads otherwise.  Defaults to
            ``training.backend``.
        kernel:
            SGD kernel override (one of
            :data:`repro.config.KERNEL_NAMES`).  Defaults to
            ``training.kernel`` (normally ``"auto"``, the block-major
            local kernel).
        batch_size:
            Mini-batch length override for the vectorised kernels
            (defaults to ``training.batch_size``, itself defaulting to
            :data:`repro.config.DEFAULT_BATCH_SIZE`).  The sequential
            reference kernel is unaffected.
        use_block_store:
            Feed the engines through the block-major data plane (the
            default).  ``False`` restores the legacy gather-per-task
            path; bitwise-identical, kept for benchmarking.
        callbacks:
            Epoch-boundary callbacks (:mod:`repro.exec.callbacks`):
            early stopping, checkpointing, JSONL logging, wall-clock
            budgets, or any custom :class:`~repro.exec.callbacks.Callback`.
        resume_from:
            A :class:`~repro.exec.checkpoint.TrainCheckpoint` (or a path
            to one) to resume.  With ``train`` identical to the
            checkpointed run's matrix (and the trainer constructed
            identically: same algorithm, hardware and seed), resuming on
            the simulate backend is bitwise-identical to the
            uninterrupted run.  With a matrix that has since **grown**
            (streaming appends — see
            :meth:`~repro.sparse.SparseRatingMatrix.append`), the run
            becomes a *warm-start retrain*: the checkpointed factors are
            padded to the new shape with least-squares fold-in rows, the
            grid and scheduler are re-derived from the grown matrix, and
            the session restarts at epoch 0 (``iterations`` counts from
            zero again).  A matrix smaller than the checkpointed one
            raises :class:`~repro.exceptions.CheckpointError`.
        """
        alpha: Optional[float] = None
        if self.spec.division == "nonuniform":
            if alpha_override is not None:
                alpha = float(alpha_override)
            else:
                split = self.workload_split(train)
                alpha = split.alpha if split is not None else 0.0

        grid = build_grid(
            self.spec,
            train,
            self._effective_hardware,
            alpha=alpha,
            column_scale=self.column_scale,
        )
        scheduler = build_scheduler(
            self.spec, grid, self._effective_hardware, seed=self.seed
        )
        backend = backend if backend is not None else self.training.backend
        backend = resolve_backend_name(
            backend, n_workers=scheduler.n_workers, use_block_store=use_block_store
        )
        training = self.training
        if kernel is not None:
            training = training.with_kernel(kernel)
        if batch_size is not None:
            training = training.with_batch_size(batch_size)
        checkpoint: Optional[TrainCheckpoint] = None
        if resume_from is not None:
            checkpoint = (
                resume_from
                if isinstance(resume_from, TrainCheckpoint)
                else TrainCheckpoint.load(resume_from)
            )
            checkpoint, model = self._dispatch_resume(
                checkpoint, train, training, model
            )
        engine = self._build_engine(
            backend,
            scheduler,
            train,
            training=training,
            test=test,
            model=model,
            schedule=schedule,
            compute_train_rmse=compute_train_rmse,
            use_block_store=use_block_store,
        )
        callback_list = CallbackList(callbacks)
        session = engine.start(
            iterations=iterations,
            target_rmse=target_rmse,
            max_simulated_time=max_simulated_time,
            pause_on_epoch=(
                callback_list.pause_at if callback_list.requires_pause else False
            ),
        )
        if checkpoint is not None:
            checkpoint.restore(session)
        outcome = run_session(session, callback_list)
        return TrainResult(
            model=outcome.model,
            trace=outcome.trace,
            converged=outcome.converged,
            stop_reason=outcome.stop_reason,
            algorithm=self.spec.key,
            alpha=alpha,
            calibration=self._calibration,
            backend=backend,
        )

    def _dispatch_resume(
        self,
        checkpoint: TrainCheckpoint,
        train: SparseRatingMatrix,
        training: TrainingConfig,
        model: Optional[FactorModel],
    ):
        """Route ``resume_from`` to exact resume or grown warm-start.

        Exact resume (the matrix is identical to the checkpointed run's:
        same shape, same rating count) keeps the checkpoint — it is
        restored into the fresh session and continues bitwise-identically
        (simulate backend) to the uninterrupted run.

        A *grown* matrix (streaming appends since the checkpoint: more
        ratings and possibly new users/items) cannot restore scheduler
        state — the grid, quotas and update counters all describe the old
        division.  Instead the checkpointed factors are padded to the new
        shape with least-squares fold-in rows
        (:func:`repro.sgd.foldin.grow_model`) and handed to the engine as
        the warm-start ``model``; the scheduler and grid are re-derived
        from the grown matrix and the session starts at epoch 0.

        A matrix *smaller* than the checkpointed one is a caller error
        (dimensions never shrink under streaming) and raises
        :class:`~repro.exceptions.CheckpointError`.

        Returns the ``(checkpoint, model)`` pair to use: ``(checkpoint,
        model)`` unchanged for exact resume, ``(None, grown_model)`` for
        warm-start.
        """
        old_m = int(checkpoint.meta.get("n_rows", -1))
        old_n = int(checkpoint.meta.get("n_cols", -1))
        old_nnz = checkpoint.meta.get("total_points")
        if train.n_rows < old_m or train.n_cols < old_n:
            raise CheckpointError(
                f"matrix shape ({train.n_rows}, {train.n_cols}) is smaller "
                f"than the checkpointed ({old_m}, {old_n}); dimensions "
                "never shrink"
            )
        exact = (train.n_rows, train.n_cols) == (old_m, old_n) and (
            old_nnz is None or train.nnz == int(old_nnz)
        )
        if exact:
            return checkpoint, model
        if model is not None:
            raise ConfigurationError(
                "model and a grown-matrix resume_from are mutually "
                "exclusive: the warm-start model is derived from the "
                "checkpoint's factors"
            )
        from ..sgd import grow_model

        grown = grow_model(
            FactorModel(checkpoint.p, checkpoint.q),
            train,
            (old_m, old_n),
            reg_p=training.reg_p,
            reg_q=training.reg_q,
            seed=self.seed,
            init_scale=training.effective_init_scale,
        )
        return None, grown

    def _build_engine(
        self,
        backend: str,
        scheduler,
        train: SparseRatingMatrix,
        training: TrainingConfig,
        test: Optional[SparseRatingMatrix],
        model: Optional[FactorModel],
        schedule: Optional[LearningRateSchedule],
        compute_train_rmse: bool,
        use_block_store: bool = True,
    ) -> Engine:
        """Construct the execution backend for one run.

        Backends are resolved through :mod:`repro.exec.registry`, so any
        backend registered with
        :func:`repro.exec.register_backend` — built-in or third-party —
        is constructible here without editing this method.
        """
        factory = get_backend(backend)
        return factory(
            scheduler=scheduler,
            train=train,
            training=training,
            test=test,
            model=model,
            schedule=schedule,
            platform=self._platform,
            compute_train_rmse=compute_train_rmse,
            use_block_store=use_block_store,
        )


def factorize(
    train: SparseRatingMatrix,
    test: Optional[SparseRatingMatrix] = None,
    algorithm: str = "hsgd_star",
    hardware: Optional[HardwareConfig] = None,
    training: Optional[TrainingConfig] = None,
    preset: Optional[PlatformPreset] = None,
    iterations: Optional[int] = None,
    target_rmse: Optional[float] = None,
    max_simulated_time: Optional[float] = None,
    seed: int = 0,
    backend: Optional[str] = None,
    kernel: Optional[str] = None,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
    schedule: Optional[LearningRateSchedule] = None,
    compute_train_rmse: bool = False,
    use_block_store: bool = True,
    callbacks: Optional[Sequence[Callback]] = None,
    resume_from: Optional[Union[str, os.PathLike, TrainCheckpoint]] = None,
) -> TrainResult:
    """One-call matrix factorization on the heterogeneous machine.

    A thin convenience wrapper around :class:`HeterogeneousTrainer` for
    examples and quick experiments; it accepts the full set of
    :meth:`HeterogeneousTrainer.fit` run options — stopping conditions
    (``iterations`` / ``target_rmse`` / ``max_simulated_time``), the
    learning-rate ``schedule``, per-iteration training RMSE
    (``compute_train_rmse``), the data-plane toggle
    (``use_block_store``), epoch ``callbacks`` and checkpoint
    resumption (``resume_from``) — see the method for parameter details.
    ``backend`` selects the execution backend (any registered name;
    ``"simulate"``, ``"threads"`` and ``"processes"`` built in, plus the
    ``"auto"`` rule); ``kernel`` the SGD update kernel (``"auto"``
    default); ``batch_size`` the vectorised kernels' mini-batch length.
    ``workers`` overrides the CPU worker count of ``hardware`` — the
    handy knob when sweeping real thread/process parallelism.
    """
    if workers is not None:
        hardware = (hardware or HardwareConfig()).with_cpu_threads(workers)
    trainer = HeterogeneousTrainer(
        algorithm=algorithm,
        hardware=hardware,
        training=training,
        preset=preset,
        seed=seed,
    )
    return trainer.fit(
        train,
        test=test,
        iterations=iterations,
        target_rmse=target_rmse,
        max_simulated_time=max_simulated_time,
        backend=backend,
        kernel=kernel,
        batch_size=batch_size,
        schedule=schedule,
        compute_train_rmse=compute_train_rmse,
        use_block_store=use_block_store,
        callbacks=callbacks,
        resume_from=resume_from,
    )
