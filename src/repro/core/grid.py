"""Block grid: the lockable unit structure of block-parallel SGD.

A :class:`BlockGrid` is the matrix division both HSGD and HSGD* schedule
over.  It consists of

* a list of **row bands** — contiguous user-index intervals, each tagged
  with the :class:`Region` that owns it (``CPU``, ``GPU`` or ``SHARED``
  for uniform divisions) and, for GPU sub-rows, the index of the parent
  GPU row they belong to (Figure 9);
* a list of **column bands** — contiguous item-index intervals shared by
  every region (the ``nc + 2 ng + 1`` columns of the paper);
* one :class:`GridBlock` per (row band, column band) cell carrying the COO
  positions of the ratings inside it and a running update counter.

Two blocks are *independent* exactly when they are in different row bands
and different column bands (Section III-A); the grid itself is agnostic of
scheduling — conflict enforcement lives in :class:`repro.core.locks.LockTable`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import InvalidPartitionError
from ..sparse import SparseRatingMatrix, extract_grid


class Region(enum.Enum):
    """Which resource a row band (and its blocks) is assigned to."""

    SHARED = "shared"
    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class RowBand:
    """One horizontal band of the grid.

    Attributes
    ----------
    index:
        Position of the band in the grid (0-based, top to bottom).
    row_range:
        Half-open user-index interval covered by the band.
    region:
        Owning region.
    gpu_row:
        For GPU sub-rows, the index of the parent GPU row of Figure 9
        (several consecutive sub-rows share one parent); ``None``
        otherwise.
    """

    index: int
    row_range: Tuple[int, int]
    region: Region
    gpu_row: Optional[int] = None

    @property
    def height(self) -> int:
        """Number of user rows in the band."""
        return self.row_range[1] - self.row_range[0]


@dataclass
class GridBlock:
    """One cell of the grid.

    Mutable on purpose: the scheduler increments :attr:`update_count`
    every time the block is processed, which is both the statistic behind
    the paper's Example 3 (update imbalance of HSGD) and the key the
    greedy schedulers minimise when picking the next block.
    """

    block_id: int
    row_band: int
    col_band: int
    row_range: Tuple[int, int]
    col_range: Tuple[int, int]
    indices: np.ndarray
    region: Region
    update_count: int = 0
    #: Ratings processed in the *current* iteration; reset by the scheduler.
    points_this_iteration: int = 0

    @property
    def nnz(self) -> int:
        """Number of ratings inside the block."""
        return len(self.indices)

    @property
    def p_rows(self) -> int:
        """Number of user rows spanned (size of the P segment it touches)."""
        return self.row_range[1] - self.row_range[0]

    @property
    def q_cols(self) -> int:
        """Number of item columns spanned (size of the Q segment it touches)."""
        return self.col_range[1] - self.col_range[0]

    def __repr__(self) -> str:
        return (
            f"GridBlock(id={self.block_id}, row={self.row_band}, "
            f"col={self.col_band}, nnz={self.nnz}, region={self.region.value})"
        )


@dataclass
class BlockGrid:
    """The full matrix division: row bands, column bands and blocks."""

    row_bands: List[RowBand]
    col_ranges: List[Tuple[int, int]]
    blocks: List[List[GridBlock]] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        matrix: SparseRatingMatrix,
        row_bands: Sequence[RowBand],
        col_boundaries: Sequence[int],
    ) -> "BlockGrid":
        """Materialise a grid for ``matrix`` from banded row/column structure.

        ``row_bands`` must tile ``[0, m)`` contiguously in order;
        ``col_boundaries`` is a monotone boundary array over ``[0, n]``.
        """
        if not row_bands:
            raise InvalidPartitionError("a grid needs at least one row band")
        expected_start = 0
        for band in row_bands:
            if band.row_range[0] != expected_start:
                raise InvalidPartitionError(
                    f"row bands must tile the matrix contiguously; band "
                    f"{band.index} starts at {band.row_range[0]}, expected "
                    f"{expected_start}"
                )
            if band.row_range[1] <= band.row_range[0]:
                raise InvalidPartitionError(
                    f"row band {band.index} has non-positive height"
                )
            expected_start = band.row_range[1]
        if expected_start != matrix.n_rows:
            raise InvalidPartitionError(
                f"row bands cover [0, {expected_start}) but the matrix has "
                f"{matrix.n_rows} rows"
            )

        row_boundaries = [band.row_range[0] for band in row_bands] + [matrix.n_rows]
        raw_grid = extract_grid(matrix, row_boundaries, col_boundaries)

        col_ranges = [
            (int(col_boundaries[j]), int(col_boundaries[j + 1]))
            for j in range(len(col_boundaries) - 1)
        ]
        blocks: List[List[GridBlock]] = []
        block_id = 0
        for i, band in enumerate(row_bands):
            row_blocks: List[GridBlock] = []
            for j, col_range in enumerate(col_ranges):
                cell = raw_grid[i][j]
                row_blocks.append(
                    GridBlock(
                        block_id=block_id,
                        row_band=i,
                        col_band=j,
                        row_range=band.row_range,
                        col_range=col_range,
                        indices=cell.indices,
                        region=band.region,
                    )
                )
                block_id += 1
            blocks.append(row_blocks)
        return cls(row_bands=list(row_bands), col_ranges=col_ranges, blocks=blocks)

    # ------------------------------------------------------------------ #
    # Shape and lookup
    # ------------------------------------------------------------------ #
    @property
    def n_row_bands(self) -> int:
        """Number of row bands."""
        return len(self.row_bands)

    @property
    def n_col_bands(self) -> int:
        """Number of column bands."""
        return len(self.col_ranges)

    @property
    def n_blocks(self) -> int:
        """Total number of blocks."""
        return self.n_row_bands * self.n_col_bands

    @property
    def total_nnz(self) -> int:
        """Total number of ratings across all blocks."""
        return sum(block.nnz for block in self.iter_blocks())

    def block(self, row_band: int, col_band: int) -> GridBlock:
        """The block at a given cell."""
        return self.blocks[row_band][col_band]

    def iter_blocks(self) -> Iterator[GridBlock]:
        """Iterate over all blocks in row-major order."""
        for row in self.blocks:
            yield from row

    def blocks_in_region(self, region: Region) -> List[GridBlock]:
        """All blocks owned by ``region``."""
        return [block for block in self.iter_blocks() if block.region == region]

    def region_nnz(self, region: Region) -> int:
        """Total ratings owned by ``region``."""
        return sum(block.nnz for block in self.blocks_in_region(region))

    def row_bands_in_region(self, region: Region) -> List[RowBand]:
        """All row bands owned by ``region``."""
        return [band for band in self.row_bands if band.region == region]

    def gpu_row_members(self, gpu_row: int) -> List[RowBand]:
        """The sub-row bands belonging to one parent GPU row of Figure 9."""
        return [
            band
            for band in self.row_bands
            if band.region == Region.GPU and band.gpu_row == gpu_row
        ]

    def n_gpu_rows(self) -> int:
        """Number of distinct parent GPU rows."""
        gpu_rows = {
            band.gpu_row
            for band in self.row_bands
            if band.region == Region.GPU and band.gpu_row is not None
        }
        return len(gpu_rows)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def update_counts(self) -> np.ndarray:
        """2-D array of per-block update counts (for imbalance analysis)."""
        return np.array(
            [[block.update_count for block in row] for row in self.blocks],
            dtype=np.int64,
        )

    def nnz_matrix(self) -> np.ndarray:
        """2-D array of per-block rating counts."""
        return np.array(
            [[block.nnz for block in row] for row in self.blocks], dtype=np.int64
        )

    def reset_iteration_counters(self) -> None:
        """Zero the per-iteration point counters of every block."""
        for block in self.iter_blocks():
            block.points_this_iteration = 0

    def __repr__(self) -> str:
        return (
            f"BlockGrid({self.n_row_bands} x {self.n_col_bands} blocks, "
            f"nnz={self.total_nnz})"
        )
