"""Drift detection: when is fold-in no longer enough?

Fold-in (:mod:`repro.sgd.foldin`) absorbs newcomers cheaply but holds
every trained factor fixed — as the rating distribution moves, the live
model's accuracy on *recent* traffic decays even though nothing about
the model changed.  The streaming tier therefore keeps a held-out
window of the most recent ratings (never yet trained on — see
:class:`repro.stream.ingest.IngestSession`) and tracks the live model's
validation RMSE on it:

* right after a (re)train, the monitor **rebases**: the fresh model's
  RMSE on the then-current window becomes the baseline;
* on every evaluation, the *delta* of the current RMSE over that
  baseline — plus the window *coverage*, the fraction of the window the
  model can score at all (newcomers outside the model's shape cannot
  be) — feeds the :class:`DriftPolicy` thresholds;
* a tripped threshold recommends a warm-start retrain, after which the
  monitor is rebased again.

The policy is deliberately two-signal: rising RMSE catches preference
drift among known users/items, falling coverage catches cold-start
pressure (a flood of newcomers fold-in alone would serve with
untrained-quality factors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..sgd.model import FactorModel


@dataclass(frozen=True)
class DriftPolicy:
    """Thresholds deciding fold-in vs. warm-start retrain.

    Attributes
    ----------
    rmse_increase:
        Absolute increase of the window RMSE over the rebased baseline
        that triggers a retrain.
    min_coverage:
        Minimum fraction of the window the live model must be able to
        score; below it, a retrain is triggered regardless of RMSE.
    min_window:
        Evaluations over fewer scorable ratings than this never trigger
        (too noisy to act on).
    """

    rmse_increase: float = 0.05
    min_coverage: float = 0.8
    min_window: int = 20

    def __post_init__(self) -> None:
        if self.rmse_increase < 0:
            raise ConfigurationError(
                f"rmse_increase must be non-negative, got {self.rmse_increase}"
            )
        if not 0.0 <= self.min_coverage <= 1.0:
            raise ConfigurationError(
                f"min_coverage must lie in [0, 1], got {self.min_coverage}"
            )
        if self.min_window < 1:
            raise ConfigurationError(
                f"min_window must be positive, got {self.min_window}"
            )


@dataclass(frozen=True)
class DriftReading:
    """One evaluation of the live model against the recent window."""

    rmse: Optional[float]
    """Window RMSE over the scorable ratings (``None`` if none are)."""
    baseline_rmse: Optional[float]
    """The rebased baseline (``None`` before the first rebase)."""
    coverage: float
    """Fraction of the window the model could score."""
    scorable: int
    """Number of window ratings inside the model's shape."""
    window: int
    """Total window size at evaluation time."""
    retrain: bool
    """Whether the policy recommends a warm-start retrain."""
    reason: str
    """Human-readable trigger (``"rmse"``, ``"coverage"`` or ``"ok"``)."""

    @property
    def delta(self) -> Optional[float]:
        """``rmse - baseline_rmse`` when both are defined."""
        if self.rmse is None or self.baseline_rmse is None:
            return None
        return self.rmse - self.baseline_rmse


def window_rmse(
    model: FactorModel,
    users: np.ndarray,
    items: np.ndarray,
    vals: np.ndarray,
) -> tuple:
    """``(rmse, scorable)`` of ``model`` over the window's scorable part.

    A window rating is *scorable* when both its user and item fall
    inside the model's shape; newcomers beyond it are excluded (they
    are exactly what the coverage signal counts).
    """
    users = np.asarray(users, dtype=np.int64)
    items = np.asarray(items, dtype=np.int64)
    vals = np.asarray(vals, dtype=np.float64)
    m, n = model.shape
    mask = (users >= 0) & (users < m) & (items >= 0) & (items < n)
    scorable = int(mask.sum())
    if scorable == 0:
        return None, 0
    errors = model.predict(users[mask], items[mask]) - vals[mask]
    return float(np.sqrt(errors @ errors / scorable)), scorable


class DriftMonitor:
    """Tracks the live model's window RMSE against a rebased baseline."""

    def __init__(self, policy: Optional[DriftPolicy] = None) -> None:
        self.policy = policy or DriftPolicy()
        self._baseline: Optional[float] = None

    @property
    def baseline_rmse(self) -> Optional[float]:
        """The baseline set by the last :meth:`rebase` (``None`` before)."""
        return self._baseline

    def rebase(
        self,
        model: FactorModel,
        users: np.ndarray,
        items: np.ndarray,
        vals: np.ndarray,
    ) -> Optional[float]:
        """Record ``model``'s window RMSE as the new baseline.

        Called right after a (re)train, with the *current* window — the
        freshly trained model's accuracy on traffic it has never seen is
        the honest reference future evaluations are compared against.
        Returns the new baseline (``None`` when nothing was scorable,
        which clears the baseline).
        """
        self._baseline, _ = window_rmse(model, users, items, vals)
        return self._baseline

    def evaluate(
        self,
        model: FactorModel,
        users: np.ndarray,
        items: np.ndarray,
        vals: np.ndarray,
    ) -> DriftReading:
        """Score ``model`` on the window and apply the policy."""
        window = len(np.asarray(vals))
        rmse_value, scorable = window_rmse(model, users, items, vals)
        coverage = scorable / window if window else 1.0
        policy = self.policy
        retrain = False
        reason = "ok"
        if window >= policy.min_window:
            if coverage < policy.min_coverage:
                retrain = True
                reason = "coverage"
            elif (
                rmse_value is not None
                and self._baseline is not None
                and scorable >= policy.min_window
                and rmse_value - self._baseline > policy.rmse_increase
            ):
                retrain = True
                reason = "rmse"
        return DriftReading(
            rmse=rmse_value,
            baseline_rmse=self._baseline,
            coverage=coverage,
            scorable=scorable,
            window=window,
            retrain=retrain,
            reason=reason,
        )
