"""Online ingestion: streaming ratings into a live, servable model.

The offline stack factorizes a frozen matrix; this package makes it a
living service.  Four layers, each building on an existing subsystem:

* **data plane** — :meth:`repro.sparse.SparseRatingMatrix.append`
  grows the live matrix in place (dimensions only ever grow) and
  invalidates the CSR/BlockStore caches derived from it;
* **fold-in** — :mod:`repro.sgd.foldin` gives brand-new users and items
  factor rows via one vectorised regularised least-squares solve
  against the fixed opposite matrix;
* **warm-start** — ``fit(resume_from=checkpoint)`` over a grown matrix
  (:meth:`repro.core.trainer.HeterogeneousTrainer.fit`) pads the
  checkpointed factors with fold-in rows and re-derives the grid and
  scheduler, so retrains start from the live model;
* **policy + serving** — :class:`DriftMonitor` watches the live model's
  RMSE on a held-out window of the most recent ratings and decides when
  fold-in stops being enough; :class:`IngestSession` runs the loop and
  publishes every model change to a :class:`repro.serve.ModelStore`
  for reader hot-swap.

See DESIGN.md ("Streaming model lifecycle"), ``repro ingest`` and
``examples/streaming_pipeline.py``.
"""

from .drift import DriftMonitor, DriftPolicy, DriftReading, window_rmse
from .ingest import CaptureCheckpoint, IngestReport, IngestSession, IngestStats

__all__ = [
    "CaptureCheckpoint",
    "DriftMonitor",
    "DriftPolicy",
    "DriftReading",
    "IngestReport",
    "IngestSession",
    "IngestStats",
    "window_rmse",
]
