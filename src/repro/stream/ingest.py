"""The streaming ingestion loop: append, fold in, retrain, publish.

:class:`IngestSession` is the controller that turns the repo's offline
pieces into an online system.  It owns four things:

* the **live matrix** — an append-only
  :class:`~repro.sparse.SparseRatingMatrix` that absorbs graduated
  stream ratings (:meth:`~repro.sparse.SparseRatingMatrix.append`);
* the **live model** — served factors, padded with least-squares
  fold-in rows (:func:`repro.sgd.foldin.grow_model`) whenever the
  matrix grows past the model's shape;
* the **held-out window** — the most recent ``window_size`` stream
  ratings, deliberately *not* yet appended to the matrix.  They are the
  validation set of the :class:`~repro.stream.drift.DriftMonitor`:
  because the model has never trained on them, the window RMSE is an
  honest estimate of live accuracy.  A rating graduates into the matrix
  only when newer ratings push it out of the window;
* the **resume checkpoint** — captured at the last trained epoch of
  every (re)train, so a drift-triggered retrain warm-starts from the
  live factors (``fit(resume_from=...)`` over the grown matrix) instead
  of random init.

When a :class:`~repro.serve.ModelStore` is attached, every change to
the live model (fold-in growth or retrain) is published as a new
version; reader processes hot-swap at their own pace
(:func:`repro.serve.attach_model`), which is the end-to-end path
``examples/streaming_pipeline.py`` demonstrates.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

import numpy as np

from ..core.trainer import HeterogeneousTrainer, TrainResult
from ..exceptions import ConfigurationError, ReproError
from ..exec.callbacks import CONTINUE, Callback
from ..exec.checkpoint import TrainCheckpoint
from ..serve.store import ModelStore
from ..sgd.foldin import grow_model
from ..sgd.model import FactorModel
from ..sparse import SparseRatingMatrix
from .drift import DriftMonitor, DriftPolicy, DriftReading

#: Default extra publish attempts after the first failure.
DEFAULT_PUBLISH_RETRIES = 2

#: Default sleep before the first publish retry; doubles per attempt.
DEFAULT_PUBLISH_BACKOFF_SECONDS = 0.05


class CaptureCheckpoint(Callback):
    """Keep an in-memory :class:`TrainCheckpoint` of the latest epoch.

    Unlike :class:`~repro.exec.callbacks.Checkpoint` nothing touches
    disk — the ingest loop only needs the newest boundary to warm-start
    the *next* retrain from, so each capture replaces the previous one.
    """

    requires_pause = True

    def __init__(self) -> None:
        self.checkpoint: Optional[TrainCheckpoint] = None

    def on_epoch_end(self, report, session):
        self.checkpoint = TrainCheckpoint.capture(session)
        return CONTINUE


@dataclass(frozen=True)
class IngestReport:
    """What one :meth:`IngestSession.ingest` call did."""

    ingested: int
    """Ratings accepted into the window by this call."""
    graduated: int
    """Ratings that left the window and were appended to the matrix."""
    folded_users: int
    """New user rows added to the live model by fold-in."""
    folded_items: int
    """New item columns added to the live model by fold-in."""
    drift: Optional[DriftReading]
    """The drift evaluation (``None`` when the window was empty)."""
    retrained: bool
    """Whether a warm-start retrain ran."""
    published_version: Optional[int]
    """The version published this call (``None`` when nothing changed
    or no store is attached)."""
    publish_error: Optional[str] = None
    """Structured description of a publish that failed after exhausting
    its retries (``None`` when publication succeeded or was not
    attempted).  The store's previously committed version keeps
    serving; the next model change re-attempts publication."""


@dataclass
class IngestStats:
    """Running totals across a session's lifetime."""

    ingested: int = 0
    graduated: int = 0
    folded_users: int = 0
    folded_items: int = 0
    retrains: int = 0
    publishes: int = 0
    publish_failures: int = 0
    drift_readings: List[DriftReading] = field(default_factory=list)


class IngestSession:
    """Consume a rating stream against a live, servable model.

    Parameters
    ----------
    trainer:
        The configured :class:`~repro.core.trainer.HeterogeneousTrainer`
        used for the initial train and every warm-start retrain.
    matrix:
        The training matrix; the session mutates it in place via
        :meth:`~repro.sparse.SparseRatingMatrix.append` as stream
        ratings graduate out of the held-out window.
    store:
        Optional :class:`~repro.serve.ModelStore`; when given, every
        live-model change is published as a new version.  The store
        stays caller-owned (the session never closes it).
    window_size:
        Size of the held-out recent window (the drift validation set).
    policy:
        :class:`~repro.stream.drift.DriftPolicy` thresholds.
    backend:
        Execution backend override forwarded to ``trainer.fit``.
    train_iterations / retrain_iterations:
        Epoch counts for :meth:`start` and for drift-triggered retrains
        (both default to the trainer's configured iterations).
    publish_retries / publish_backoff:
        A failed publication is retried this many extra times with an
        exponentially doubling sleep starting at ``publish_backoff``
        seconds.  Exhausting the retries never raises out of the ingest
        loop: the failure is counted, surfaced on the report's
        ``publish_error``, and readers keep serving the store's last
        committed version.
    """

    def __init__(
        self,
        trainer: HeterogeneousTrainer,
        matrix: SparseRatingMatrix,
        store: Optional[ModelStore] = None,
        window_size: int = 256,
        policy: Optional[DriftPolicy] = None,
        backend: Optional[str] = None,
        train_iterations: Optional[int] = None,
        retrain_iterations: Optional[int] = None,
        publish_retries: int = DEFAULT_PUBLISH_RETRIES,
        publish_backoff: float = DEFAULT_PUBLISH_BACKOFF_SECONDS,
    ) -> None:
        if window_size < 1:
            raise ConfigurationError(
                f"window_size must be positive, got {window_size}"
            )
        if publish_retries < 0:
            raise ConfigurationError(
                f"publish_retries must be >= 0, got {publish_retries}"
            )
        if publish_backoff < 0:
            raise ConfigurationError(
                f"publish_backoff must be >= 0, got {publish_backoff}"
            )
        self.trainer = trainer
        self.matrix = matrix
        self.store = store
        self.window_size = int(window_size)
        self.monitor = DriftMonitor(policy)
        self.stats = IngestStats()
        self._backend = backend
        self._train_iterations = train_iterations
        self._retrain_iterations = retrain_iterations
        self.publish_retries = int(publish_retries)
        self.publish_backoff = float(publish_backoff)
        self._pending: Deque[Tuple[int, int, float]] = deque()
        self._model: Optional[FactorModel] = None
        self._checkpoint: Optional[TrainCheckpoint] = None
        self._publish_error: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def model(self) -> FactorModel:
        """The live model (:meth:`start` must have run)."""
        if self._model is None:
            raise ConfigurationError(
                "the session has no model yet; call start() first"
            )
        return self._model

    @property
    def started(self) -> bool:
        """Whether :meth:`start` has trained the initial model."""
        return self._model is not None

    def window(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The held-out window as parallel ``(users, items, vals)`` arrays."""
        if not self._pending:
            empty_ids = np.empty(0, dtype=np.int64)
            return empty_ids, empty_ids.copy(), np.empty(0)
        users, items, vals = zip(*self._pending)
        return (
            np.asarray(users, dtype=np.int64),
            np.asarray(items, dtype=np.int64),
            np.asarray(vals, dtype=np.float64),
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> TrainResult:
        """Train the base model on the current matrix and go live."""
        if self._model is not None:
            raise ConfigurationError("the session is already started")
        result = self._train(resume_from=None, iterations=self._train_iterations)
        self._publish()
        return result

    def ingest(
        self,
        users: np.ndarray,
        items: np.ndarray,
        vals: np.ndarray,
    ) -> IngestReport:
        """Absorb one batch of stream ratings.

        The batch enters the held-out window; ratings the batch pushes
        out of the window graduate into the training matrix.  If
        graduation grew the matrix past the live model's shape, the
        newcomers are folded in.  The drift monitor then scores the live
        model on the new window, and a tripped policy triggers a
        warm-start retrain.  Any model change is published.
        """
        model = self.model  # raises before start()
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (len(users) == len(items) == len(vals)):
            raise ConfigurationError(
                "users, items and vals must have equal lengths"
            )
        for user, item, val in zip(users, items, vals):
            self._pending.append((int(user), int(item), float(val)))
        self.stats.ingested += len(vals)

        graduated = []
        while len(self._pending) > self.window_size:
            graduated.append(self._pending.popleft())
        folded_users, folded_items = self._graduate(graduated)

        drift: Optional[DriftReading] = None
        retrained = False
        if self._pending:
            if self.monitor.baseline_rmse is None:
                # (Re)training rebases on the then-current window, which
                # may have been empty (e.g. right after start, or after a
                # retrain graduated it).  Re-anchor on the first window
                # the live model has demonstrably never trained on.
                self.monitor.rebase(self._model, *self.window())
            drift = self.monitor.evaluate(self._model, *self.window())
            self.stats.drift_readings.append(drift)
            if drift.retrain:
                # The retrain must learn from the freshest ratings — and
                # a coverage trigger can only be cured by absorbing the
                # window's newcomers — so the window graduates first.
                drained = list(self._pending)
                self._pending.clear()
                fold_u, fold_i = self._graduate(drained)
                graduated.extend(drained)
                folded_users += fold_u
                folded_items += fold_i
                self._train(
                    resume_from=self._checkpoint,
                    iterations=self._retrain_iterations,
                )
                retrained = True
        version = None
        publish_error: Optional[str] = None
        if folded_users or folded_items or retrained:
            version = self._publish()
            publish_error = self._publish_error
        return IngestReport(
            ingested=len(vals),
            graduated=len(graduated),
            folded_users=folded_users,
            folded_items=folded_items,
            drift=drift,
            retrained=retrained,
            published_version=version,
            publish_error=publish_error,
        )

    def flush(self) -> IngestReport:
        """Graduate the entire window into the matrix (e.g. at shutdown).

        Folds in any newcomers and publishes if the model changed; the
        drift monitor is not consulted (the window is empty afterwards).
        """
        self.model  # raises before start()
        graduated = list(self._pending)
        self._pending.clear()
        folded_users, folded_items = self._graduate(graduated)
        version = None
        publish_error: Optional[str] = None
        if folded_users or folded_items:
            version = self._publish()
            publish_error = self._publish_error
        return IngestReport(
            ingested=0,
            graduated=len(graduated),
            folded_users=folded_users,
            folded_items=folded_items,
            drift=None,
            retrained=False,
            published_version=version,
            publish_error=publish_error,
        )

    def retrain(self) -> TrainResult:
        """Force a warm-start retrain outside the drift policy."""
        self.model  # raises before start()
        return self._train(
            resume_from=self._checkpoint, iterations=self._retrain_iterations
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _graduate(self, graduated) -> Tuple[int, int]:
        """Append graduated ratings and fold newcomers into the model."""
        if not graduated:
            return 0, 0
        self.matrix.append_triples(graduated)
        self.stats.graduated += len(graduated)
        model = self._model
        old_m, old_n = model.shape
        if self.matrix.n_rows <= old_m and self.matrix.n_cols <= old_n:
            return 0, 0
        training = self.trainer.training
        self._model = grow_model(
            model,
            self.matrix,
            model.shape,
            reg_p=training.reg_p,
            reg_q=training.reg_q,
            seed=self.trainer.seed,
            init_scale=training.effective_init_scale,
        )
        folded_users = self.matrix.n_rows - old_m
        folded_items = self.matrix.n_cols - old_n
        self.stats.folded_users += folded_users
        self.stats.folded_items += folded_items
        return folded_users, folded_items

    def _train(
        self,
        resume_from: Optional[TrainCheckpoint],
        iterations: Optional[int],
    ) -> TrainResult:
        """Run one (re)train, refresh the checkpoint and rebase drift."""
        capture = CaptureCheckpoint()
        if iterations is None:
            iterations = self.trainer.training.iterations
        if resume_from is not None:
            meta = resume_from.meta
            exact = (
                (self.matrix.n_rows, self.matrix.n_cols)
                == (meta.get("n_rows"), meta.get("n_cols"))
                and self.matrix.nnz == meta.get("total_points")
            )
            if exact:
                # Exact resume counts total epochs (checkpointed ones
                # included); a retrain means "this many *more* passes".
                iterations = resume_from.epoch + iterations
        result = self.trainer.fit(
            self.matrix,
            iterations=iterations,
            backend=self._backend,
            callbacks=[capture],
            resume_from=resume_from,
        )
        if capture.checkpoint is None:  # pragma: no cover - defensive
            raise ConfigurationError(
                "training finished without reaching an epoch boundary; "
                "cannot maintain the warm-start checkpoint"
            )
        if self._model is not None:  # the initial train is not a retrain
            self.stats.retrains += 1
        self._model = result.model
        self._checkpoint = capture.checkpoint
        self.monitor.rebase(self._model, *self.window())
        return result

    def _publish(self) -> Optional[int]:
        """Publish the live model to the attached store, if any.

        Publication failures (a torn write fault, shm exhaustion) are
        retried ``publish_retries`` times with doubling backoff and
        then swallowed: the ingest loop must keep absorbing ratings,
        and readers degrade to the store's last committed version
        rather than losing the service.  The failure is counted in
        ``stats.publish_failures`` and described on the report's
        ``publish_error``.
        """
        self._publish_error = None
        if self.store is None:
            return None
        delay = self.publish_backoff
        last_error: Optional[ReproError] = None
        for attempt in range(self.publish_retries + 1):
            try:
                handle = self.store.publish(self.model)
            except ReproError as error:
                last_error = error
                self.stats.publish_failures += 1
                if attempt < self.publish_retries and delay > 0:
                    time.sleep(delay)
                    delay *= 2.0
                continue
            self.stats.publishes += 1
            return handle.version
        self._publish_error = (
            f"publish failed after {self.publish_retries + 1} attempt(s): "
            f"{type(last_error).__name__}: {last_error}"
        )
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IngestSession(matrix={self.matrix.nnz} ratings, "
            f"window={len(self._pending)}/{self.window_size}, "
            f"started={self.started})"
        )
