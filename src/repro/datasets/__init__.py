"""Dataset substrate.

The paper evaluates on four public rating datasets (Table I): MovieLens,
Netflix, Yahoo R1 and Yahoo!Music.  Those datasets (tens of millions to
hundreds of millions of ratings) are not available offline and would be
far too slow to train with a pure-numpy kernel, so this subpackage
provides:

* a **synthetic generator** (:mod:`repro.datasets.synthetic`) that draws a
  low-rank ground-truth model, samples user/item popularity from power
  laws (matching the heavy skew of real rating data), adds observation
  noise, and clips to the dataset's rating scale;
* a **registry** (:mod:`repro.datasets.registry`) of scaled-down analogues
  of the paper's four datasets, preserving their aspect ratios, rating
  scales, size ordering and per-dataset hyper-parameters, plus the paper's
  original Table I statistics for reporting;
* train/test **splits** (:mod:`repro.datasets.splits`).
"""

from .registry import (
    DATASETS,
    DatasetSpec,
    PaperDatasetStatistics,
    dataset_names,
    get_dataset,
    load_dataset,
)
from .splits import holdout_split
from .synthetic import SyntheticConfig, generate_synthetic_matrix

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "PaperDatasetStatistics",
    "dataset_names",
    "get_dataset",
    "load_dataset",
    "holdout_split",
    "SyntheticConfig",
    "generate_synthetic_matrix",
]
