"""Registry of the paper's benchmark datasets and their scaled analogues.

Table I of the paper lists four datasets together with the
hyper-parameters used on each.  The registry records those statistics
verbatim (for reporting and for the Table I benchmark) and defines, for
each dataset, a synthetic scaled-down analogue that

* keeps the size *ordering* (MovieLens < Netflix ≈ R1 < Yahoo!Music) and
  approximate train/test ratio,
* keeps the tall-vs-wide aspect of the original matrix,
* keeps the rating scale (1-5 stars for MovieLens/Netflix, 0-100 for the
  Yahoo datasets — which is why the paper's RMSE targets are 0.66/0.82
  vs 20/19),
* is roughly 1000x smaller in rating count so pure-numpy SGD epochs take
  fractions of a second.

The per-dataset regularisation and learning rate follow Table I; the
latent dimensionality defaults to 32 for the reproduction experiments
(the paper uses 128 — the reduction only rescales compute per rating and
is recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

from ..config import TrainingConfig
from ..exceptions import DatasetError
from ..sparse import SparseRatingMatrix
from .splits import holdout_split
from .synthetic import SyntheticConfig, generate_synthetic_matrix

#: The rating-count scale of the synthetic analogues relative to Table I.
DATASET_SCALE = 1e-3

#: Latent dimensionality used by the reproduction experiments.
EXPERIMENT_LATENT_FACTORS = 32


@dataclass(frozen=True)
class PaperDatasetStatistics:
    """The original Table I row for one dataset."""

    n_rows: int
    n_cols: int
    n_training: int
    n_test: int
    latent_factors: int
    reg_p: float
    reg_q: float
    learning_rate: float
    target_rmse: float
    """The predefined RMSE at which Section VII-A stops the timers."""


@dataclass(frozen=True)
class DatasetSpec:
    """A dataset of the evaluation: paper statistics plus synthetic analogue."""

    name: str
    paper: PaperDatasetStatistics
    synthetic: SyntheticConfig
    test_fraction: float
    target_rmse: float
    """RMSE threshold used by the reproduction's time-to-target runs.

    Chosen a little above the synthetic noise floor so every algorithm can
    reach it, mirroring how the paper picked values reachable by all
    competitors.
    """

    @property
    def scale(self) -> float:
        """Rating-count scale of the analogue relative to the paper dataset."""
        return self.synthetic.n_ratings / float(
            self.paper.n_training + self.paper.n_test
        )

    def recommended_training(
        self,
        iterations: int = 20,
        latent_factors: int = EXPERIMENT_LATENT_FACTORS,
        seed: int = 0,
    ) -> TrainingConfig:
        """Training configuration following Table I, adapted to the analogue.

        The regularisers come straight from Table I.  The learning rate is
        Table I's value rescaled by the rating range (``5 / rating_max``)
        for the 0-100 Yahoo scales: the paper's AVX/CUDA kernels apply the
        per-rating updates strictly sequentially, whereas the vectorised
        mini-batch kernel accumulates a handful of gradients per step, so
        the raw Table I rates overflow on a 0-100 scale.  The rescaling
        keeps per-epoch progress comparable and is recorded in
        EXPERIMENTS.md.  The factor initialisation scale is set so initial
        predictions land near the middle of the rating scale.
        """
        mid_rating = 0.5 * (self.synthetic.rating_min + self.synthetic.rating_max)
        init_scale = 2.0 * (mid_rating / latent_factors) ** 0.5
        rate_scale = min(1.0, 5.0 / self.synthetic.rating_max)
        return TrainingConfig(
            latent_factors=latent_factors,
            learning_rate=self.paper.learning_rate * rate_scale,
            reg_p=self.paper.reg_p,
            reg_q=self.paper.reg_q,
            iterations=iterations,
            seed=seed,
            init_scale=init_scale,
        )


@dataclass(frozen=True)
class DatasetBundle:
    """A loaded dataset: train and test matrices plus its spec."""

    spec: DatasetSpec
    train: SparseRatingMatrix
    test: SparseRatingMatrix


def _movielens_spec() -> DatasetSpec:
    paper = PaperDatasetStatistics(
        n_rows=71_567,
        n_cols=65_133,
        n_training=9_301_274,
        n_test=698_780,
        latent_factors=128,
        reg_p=0.05,
        reg_q=0.05,
        learning_rate=0.005,
        target_rmse=0.66,
    )
    synthetic = SyntheticConfig(
        n_rows=1_800,
        n_cols=1_400,
        n_ratings=30_000,
        rank=8,
        rating_min=0.5,
        rating_max=5.0,
        noise_std=0.45,
        popularity_exponent=0.8,
        seed=11,
    )
    return DatasetSpec(
        name="movielens",
        paper=paper,
        synthetic=synthetic,
        test_fraction=paper.n_test / (paper.n_training + paper.n_test),
        target_rmse=0.545,
    )


def _netflix_spec() -> DatasetSpec:
    paper = PaperDatasetStatistics(
        n_rows=2_649_429,
        n_cols=17_770,
        n_training=99_072_112,
        n_test=1_408_395,
        latent_factors=128,
        reg_p=0.05,
        reg_q=0.05,
        learning_rate=0.005,
        target_rmse=0.82,
    )
    synthetic = SyntheticConfig(
        n_rows=8_000,
        n_cols=600,
        n_ratings=100_500,
        rank=8,
        rating_min=1.0,
        rating_max=5.0,
        noise_std=0.6,
        popularity_exponent=0.8,
        seed=12,
    )
    return DatasetSpec(
        name="netflix",
        paper=paper,
        synthetic=synthetic,
        test_fraction=paper.n_test / (paper.n_training + paper.n_test),
        target_rmse=0.69,
    )


def _r1_spec() -> DatasetSpec:
    paper = PaperDatasetStatistics(
        n_rows=1_948_883,
        n_cols=1_101_750,
        n_training=104_215_016,
        n_test=11_364_422,
        latent_factors=128,
        reg_p=1.0,
        reg_q=1.0,
        learning_rate=0.005,
        target_rmse=20.0,
    )
    synthetic = SyntheticConfig(
        n_rows=6_000,
        n_cols=3_500,
        n_ratings=115_500,
        rank=8,
        rating_min=0.0,
        rating_max=100.0,
        noise_std=14.0,
        popularity_exponent=0.8,
        seed=13,
    )
    return DatasetSpec(
        name="r1",
        paper=paper,
        synthetic=synthetic,
        test_fraction=paper.n_test / (paper.n_training + paper.n_test),
        target_rmse=15.1,
    )


def _yahoomusic_spec() -> DatasetSpec:
    paper = PaperDatasetStatistics(
        n_rows=1_000_990,
        n_cols=624_961,
        n_training=252_800_275,
        n_test=4_003_960,
        latent_factors=128,
        reg_p=1.0,
        reg_q=1.0,
        learning_rate=0.01,
        target_rmse=19.0,
    )
    synthetic = SyntheticConfig(
        n_rows=10_000,
        n_cols=6_250,
        n_ratings=256_800,
        rank=8,
        rating_min=0.0,
        rating_max=100.0,
        noise_std=13.0,
        popularity_exponent=0.8,
        seed=14,
    )
    return DatasetSpec(
        name="yahoomusic",
        paper=paper,
        synthetic=synthetic,
        test_fraction=paper.n_test / (paper.n_training + paper.n_test),
        target_rmse=14.1,
    )


#: All datasets of the paper's evaluation, in Table I order.
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        _movielens_spec(),
        _netflix_spec(),
        _r1_spec(),
        _yahoomusic_spec(),
    )
}


def dataset_names() -> List[str]:
    """Names of the registered datasets, in Table I order."""
    return list(DATASETS.keys())


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by name.

    Raises
    ------
    DatasetError
        If the name is unknown.
    """
    try:
        return DATASETS[name]
    except KeyError as exc:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        ) from exc


@lru_cache(maxsize=None)
def _load_cached(name: str, seed: int) -> Tuple[SparseRatingMatrix, SparseRatingMatrix]:
    spec = get_dataset(name)
    matrix, _, _ = generate_synthetic_matrix(spec.synthetic)
    return holdout_split(matrix, spec.test_fraction, seed=seed)


def load_dataset(name: str, seed: int = 0) -> DatasetBundle:
    """Generate (or fetch from cache) the synthetic analogue of a dataset.

    The generation is deterministic in ``(name, seed)`` and cached, so
    benchmarks that reuse the same dataset across many runs pay the
    generation cost once.
    """
    spec = get_dataset(name)
    train, test = _load_cached(name, seed)
    return DatasetBundle(spec=spec, train=train, test=test)
