"""Train/test splitting.

The paper uses the original train/test splits shipped with each public
dataset.  For the synthetic analogues we hold out a uniformly random
fraction of the ratings as a test set, sized to match each paper
dataset's test-to-train ratio (Table I).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import DatasetError
from ..sparse import SparseRatingMatrix


def holdout_split(
    matrix: SparseRatingMatrix,
    test_fraction: float,
    seed: int = 0,
) -> Tuple[SparseRatingMatrix, SparseRatingMatrix]:
    """Split a rating matrix into disjoint train and test matrices.

    Parameters
    ----------
    matrix:
        All ratings.
    test_fraction:
        Fraction of ratings held out for testing, in ``(0, 1)``.
    seed:
        Seed of the random assignment.

    Returns
    -------
    (train, test)
        Two matrices with the same shape as the input whose rating sets
        partition the input's ratings.

    Raises
    ------
    DatasetError
        If the fraction is out of range or either side would be empty.
    """
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError(
            f"test_fraction must lie strictly between 0 and 1, got {test_fraction}"
        )
    n_test = int(round(matrix.nnz * test_fraction))
    if n_test == 0 or n_test == matrix.nnz:
        raise DatasetError(
            f"split of {matrix.nnz} ratings at fraction {test_fraction} "
            "would leave an empty side"
        )
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(matrix.nnz)
    test_index = np.sort(permutation[:n_test])
    train_index = np.sort(permutation[n_test:])
    return matrix.select(train_index), matrix.select(test_index)
