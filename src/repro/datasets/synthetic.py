"""Synthetic rating-matrix generator.

Real rating matrices share a few structural properties that matter for
block-parallel SGD and for the paper's findings:

* the user/item degree distributions are heavily skewed (power-law-ish),
  so uniform index bands carry very different numbers of ratings;
* the ratings are approximately explained by a low-rank model plus noise,
  so SGD converges to a non-zero test RMSE floor (the noise level) instead
  of interpolating the data;
* ratings live on a bounded scale (1-5 stars or 0-100).

The generator reproduces all three: it draws ground-truth factors, picks
``(user, item)`` pairs with popularity-weighted sampling, and emits
``clip(p_u q_v + noise)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..exceptions import DatasetError
from ..sparse import SparseRatingMatrix


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of a synthetic rating matrix.

    Attributes
    ----------
    n_rows, n_cols:
        Matrix dimensions (users, items).
    n_ratings:
        Number of explicit ratings to generate (before de-duplication;
        the result may contain slightly fewer distinct cells).
    rank:
        Rank of the ground-truth model the ratings are sampled from.
    rating_min, rating_max:
        Rating scale bounds; generated ratings are clipped to this range.
    noise_std:
        Standard deviation of the additive observation noise — this is the
        approximate test-RMSE floor reachable by a well-fit model.
    popularity_exponent:
        Exponent of the Zipf-like popularity weights for users and items;
        0 gives uniform popularity, 0.8-1.0 resembles real datasets.
    seed:
        Random seed.
    """

    n_rows: int
    n_cols: int
    n_ratings: int
    rank: int = 8
    rating_min: float = 1.0
    rating_max: float = 5.0
    noise_std: float = 0.5
    popularity_exponent: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_rows <= 0 or self.n_cols <= 0:
            raise DatasetError(
                f"matrix dimensions must be positive, got "
                f"({self.n_rows}, {self.n_cols})"
            )
        if self.n_ratings <= 0:
            raise DatasetError(f"n_ratings must be positive, got {self.n_ratings}")
        if self.rank <= 0:
            raise DatasetError(f"rank must be positive, got {self.rank}")
        if self.rating_max <= self.rating_min:
            raise DatasetError(
                f"rating_max must exceed rating_min, got "
                f"[{self.rating_min}, {self.rating_max}]"
            )
        if self.noise_std < 0:
            raise DatasetError(f"noise_std must be non-negative, got {self.noise_std}")
        if self.popularity_exponent < 0:
            raise DatasetError(
                f"popularity_exponent must be non-negative, got "
                f"{self.popularity_exponent}"
            )


def _popularity_weights(count: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf-like popularity weights over ``count`` entities, randomly permuted."""
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    weights /= weights.sum()
    return rng.permutation(weights)


def generate_synthetic_matrix(
    config: SyntheticConfig,
) -> Tuple[SparseRatingMatrix, np.ndarray, np.ndarray]:
    """Generate a synthetic rating matrix and its ground-truth factors.

    Returns
    -------
    (matrix, true_p, true_q)
        The rating matrix plus the ground-truth factor matrices used to
        generate it (``true_p`` is ``(m, rank)``, ``true_q`` is
        ``(rank, n)``), which tests use to verify that MF recovers a model
        of comparable quality.

    Notes
    -----
    Duplicate ``(user, item)`` draws are removed, keeping the first
    occurrence, so the returned matrix has at most ``config.n_ratings``
    ratings and every cell appears once.  Every row and column index is
    guaranteed to be within bounds but not every row/column is guaranteed
    to be rated (exactly like real datasets).
    """
    rng = np.random.default_rng(config.seed)

    # Ground truth chosen so that p_u . q_v covers the rating scale:
    # factors ~ N(mu, sigma) with mu = sqrt(mid / rank).
    mid_rating = 0.5 * (config.rating_min + config.rating_max)
    factor_mean = np.sqrt(mid_rating / config.rank)
    factor_std = 0.35 * factor_mean
    true_p = rng.normal(factor_mean, factor_std, size=(config.n_rows, config.rank))
    true_q = rng.normal(factor_mean, factor_std, size=(config.rank, config.n_cols))

    user_weights = _popularity_weights(config.n_rows, config.popularity_exponent, rng)
    item_weights = _popularity_weights(config.n_cols, config.popularity_exponent, rng)

    # Oversample to compensate for duplicate removal.
    oversample = int(config.n_ratings * 1.25) + 16
    users = rng.choice(config.n_rows, size=oversample, p=user_weights)
    items = rng.choice(config.n_cols, size=oversample, p=item_weights)

    cells = users.astype(np.int64) * config.n_cols + items.astype(np.int64)
    _, first_positions = np.unique(cells, return_index=True)
    keep = np.sort(first_positions)[: config.n_ratings]
    users = users[keep]
    items = items[keep]

    clean = np.einsum("ij,ji->i", true_p[users], true_q[:, items])
    noisy = clean + rng.normal(0.0, config.noise_std, size=len(users))
    ratings = np.clip(noisy, config.rating_min, config.rating_max)

    matrix = SparseRatingMatrix(
        users, items, ratings, shape=(config.n_rows, config.n_cols)
    )
    return matrix, true_p, true_q
