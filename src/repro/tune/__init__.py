"""On-machine autotuning: calibrate the cost models, resolve ``"auto"``.

The :mod:`repro.costmodel` package knows how to *fit* per-machine cost
models (Algorithm 3 calibration, Qilin-style linear projection); this
package closes the loop by *running* that calibration on the current
machine and packaging the answers into a :class:`TunedProfile` — a
versioned, machine-fingerprinted JSON document that resolves every
``"auto"`` tunable in the stack:

* training ``backend`` / ``workers`` / ``batch_size`` / ``kernel``
  (:class:`~repro.config.TrainingConfig`,
  :func:`~repro.exec.registry.resolve_backend_name`);
* serving ``chunk_items`` and the coalescing ``batch_size``
  (:class:`~repro.serve.Scorer`,
  :class:`~repro.serve.RecommendationService`,
  :class:`~repro.service.ServiceConfig`);
* streaming fold-in chunk sizes (:mod:`repro.sgd.foldin`).

Without a profile every resolver falls back to the hand-picked default
that shipped before autotuning existed — that path is pinned
bitwise-unchanged by the test suite, so loading no profile is always
safe.  ``repro tune`` (see :mod:`repro.cli`) emits the profile plus a
``BENCH_tune.json`` payload recording predicted-vs-measured time for
every probed configuration, which CI gates on.

Import discipline: this module re-exports only the lightweight
:mod:`~repro.tune.profile` layer (stdlib + :mod:`repro.config`).  The
measurement probes in :mod:`~repro.tune.probes` pull in the training
and serving stacks, so :func:`run_tune` imports them lazily.
"""

from .profile import (
    AUTO,
    PROFILE_SCHEMA_VERSION,
    ServingTunables,
    StreamTunables,
    TrainingTunables,
    TunedProfile,
    active_profile,
    profile_kernel,
    resolve_foldin_batch_users,
    resolve_foldin_gram_chunk,
    resolve_serving_batch_size,
    resolve_serving_chunk_items,
    resolve_training_batch_size,
    resolve_workers,
    set_active_profile,
    use_profile,
)

__all__ = [
    "AUTO",
    "PROFILE_SCHEMA_VERSION",
    "ServingTunables",
    "StreamTunables",
    "TrainingTunables",
    "TunedProfile",
    "TuneOutcome",
    "active_profile",
    "profile_kernel",
    "resolve_foldin_batch_users",
    "resolve_foldin_gram_chunk",
    "resolve_serving_batch_size",
    "resolve_serving_chunk_items",
    "resolve_training_batch_size",
    "resolve_workers",
    "run_tune",
    "set_active_profile",
    "use_profile",
]


def run_tune(*args, **kwargs):
    """Run the calibration probes (lazy wrapper around :mod:`.probes`).

    See :func:`repro.tune.probes.run_tune` for the full signature; the
    indirection keeps ``import repro.tune`` free of the training and
    serving stacks.
    """
    from .probes import run_tune as _run_tune

    return _run_tune(*args, **kwargs)


def __getattr__(name):
    if name == "TuneOutcome":
        from .probes import TuneOutcome

        return TuneOutcome
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
