"""The ``repro tune`` measurement probes: fit the cost models, pick the knobs.

This module is the *online* half of the autotuning loop.  The
:mod:`repro.costmodel` package defines how to fit per-machine cost
models (Algorithm 3 calibration, linear Qilin-style projection); the
probes here actually run short workloads on the current machine, fit
those models, validate them against held-out measurements
(``predict_error = |predicted - measured| / measured``, the
self-validation signal from the calibration literature), and resolve
every ``"auto"`` tunable into a :class:`~repro.tune.profile.TunedProfile`.

Five probe sections, one per tunable family:

``costmodel``
    :func:`~repro.costmodel.calibrate_platform` over geometric prefixes
    of a synthetic workload on the simulated paper machine, validated on
    a fresh ladder of held-out prefix sizes, plus the Equation 7/8
    workload split ``alpha``.  Deterministic up to the simulated
    measurement noise, so its error budget is tight.
``train_batch``
    Wall-clock :func:`~repro.sgd.kernels.sgd_block_minibatch` sweeps per
    mini-batch candidate over geometric data prefixes; a linear CPU cost
    model is fitted on all but the largest prefix and judged on the
    largest.  Also times the (bitwise-identical) ``minibatch`` vs
    ``minibatch_local`` kernels to pin the faster one.
``backend``
    Small end-to-end :func:`~repro.core.factorize` runs per execution
    backend and worker count.  The "prediction" is the naive linear
    scaling ``t_1 / workers`` — deliberately report-only (``gated:
    false``): its misprediction on GIL-bound threads is the Table II
    story this repo reproduces, not a regression.
``serve_chunk``
    :func:`~repro.serve.bench.measure_chunked` over growing user pools
    per ``(batch_size, chunk_items)`` candidate; linear fit on the small
    pools, judged on the largest.
``foldin``
    :meth:`~repro.sgd.model.FactorModel.fold_in_users` over growing
    rating batches per Gram-chunk candidate (scoped with
    :func:`~repro.tune.profile.use_profile` so the solver actually uses
    the candidate), same fit-and-holdout scheme.

**Resolution rule** (the acceptance guarantee): every section picks the
candidate with the lowest *predicted* full-size time, then falls back to
the hand-picked default if the default *measured* faster — so a profile
can never resolve a knob to something measured slower than the default
it replaces.  ``BENCH_tune.json`` records this per section under
``acceptance`` and CI blocks on ``acceptance.met``.

Every probe is sized to finish in seconds (CI runs ``--quick`` on a
shared 2-core runner); the point is fitting *shapes*, not saturating
hardware.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import DEFAULT_BATCH_SIZE, HardwareConfig, TrainingConfig
from ..costmodel import (
    CPUCostModel,
    calibrate_platform,
    fit_linear,
    geometric_prefix_sizes,
    probe_cpu_kernel,
    probe_gpu_kernel,
    solve_alpha,
)
from ..datasets import SyntheticConfig, generate_synthetic_matrix
from ..hardware import (
    HeterogeneousPlatform,
    machine_fingerprint,
    paper_machine_preset,
    usable_cores,
)
from ..serve.bench import measure_chunked, synthetic_model
from ..serve.scorer import DEFAULT_CHUNK_ITEMS
from ..serve.service import DEFAULT_SERVICE_BATCH
from ..sgd.foldin import _GRAM_CHUNK_ELEMENTS
from ..sgd.kernels import sgd_block_minibatch, sgd_block_minibatch_local
from .profile import (
    PROFILE_SCHEMA_VERSION,
    ServingTunables,
    StreamTunables,
    TrainingTunables,
    TunedProfile,
    use_profile,
)

#: Default fold-in newcomer-batch size (mirrors the ingestion layer's
#: hand-picked coalescing target).
DEFAULT_FOLDIN_BATCH_USERS = 512

#: Per-section mean-relative-error budgets written into the payload and
#: enforced by ``check_perf_regression.py``.  The ``costmodel`` section
#: runs against simulated devices (noise is a preset constant), so its
#: budget is tight; the wall-clock sections run on whatever noisy shared
#: runner CI landed on, so theirs are deliberately loose — they catch
#: "the model is nonsense", not "the runner was busy".
ERROR_BUDGETS = {
    "costmodel": 0.35,
    "train_batch": 0.75,
    "serve_chunk": 0.75,
    "foldin": 0.75,
}

#: Sections whose predict_error CI blocks on; ``backend`` is report-only.
GATED_SECTIONS = tuple(sorted(ERROR_BUDGETS))


@dataclass(frozen=True)
class TuneOutcome:
    """Everything ``repro tune`` produces.

    Attributes
    ----------
    profile:
        The resolved :class:`TunedProfile`, ready to ``dump()``.
    payload:
        The ``BENCH_tune.json`` document: per-section probe records
        (predicted vs measured per configuration), the resolved and
        default knob values, and the acceptance verdict.
    """

    profile: TunedProfile
    payload: Dict[str, Any]


def _relative_error(predicted: float, measured: float) -> float:
    return abs(predicted - measured) / max(measured, 1e-12)


def _best_of(fn: Callable[[], float], repeats: int) -> float:
    """Best-of-``repeats`` timing — the standard noise floor estimator."""
    return min(fn() for _ in range(max(1, repeats)))


def _probe_record(
    config: Dict[str, Any], predicted_s: float, measured_s: float
) -> Dict[str, Any]:
    return {
        "config": config,
        "predicted_s": float(predicted_s),
        "measured_s": float(measured_s),
        "predict_error": _relative_error(predicted_s, measured_s),
    }


def _section(
    name: str, probes: List[Dict[str, Any]], gated: bool
) -> Dict[str, Any]:
    errors = [p["predict_error"] for p in probes if p["predicted_s"] > 0]
    return {
        "gated": gated,
        "error_budget": ERROR_BUDGETS.get(name),
        "predict_error": float(np.mean(errors)) if errors else 0.0,
        "probes": probes,
    }


def _synthetic_matrix(n_rows: int, n_cols: int, n_ratings: int, seed: int):
    matrix, _, _ = generate_synthetic_matrix(
        SyntheticConfig(
            n_rows=n_rows, n_cols=n_cols, n_ratings=n_ratings, rank=8, seed=seed
        )
    )
    return matrix


# --------------------------------------------------------------------------- #
# Section 1: the Section V cost models on the simulated platform
# --------------------------------------------------------------------------- #
def probe_cost_models(
    quick: bool, seed: int
) -> Tuple[Dict[str, Any], Optional[float]]:
    """Calibrate the paper's cost models and validate them out-of-sample.

    Returns the section report and the calibrated workload split
    ``alpha`` (Equations 7-8) for the profile's informational field.
    """
    n_ratings = 20_000 if quick else 60_000
    matrix = _synthetic_matrix(800, 600, n_ratings, seed)
    training = TrainingConfig()
    platform = HeterogeneousPlatform.from_preset(
        HardwareConfig(cpu_threads=2, gpu_count=1),
        preset=paper_machine_preset(measurement_noise=0.02),
    )
    result = calibrate_platform(
        platform,
        matrix,
        training=training,
        segments=6 if quick else 10,
        repeats=2,
    )
    # Out-of-sample ladder: a *different* geometric ladder (offset
    # segment count) re-measured fresh, so the noise draws differ from
    # the fitting set even where sizes coincide.
    shuffled = matrix.shuffled(seed=seed + 1)
    holdout_sizes = geometric_prefix_sizes(shuffled.nnz, 5, minimum=512)
    holdout = [shuffled.prefix(size) for size in holdout_sizes]
    cpu_measredo = probe_cpu_kernel(platform, holdout, training.latent_factors, 2)
    gpu_measredo = probe_gpu_kernel(platform, holdout, training.latent_factors, 2)

    probes = []
    for probe in cpu_measredo:
        probes.append(
            _probe_record(
                {"device": "cpu", "points": probe.points},
                result.cpu_time_for_points(probe.points),
                probe.seconds,
            )
        )
    for probe in gpu_measredo:
        probes.append(
            _probe_record(
                {"device": "gpu_kernel", "points": probe.points},
                result.gpu_model.kernel.time_for_points(probe.points),
                probe.seconds,
            )
        )
    split = solve_alpha(
        result.gpu_time_for_points,
        result.cpu_time_for_points,
        matrix.nnz,
        platform.n_gpus,
        platform.n_cpu_threads,
    )
    return _section("costmodel", probes, gated=True), float(split.alpha)


# --------------------------------------------------------------------------- #
# Section 2: training mini-batch size and kernel
# --------------------------------------------------------------------------- #
def probe_train_kernel(
    quick: bool, seed: int
) -> Tuple[Dict[str, Any], int, str, Dict[str, float]]:
    """Sweep mini-batch candidates over geometric prefixes; pin the kernel.

    Returns ``(section, batch_size, kernel, acceptance)`` where
    ``acceptance`` carries the full-size default vs resolved times.
    """
    n_ratings = 20_000 if quick else 60_000
    matrix = _synthetic_matrix(1_500, 800, n_ratings, seed + 10)
    rng = np.random.default_rng(seed)
    m, n = matrix.shape
    k = 16
    p0 = rng.standard_normal((m, k)) * 0.1
    q0 = rng.standard_normal((k, n)) * 0.1
    candidates = (128, 256, 512) if quick else (64, 128, 256, 512, 1024)
    assert DEFAULT_BATCH_SIZE in candidates
    sizes = geometric_prefix_sizes(matrix.nnz, 4 if quick else 5, minimum=2_000)
    repeats = 2 if quick else 3

    def sweep_seconds(batch: int, points: int) -> float:
        rows = matrix.rows[:points]
        cols = matrix.cols[:points]
        vals = matrix.vals[:points]

        def one() -> float:
            p, q = p0.copy(), q0.copy()
            start = time.perf_counter()
            sgd_block_minibatch(
                p, q, rows, cols, vals, 0.005, 0.02, 0.02, batch_size=batch
            )
            return time.perf_counter() - start

        return _best_of(one, repeats)

    probes = []
    full_measured: Dict[int, float] = {}
    predicted_full: Dict[int, float] = {}
    for batch in candidates:
        times = [sweep_seconds(batch, size) for size in sizes]
        model = CPUCostModel.fit(sizes[:-1], times[:-1])
        predicted = model.time_for_points(sizes[-1])
        probes.append(
            _probe_record({"batch_size": batch, "points": sizes[-1]},
                          predicted, times[-1])
        )
        full_measured[batch] = times[-1]
        predicted_full[batch] = predicted

    chosen = min(candidates, key=lambda b: predicted_full[b])
    # The acceptance rule: never ship a knob measured slower than the
    # hand-picked default it replaces.
    if full_measured[DEFAULT_BATCH_SIZE] < full_measured[chosen]:
        chosen = DEFAULT_BATCH_SIZE

    # Kernel pin: the mini-batch pair is bitwise-identical, so timing is
    # the only thing at stake.  No prediction — report the measurement.
    rows, cols, vals = matrix.rows, matrix.cols, matrix.vals
    kernel_times = {}

    def time_kernel(fn, *args, **kwargs) -> float:
        def one() -> float:
            p, q = p0.copy(), q0.copy()
            start = time.perf_counter()
            fn(p, q, *args, batch_size=chosen, **kwargs)
            return time.perf_counter() - start

        return _best_of(one, repeats)

    kernel_times["minibatch"] = time_kernel(
        sgd_block_minibatch, rows, cols, vals, 0.005, 0.02, 0.02
    )
    kernel_times["minibatch_local"] = time_kernel(
        sgd_block_minibatch_local,
        rows,
        cols,
        vals,
        0.005,
        0.02,
        0.02,
        row_range=(0, m),
        col_range=(0, n),
    )
    kernel = min(kernel_times, key=kernel_times.get)
    for name, seconds in sorted(kernel_times.items()):
        probes.append(
            {
                "config": {"kernel": name, "points": matrix.nnz},
                "predicted_s": 0.0,
                "measured_s": float(seconds),
                "predict_error": 0.0,
            }
        )
    acceptance = {
        "default_s": full_measured[DEFAULT_BATCH_SIZE],
        "resolved_s": full_measured[chosen],
    }
    return _section("train_batch", probes, gated=True), chosen, kernel, acceptance


# --------------------------------------------------------------------------- #
# Section 3: execution backend and worker count
# --------------------------------------------------------------------------- #
def probe_backend(
    quick: bool, seed: int
) -> Tuple[Dict[str, Any], str, int, Dict[str, float]]:
    """Time small end-to-end training runs per backend/worker candidate.

    Report-only prediction (linear ``t_1 / workers`` scaling): the gap
    between that line and the measured GIL-bound threads time is a
    *finding* of the paper, so it must never fail CI.  Resolution is by
    measurement alone.
    """
    from ..core.trainer import factorize
    from ..exec.process import process_backend_supported

    n_ratings = 8_000 if quick else 24_000
    matrix = _synthetic_matrix(600, 400, n_ratings, seed + 20)
    cores = usable_cores()

    def run(backend: str, workers: int) -> float:
        start = time.perf_counter()
        factorize(
            matrix,
            algorithm="hsgd",
            hardware=HardwareConfig(cpu_threads=workers, gpu_count=0),
            iterations=2,
            backend=backend,
            seed=seed,
        )
        return time.perf_counter() - start

    candidates: List[Tuple[str, int]] = [("threads", 1)]
    if cores > 1:
        candidates.append(("threads", cores))
        if process_backend_supported():
            candidates.append(("processes", cores))

    measured: Dict[Tuple[str, int], float] = {}
    for backend, workers in candidates:
        measured[(backend, workers)] = run(backend, workers)
    t1 = measured[("threads", 1)]

    probes = [
        _probe_record(
            {"backend": backend, "workers": workers},
            t1 / workers,
            seconds,
        )
        for (backend, workers), seconds in measured.items()
    ]
    resolved_backend, resolved_workers = min(candidates, key=lambda c: measured[c])
    # What the no-profile "auto" heuristic would have picked on this
    # machine — the acceptance baseline.
    if cores > 1 and process_backend_supported():
        heuristic = ("processes", cores)
    elif cores > 1:
        heuristic = ("threads", cores)
    else:
        heuristic = ("threads", 1)
    acceptance = {
        "default_s": measured[heuristic],
        "resolved_s": measured[(resolved_backend, resolved_workers)],
    }
    return (
        _section("backend", probes, gated=False),
        resolved_backend,
        resolved_workers,
        acceptance,
    )


# --------------------------------------------------------------------------- #
# Section 4: serving chunk-GEMM tile and coalescing batch
# --------------------------------------------------------------------------- #
def probe_serve_chunk(
    quick: bool, seed: int
) -> Tuple[Dict[str, Any], int, int, Dict[str, float]]:
    """Sweep ``(batch_size, chunk_items)`` over growing user pools."""
    if quick:
        model = synthetic_model(1_500, 6_000, 16, seed=seed)
        pools = (64, 128, 256)
        candidates = [(64, 2_048), (64, 8_192), (64, 32_768)]
    else:
        model = synthetic_model(3_000, 12_000, 32, seed=seed)
        pools = (128, 256, 512, 1_024)
        candidates = [
            (32, 8_192),
            (64, 2_048),
            (64, 8_192),
            (64, 32_768),
            (128, 8_192),
        ]
    default = (DEFAULT_SERVICE_BATCH, DEFAULT_CHUNK_ITEMS)
    assert default in candidates
    rng = np.random.default_rng(seed)
    users = rng.integers(0, model.shape[0], size=max(pools), dtype=np.int64)
    repeats = 2

    probes = []
    full_measured: Dict[Tuple[int, int], float] = {}
    predicted_full: Dict[Tuple[int, int], float] = {}
    for batch, chunk in candidates:
        times = [
            _best_of(
                lambda size=size: measure_chunked(
                    model, users[:size], 10, batch, chunk
                ).seconds,
                repeats,
            )
            for size in pools
        ]
        line = fit_linear(pools[:-1], times[:-1])
        predicted = float(line(pools[-1]))
        probes.append(
            _probe_record(
                {"batch_size": batch, "chunk_items": chunk, "users": pools[-1]},
                predicted,
                times[-1],
            )
        )
        full_measured[(batch, chunk)] = times[-1]
        predicted_full[(batch, chunk)] = predicted

    chosen = min(candidates, key=lambda c: predicted_full[c])
    if full_measured[default] < full_measured[chosen]:
        chosen = default
    acceptance = {
        "default_s": full_measured[default],
        "resolved_s": full_measured[chosen],
    }
    return _section("serve_chunk", probes, gated=True), chosen[0], chosen[1], acceptance


# --------------------------------------------------------------------------- #
# Section 5: streaming fold-in chunk sizes
# --------------------------------------------------------------------------- #
def probe_foldin(
    quick: bool, seed: int
) -> Tuple[Dict[str, Any], int, int, Dict[str, float]]:
    """Sweep the fold-in Gram-chunk ceiling over growing rating batches."""
    model = synthetic_model(
        1_000, 2_000 if quick else 4_000, 16 if quick else 32, seed=seed
    )
    n_items = model.shape[1]
    rng = np.random.default_rng(seed)
    batches = (1_000, 2_000, 4_000) if quick else (2_000, 4_000, 8_000, 16_000)
    ratings_per_user = 20
    total = max(batches)
    user_ids = np.repeat(
        np.arange(total // ratings_per_user + 1, dtype=np.int64), ratings_per_user
    )[:total]
    items = rng.integers(0, n_items, size=total, dtype=np.int64)
    vals = rng.uniform(1.0, 5.0, size=total)
    candidates = (
        (500_000, _GRAM_CHUNK_ELEMENTS, 8_000_000)
        if quick
        else (250_000, 1_000_000, _GRAM_CHUNK_ELEMENTS, 8_000_000)
    )
    assert _GRAM_CHUNK_ELEMENTS in candidates
    repeats = 2

    def fold_seconds(gram: int, size: int) -> float:
        override = TunedProfile(stream=StreamTunables(gram_chunk_elements=gram))

        def one() -> float:
            with use_profile(override):
                start = time.perf_counter()
                model.fold_in_users(user_ids[:size], items[:size], vals[:size])
                return time.perf_counter() - start

        return _best_of(one, repeats)

    probes = []
    full_measured: Dict[int, float] = {}
    predicted_full: Dict[int, float] = {}
    for gram in candidates:
        times = [fold_seconds(gram, size) for size in batches]
        line = fit_linear(batches[:-1], times[:-1])
        predicted = float(line(batches[-1]))
        probes.append(
            _probe_record(
                {"gram_chunk_elements": gram, "ratings": batches[-1]},
                predicted,
                times[-1],
            )
        )
        full_measured[gram] = times[-1]
        predicted_full[gram] = predicted

    chosen = min(candidates, key=lambda g: predicted_full[g])
    if full_measured[_GRAM_CHUNK_ELEMENTS] < full_measured[chosen]:
        chosen = _GRAM_CHUNK_ELEMENTS

    # Newcomer-batch target: the measured throughput (users/s) under the
    # chosen Gram chunk peaks at some batch size; coalescing to roughly
    # that many distinct users per fold-in keeps the solver in its best
    # regime.  Falls back to the hand-picked default when flat.
    chosen_times = [fold_seconds(chosen, size) for size in batches]
    per_user = [
        size / ratings_per_user / max(seconds, 1e-12)
        for size, seconds in zip(batches, chosen_times)
    ]
    best_batch = batches[int(np.argmax(per_user))] // ratings_per_user
    foldin_batch_users = (
        best_batch if best_batch > 0 else DEFAULT_FOLDIN_BATCH_USERS
    )
    acceptance = {
        "default_s": full_measured[_GRAM_CHUNK_ELEMENTS],
        "resolved_s": full_measured[chosen],
    }
    return _section("foldin", probes, gated=True), chosen, foldin_batch_users, acceptance


# --------------------------------------------------------------------------- #
# The full tune run
# --------------------------------------------------------------------------- #
def _default_knobs() -> Dict[str, Any]:
    """The hand-picked values every knob falls back to without a profile."""
    return {
        "training": {
            "backend": "threads",
            "workers": 1,
            "batch_size": DEFAULT_BATCH_SIZE,
            "kernel": "minibatch_local",
        },
        "serving": {
            "chunk_items": DEFAULT_CHUNK_ITEMS,
            "batch_size": DEFAULT_SERVICE_BATCH,
        },
        "stream": {
            "gram_chunk_elements": _GRAM_CHUNK_ELEMENTS,
            "foldin_batch_users": DEFAULT_FOLDIN_BATCH_USERS,
        },
    }


def run_tune(
    quick: bool = False,
    seed: int = 0,
    created_unix: Optional[float] = None,
    sections: Optional[Sequence[str]] = None,
) -> TuneOutcome:
    """Run every calibration probe and resolve the tuned profile.

    Parameters
    ----------
    quick:
        Shrink every workload and candidate grid (CI's 2-core budget).
    seed:
        Seed of the synthetic workloads.
    created_unix:
        Wall-clock stamp recorded in the profile (callers pass
        ``time.time()``; default ``None`` keeps the run reproducible).
    sections:
        Optional subset of section names to run (tests probe one section
        at a time); omitted sections keep their default knobs.

    Returns
    -------
    TuneOutcome
        The resolved profile plus the ``BENCH_tune.json`` payload.
    """
    wanted = set(sections) if sections is not None else None

    def enabled(name: str) -> bool:
        return wanted is None or name in wanted

    report: Dict[str, Any] = {}
    knobs = _default_knobs()
    acceptance_sections: Dict[str, Dict[str, float]] = {}
    alpha: Optional[float] = None

    if enabled("costmodel"):
        report["costmodel"], alpha = probe_cost_models(quick, seed)
    if enabled("train_batch"):
        section, batch, kernel, acc = probe_train_kernel(quick, seed)
        report["train_batch"] = section
        knobs["training"]["batch_size"] = batch
        knobs["training"]["kernel"] = kernel
        acceptance_sections["train_batch"] = acc
    if enabled("backend"):
        section, backend, workers, acc = probe_backend(quick, seed)
        report["backend"] = section
        knobs["training"]["backend"] = backend
        knobs["training"]["workers"] = workers
        acceptance_sections["backend"] = acc
    if enabled("serve_chunk"):
        section, batch, chunk, acc = probe_serve_chunk(quick, seed)
        report["serve_chunk"] = section
        knobs["serving"]["batch_size"] = batch
        knobs["serving"]["chunk_items"] = chunk
        acceptance_sections["serve_chunk"] = acc
    if enabled("foldin"):
        section, gram, batch_users, acc = probe_foldin(quick, seed)
        report["foldin"] = section
        knobs["stream"]["gram_chunk_elements"] = gram
        knobs["stream"]["foldin_batch_users"] = batch_users
        acceptance_sections["foldin"] = acc

    for name, acc in acceptance_sections.items():
        acc["ok"] = acc["resolved_s"] <= acc["default_s"] * (1.0 + 1e-9)
    met = all(acc["ok"] for acc in acceptance_sections.values())

    profile = TunedProfile(
        fingerprint=machine_fingerprint(),
        quick=quick,
        created_unix=created_unix,
        training=TrainingTunables(**knobs["training"]),
        serving=ServingTunables(**knobs["serving"]),
        stream=StreamTunables(**knobs["stream"]),
        predict_error={
            name: section["predict_error"] for name, section in report.items()
        },
        alpha=alpha,
    )
    payload = {
        "schema_version": PROFILE_SCHEMA_VERSION,
        "quick": quick,
        "hardware": {
            "usable_cores": usable_cores(),
            "fingerprint": machine_fingerprint(),
        },
        "tune": {
            "sections": report,
            "resolved": {
                "training": knobs["training"],
                "serving": knobs["serving"],
                "stream": knobs["stream"],
            },
            "defaults": _default_knobs(),
            "acceptance": {"sections": acceptance_sections, "met": met},
        },
    }
    return TuneOutcome(profile=profile, payload=payload)
