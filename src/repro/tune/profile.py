"""The tuned profile: every ``"auto"`` tunable's on-machine answer.

``repro tune`` (see :mod:`repro.tune.probes`) fits the Section V cost
models against short on-machine probes and writes the resolved
configuration into a :class:`TunedProfile` — a small, versioned,
JSON-serializable record fingerprinted to the machine it was calibrated
on.  Loading a profile (``TunedProfile.load`` +
:func:`set_active_profile`, or ``--profile`` on the CLI) makes every
``"auto"`` tunable in the library resolve through it:

==========================  =========================================
tunable                      resolution point
==========================  =========================================
training ``backend``         :func:`repro.exec.registry.resolve_backend_name`
training ``workers``         :func:`resolve_workers` (CLI ``--workers auto``)
training ``batch_size``      :attr:`repro.config.TrainingConfig.effective_batch_size`
training ``kernel``          :func:`repro.sgd.kernels.resolve_kernel_name`
serving ``chunk_items``      :class:`repro.serve.Scorer` / ``RecommendationService`` / ``ServiceConfig``
serving ``batch_size``       :class:`repro.serve.RecommendationService` / ``ServiceConfig``
stream gram chunk            :func:`repro.sgd.foldin.solve_fold_in`
==========================  =========================================

**The no-profile fallback is the documented hand-picked default** in
every case (``DEFAULT_BATCH_SIZE``, ``DEFAULT_CHUNK_ITEMS``, the
``workers > 1`` backend heuristic, the fold-in gram-chunk constant), so
code that never loads a profile behaves bitwise-identically to the
pre-autotuning library — pinned by ``tests/test_tune.py``.

The profile is process-global state (one machine, one profile), set
with :func:`set_active_profile` and scoped in tests with
:func:`use_profile`.  Every resolver also accepts an explicit
``profile=`` argument: passing ``None`` forces the no-profile path
regardless of global state.
"""

from __future__ import annotations

import dataclasses
import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional, Union

from ..config import AUTO_TUNABLE, DEFAULT_BATCH_SIZE, KERNEL_NAMES
from ..exceptions import ConfigurationError

#: Version of the on-disk profile schema.  Bump on incompatible change;
#: ``TunedProfile.from_dict`` rejects mismatches rather than guessing.
PROFILE_SCHEMA_VERSION = 1

#: The sentinel every autotunable knob accepts (re-exported from
#: :mod:`repro.config`, the import-cycle-free home).
AUTO = AUTO_TUNABLE

#: Kernels a profile may pin for ``kernel="auto"``: only the mini-batch
#: pair, which are bitwise-identical to each other — so a profile can
#: change training *speed* but never training *results*.  The
#: ``"sequential"`` reference kernel is a numerical contract, not a
#: performance choice, and stays reachable only by explicit request.
_CONCRETE_KERNELS = tuple(
    name for name in KERNEL_NAMES if name not in (AUTO, "sequential")
)


def _require_positive_int(value: Any, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    return value


@dataclass(frozen=True)
class TrainingTunables:
    """Resolved training-side knobs.

    Defaults mirror the library's hand-picked values so a
    default-constructed profile is behaviour-neutral.
    """

    backend: str = "threads"
    workers: int = 1
    batch_size: int = DEFAULT_BATCH_SIZE
    kernel: str = "minibatch_local"

    def __post_init__(self) -> None:
        if not self.backend or not isinstance(self.backend, str) or self.backend == AUTO:
            raise ConfigurationError(
                f"profile backend must be a concrete backend name, got {self.backend!r}"
            )
        _require_positive_int(self.workers, "profile workers")
        _require_positive_int(self.batch_size, "profile batch_size")
        if self.kernel not in _CONCRETE_KERNELS:
            raise ConfigurationError(
                f"profile kernel must be one of {_CONCRETE_KERNELS}, got {self.kernel!r}"
            )


@dataclass(frozen=True)
class ServingTunables:
    """Resolved serving-side knobs (chunk-GEMM tile and coalescing batch)."""

    chunk_items: int = 8192
    batch_size: int = 64

    def __post_init__(self) -> None:
        _require_positive_int(self.chunk_items, "profile chunk_items")
        _require_positive_int(self.batch_size, "profile serving batch_size")


@dataclass(frozen=True)
class StreamTunables:
    """Resolved streaming-side knobs (fold-in solver shapes)."""

    gram_chunk_elements: int = 2_000_000
    foldin_batch_users: int = 512

    def __post_init__(self) -> None:
        _require_positive_int(self.gram_chunk_elements, "profile gram_chunk_elements")
        _require_positive_int(self.foldin_batch_users, "profile foldin_batch_users")


@dataclass(frozen=True)
class TunedProfile:
    """One machine's calibrated answer to every ``"auto"`` tunable.

    Attributes
    ----------
    schema_version:
        On-disk format version (:data:`PROFILE_SCHEMA_VERSION`).
    fingerprint:
        :func:`repro.hardware.machine_fingerprint` of the calibrating
        host; consumers compare with
        :func:`repro.hardware.fingerprint_matches`.
    quick:
        Whether the profile came from the reduced ``--quick`` probe set.
    created_unix:
        Calibration wall-clock time (unix seconds), ``None`` for
        hand-built profiles.
    training, serving, stream:
        The resolved knobs per subsystem.
    predict_error:
        Per-probe-section mean relative prediction error of the fitted
        cost models (``|predicted - measured| / measured``), the
        self-validation signal ``BENCH_tune.json`` gates in CI.
    alpha:
        The calibrated GPU workload share from the simulated-platform
        calibration (informational; CPU-only hosts train at alpha 0).
    """

    schema_version: int = PROFILE_SCHEMA_VERSION
    fingerprint: Dict[str, Any] = field(default_factory=dict)
    quick: bool = False
    created_unix: Optional[float] = None
    training: TrainingTunables = field(default_factory=TrainingTunables)
    serving: ServingTunables = field(default_factory=ServingTunables)
    stream: StreamTunables = field(default_factory=StreamTunables)
    predict_error: Dict[str, float] = field(default_factory=dict)
    alpha: Optional[float] = None

    def __post_init__(self) -> None:
        if self.schema_version != PROFILE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported profile schema version {self.schema_version!r} "
                f"(this library reads version {PROFILE_SCHEMA_VERSION})"
            )

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def resolve_backend(
        self, n_workers: Optional[int] = None, use_block_store: bool = True
    ) -> str:
        """The backend this profile picks for a run of ``n_workers``.

        The profile's choice is still sanity-bounded by the same
        platform facts the no-profile heuristic checks: ``"processes"``
        demotes to ``"threads"`` for single-worker runs, for the legacy
        gather path (``use_block_store=False``, which only threads
        implement), and on platforms without shared-memory
        multiprocessing — so a profile calibrated on a big machine still
        resolves to a *legal* configuration on a 1-core container.
        """
        choice = self.training.backend
        if choice != "processes":
            return choice
        workers = n_workers if n_workers is not None else self.training.workers
        from ..exec.process import process_backend_supported

        if workers > 1 and use_block_store and process_backend_supported():
            return "processes"
        return "threads"

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (round-trips through ``from_dict``)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TunedProfile":
        """Rebuild a profile from :meth:`to_dict` output, validating it."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"profile payload must be a JSON object, got {type(payload).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"profile carries unknown fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        data = dict(payload)
        try:
            if "training" in data:
                data["training"] = TrainingTunables(**data["training"])
            if "serving" in data:
                data["serving"] = ServingTunables(**data["serving"])
            if "stream" in data:
                data["stream"] = StreamTunables(**data["stream"])
            return cls(**data)
        except TypeError as exc:
            raise ConfigurationError(f"malformed profile: {exc}") from None

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def loads(cls, text: str) -> "TunedProfile":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"profile is not valid JSON: {exc}") from None
        return cls.from_dict(payload)

    def dump(self, path) -> None:
        """Write the profile as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(self.dumps())

    @classmethod
    def load(cls, path) -> "TunedProfile":
        """Read a profile written by :meth:`dump`."""
        with open(path, encoding="utf-8") as stream:
            return cls.loads(stream.read())


# ------------------------------------------------------------------ #
# The active profile (process-global)
# ------------------------------------------------------------------ #
_ACTIVE_PROFILE: Optional[TunedProfile] = None

#: Sentinel distinguishing "caller did not pass a profile — consult the
#: active one" from an explicit ``profile=None`` ("force the no-profile
#: fallback").
_UNSET = object()


def set_active_profile(profile: Optional[TunedProfile]) -> None:
    """Install ``profile`` as the process-wide default (``None`` clears)."""
    global _ACTIVE_PROFILE
    if profile is not None and not isinstance(profile, TunedProfile):
        raise ConfigurationError(
            f"expected a TunedProfile or None, got {type(profile).__name__}"
        )
    _ACTIVE_PROFILE = profile


def active_profile() -> Optional[TunedProfile]:
    """The currently installed profile, or ``None``."""
    return _ACTIVE_PROFILE


@contextmanager
def use_profile(profile: Optional[TunedProfile]) -> Iterator[Optional[TunedProfile]]:
    """Scope ``profile`` as the active one, restoring the previous on exit."""
    previous = _ACTIVE_PROFILE
    set_active_profile(profile)
    try:
        yield profile
    finally:
        set_active_profile(previous)


def _effective(profile) -> Optional[TunedProfile]:
    return _ACTIVE_PROFILE if profile is _UNSET else profile


def _resolve_auto_int(
    value: Union[int, str, None],
    name: str,
    default: int,
    picker: Callable[[TunedProfile], int],
    profile,
) -> int:
    """Shared ``"auto"``-knob resolution: profile value or documented default."""
    if isinstance(value, str):
        if value != AUTO:
            raise ConfigurationError(
                f"{name} must be a positive integer or {AUTO!r}, got {value!r}"
            )
        resolved = _effective(profile)
        if resolved is not None:
            return picker(resolved)
        return default
    if value is None:
        return default
    return int(value)


# ------------------------------------------------------------------ #
# Per-knob resolvers (the library's "auto" plumbing calls these)
# ------------------------------------------------------------------ #
def resolve_training_batch_size(
    value: Union[int, str, None], profile=_UNSET
) -> int:
    """``"auto"``/``None`` -> profile (or :data:`DEFAULT_BATCH_SIZE`); ints pass."""
    return _resolve_auto_int(
        value,
        "batch_size",
        DEFAULT_BATCH_SIZE,
        lambda p: p.training.batch_size,
        profile,
    )


def resolve_workers(
    value: Union[int, str, None], default: int, profile=_UNSET
) -> int:
    """``"auto"`` -> the profile's worker count (or ``default``); ints pass."""
    return _resolve_auto_int(
        value, "workers", default, lambda p: p.training.workers, profile
    )


def resolve_serving_chunk_items(
    value: Union[int, str], default: int, profile=_UNSET
) -> int:
    """``"auto"`` -> the profile's chunk-GEMM tile (or ``default``); ints pass."""
    return _resolve_auto_int(
        value, "chunk_items", default, lambda p: p.serving.chunk_items, profile
    )


def resolve_serving_batch_size(
    value: Union[int, str], default: int, profile=_UNSET
) -> int:
    """``"auto"`` -> the profile's coalescing batch (or ``default``); ints pass."""
    return _resolve_auto_int(
        value, "batch_size", default, lambda p: p.serving.batch_size, profile
    )


def resolve_foldin_gram_chunk(default: int, profile=_UNSET) -> int:
    """The fold-in solver's Gram-stack element ceiling.

    There is no ``"auto"`` literal here — the knob is a module constant,
    not a user argument — so the profile simply overrides the default
    when one is active and the default passes through untouched when not
    (the bitwise-pinned no-profile path).
    """
    resolved = _effective(profile)
    if resolved is not None:
        return resolved.stream.gram_chunk_elements
    return default


def resolve_foldin_batch_users(default: int, profile=_UNSET) -> int:
    """The newcomer-batch size ingestion should coalesce fold-ins to."""
    resolved = _effective(profile)
    if resolved is not None:
        return resolved.stream.foldin_batch_users
    return default


def profile_kernel(profile=_UNSET) -> Optional[str]:
    """The profile's concrete kernel for ``kernel="auto"``, else ``None``.

    ``None`` tells :func:`repro.sgd.kernels.resolve_kernel_name` to use
    its built-in default (``"minibatch_local"``) — the pinned no-profile
    behaviour.
    """
    resolved = _effective(profile)
    if resolved is not None:
        return resolved.training.kernel
    return None
