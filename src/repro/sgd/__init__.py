"""SGD-based matrix-factorization substrate.

Implements the numerical core of the paper (Section II):

* :class:`~repro.sgd.model.FactorModel` — the dense factor matrices
  ``P (m×k)`` and ``Q (k×n)`` with random initialisation, prediction and
  (de)serialisation;
* :mod:`repro.sgd.kernels` — the kernel registry: an exact per-rating
  reference kernel matching Algorithm 1, a vectorised mini-batch kernel
  over global indices, and the block-major ``minibatch_local`` kernel
  that consumes band-local pre-gathered data (bitwise-identical to the
  global mini-batch kernel, selected by ``TrainingConfig(kernel=...)``);
* :mod:`repro.sgd.losses` — the regularised squared loss of Equation 2,
  RMSE and MAE;
* :mod:`repro.sgd.schedules` — learning-rate schedules, including the
  per-iteration decay schedule of Chin et al. (reference [43]) that the
  paper adopts for its parameter settings;
* :mod:`repro.sgd.foldin` — least-squares fold-in for streaming
  newcomers (one vectorised ridge solve against the fixed opposite
  factor matrix) and :func:`~repro.sgd.foldin.grow_model` for
  warm-start over a grown matrix;
* :mod:`repro.sgd.serial` — Algorithm 1, the single-threaded reference;
* :mod:`repro.sgd.hogwild` — the lock-free Hogwild baseline;
* :mod:`repro.sgd.als` / :mod:`repro.sgd.ccd` — the non-SGD baselines
  (alternating least squares and cyclic coordinate descent) mentioned in
  Section III-C.
"""

from .model import FactorModel
from .foldin import fold_in_objective, grow_model, solve_fold_in
from .losses import (
    mae,
    pointwise_errors,
    regularized_loss,
    rmse,
    squared_error_sum,
)
from .kernels import (
    KERNEL_NAMES,
    KERNELS,
    get_kernel,
    resolve_kernel_name,
    sgd_block_minibatch,
    sgd_block_minibatch_local,
    sgd_block_sequential,
)
from .schedules import (
    ConstantSchedule,
    InverseTimeDecaySchedule,
    LearningRateSchedule,
    TwinLearnersSchedule,
)
from .serial import train_serial_sgd
from .hogwild import train_hogwild
from .als import train_als
from .ccd import train_ccd

__all__ = [
    "FactorModel",
    "fold_in_objective",
    "grow_model",
    "solve_fold_in",
    "mae",
    "pointwise_errors",
    "regularized_loss",
    "rmse",
    "squared_error_sum",
    "KERNEL_NAMES",
    "KERNELS",
    "get_kernel",
    "resolve_kernel_name",
    "sgd_block_minibatch",
    "sgd_block_minibatch_local",
    "sgd_block_sequential",
    "ConstantSchedule",
    "InverseTimeDecaySchedule",
    "LearningRateSchedule",
    "TwinLearnersSchedule",
    "train_serial_sgd",
    "train_hogwild",
    "train_als",
    "train_ccd",
]
