"""Learning-rate schedules.

The paper sets its hyper-parameters "following [43]" (Chin et al., *A
learning-rate schedule for stochastic gradient methods to matrix
factorization*, PAKDD 2015).  That work proposes a per-iteration decaying
step size; we provide it alongside the plain constant rate so experiments
can pick either.

All schedules are callables mapping the 0-based iteration number to the
step size used for that iteration.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..exceptions import ConfigurationError


class LearningRateSchedule(ABC):
    """Base class for learning-rate schedules."""

    @abstractmethod
    def rate(self, iteration: int) -> float:
        """Return the step size for the given 0-based iteration."""

    def __call__(self, iteration: int) -> float:
        if iteration < 0:
            raise ConfigurationError(
                f"iteration must be non-negative, got {iteration}"
            )
        return self.rate(iteration)


class ConstantSchedule(LearningRateSchedule):
    """A fixed learning rate, as in the plain SGD of Algorithm 1."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {learning_rate}"
            )
        self.learning_rate = float(learning_rate)

    def rate(self, iteration: int) -> float:
        return self.learning_rate

    def __repr__(self) -> str:
        return f"ConstantSchedule({self.learning_rate})"


class InverseTimeDecaySchedule(LearningRateSchedule):
    """Monotonically decaying schedule ``gamma_t = gamma_0 / (1 + beta * t)``.

    A standard robust decay; ``beta = 0`` reduces to a constant rate.
    """

    def __init__(self, learning_rate: float, decay: float = 0.05) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {learning_rate}"
            )
        if decay < 0:
            raise ConfigurationError(f"decay must be non-negative, got {decay}")
        self.learning_rate = float(learning_rate)
        self.decay = float(decay)

    def rate(self, iteration: int) -> float:
        return self.learning_rate / (1.0 + self.decay * iteration)

    def __repr__(self) -> str:
        return f"InverseTimeDecaySchedule({self.learning_rate}, decay={self.decay})"


class TwinLearnersSchedule(LearningRateSchedule):
    """The per-iteration schedule of Chin et al. (reference [43] of the paper).

    The schedule reduces the step size as

    .. math::

        \\gamma_t = \\frac{\\gamma_0\\,\\alpha}{\\alpha + \\beta\\, t^{1.5}}

    which decays slowly at first and faster later, matching the behaviour
    that made it the de-facto default in LIBMF.  Defaults follow the
    reference implementation's suggested constants.
    """

    def __init__(
        self,
        learning_rate: float,
        alpha: float = 1.0,
        beta: float = 0.05,
    ) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {learning_rate}"
            )
        if alpha <= 0 or beta < 0:
            raise ConfigurationError(
                f"alpha must be positive and beta non-negative, got "
                f"alpha={alpha}, beta={beta}"
            )
        self.learning_rate = float(learning_rate)
        self.alpha = float(alpha)
        self.beta = float(beta)

    def rate(self, iteration: int) -> float:
        return (
            self.learning_rate
            * self.alpha
            / (self.alpha + self.beta * iteration ** 1.5)
        )

    def __repr__(self) -> str:
        return (
            f"TwinLearnersSchedule({self.learning_rate}, "
            f"alpha={self.alpha}, beta={self.beta})"
        )
