"""Dense factor model ``R ≈ P × Q``.

The model holds the two dense factor matrices of the paper:

* ``P`` of shape ``(m, k)`` — one latent row vector ``p_u`` per user;
* ``Q`` of shape ``(k, n)`` — one latent column vector ``q_v`` per item.

``P`` and ``Q`` are plain mutable numpy arrays because SGD workers update
them in place; the model object adds initialisation, prediction and
persistence around them.
"""

from __future__ import annotations

import json
import os
from typing import Optional, Tuple, Union

import numpy as np

from ..config import TrainingConfig
from ..exceptions import InvalidMatrixError
from ..sparse import SparseRatingMatrix

PathLike = Union[str, os.PathLike]


class FactorModel:
    """Container for the factor matrices ``P`` and ``Q``.

    Parameters
    ----------
    p:
        User factor matrix of shape ``(m, k)``.
    q:
        Item factor matrix of shape ``(k, n)``.

    Notes
    -----
    The constructor validates shapes and dtype but does **not** copy the
    arrays — workers mutate them in place during training.  The factory
    methods (:meth:`initialize`, :meth:`for_matrix`, :meth:`copy`,
    :meth:`load`) additionally store ``Q`` *item-major* (a C-contiguous
    ``(n, k)`` buffer exposed through the usual ``(k, n)`` transposed
    view): values are identical either way, but the contiguous transpose
    is what lets the block-major kernel take its flat scatter fast path.
    Directly constructed models with a plain ``(k, n)`` array still work
    everywhere — the kernel falls back to the 2-D scatter.
    """

    __slots__ = ("p", "q")

    def __init__(self, p: np.ndarray, q: np.ndarray) -> None:
        p = np.asarray(p, dtype=np.float64)
        q = np.asarray(q, dtype=np.float64)
        if p.ndim != 2 or q.ndim != 2:
            raise InvalidMatrixError("P and Q must be 2-D arrays")
        if p.shape[1] != q.shape[0]:
            raise InvalidMatrixError(
                f"inner dimensions of P {p.shape} and Q {q.shape} do not match"
            )
        self.p = p
        self.q = q

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def initialize(
        cls,
        n_rows: int,
        n_cols: int,
        latent_factors: int,
        seed: int = 0,
        scale: Optional[float] = None,
    ) -> "FactorModel":
        """Random-initialise a model for an ``n_rows × n_cols`` matrix.

        Factors are drawn uniformly from ``[0, scale)`` as in the data
        preprocessing phase of Algorithm 1 (``init_model``).  The default
        scale ``1/sqrt(k)`` keeps initial predictions of the order of 1.
        """
        if n_rows <= 0 or n_cols <= 0:
            raise InvalidMatrixError(
                f"matrix dimensions must be positive, got ({n_rows}, {n_cols})"
            )
        if latent_factors <= 0:
            raise InvalidMatrixError(
                f"latent_factors must be positive, got {latent_factors}"
            )
        if scale is None:
            scale = 1.0 / np.sqrt(latent_factors)
        rng = np.random.default_rng(seed)
        p = rng.uniform(0.0, scale, size=(n_rows, latent_factors))
        q = rng.uniform(0.0, scale, size=(latent_factors, n_cols))
        # Store Q item-major: the (k, n) interface array is a transposed
        # view of a C-contiguous (n, k) buffer.  Values (and hence every
        # numerical result) are identical; the layout gives the
        # block-major kernel contiguous per-item rows for its gathers and
        # its flat fast-path scatter (see sgd_block_minibatch_local).
        return cls(p, np.ascontiguousarray(q.T).T)

    @classmethod
    def for_matrix(
        cls, matrix: SparseRatingMatrix, config: TrainingConfig
    ) -> "FactorModel":
        """Initialise a model matching a rating matrix and training config."""
        return cls.initialize(
            matrix.n_rows,
            matrix.n_cols,
            config.latent_factors,
            seed=config.seed,
            scale=config.effective_init_scale,
        )

    @classmethod
    def over_buffers(cls, p: np.ndarray, q: np.ndarray) -> "FactorModel":
        """Construct a model over caller-owned buffers, adopting them as-is.

        The plain constructor already avoids copying, but silently falls
        back to a conversion copy for the wrong dtype or a non-array —
        fatal when the buffers are shared-memory segments that worker
        processes must see mutations of.  This factory *guarantees*
        adoption: it raises instead of copying.  ``q`` should be the
        usual ``(k, n)`` interface view of an item-major buffer (see the
        class notes); the values are the caller's responsibility.

        This is how the process execution backend
        (:mod:`repro.exec.process`) builds its models over
        ``multiprocessing.shared_memory`` arrays so that P and Q live in
        pages every worker maps.
        """
        for name, array in (("p", p), ("q", q)):
            if not isinstance(array, np.ndarray) or array.dtype != np.float64:
                raise InvalidMatrixError(
                    f"over_buffers requires float64 ndarray buffers; {name} "
                    f"is {type(array).__name__}"
                    + (f" of dtype {array.dtype}" if isinstance(array, np.ndarray) else "")
                )
        model = cls(p, q)
        if model.p is not p or model.q is not q:  # pragma: no cover - defensive
            raise InvalidMatrixError("constructor copied a provided buffer")
        return model

    def copy(self) -> "FactorModel":
        """Deep copy, used to snapshot models between experiment arms.

        The copy preserves (in fact establishes) the item-major layout of
        ``Q`` so snapshots keep the block-major kernel's fast path.
        """
        return FactorModel(self.p.copy(), self.q.T.copy().T)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int]:
        """Shape ``(m, n)`` of the reconstructed rating matrix."""
        return (self.p.shape[0], self.q.shape[1])

    @property
    def latent_factors(self) -> int:
        """The latent dimensionality ``k``."""
        return self.p.shape[1]

    def __repr__(self) -> str:
        return (
            f"FactorModel(m={self.p.shape[0]}, n={self.q.shape[1]}, "
            f"k={self.latent_factors})"
        )

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def _check_ids(self, ids: np.ndarray, count: int, kind: str) -> None:
        """Reject out-of-range ids (including negatives, which numpy's
        fancy indexing would silently wrap around)."""
        if ids.size and (ids.min() < 0 or ids.max() >= count):
            raise InvalidMatrixError(
                f"{kind} indices must lie in [0, {count}), got range "
                f"[{ids.min()}, {ids.max()}]"
            )

    def predict(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Predicted ratings ``p_u · q_v`` for parallel index arrays.

        Indices are validated against the model's shape — a negative or
        too-large id raises :class:`InvalidMatrixError` instead of
        silently wrapping around.  The result is always ``float64``, the
        dtype of the factor matrices.
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape:
            raise InvalidMatrixError(
                f"users and items must have equal shapes, got "
                f"{users.shape} and {items.shape}"
            )
        self._check_ids(users, self.p.shape[0], "user")
        self._check_ids(items, self.q.shape[1], "item")
        return np.einsum("ik,ki->i", self.p[users], self.q[:, items])

    def predict_single(self, user: int, item: int) -> float:
        """Predicted rating for one ``(user, item)`` pair."""
        self._check_ids(np.asarray([user]), self.p.shape[0], "user")
        self._check_ids(np.asarray([item]), self.q.shape[1], "item")
        return float(self.p[user] @ self.q[:, item])

    def predict_matrix(self, matrix: SparseRatingMatrix) -> np.ndarray:
        """Predictions for every explicit rating of ``matrix`` in storage order."""
        return self.predict(matrix.rows, matrix.cols)

    def full_reconstruction(self) -> np.ndarray:
        """Dense ``P × Q``; intended for tests and tiny examples only."""
        cells = self.p.shape[0] * self.q.shape[1]
        if cells > 10_000_000:
            raise InvalidMatrixError(
                f"refusing to materialise a reconstruction with {cells} cells"
            )
        return self.p @ self.q

    def top_items(self, user: int, count: int = 10) -> np.ndarray:
        """Indices of the ``count`` highest-scoring items for ``user``.

        This is the typical downstream use of an MF model in a recommender
        system (Figure 1 of the paper motivates MF with movie ratings).
        """
        scores = self.p[user] @ self.q
        count = min(count, scores.shape[0])
        top = np.argpartition(-scores, count - 1)[:count]
        return top[np.argsort(-scores[top])]

    # ------------------------------------------------------------------ #
    # Fold-in (streaming newcomers; see repro.sgd.foldin)
    # ------------------------------------------------------------------ #
    def fold_in_users(
        self,
        users: np.ndarray,
        items: np.ndarray,
        vals: np.ndarray,
        regularization: float = 0.05,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Solve factor rows for users against this model's fixed ``Q``.

        One regularised least-squares solve per distinct user, vectorised
        over the batch (see :func:`repro.sgd.foldin.solve_fold_in`).  The
        users need not exist in ``P`` — this is how brand-new users from
        a rating stream get factors without retraining.  The model is
        **not** mutated; callers place the rows into a grown ``P``
        (:func:`repro.sgd.foldin.grow_model` does this during
        warm-start).

        Parameters
        ----------
        users, items, vals:
            Parallel per-rating arrays.  ``items`` must index into this
            model's ``Q``.
        regularization:
            Weighted-lambda strength (per rating), matching
            ``TrainingConfig.reg_p``.

        Returns
        -------
        (unique_users, rows):
            The distinct user ids (sorted) and one solved ``k``-vector
            per id.
        """
        from .foldin import solve_fold_in

        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.size == 0:
            return users, np.empty((0, self.latent_factors))
        self._check_ids(items, self.q.shape[1], "item")
        unique_users, group_ids = np.unique(users, return_inverse=True)
        rows, _ = solve_fold_in(
            np.ascontiguousarray(self.q.T),
            group_ids,
            items,
            vals,
            len(unique_users),
            regularization,
        )
        return unique_users, rows

    def fold_in_items(
        self,
        users: np.ndarray,
        items: np.ndarray,
        vals: np.ndarray,
        regularization: float = 0.05,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Solve factor columns for items against this model's fixed ``P``.

        The item-side mirror of :meth:`fold_in_users`: ``users`` must
        index into ``P``; the returned rows are item-major ``k``-vectors
        (place row ``i`` as column ``unique_items[i]`` of a grown ``Q``).
        """
        from .foldin import solve_fold_in

        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if items.size == 0:
            return items, np.empty((0, self.latent_factors))
        self._check_ids(users, self.p.shape[0], "user")
        unique_items, group_ids = np.unique(items, return_inverse=True)
        rows, _ = solve_fold_in(
            self.p,
            group_ids,
            users,
            vals,
            len(unique_items),
            regularization,
        )
        return unique_items, rows

    # ------------------------------------------------------------------ #
    # Persistence (the "data post-processing phase" of Algorithm 1)
    # ------------------------------------------------------------------ #
    def save(self, path: PathLike) -> None:
        """Persist the model to ``<path>.npz`` plus a small JSON sidecar."""
        path = os.fspath(path)
        np.savez_compressed(path, p=self.p, q=self.q)
        meta = {
            "m": int(self.p.shape[0]),
            "n": int(self.q.shape[1]),
            "k": int(self.latent_factors),
        }
        with open(path + ".json", "w", encoding="utf-8") as handle:
            json.dump(meta, handle)

    @classmethod
    def load(cls, path: PathLike) -> "FactorModel":
        """Load a model previously written by :meth:`save`.

        ``Q`` is restored item-major so a checkpoint-resumed run keeps
        the block-major kernel's fast path (see the class notes).
        """
        path = os.fspath(path)
        npz_path = path if path.endswith(".npz") else path + ".npz"
        with np.load(npz_path) as data:
            return cls(data["p"], np.ascontiguousarray(data["q"].T).T)
