"""Per-block SGD update kernels and the kernel registry.

The paper's workers (CPU threads running the LIBMF kernel, GPUs running
the CuMF_SGD kernel) all perform the same numerical work on a block: for
each rating ``(u, v, r)`` in the block,

.. math::

    e_{uv} &= r_{uv} - p_u q_v \\\\
    p_u &\\leftarrow p_u + \\gamma (e_{uv} q_v^T - \\lambda_P p_u) \\\\
    q_v &\\leftarrow q_v + \\gamma (e_{uv} p_u^T - \\lambda_Q q_v)

(Equations 4-6 / Algorithm 1 lines 4-6).

Three kernels are provided, selectable by name through the registry
(:data:`KERNELS`, :func:`get_kernel`, :func:`resolve_kernel_name`):

* :func:`sgd_block_sequential` (``"sequential"``) — the exact per-rating
  loop.  This is the numerical reference and the kernel used by the unit
  tests; it is slow in pure Python, so the engines only use it on small
  blocks or when exactness is requested.
* :func:`sgd_block_minibatch` (``"minibatch"``) — a vectorised kernel
  that processes the block in mini-batches over *global* row/column
  indices: within one batch all errors are computed against the factor
  values at the start of the batch, gradients of ratings touching the
  same row/column are accumulated with ``np.add.at`` and applied
  together.  This is the standard mini-batch relaxation of SGD; the
  accepted substitution for the hand-tuned AVX/CUDA kernels of the paper
  (see DESIGN.md), preserving the update rule while making epoch times
  practical in numpy.
* :func:`sgd_block_minibatch_local` (``"minibatch_local"``) — the
  block-major production kernel.  It consumes *band-local* indices (as
  pre-gathered once per run by :class:`repro.sparse.BlockStore`) and
  scatters into band-slice views of ``P``/``Q``.  Every transformation
  relative to ``sgd_block_minibatch`` is bitwise-identity-preserving —
  same additions, same per-element order — so the two kernels produce
  byte-identical factors (pinned by ``tests/test_kernel_registry.py``)
  while the local kernel removes the dominant per-batch numpy overhead:

  - multiplicities come from ``np.bincount`` over the small band-local
    index space instead of two ``np.unique`` (sort) calls;
  - the duplicate-averaging division is skipped when a batch has no
    repeated entities (division by 1 is an exact no-op);
  - the ``np.add.at`` scatters run on the *flattened* contiguous band
    with element indices, hitting numpy's fast 1-D indexed-add loop
    instead of the slow per-row 2-D dispatch (the per-slot add order is
    unchanged, so the result is bit-for-bit the same);
  - gradient arrays are written into per-call scratch buffers instead of
    fresh temporaries on every batch.

``"auto"`` (the :class:`~repro.config.TrainingConfig` default) resolves
to ``"minibatch_local"`` when block-major data is available and falls
back to ``"minibatch"`` otherwise.

All kernels update ``P`` and ``Q`` in place and return the number of
ratings processed so callers can account work.  Validation of shapes,
dtypes and index bounds is performed once per call by default; callers
that validated their inputs ahead of time (the engines, through
:class:`~repro.sparse.BlockStore`) pass ``validate=False`` to keep the
``O(nnz)`` checks out of the per-task hot path.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..config import DEFAULT_BATCH_SIZE, KERNEL_NAMES
from ..exceptions import ConfigurationError, InvalidMatrixError

__all__ = [
    "DEFAULT_BATCH_SIZE",  # canonical home: repro.config (re-exported here)
    "KERNELS",
    "get_kernel",
    "resolve_kernel_name",
    "sgd_block_minibatch",
    "sgd_block_minibatch_local",
    "sgd_block_sequential",
]


def _as_kernel_array(array, dtype: np.dtype) -> np.ndarray:
    """Return ``array`` as a C-contiguous ndarray of ``dtype``.

    Pre-typed contiguous inputs — the common case once a
    :class:`~repro.sparse.BlockStore` feeds the kernels — are returned
    unchanged (no copy); everything else goes through one conversion.
    """
    if (
        isinstance(array, np.ndarray)
        and array.dtype == dtype
        and array.flags.c_contiguous
    ):
        return array
    return np.ascontiguousarray(array, dtype=dtype)


def _check_kernel_inputs(
    p: np.ndarray,
    q: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
) -> None:
    """Validate shapes shared by the global kernels; raise ``InvalidMatrixError``."""
    if p.ndim != 2 or q.ndim != 2:
        raise InvalidMatrixError("P and Q must be 2-D arrays")
    if p.shape[1] != q.shape[0]:
        raise InvalidMatrixError(
            f"inner dimensions of P {p.shape} and Q {q.shape} do not match"
        )
    if not (len(rows) == len(cols) == len(vals)):
        raise InvalidMatrixError("rows, cols and vals must have equal length")
    if len(rows) > 0:
        if rows.max() >= p.shape[0] or rows.min() < 0:
            raise InvalidMatrixError("row index out of range for P")
        if cols.max() >= q.shape[1] or cols.min() < 0:
            raise InvalidMatrixError("column index out of range for Q")


def _check_local_kernel_inputs(
    p: np.ndarray,
    q: np.ndarray,
    local_rows: np.ndarray,
    local_cols: np.ndarray,
    vals: np.ndarray,
    row_range: Tuple[int, int],
    col_range: Tuple[int, int],
) -> None:
    """Validate the band-local kernel inputs; raise ``InvalidMatrixError``."""
    if p.ndim != 2 or q.ndim != 2:
        raise InvalidMatrixError("P and Q must be 2-D arrays")
    if p.shape[1] != q.shape[0]:
        raise InvalidMatrixError(
            f"inner dimensions of P {p.shape} and Q {q.shape} do not match"
        )
    if not (len(local_rows) == len(local_cols) == len(vals)):
        raise InvalidMatrixError("rows, cols and vals must have equal length")
    r0, r1 = row_range
    c0, c1 = col_range
    if not (0 <= r0 <= r1 <= p.shape[0]):
        raise InvalidMatrixError(
            f"row band [{r0}, {r1}) does not fit P with {p.shape[0]} rows"
        )
    if not (0 <= c0 <= c1 <= q.shape[1]):
        raise InvalidMatrixError(
            f"column band [{c0}, {c1}) does not fit Q with {q.shape[1]} columns"
        )
    if len(local_rows) > 0:
        if local_rows.max() >= r1 - r0 or local_rows.min() < 0:
            raise InvalidMatrixError("row index out of range for P")
        if local_cols.max() >= c1 - c0 or local_cols.min() < 0:
            raise InvalidMatrixError("column index out of range for Q")


def sgd_block_sequential(
    p: np.ndarray,
    q: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    learning_rate: float,
    reg_p: float,
    reg_q: float,
    validate: bool = True,
) -> int:
    """Exact per-rating SGD sweep over one block (Algorithm 1, lines 3-6).

    Parameters
    ----------
    p, q:
        Factor matrices, updated in place.
    rows, cols, vals:
        The ratings of the block as parallel arrays.
    learning_rate:
        Step size ``gamma``.
    reg_p, reg_q:
        Regularisation coefficients ``lambda_P`` and ``lambda_Q``.
    validate:
        Check shapes, dtypes and index bounds before updating (default).
        Callers whose inputs were validated once ahead of time — the
        engines, via :class:`~repro.sparse.BlockStore` — pass ``False``
        to keep the ``O(nnz)`` scans off the per-task hot path.

    Returns
    -------
    int
        Number of ratings processed (``len(vals)``).
    """
    rows = _as_kernel_array(rows, np.int64)
    cols = _as_kernel_array(cols, np.int64)
    vals = _as_kernel_array(vals, np.float64)
    if validate:
        _check_kernel_inputs(p, q, rows, cols, vals)

    gamma = float(learning_rate)
    for idx in range(len(vals)):
        u = rows[idx]
        v = cols[idx]
        p_u = p[u]
        q_v = q[:, v]
        error = vals[idx] - float(p_u @ q_v)
        # The new p_u must be computed from the old q_v and vice versa, so
        # stash the update for p_u before overwriting it.
        new_p_u = p_u + gamma * (error * q_v - reg_p * p_u)
        q[:, v] = q_v + gamma * (error * p_u - reg_q * q_v)
        p[u] = new_p_u
    return len(vals)


def sgd_block_minibatch(
    p: np.ndarray,
    q: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    learning_rate: float,
    reg_p: float,
    reg_q: float,
    batch_size: int = DEFAULT_BATCH_SIZE,
    rng: Optional[np.random.Generator] = None,
    validate: bool = True,
) -> int:
    """Vectorised mini-batch SGD sweep over one block (global indices).

    The block's ratings are visited in a (optionally shuffled) sequence of
    mini-batches.  Within one batch, errors are evaluated against the
    factors as of the start of the batch and the per-row / per-column
    gradient contributions are combined before being applied — the usual
    mini-batch SGD relaxation.

    When the same row or column occurs several times inside one batch
    (common for popular items in skewed rating data), its contributions
    are *averaged* rather than summed: the sequential kernel would apply
    those updates one after another against progressively corrected
    factors, so summing stale gradients systematically overshoots and can
    diverge on wide rating scales, while averaging keeps the step size of
    every entity bounded by ``gamma`` exactly as in the sequential kernel.

    Returns
    -------
    int
        Number of ratings processed.
    """
    rows = _as_kernel_array(rows, np.int64)
    cols = _as_kernel_array(cols, np.int64)
    vals = _as_kernel_array(vals, np.float64)
    if validate:
        _check_kernel_inputs(p, q, rows, cols, vals)
    if batch_size <= 0:
        raise InvalidMatrixError(f"batch_size must be positive, got {batch_size}")

    count = len(vals)
    if count == 0:
        return 0

    gamma = float(learning_rate)
    if rng is not None:
        order = rng.permutation(count)
        rows = rows[order]
        cols = cols[order]
        vals = vals[order]

    for start in range(0, count, batch_size):
        stop = min(start + batch_size, count)
        u = rows[start:stop]
        v = cols[start:stop]
        r = vals[start:stop]

        p_batch = p[u]                      # (b, k)
        q_batch = q[:, v].T                 # (b, k)
        errors = r - np.einsum("ij,ij->i", p_batch, q_batch)

        grad_p = gamma * (errors[:, None] * q_batch - reg_p * p_batch)
        grad_q = gamma * (errors[:, None] * p_batch - reg_q * q_batch)

        # Average contributions of rows/columns repeated within the batch
        # (see the docstring): divide each contribution by how often its
        # entity occurs in this batch before accumulating.  The counts are
        # derived with np.unique over the batch — sized by the number of
        # distinct entities in the batch, not max(index)+1 as a bincount
        # over the global row/column indices would be.
        _, u_positions, u_counts = np.unique(u, return_inverse=True, return_counts=True)
        _, v_positions, v_counts = np.unique(v, return_inverse=True, return_counts=True)
        grad_p /= u_counts[u_positions][:, None]
        grad_q /= v_counts[v_positions][:, None]

        np.add.at(p, u, grad_p)
        np.add.at(q.T, v, grad_q)
    return count


def _flat_band_view(band: np.ndarray) -> Optional[np.ndarray]:
    """A flat 1-D view of a band when its memory is contiguous, else ``None``.

    The flattened view is what lets the scatter run through numpy's fast
    1-D indexed-add loop; a copy would silently discard the updates, so
    only a true view is ever returned.
    """
    if band.flags.c_contiguous:
        return band.reshape(-1)
    return None


def _scatter_add_with_duplicates(
    band: np.ndarray,
    band_flat: Optional[np.ndarray],
    idx: np.ndarray,
    grad: np.ndarray,
    base_scratch: np.ndarray,
    flat_idx_scratch: np.ndarray,
    offsets: np.ndarray,
) -> None:
    """``np.add.at(band, idx, grad)``, through the flat fast path if possible.

    Flattening turns one indexed add of ``b`` rows of length ``k`` into
    ``b*k`` scalar indexed adds in the same element order, so every
    ``(row, factor)`` slot receives exactly the same additions in exactly
    the same sequence — bitwise-identical to the 2-D form, several times
    faster because numpy's ``ufunc.at`` has a fast loop only for 1-D
    contiguous targets.
    """
    if band_flat is None:
        np.add.at(band, idx, grad)
        return
    b = len(idx)
    k = band.shape[1]
    base = base_scratch[:b]
    flat = flat_idx_scratch[:b]
    np.multiply(idx, k, out=base)
    np.add(base[:, None], offsets, out=flat)
    np.add.at(band_flat, flat.reshape(-1), grad.reshape(-1))


def sgd_block_minibatch_local(
    p: np.ndarray,
    q: np.ndarray,
    local_rows: np.ndarray,
    local_cols: np.ndarray,
    vals: np.ndarray,
    learning_rate: float,
    reg_p: float,
    reg_q: float,
    row_range: Tuple[int, int],
    col_range: Tuple[int, int],
    batch_size: int = DEFAULT_BATCH_SIZE,
    rng: Optional[np.random.Generator] = None,
    validate: bool = True,
) -> int:
    """Block-major mini-batch SGD sweep using band-local indices.

    Numerically this is :func:`sgd_block_minibatch` — same batches, same
    additions, same per-element order, hence bitwise-identical factors —
    restated over the block's *own* coordinate frame: ``local_rows`` and
    ``local_cols`` index into the band slices ``p[row_range[0]:row_range[1]]``
    and ``q[:, col_range[0]:col_range[1]]`` instead of the full matrices.
    See the module docstring for the list of bitwise-safe optimisations
    this buys.

    Parameters
    ----------
    p, q:
        Full factor matrices, updated in place (only the band slices are
        touched).
    local_rows, local_cols, vals:
        The block's ratings with indices relative to ``row_range[0]`` /
        ``col_range[0]`` (as produced by
        :meth:`repro.sparse.BlockData.from_slice`).
    row_range, col_range:
        The half-open global index intervals of the block's bands.
    validate:
        As in :func:`sgd_block_minibatch`; engines pass ``False`` because
        :class:`~repro.sparse.BlockStore` validated the data once.

    Returns
    -------
    int
        Number of ratings processed.
    """
    local_rows = _as_kernel_array(local_rows, np.int64)
    local_cols = _as_kernel_array(local_cols, np.int64)
    vals = _as_kernel_array(vals, np.float64)
    if validate:
        _check_local_kernel_inputs(
            p, q, local_rows, local_cols, vals, row_range, col_range
        )
    if batch_size <= 0:
        raise InvalidMatrixError(f"batch_size must be positive, got {batch_size}")

    count = len(vals)
    if count == 0:
        return 0

    gamma = float(learning_rate)
    if rng is not None:
        order = rng.permutation(count)
        local_rows = local_rows[order]
        local_cols = local_cols[order]
        vals = vals[order]

    r0, r1 = row_range
    c0, c1 = col_range
    p_band = p[r0:r1]
    # ``q.T[c0:c1]`` is the same memory as ``q[:, c0:c1].T``; when Q is
    # stored item-major (``FactorModel`` keeps the transpose contiguous)
    # this band is C-contiguous and both the gather and the scatter run
    # on contiguous rows.
    q_band_t = q.T[c0:c1]
    p_flat = _flat_band_view(p_band)
    q_flat = _flat_band_view(q_band_t)

    k = p.shape[1]
    cap = min(batch_size, count)
    grad_p = np.empty((cap, k), dtype=np.float64)
    grad_q = np.empty((cap, k), dtype=np.float64)
    reg_scratch = np.empty((cap, k), dtype=np.float64)
    errors_scratch = np.empty(cap, dtype=np.float64)
    base_idx = np.empty(cap, dtype=np.int64)
    flat_idx = np.empty((cap, k), dtype=np.int64)
    offsets = np.arange(k, dtype=np.int64)

    for start in range(0, count, batch_size):
        stop = min(start + batch_size, count)
        u = local_rows[start:stop]
        v = local_cols[start:stop]
        r = vals[start:stop]
        b = stop - start

        p_batch = np.take(p_band, u, axis=0)    # (b, k)
        q_batch = np.take(q_band_t, v, axis=0)  # (b, k)
        dots = np.einsum("ij,ij->i", p_batch, q_batch, out=errors_scratch[:b])
        errors = r - dots
        e = errors[:, None]

        # gamma * (e * q_batch - reg_p * p_batch), staged through scratch
        # buffers: the same three element-wise operations in the same
        # order as the global kernel, without fresh temporaries per batch.
        gp = grad_p[:b]
        gq = grad_q[:b]
        tmp = reg_scratch[:b]
        np.multiply(e, q_batch, out=gp)
        np.multiply(p_batch, reg_p, out=tmp)
        gp -= tmp
        gp *= gamma
        np.multiply(e, p_batch, out=gq)
        np.multiply(q_batch, reg_q, out=tmp)
        gq -= tmp
        gq *= gamma

        # Duplicate multiplicities via bincount over the band-local index
        # space (bounded by the band height/width, not the matrix
        # dimension).
        u_per = np.bincount(u)[u]
        v_per = np.bincount(v)[v]

        # Dividing by a multiplicity of 1 is an exact no-op and an
        # indexed assignment with unique indices performs exactly the
        # additions of np.add.at, so duplicate-free batches take the
        # cheap path: one vector add plus one scatter-assignment, no
        # flat-index build.  Batches with repeats divide (averaging, see
        # sgd_block_minibatch) and scatter through the flat indexed add.
        if u_per.max() == 1:
            np.add(p_batch, gp, out=gp)
            p_band[u] = gp
        else:
            np.divide(gp, u_per[:, None], out=gp)
            _scatter_add_with_duplicates(
                p_band, p_flat, u, gp, base_idx, flat_idx, offsets
            )
        if v_per.max() == 1:
            np.add(q_batch, gq, out=gq)
            q_band_t[v] = gq
        else:
            np.divide(gq, v_per[:, None], out=gq)
            _scatter_add_with_duplicates(
                q_band_t, q_flat, v, gq, base_idx, flat_idx, offsets
            )
    return count


#: The kernel registry: name -> callable.  ``"sequential"`` and
#: ``"minibatch"`` take global COO arrays; ``"minibatch_local"``
#: additionally takes band-local indices and the band ranges (the calling
#: convention the engines satisfy through :class:`repro.sparse.BlockStore`).
KERNELS = {
    "sequential": sgd_block_sequential,
    "minibatch": sgd_block_minibatch,
    "minibatch_local": sgd_block_minibatch_local,
}

if set(KERNELS) | {"auto"} != set(KERNEL_NAMES):  # pragma: no cover
    raise ImportError(
        "kernel registry out of sync with repro.config.KERNEL_NAMES: "
        f"{sorted(KERNELS)} + 'auto' vs {KERNEL_NAMES}"
    )


def get_kernel(name: str):
    """Look up a kernel callable by registry name.

    ``"auto"`` is a configuration-level alias, not a kernel; resolve it
    with :func:`resolve_kernel_name` first.
    """
    try:
        return KERNELS[name]
    except KeyError:
        raise ConfigurationError(
            f"kernel must be one of {tuple(sorted(KERNELS))}, got {name!r}"
        ) from None


def resolve_kernel_name(name: str, exact_kernel: bool = False) -> str:
    """Resolve a configured kernel name to a concrete registry entry.

    ``exact_kernel=True`` (the engines' validation switch) forces the
    sequential reference kernel regardless of configuration; ``"auto"``
    selects the active :class:`repro.tune.TunedProfile`'s calibrated
    kernel when a profile is loaded (safe: every selectable mini-batch
    kernel is bitwise-identical to the others, so the profile can only
    change speed, never results) and defaults to the block-major local
    kernel otherwise, which the engines feed through pre-validated
    :class:`~repro.sparse.BlockStore` data (callers without block-major
    data fall back to ``"minibatch"``, which is bitwise-identical).
    """
    if exact_kernel:
        return "sequential"
    if name == "auto":
        # Lazy: repro.tune.profile re-exports config constants and must
        # stay importable without the sgd package.
        from ..tune.profile import profile_kernel

        tuned = profile_kernel()
        if tuned is not None:
            return tuned
        return "minibatch_local"
    if name not in KERNELS:
        raise ConfigurationError(
            f"kernel must be one of {KERNEL_NAMES}, got {name!r}"
        )
    return name
