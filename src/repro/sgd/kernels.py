"""Per-block SGD update kernels.

The paper's workers (CPU threads running the LIBMF kernel, GPUs running
the CuMF_SGD kernel) all perform the same numerical work on a block: for
each rating ``(u, v, r)`` in the block,

.. math::

    e_{uv} &= r_{uv} - p_u q_v \\\\
    p_u &\\leftarrow p_u + \\gamma (e_{uv} q_v^T - \\lambda_P p_u) \\\\
    q_v &\\leftarrow q_v + \\gamma (e_{uv} p_u^T - \\lambda_Q q_v)

(Equations 4-6 / Algorithm 1 lines 4-6).

Two kernels are provided:

* :func:`sgd_block_sequential` — the exact per-rating loop.  This is the
  numerical reference and the kernel used by the unit tests; it is slow in
  pure Python, so the simulation engine only uses it on small blocks or
  when exactness is requested.
* :func:`sgd_block_minibatch` — a vectorised kernel that processes the
  block in mini-batches: within one batch all errors are computed against
  the factor values at the start of the batch, gradients of ratings
  touching the same row/column are accumulated with ``np.add.at`` and
  applied together.  This is the standard mini-batch relaxation of SGD;
  the accepted substitution for the hand-tuned AVX/CUDA kernels of the
  paper (see DESIGN.md), preserving the update rule while making epoch
  times practical in numpy.

Both kernels update ``P`` and ``Q`` in place and return the number of
ratings processed so callers can account work.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import InvalidMatrixError

#: Default mini-batch length of the vectorised kernel.  Small enough that
#: repeated rows/columns within one batch stay rare on skewed rating data
#: (keeping the mini-batch relaxation close to sequential SGD), large
#: enough that the per-batch numpy overhead is amortised.
DEFAULT_BATCH_SIZE = 256


def _check_kernel_inputs(
    p: np.ndarray,
    q: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
) -> None:
    """Validate shapes shared by both kernels; raise ``InvalidMatrixError``."""
    if p.ndim != 2 or q.ndim != 2:
        raise InvalidMatrixError("P and Q must be 2-D arrays")
    if p.shape[1] != q.shape[0]:
        raise InvalidMatrixError(
            f"inner dimensions of P {p.shape} and Q {q.shape} do not match"
        )
    if not (len(rows) == len(cols) == len(vals)):
        raise InvalidMatrixError("rows, cols and vals must have equal length")
    if len(rows) > 0:
        if rows.max() >= p.shape[0] or rows.min() < 0:
            raise InvalidMatrixError("row index out of range for P")
        if cols.max() >= q.shape[1] or cols.min() < 0:
            raise InvalidMatrixError("column index out of range for Q")


def sgd_block_sequential(
    p: np.ndarray,
    q: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    learning_rate: float,
    reg_p: float,
    reg_q: float,
) -> int:
    """Exact per-rating SGD sweep over one block (Algorithm 1, lines 3-6).

    Parameters
    ----------
    p, q:
        Factor matrices, updated in place.
    rows, cols, vals:
        The ratings of the block as parallel arrays.
    learning_rate:
        Step size ``gamma``.
    reg_p, reg_q:
        Regularisation coefficients ``lambda_P`` and ``lambda_Q``.

    Returns
    -------
    int
        Number of ratings processed (``len(vals)``).
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals, dtype=np.float64)
    _check_kernel_inputs(p, q, rows, cols, vals)

    gamma = float(learning_rate)
    for idx in range(len(vals)):
        u = rows[idx]
        v = cols[idx]
        p_u = p[u]
        q_v = q[:, v]
        error = vals[idx] - float(p_u @ q_v)
        # The new p_u must be computed from the old q_v and vice versa, so
        # stash the update for p_u before overwriting it.
        new_p_u = p_u + gamma * (error * q_v - reg_p * p_u)
        q[:, v] = q_v + gamma * (error * p_u - reg_q * q_v)
        p[u] = new_p_u
    return len(vals)


def sgd_block_minibatch(
    p: np.ndarray,
    q: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    learning_rate: float,
    reg_p: float,
    reg_q: float,
    batch_size: int = DEFAULT_BATCH_SIZE,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Vectorised mini-batch SGD sweep over one block.

    The block's ratings are visited in a (optionally shuffled) sequence of
    mini-batches.  Within one batch, errors are evaluated against the
    factors as of the start of the batch and the per-row / per-column
    gradient contributions are combined before being applied — the usual
    mini-batch SGD relaxation.

    When the same row or column occurs several times inside one batch
    (common for popular items in skewed rating data), its contributions
    are *averaged* rather than summed: the sequential kernel would apply
    those updates one after another against progressively corrected
    factors, so summing stale gradients systematically overshoots and can
    diverge on wide rating scales, while averaging keeps the step size of
    every entity bounded by ``gamma`` exactly as in the sequential kernel.

    Returns
    -------
    int
        Number of ratings processed.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals, dtype=np.float64)
    _check_kernel_inputs(p, q, rows, cols, vals)
    if batch_size <= 0:
        raise InvalidMatrixError(f"batch_size must be positive, got {batch_size}")

    count = len(vals)
    if count == 0:
        return 0

    gamma = float(learning_rate)
    if rng is not None:
        order = rng.permutation(count)
        rows = rows[order]
        cols = cols[order]
        vals = vals[order]

    for start in range(0, count, batch_size):
        stop = min(start + batch_size, count)
        u = rows[start:stop]
        v = cols[start:stop]
        r = vals[start:stop]

        p_batch = p[u]                      # (b, k)
        q_batch = q[:, v].T                 # (b, k)
        errors = r - np.einsum("ij,ij->i", p_batch, q_batch)

        grad_p = gamma * (errors[:, None] * q_batch - reg_p * p_batch)
        grad_q = gamma * (errors[:, None] * p_batch - reg_q * q_batch)

        # Average contributions of rows/columns repeated within the batch
        # (see the docstring): divide each contribution by how often its
        # entity occurs in this batch before accumulating.  The counts are
        # derived with np.unique over the batch — sized by the number of
        # distinct entities in the batch, not max(index)+1 as a bincount
        # over the global row/column indices would be.
        _, u_positions, u_counts = np.unique(u, return_inverse=True, return_counts=True)
        _, v_positions, v_counts = np.unique(v, return_inverse=True, return_counts=True)
        grad_p /= u_counts[u_positions][:, None]
        grad_q /= v_counts[v_positions][:, None]

        np.add.at(p, u, grad_p)
        np.add.at(q.T, v, grad_q)
    return count
