"""Loss and error metrics for matrix factorization.

Implements the regularised squared loss of Equation 2 of the paper and the
evaluation metrics used in its experiments (test RMSE, Section VII-A).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidMatrixError
from ..sparse import SparseRatingMatrix
from .model import FactorModel


def pointwise_errors(model: FactorModel, matrix: SparseRatingMatrix) -> np.ndarray:
    """Residuals ``r_uv - p_u q_v`` for every explicit rating of ``matrix``."""
    predictions = model.predict_matrix(matrix)
    return matrix.vals - predictions


def squared_error_sum(model: FactorModel, matrix: SparseRatingMatrix) -> float:
    """Sum of squared residuals over the explicit ratings."""
    errors = pointwise_errors(model, matrix)
    return float(np.dot(errors, errors))


def rmse(model: FactorModel, matrix: SparseRatingMatrix) -> float:
    """Root-mean-square error over the explicit ratings of ``matrix``.

    This is the loss metric of the paper's evaluation ("We use Root Mean
    Square Error (RMSE) as a metric for the loss", Section VII-A).
    """
    if matrix.nnz == 0:
        raise InvalidMatrixError("RMSE is undefined for an empty matrix")
    return float(np.sqrt(squared_error_sum(model, matrix) / matrix.nnz))


def mae(model: FactorModel, matrix: SparseRatingMatrix) -> float:
    """Mean absolute error over the explicit ratings of ``matrix``."""
    if matrix.nnz == 0:
        raise InvalidMatrixError("MAE is undefined for an empty matrix")
    return float(np.abs(pointwise_errors(model, matrix)).mean())


def regularized_loss(
    model: FactorModel,
    matrix: SparseRatingMatrix,
    reg_p: float,
    reg_q: float,
) -> float:
    """The full objective of Equation 2.

    .. math::

        L = \\sum_{(u,v) \\in R} (r_{uv} - p_u q_v)^2
            + \\lambda_P \\lVert p_u \\rVert_F^2
            + \\lambda_Q \\lVert q_v \\rVert_F^2

    The regularisation terms are summed over the rated ``(u, v)`` pairs,
    matching the per-rating formulation the SGD update is derived from
    (Equation 3): a user rated ``d`` times contributes ``d`` copies of
    ``lambda_P * ||p_u||^2``.
    """
    if matrix.nnz == 0:
        raise InvalidMatrixError("loss is undefined for an empty matrix")
    squared = squared_error_sum(model, matrix)
    p_norms = np.einsum("ij,ij->i", model.p, model.p)
    q_norms = np.einsum("ij,ij->j", model.q, model.q)
    reg_term = reg_p * float(p_norms[matrix.rows].sum()) + reg_q * float(
        q_norms[matrix.cols].sum()
    )
    return squared + reg_term
