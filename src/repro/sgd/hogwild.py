"""Hogwild-style lock-free SGD baseline.

Hogwild (Recht et al., NIPS 2011; reference [19] of the paper) parallelises
SGD by letting every worker update the shared factor matrices without any
locking, accepting occasional lost updates on conflicting rows/columns.

In this reproduction the "workers" are logical: the rating stream is split
into per-worker shards and each shard is swept with the vectorised kernel
in an interleaved round-robin order, which reproduces Hogwild's defining
property — concurrent, conflict-oblivious updates to shared state — while
remaining deterministic and testable.  Its role in the library is as a
convergence baseline for the block-scheduled algorithms.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import TrainingConfig
from ..exceptions import ConfigurationError
from ..sparse import SparseRatingMatrix
from .kernels import sgd_block_minibatch
from .losses import rmse
from .model import FactorModel
from .serial import TrainingHistory


def train_hogwild(
    train: SparseRatingMatrix,
    config: TrainingConfig,
    workers: int = 4,
    test: Optional[SparseRatingMatrix] = None,
    rounds_per_iteration: int = 8,
) -> tuple:
    """Train with lock-free (Hogwild-style) parallel SGD.

    Parameters
    ----------
    train:
        Training ratings.
    config:
        Hyper-parameters; ``config.iterations`` full passes are made.
    workers:
        Number of logical lock-free workers.
    test:
        Optional held-out ratings for per-iteration test RMSE.
    rounds_per_iteration:
        How many times per iteration the round-robin over worker shards
        switches; higher values interleave the conflict-oblivious updates
        more finely.

    Returns
    -------
    (FactorModel, TrainingHistory)
    """
    if workers <= 0:
        raise ConfigurationError(f"workers must be positive, got {workers}")
    if rounds_per_iteration <= 0:
        raise ConfigurationError(
            f"rounds_per_iteration must be positive, got {rounds_per_iteration}"
        )

    model = FactorModel.for_matrix(train, config)
    rng = np.random.default_rng(config.seed)
    history = TrainingHistory()

    for iteration in range(config.iterations):
        rate = config.learning_rate
        order = rng.permutation(train.nnz)
        shards = np.array_split(order, workers)
        # Each shard is cut into `rounds_per_iteration` chunks; chunks are
        # interleaved round-robin across shards to emulate concurrent
        # lock-free progress by all workers.
        shard_chunks = [np.array_split(shard, rounds_per_iteration) for shard in shards]
        for round_index in range(rounds_per_iteration):
            for worker_chunks in shard_chunks:
                chunk = worker_chunks[round_index]
                if len(chunk) == 0:
                    continue
                sgd_block_minibatch(
                    model.p,
                    model.q,
                    train.rows[chunk],
                    train.cols[chunk],
                    train.vals[chunk],
                    rate,
                    config.reg_p,
                    config.reg_q,
                )

        history.learning_rates.append(rate)
        history.train_rmse.append(rmse(model, train))
        if test is not None:
            history.test_rmse.append(rmse(model, test))

    return model, history
