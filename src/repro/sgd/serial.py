"""Algorithm 1 of the paper: single-threaded SGD matrix factorization.

This is the reference implementation every parallel variant must agree
with numerically (up to update-ordering effects).  It is used directly by
the quickstart example and by the test suite as a convergence oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..config import TrainingConfig
from ..sparse import SparseRatingMatrix
from .kernels import sgd_block_minibatch, sgd_block_sequential
from .losses import rmse
from .model import FactorModel
from .schedules import ConstantSchedule, LearningRateSchedule


@dataclass
class TrainingHistory:
    """Per-iteration metrics recorded during a training run."""

    train_rmse: List[float] = field(default_factory=list)
    test_rmse: List[float] = field(default_factory=list)
    learning_rates: List[float] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        """Number of completed iterations."""
        return len(self.train_rmse)

    def final_train_rmse(self) -> float:
        """Training RMSE after the last iteration."""
        return self.train_rmse[-1]

    def final_test_rmse(self) -> Optional[float]:
        """Test RMSE after the last iteration, if a test set was supplied."""
        return self.test_rmse[-1] if self.test_rmse else None


def train_serial_sgd(
    train: SparseRatingMatrix,
    config: TrainingConfig,
    test: Optional[SparseRatingMatrix] = None,
    schedule: Optional[LearningRateSchedule] = None,
    exact: bool = False,
    shuffle_each_iteration: bool = True,
    model: Optional[FactorModel] = None,
) -> tuple:
    """Train a factor model with single-threaded SGD (Algorithm 1).

    Parameters
    ----------
    train:
        Training rating matrix.
    config:
        Training hyper-parameters (``k``, ``gamma``, ``lambda``, ``t``).
    test:
        Optional held-out ratings; when given, test RMSE is recorded after
        every iteration.
    schedule:
        Learning-rate schedule; a constant rate equal to
        ``config.learning_rate`` when omitted.
    exact:
        Use the exact per-rating kernel instead of the vectorised
        mini-batch kernel.  Slower but bit-for-bit Algorithm 1.
    shuffle_each_iteration:
        Visit ratings in a fresh random order every iteration, the usual
        SGD practice.
    model:
        Optional pre-initialised model to continue training.

    Returns
    -------
    (FactorModel, TrainingHistory)
    """
    if schedule is None:
        schedule = ConstantSchedule(config.learning_rate)
    if model is None:
        model = FactorModel.for_matrix(train, config)

    rng = np.random.default_rng(config.seed)
    history = TrainingHistory()

    for iteration in range(config.iterations):
        rate = schedule(iteration)
        if shuffle_each_iteration:
            order = rng.permutation(train.nnz)
        else:
            order = np.arange(train.nnz)
        rows = train.rows[order]
        cols = train.cols[order]
        vals = train.vals[order]

        if exact:
            sgd_block_sequential(
                model.p, model.q, rows, cols, vals, rate, config.reg_p, config.reg_q
            )
        else:
            sgd_block_minibatch(
                model.p, model.q, rows, cols, vals, rate, config.reg_p, config.reg_q
            )

        history.learning_rates.append(rate)
        history.train_rmse.append(rmse(model, train))
        if test is not None:
            history.test_rmse.append(rmse(model, test))

    return model, history
