"""Cyclic Coordinate Descent (CCD) baseline.

Section III-C of the paper mentions coordinate descent (Yu et al.,
ICDM 2012; reference [17]) as the third family of MF solvers: one latent
coordinate of one factor matrix is updated at a time with all other
coordinates fixed, which gives a closed-form scalar update per
coordinate.

We implement the CCD++ style feature-wise sweep: for each latent factor
``f`` the rank-one residual problem is solved by alternating scalar
updates of ``P[:, f]`` and ``Q[f, :]``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import TrainingConfig
from ..sparse import SparseRatingMatrix
from .losses import rmse
from .model import FactorModel
from .serial import TrainingHistory


def train_ccd(
    train: SparseRatingMatrix,
    config: TrainingConfig,
    test: Optional[SparseRatingMatrix] = None,
    inner_sweeps: int = 1,
) -> tuple:
    """Train a factor model with feature-wise cyclic coordinate descent.

    Parameters
    ----------
    train:
        Training ratings.
    config:
        Hyper-parameters; ``latent_factors`` and the regularisers are
        used, the learning rate is ignored (CCD has closed-form steps).
    test:
        Optional held-out ratings for per-iteration test RMSE.
    inner_sweeps:
        Number of alternating scalar sweeps per latent factor per
        iteration.

    Returns
    -------
    (FactorModel, TrainingHistory)
    """
    model = FactorModel.for_matrix(train, config)
    history = TrainingHistory()

    rows = train.rows
    cols = train.cols
    vals = train.vals
    k = config.latent_factors

    # Residual of the current model on the explicit ratings.
    residual = vals - model.predict_matrix(train)

    for _ in range(config.iterations):
        for factor in range(k):
            p_f = model.p[:, factor].copy()
            q_f = model.q[factor, :].copy()
            # Add this factor's contribution back into the residual so the
            # rank-one subproblem sees the full residual it must explain.
            residual = residual + p_f[rows] * q_f[cols]

            for _ in range(inner_sweeps):
                # Update p_f with q_f fixed: per-user ridge scalar.
                numerator = np.bincount(
                    rows, weights=residual * q_f[cols], minlength=train.n_rows
                )
                denominator = (
                    np.bincount(rows, weights=q_f[cols] ** 2, minlength=train.n_rows)
                    + config.reg_p
                )
                p_f = numerator / denominator
                # Update q_f with p_f fixed: per-item ridge scalar.
                numerator = np.bincount(
                    cols, weights=residual * p_f[rows], minlength=train.n_cols
                )
                denominator = (
                    np.bincount(cols, weights=p_f[rows] ** 2, minlength=train.n_cols)
                    + config.reg_q
                )
                q_f = numerator / denominator

            model.p[:, factor] = p_f
            model.q[factor, :] = q_f
            residual = residual - p_f[rows] * q_f[cols]

        history.learning_rates.append(0.0)
        history.train_rmse.append(rmse(model, train))
        if test is not None:
            history.test_rmse.append(rmse(model, test))

    return model, history
