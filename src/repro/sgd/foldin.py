"""Least-squares fold-in: factor rows for newcomers against a fixed model.

Streaming ingestion (:mod:`repro.stream`) constantly meets users and
items the trained model has never seen.  Retraining for every newcomer
is absurd; the classical answer (and the one ALS makes exact) is
**fold-in**: hold the opposite factor matrix fixed and solve the one
regularised least-squares problem the newcomer participates in,

.. math::

    \\min_x \\; \\sum_{v \\in R_u} (r_{uv} - x^T q_v)^2
            + \\lambda \\, |R_u| \\, \\lVert x \\rVert^2,

which is exactly one half-step of :func:`repro.sgd.als.train_als`
restricted to the newcomers — including the weighted-lambda
regularisation (``λ`` scaled by the rating count), so a fold-in row is
the *optimum* of the same per-user objective the trainer descends.
That gives the test tier a sharp invariant: for a user whose ratings
were part of training, the fold-in row's regularised objective can
never exceed the trained row's.

The batch solver is vectorised over newcomers: each group's ratings are
packed into one zero-padded ``(n_groups, d_max, k)`` tensor and batched
BLAS matmuls plus batched :func:`np.linalg.solve` calls handle all
systems chunk by chunk — no Python-level loop over users (a per-group
BLAS fallback guards against pathological skew).  When newcomers carry
fewer ratings than latent factors — the overwhelmingly common case —
the solver switches to the **dual** form ``x = Fᵀ(FFᵀ + λdI)⁻¹r`` and
solves ``d``-by-``d`` kernels instead of ``k``-by-``k`` Grams.  This is
the throughput path measured by ``benchmarks/bench_stream.py``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import InvalidMatrixError
from ..sparse import SparseRatingMatrix
from .model import FactorModel

#: Element ceiling of the padded ``(n_groups, d_max, k)`` gather used by
#: the vectorised path (~256 MB of float64).  A batch whose most-rated
#: newcomer pushes past it — heavy skew — falls back to the per-group
#: BLAS loop instead of materialising the tensor.
_PAD_ELEMENT_BUDGET = 32_000_000

#: Element ceiling of one ``(chunk, k, k)`` Gram stack (~16 MB of
#: float64).  The batched Gram+solve stage processes groups in chunks of
#: this size so the working set stays cache-resident instead of
#: streaming a multi-hundred-MB stack through memory three times.  This
#: is the hand-picked default; an active :class:`repro.tune.TunedProfile`
#: overrides it with the calibrated value (chunking only regroups
#: identical per-group solves, so the ceiling affects speed, never
#: results).
_GRAM_CHUNK_ELEMENTS = 2_000_000


def _gram_chunk_elements() -> int:
    """The Gram-stack ceiling in effect (profile-resolved or default)."""
    from ..tune.profile import resolve_foldin_gram_chunk

    return resolve_foldin_gram_chunk(_GRAM_CHUNK_ELEMENTS)


def solve_fold_in(
    fixed_factors: np.ndarray,
    group_ids: np.ndarray,
    fixed_ids: np.ndarray,
    vals: np.ndarray,
    n_groups: int,
    regularization: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve one ridge system per group against fixed factors, batched.

    Parameters
    ----------
    fixed_factors:
        The held-fixed factor matrix, one row per opposite entity —
        ``Q.T`` (shape ``(n, k)``) when folding in users, ``P`` when
        folding in items.
    group_ids, fixed_ids, vals:
        Parallel per-rating arrays: the group (newcomer) index in
        ``[0, n_groups)``, the opposite entity's row in
        ``fixed_factors``, and the rating value.
    n_groups:
        Number of systems to solve.
    regularization:
        The per-rating (weighted-lambda) regularisation strength; group
        ``g`` with ``d`` ratings is regularised by ``d * regularization``,
        matching :func:`repro.sgd.losses.regularized_loss` and the ALS
        half-step.

    Returns
    -------
    (rows, counts):
        ``rows`` of shape ``(n_groups, k)`` — the solved factor rows,
        zero for groups with no ratings — and ``counts`` of shape
        ``(n_groups,)`` with each group's rating count (callers use it
        to substitute an init row where the solve had no data).
    """
    fixed_factors = np.asarray(fixed_factors, dtype=np.float64)
    group_ids = np.asarray(group_ids, dtype=np.int64)
    fixed_ids = np.asarray(fixed_ids, dtype=np.int64)
    vals = np.asarray(vals, dtype=np.float64)
    if fixed_factors.ndim != 2:
        raise InvalidMatrixError("fixed_factors must be a 2-D (entities, k) array")
    if not (len(group_ids) == len(fixed_ids) == len(vals)):
        raise InvalidMatrixError("fold-in rating arrays must have equal length")
    if n_groups <= 0:
        raise InvalidMatrixError(f"n_groups must be positive, got {n_groups}")
    if len(group_ids) > 0:
        if group_ids.min() < 0 or group_ids.max() >= n_groups:
            raise InvalidMatrixError(
                f"group ids must lie in [0, {n_groups}), got range "
                f"[{group_ids.min()}, {group_ids.max()}]"
            )
        if fixed_ids.min() < 0 or fixed_ids.max() >= fixed_factors.shape[0]:
            raise InvalidMatrixError(
                f"fixed ids must lie in [0, {fixed_factors.shape[0]}), got "
                f"range [{fixed_ids.min()}, {fixed_ids.max()}]"
            )

    k = fixed_factors.shape[1]
    counts = np.bincount(group_ids, minlength=n_groups).astype(np.int64)
    rows = np.zeros((n_groups, k))
    solvable = counts > 0
    if not solvable.any():
        return rows, counts

    factors = fixed_factors[fixed_ids]  # (nnz, k)
    d_max = int(counts.max())
    if n_groups * d_max * k <= _PAD_ELEMENT_BUDGET:
        # Vectorised path: pack each group's ratings into a zero-padded
        # (n_groups, d_max, k) tensor, then batched BLAS matmuls for the
        # Gram stacks and batched LAPACK calls for the solves.  The zero
        # rows contribute nothing to either product.
        order = np.argsort(group_ids, kind="stable")
        sorted_groups = group_ids[order]
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        position = np.arange(len(order)) - starts[sorted_groups]
        padded = np.zeros((n_groups, d_max, k))
        padded[sorted_groups, position] = factors[order]
        padded_vals = np.zeros((n_groups, d_max, 1))
        padded_vals[sorted_groups, position, 0] = vals[order]
        # Empty groups get an identity system and a zero rhs, so the
        # batched solve hands them a zero row without special-casing.
        ridge = np.where(solvable, regularization * counts, 1.0)
        if d_max < k:
            # Dual (kernel) path: with d ratings the k-by-k normal
            # system (FᵀF + λdI)x = Fᵀr shares its solution with
            # x = Fᵀ(FFᵀ + λdI)⁻¹r — a d-by-d solve.  Newcomers almost
            # always carry far fewer ratings than latent factors, which
            # makes this the cheap side (d³ ≪ k³).  Zero padding rows
            # decouple: their kernel rows are zero off-diagonal and
            # their rhs is zero, so they solve to zero coefficients.
            diag = np.arange(d_max)
            chunk = max(1, _gram_chunk_elements() // (d_max * d_max))
            for start in range(0, n_groups, chunk):
                span = slice(start, start + chunk)
                padded_t = padded[span].transpose(0, 2, 1)
                kernel = padded[span] @ padded_t
                kernel[:, diag, diag] += ridge[span, None]
                coef = np.linalg.solve(kernel, padded_vals[span])
                rows[span] = (padded_t @ coef)[..., 0]
            return rows, counts
        diag = np.arange(k)
        # Chunk the Gram+solve stage: one (chunk, k, k) stack at a time
        # keeps the working set cache-resident and avoids allocating a
        # gram stack hundreds of MB large for big batches.
        chunk = max(1, _gram_chunk_elements() // (k * k))
        for start in range(0, n_groups, chunk):
            span = slice(start, start + chunk)
            padded_t = padded[span].transpose(0, 2, 1)
            gram = padded_t @ padded[span]
            rhs = padded_t @ padded_vals[span]
            gram[:, diag, diag] += ridge[span, None]
            rows[span] = np.linalg.solve(gram, rhs)[..., 0]
        return rows, counts

    # Skewed fallback: one group's rating count is large enough that the
    # padded tensor would blow past the memory budget, so solve group by
    # group (each step is still BLAS over that group's ratings).
    order = np.argsort(group_ids, kind="stable")
    boundaries = np.concatenate([[0], np.cumsum(counts[solvable])])
    eye = np.eye(k)
    for index, group in enumerate(np.flatnonzero(solvable)):
        chunk = order[boundaries[index] : boundaries[index + 1]]
        group_factors = factors[chunk]
        d = len(chunk)
        if d < k:
            # Same dual trick as the vectorised path: a d-by-d solve.
            kernel = (
                group_factors @ group_factors.T
                + regularization * d * np.eye(d)
            )
            rows[group] = group_factors.T @ np.linalg.solve(
                kernel, vals[chunk]
            )
        else:
            gram = (
                group_factors.T @ group_factors
                + regularization * d * eye
            )
            rows[group] = np.linalg.solve(
                gram, group_factors.T @ vals[chunk]
            )
    return rows, counts


def fold_in_objective(
    row: np.ndarray,
    fixed_factors: np.ndarray,
    fixed_ids: np.ndarray,
    vals: np.ndarray,
    regularization: float,
) -> float:
    """The regularised objective a fold-in row minimises (for tests).

    ``sum (r - row·q)^2 + reg * d * ||row||^2`` over one entity's
    ratings — by convexity :func:`solve_fold_in`'s row attains the
    global minimum, so any other row (including the trained one) scores
    greater than or equal.
    """
    residual = vals - fixed_factors[fixed_ids] @ row
    return float(
        residual @ residual
        + regularization * len(vals) * (row @ row)
    )


def grow_model(
    model: FactorModel,
    matrix: SparseRatingMatrix,
    old_shape: Tuple[int, int],
    reg_p: float,
    reg_q: float,
    seed: int = 0,
    init_scale: Optional[float] = None,
) -> FactorModel:
    """Pad a trained model to a grown matrix's shape via fold-in.

    The warm-start half of streaming retrain: ``model`` was trained on
    an ``old_shape`` matrix, ``matrix`` has since grown new users and/or
    items (dimensions never shrink — see
    :meth:`~repro.sparse.SparseRatingMatrix.append`).  The returned
    model has ``matrix``'s shape with

    * the trained factor rows preserved **bitwise** in their positions,
    * new-user rows solved by fold-in against the trained ``Q`` (using
      their ratings on pre-existing items),
    * new-item columns solved by fold-in against the grown ``P`` (using
      every rater, old or new),
    * newcomers with no usable ratings falling back to the same seeded
      uniform init as :meth:`FactorModel.initialize`.

    ``Q`` stays item-major so the resumed run keeps the block-major
    kernel's fast path.
    """
    old_m, old_n = int(old_shape[0]), int(old_shape[1])
    new_m, new_n = matrix.n_rows, matrix.n_cols
    if model.shape != (old_m, old_n):
        raise InvalidMatrixError(
            f"model shape {model.shape} does not match old_shape ({old_m}, {old_n})"
        )
    if new_m < old_m or new_n < old_n:
        raise InvalidMatrixError(
            f"matrix shape ({new_m}, {new_n}) is smaller than the model's "
            f"({old_m}, {old_n}); dimensions never shrink"
        )
    k = model.latent_factors
    if init_scale is None:
        init_scale = 1.0 / np.sqrt(k)
    rng = np.random.default_rng(seed)

    p = np.empty((new_m, k))
    p[:old_m] = model.p
    p[old_m:] = rng.uniform(0.0, init_scale, size=(new_m - old_m, k))
    q_t = np.empty((new_n, k))  # item-major buffer
    q_t[:old_n] = model.q.T
    q_t[old_n:] = rng.uniform(0.0, init_scale, size=(new_n - old_n, k))

    rows, cols, vals = matrix.rows, matrix.cols, matrix.vals
    if new_m > old_m:
        # New users against the *trained* Q: only their ratings on
        # pre-existing items carry signal.
        mask = (rows >= old_m) & (cols < old_n)
        if mask.any():
            solved, counts = solve_fold_in(
                q_t[:old_n],
                rows[mask] - old_m,
                cols[mask],
                vals[mask],
                new_m - old_m,
                reg_p,
            )
            p[old_m:][counts > 0] = solved[counts > 0]
    if new_n > old_n:
        # New items against the grown P: every rater contributes (old
        # users are trained, new users just received fold-in rows).
        mask = cols >= old_n
        if mask.any():
            solved, counts = solve_fold_in(
                p,
                cols[mask] - old_n,
                rows[mask],
                vals[mask],
                new_n - old_n,
                reg_q,
            )
            q_t[old_n:][counts > 0] = solved[counts > 0]

    return FactorModel(p, q_t.T)
