"""Alternating Least Squares (ALS) baseline.

Section III-C of the paper mentions ALS (Koren et al., reference [16]) as
the main non-SGD approach to matrix factorization: each iteration fixes
one factor matrix and solves the regularised least-squares problem for the
other in closed form.  We implement the standard per-row/per-column normal
equations; the baseline lets users of the library compare SGD convergence
with ALS convergence on the same data.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import TrainingConfig
from ..sparse import SparseRatingMatrix
from .losses import rmse
from .model import FactorModel
from .serial import TrainingHistory


def _solve_rows(
    target: np.ndarray,
    fixed: np.ndarray,
    indices_by_row,
    cols_by_row,
    vals_by_row,
    regularization: float,
) -> None:
    """Solve the per-row ridge systems of one ALS half-step in place.

    ``target`` has one row per entity being updated (users when updating
    ``P``), ``fixed`` has one row per opposite entity (items) — i.e. the
    caller passes ``Q.T`` when updating ``P``.
    """
    k = fixed.shape[1]
    eye = np.eye(k)
    for row_index, cols in enumerate(cols_by_row):
        if len(cols) == 0:
            continue
        factors = fixed[cols]                       # (d, k)
        gram = factors.T @ factors + regularization * len(cols) * eye
        rhs = factors.T @ vals_by_row[row_index]
        target[row_index] = np.linalg.solve(gram, rhs)


def _group_by(keys: np.ndarray, count: int):
    """Group positions ``0..len(keys)`` by key value; returns list of index arrays."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = np.searchsorted(sorted_keys, np.arange(count), side="left")
    stops = np.searchsorted(sorted_keys, np.arange(count), side="right")
    return [order[starts[i]:stops[i]] for i in range(count)]


def train_als(
    train: SparseRatingMatrix,
    config: TrainingConfig,
    test: Optional[SparseRatingMatrix] = None,
) -> tuple:
    """Train a factor model with Alternating Least Squares.

    Each iteration performs the two closed-form half-steps (update ``P``
    with ``Q`` fixed, then ``Q`` with ``P`` fixed) described in
    Section III-C of the paper.  The regularisation is weighted by the
    per-entity rating count (the "weighted-lambda" variant), which is the
    form that converges robustly on skewed rating data.

    Returns
    -------
    (FactorModel, TrainingHistory)
    """
    model = FactorModel.for_matrix(train, config)
    history = TrainingHistory()

    user_groups = _group_by(train.rows, train.n_rows)
    item_groups = _group_by(train.cols, train.n_cols)
    user_cols = [train.cols[g] for g in user_groups]
    user_vals = [train.vals[g] for g in user_groups]
    item_rows = [train.rows[g] for g in item_groups]
    item_vals = [train.vals[g] for g in item_groups]

    for _ in range(config.iterations):
        # Update P with Q fixed.
        _solve_rows(
            model.p,
            model.q.T,
            user_groups,
            user_cols,
            user_vals,
            config.reg_p,
        )
        # Update Q with P fixed (operate on Q^T so each item is a row).
        q_t = model.q.T.copy()
        _solve_rows(
            q_t,
            model.p,
            item_groups,
            item_rows,
            item_vals,
            config.reg_q,
        )
        model.q[:, :] = q_t.T

        history.learning_rates.append(0.0)
        history.train_rmse.append(rmse(model, train))
        if test is not None:
            history.test_rmse.append(rmse(model, test))

    return model, history
