"""Execution traces of simulated training runs.

A trace records what the scheduler and the simulated hardware did:
one :class:`TaskRecord` per dispatched task, one :class:`IterationRecord`
per completed iteration (with simulated time and test RMSE), and derived
per-worker utilisation statistics.  The experiment harness mines traces
for the paper's running-time figures, the workload-proportion rows of
Table II and the update-imbalance analysis behind Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional



@dataclass(frozen=True)
class TaskRecord:
    """One dispatched task, as executed by the simulation."""

    worker_index: int
    is_gpu: bool
    start_time: float
    end_time: float
    points: int
    n_blocks: int
    stolen: bool
    iteration: int

    @property
    def duration(self) -> float:
        """Simulated seconds the task occupied its worker."""
        return self.end_time - self.start_time


@dataclass(frozen=True)
class IterationRecord:
    """State at the completion of one training iteration (epoch)."""

    iteration: int
    simulated_time: float
    train_rmse: Optional[float]
    test_rmse: Optional[float]
    points_processed: int


@dataclass
class WorkerStats:
    """Aggregated per-worker activity."""

    worker_index: int
    is_gpu: bool
    busy_time: float = 0.0
    points: int = 0
    tasks: int = 0
    stolen_tasks: int = 0


@dataclass
class ExecutionTrace:
    """Everything recorded during one simulated run."""

    tasks: List[TaskRecord] = field(default_factory=list)
    iterations: List[IterationRecord] = field(default_factory=list)
    final_time: float = 0.0
    target_rmse: Optional[float] = None
    target_reached_at: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_task(self, record: TaskRecord) -> None:
        """Append a completed task."""
        self.tasks.append(record)

    def record_iteration(self, record: IterationRecord) -> None:
        """Append a completed iteration."""
        self.iterations.append(record)

    # ------------------------------------------------------------------ #
    # Derived statistics
    # ------------------------------------------------------------------ #
    def worker_stats(self) -> Dict[int, WorkerStats]:
        """Per-worker busy time, processed points and task counts."""
        stats: Dict[int, WorkerStats] = {}
        for task in self.tasks:
            entry = stats.setdefault(
                task.worker_index,
                WorkerStats(worker_index=task.worker_index, is_gpu=task.is_gpu),
            )
            entry.busy_time += task.duration
            entry.points += task.points
            entry.tasks += 1
            if task.stolen:
                entry.stolen_tasks += 1
        return stats

    def points_by_resource(self) -> Dict[str, int]:
        """Total ratings processed by CPUs vs GPUs.

        This is the "workload proportion" reported in Table II — measured
        from what actually ran rather than from the cost model's plan.
        """
        totals = {"cpu": 0, "gpu": 0}
        for task in self.tasks:
            totals["gpu" if task.is_gpu else "cpu"] += task.points
        return totals

    def resource_share(self) -> Dict[str, float]:
        """Fraction of processed ratings handled by each resource."""
        totals = self.points_by_resource()
        grand = sum(totals.values())
        if grand == 0:
            return {"cpu": 0.0, "gpu": 0.0}
        return {key: value / grand for key, value in totals.items()}

    def total_points(self) -> int:
        """Total ratings processed over the whole run."""
        return sum(task.points for task in self.tasks)

    def rmse_curve(self) -> List[tuple]:
        """``(simulated_time, test_rmse)`` pairs, one per iteration."""
        return [
            (record.simulated_time, record.test_rmse)
            for record in self.iterations
            if record.test_rmse is not None
        ]

    def time_to_rmse(self, target: float) -> Optional[float]:
        """Earliest simulated time at which the test RMSE is <= ``target``."""
        for record in self.iterations:
            if record.test_rmse is not None and record.test_rmse <= target:
                return record.simulated_time
        return None

    def utilization(self, n_workers: int) -> float:
        """Mean fraction of the run each worker spent busy."""
        if self.final_time <= 0 or n_workers <= 0:
            return 0.0
        stats = self.worker_stats()
        busy = sum(entry.busy_time for entry in stats.values())
        return busy / (self.final_time * n_workers)

    def stolen_task_count(self) -> int:
        """Number of tasks dispatched across region boundaries."""
        return sum(1 for task in self.tasks if task.stolen)

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary used by reports and tests."""
        share = self.resource_share()
        return {
            "final_time": self.final_time,
            "iterations": float(len(self.iterations)),
            "total_points": float(self.total_points()),
            "gpu_share": share["gpu"],
            "cpu_share": share["cpu"],
            "stolen_tasks": float(self.stolen_task_count()),
            "final_test_rmse": (
                self.iterations[-1].test_rmse
                if self.iterations and self.iterations[-1].test_rmse is not None
                else float("nan")
            ),
        }
