"""The discrete-event simulation engine.

The engine couples three things:

* a **scheduler** (:mod:`repro.core.schedulers`) deciding which blocks a
  worker processes next;
* a **platform** (:mod:`repro.hardware`) predicting how long each task
  takes on its worker's device;
* the **numerical kernel** (:mod:`repro.sgd.kernels`) actually applying
  the SGD updates of every task to the shared factor matrices.

Simulated time advances event by event: whenever the earliest in-flight
task completes, its updates are applied, its bands are released, per-
iteration accounting is updated, and new tasks are dispatched to the
freed worker and to any workers that were idling for lack of
conflict-free work.

Because blocks processed concurrently never overlap in rows or columns
(the lock table guarantees independence), applying each task's updates at
its completion time produces the same factor matrices a genuinely
parallel execution with the same schedule would.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Optional

from ..config import TrainingConfig
from ..exceptions import SimulationError
from ..exec.base import (
    Engine,
    EngineResult,
    apply_task_updates,
    resolve_stopping_conditions,
)
from ..hardware import HeterogeneousPlatform
from ..sgd import FactorModel, rmse
from ..sgd.schedules import ConstantSchedule, LearningRateSchedule
from ..sparse import BlockStore, SparseRatingMatrix
from ..core.schedulers import Scheduler
from ..core.tasks import Task
from .trace import ExecutionTrace, IterationRecord, TaskRecord


@dataclass
class SimulationResult(EngineResult):
    """Outcome of one simulated training run.

    ``trace.final_time`` (and hence :attr:`simulated_time`) is measured
    in *simulated* seconds of the modelled platform.
    """


class SimulationEngine(Engine):
    """Runs a scheduler against simulated hardware with real SGD updates.

    Parameters
    ----------
    scheduler:
        The block scheduler under test.
    platform:
        The simulated machine; its worker order must match the
        scheduler's (CPU threads first, then GPUs).
    train:
        Training ratings.
    training:
        Hyper-parameters (``k``, ``gamma``, ``lambda``).
    test:
        Optional held-out ratings; needed for RMSE-vs-time curves and
        time-to-target stopping.
    model:
        Optional pre-initialised factor model (a fresh one is created
        otherwise).
    schedule:
        Learning-rate schedule; constant by default.
    exact_kernel:
        Use the exact per-rating kernel (slow; for small validation runs).
    compute_train_rmse:
        Also record training RMSE at iteration boundaries.
    use_block_store:
        Feed the kernels through the block-major data plane
        (:class:`~repro.sparse.BlockStore`: per-block contiguous,
        band-local, validated-once arrays).  Disabling it restores the
        legacy gather-per-task path — bitwise-identical, only slower —
        which exists for benchmarking the data plane against its
        predecessor.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        platform: HeterogeneousPlatform,
        train: SparseRatingMatrix,
        training: TrainingConfig,
        test: Optional[SparseRatingMatrix] = None,
        model: Optional[FactorModel] = None,
        schedule: Optional[LearningRateSchedule] = None,
        exact_kernel: bool = False,
        compute_train_rmse: bool = False,
        use_block_store: bool = True,
    ) -> None:
        if platform.n_workers != scheduler.n_workers:
            raise SimulationError(
                f"platform has {platform.n_workers} workers but the scheduler "
                f"expects {scheduler.n_workers}"
            )
        self.scheduler = scheduler
        self.platform = platform
        self.train = train
        self.test = test
        self.training = training
        self.model = model or FactorModel.for_matrix(train, training)
        self.schedule = schedule or ConstantSchedule(training.learning_rate)
        self.exact_kernel = exact_kernel
        self.compute_train_rmse = compute_train_rmse
        self._devices = platform.all_devices
        self._store = BlockStore(train) if use_block_store else None

    # ------------------------------------------------------------------ #
    # Task execution
    # ------------------------------------------------------------------ #
    def _apply_task(self, task: Task, iteration: int) -> None:
        """Apply the SGD updates of one task to the shared factor model."""
        apply_task_updates(
            self.model,
            self.train,
            task,
            self.schedule(iteration),
            self.training,
            exact_kernel=self.exact_kernel,
            store=self._store,
        )

    def _task_duration(self, task: Task) -> float:
        """Simulated seconds the task occupies its worker's device.

        GPU tasks of *hybrid* runs are slowed by the device's host-
        contention factor: CPU worker threads training concurrently
        compete for host memory bandwidth and the PCIe link, which the
        isolated offline calibration never sees (one of the cost-model
        deviations dynamic scheduling compensates for).
        """
        device = self._devices[task.worker_index]
        work = task.block_work(self.training.latent_factors)
        duration = device.process_time(work)
        if device.is_gpu and self.platform.n_cpu_threads > 0:
            duration *= 1.0 + getattr(device, "host_contention", 0.0)
        if duration <= 0:
            raise SimulationError(
                f"device {device.name} produced a non-positive task duration"
            )
        return duration

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(
        self,
        iterations: Optional[int] = None,
        target_rmse: Optional[float] = None,
        max_simulated_time: Optional[float] = None,
    ) -> SimulationResult:
        """Run the simulation until a stopping condition is met.

        Parameters
        ----------
        iterations:
            Stop after this many full passes over the training ratings
            (defaults to ``training.iterations`` when neither a target
            RMSE nor a time budget is given).
        target_rmse:
            Stop as soon as the test RMSE at an iteration boundary is at
            or below this value (requires a test set).
        max_simulated_time:
            Hard cap on simulated seconds.

        Returns
        -------
        SimulationResult
        """
        max_iterations = resolve_stopping_conditions(
            iterations,
            target_rmse,
            max_simulated_time,
            default_iterations=self.training.iterations,
            has_test=self.test is not None,
            error=SimulationError,
        )

        trace = ExecutionTrace(target_rmse=target_rmse)
        total_points = self.scheduler.total_points
        if total_points <= 0:
            raise SimulationError("the scheduler's grid contains no ratings")

        counter = itertools.count()
        heap = []  # (end_time, sequence, worker_index, task)
        idle_workers = set()
        now = 0.0
        points_completed = 0
        iteration = 0
        iteration_target = total_points
        converged = False
        stopping = False

        self.scheduler.start_iteration()

        def dispatch(worker_index: int, start_time: float) -> bool:
            task = self.scheduler.next_task(worker_index)
            if task is None:
                idle_workers.add(worker_index)
                return False
            end_time = start_time + self._task_duration(task)
            heapq.heappush(heap, (end_time, next(counter), worker_index, task))
            idle_workers.discard(worker_index)
            return True

        for worker_index in range(self.scheduler.n_workers):
            dispatch(worker_index, 0.0)
        if not heap:
            raise SimulationError(
                "no worker could be given an initial task; the grid is too "
                "coarse for the worker count"
            )

        while heap:
            end_time, _, worker_index, task = heapq.heappop(heap)
            now = end_time
            if max_simulated_time is not None and now > max_simulated_time:
                self.scheduler.abort_task(task)
                break

            self._apply_task(task, iteration)
            self.scheduler.complete_task(task)
            points_completed += task.nnz
            trace.record_task(
                TaskRecord(
                    worker_index=worker_index,
                    is_gpu=self.scheduler.is_gpu_worker(worker_index),
                    start_time=end_time - self._task_duration(task),
                    end_time=end_time,
                    points=task.nnz,
                    n_blocks=len(task.blocks),
                    stolen=task.stolen,
                    iteration=iteration,
                )
            )

            # Iteration boundaries (possibly several if a huge task crossed
            # more than one, which only happens on degenerate tiny grids).
            while points_completed >= iteration_target and not stopping:
                test_rmse = rmse(self.model, self.test) if self.test is not None else None
                train_rmse = (
                    rmse(self.model, self.train) if self.compute_train_rmse else None
                )
                trace.record_iteration(
                    IterationRecord(
                        iteration=iteration,
                        simulated_time=now,
                        train_rmse=train_rmse,
                        test_rmse=test_rmse,
                        points_processed=points_completed,
                    )
                )
                iteration += 1
                iteration_target += total_points
                self.scheduler.start_iteration()

                if target_rmse is not None and test_rmse is not None:
                    if test_rmse <= target_rmse:
                        converged = True
                        trace.target_reached_at = now
                        stopping = True
                if iteration >= max_iterations:
                    stopping = True

            if stopping:
                break

            # Give the freed worker new work, then retry any idlers: the
            # completed task may have released the bands or quota they
            # were waiting for.
            dispatch(worker_index, now)
            for waiting in sorted(idle_workers):
                dispatch(waiting, now)

            if not heap and idle_workers:
                raise SimulationError(
                    "all workers are idle with work remaining; the grid or "
                    "quota configuration cannot make progress"
                )

        # Drain in-flight tasks without applying them (the run has ended).
        while heap:
            _, _, _, task = heapq.heappop(heap)
            self.scheduler.abort_task(task)

        trace.final_time = now
        return SimulationResult(model=self.model, trace=trace, converged=converged)
