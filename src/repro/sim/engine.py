"""The discrete-event simulation engine.

The engine couples three things:

* a **scheduler** (:mod:`repro.core.schedulers`) deciding which blocks a
  worker processes next;
* a **platform** (:mod:`repro.hardware`) predicting how long each task
  takes on its worker's device;
* the **numerical kernel** (:mod:`repro.sgd.kernels`) actually applying
  the SGD updates of every task to the shared factor matrices.

Simulated time advances event by event: whenever the earliest in-flight
task completes, its updates are applied, its bands are released, per-
iteration accounting is updated, and new tasks are dispatched to the
freed worker and to any workers that were idling for lack of
conflict-free work.

Because blocks processed concurrently never overlap in rows or columns
(the lock table guarantees independence), applying each task's updates at
its completion time produces the same factor matrices a genuinely
parallel execution with the same schedule would.

The event loop lives in :class:`SimulationSession`, one *stepwise*
session per run (:meth:`SimulationEngine.start`): each ``step()``
advances the simulation to the next epoch boundary and pauses there,
which is what the callback and checkpoint machinery of
:mod:`repro.exec` builds on.  ``run()`` is the inherited loop over
``step()`` and produces results identical to the historical monolithic
loop — the event ordering, scheduler calls and kernel calls of a stepped
run are exactly those of an uninterrupted one.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from ..config import TrainingConfig
from ..exceptions import CheckpointError, SimulationError
from ..exec.base import (
    Engine,
    EngineResult,
    apply_task_updates,
    resolve_stopping_conditions,
)
from ..exec.session import (
    STOP_ITERATIONS,
    STOP_TARGET_RMSE,
    STOP_TIME_BUDGET,
    EngineSession,
    EpochReport,
)
from ..hardware import HeterogeneousPlatform
from ..sgd import FactorModel, rmse
from ..sgd.schedules import ConstantSchedule, LearningRateSchedule
from ..sparse import BlockStore, SparseRatingMatrix
from ..core.schedulers import Scheduler
from ..core.tasks import Task
from .trace import ExecutionTrace, IterationRecord, TaskRecord


@dataclass
class SimulationResult(EngineResult):
    """Outcome of one simulated training run.

    ``trace.final_time`` (and hence :attr:`engine_time`) is measured in
    *simulated* seconds of the modelled platform.
    """


class SimulationSession(EngineSession):
    """One simulated run, advanced to the next epoch boundary per ``step()``.

    The session owns all mutable loop state — the completion-event heap,
    the virtual clock, iteration accounting and the trace — while the
    engine supplies the immutable run inputs (scheduler, platform, data,
    kernels).  Pausing happens *between* events: boundary processing
    defers the post-completion dispatch to the next ``step()`` call,
    which keeps the sequence of scheduler and kernel calls of a stepped
    run identical to an uninterrupted one (dispatching consumes the
    scheduler's tie-break RNG, so its position in the call sequence is
    part of the bitwise contract).
    """

    def __init__(
        self,
        engine: "SimulationEngine",
        iterations: Optional[int] = None,
        target_rmse: Optional[float] = None,
        max_simulated_time: Optional[float] = None,
    ) -> None:
        self._engine = engine
        self._max_iterations = resolve_stopping_conditions(
            iterations,
            target_rmse,
            max_simulated_time,
            default_iterations=engine.training.iterations,
            has_test=engine.test is not None,
            error=SimulationError,
        )
        self._target_rmse = target_rmse
        self._max_time = max_simulated_time
        self._total_points = engine.scheduler.total_points
        if self._total_points <= 0:
            raise SimulationError("the scheduler's grid contains no ratings")

        self._trace = ExecutionTrace(target_rmse=target_rmse)
        self._heap: list = []  # (end_time, sequence, worker_index, task)
        self._seq = 0
        self._idle: set = set()
        self._now = 0.0
        self._points_completed = 0
        self._iteration = 0
        self._iteration_target = self._total_points
        self._converged = False
        self._stopping = False
        self._stop_reason: Optional[str] = None
        self._started = False
        self._finished = False
        self._result: Optional[SimulationResult] = None
        self._pending_reports: List[EpochReport] = []
        #: Workers whose post-completion dispatch was deferred across an
        #: epoch-boundary pause (``None`` when no dispatch is owed).
        self._pending_dispatch: Optional[List[int]] = None

    # ------------------------------------------------------------------ #
    # Protocol surface
    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> "SimulationEngine":
        return self._engine

    @property
    def epoch(self) -> int:
        return self._iteration

    @property
    def done(self) -> bool:
        return self._finished or (self._stopping and not self._pending_reports)

    @property
    def trace(self) -> ExecutionTrace:
        return self._trace

    @property
    def backend_name(self) -> str:
        return "simulate"

    @property
    def started(self) -> bool:
        return self._started

    def stop(self, reason: str = "callback") -> None:
        if not self._stopping:
            self._stopping = True
            self._stop_reason = reason

    def step(self) -> Optional[EpochReport]:
        if self._pending_reports:
            return self._pending_reports.pop(0)
        if self._finished or self._stopping:
            return None
        if not self._started:
            self._started = True
            self._prime()
        if self._iteration >= self._max_iterations:
            # Only reachable on a restored session: a checkpoint taken at
            # (or past) this run's epoch cap has nothing left to do.  A
            # live run sets _stopping at the boundary that reaches the cap.
            self._stopping = True
            if self._stop_reason is None:
                self._stop_reason = STOP_ITERATIONS
            return None
        while True:
            if self._pending_dispatch is not None:
                self._run_pending_dispatch()
            if not self._heap:
                return None
            self._advance_one_event()
            if self._pending_reports:
                return self._pending_reports.pop(0)
            if self._stopping:
                return None

    def finish(self) -> SimulationResult:
        if self._result is not None:
            return self._result
        self._finished = True
        # Drain in-flight tasks without applying them (the run has ended).
        while self._heap:
            _, _, _, task = heapq.heappop(self._heap)
            self._engine.scheduler.abort_task(task)
        self._trace.final_time = self._now
        if self._stop_reason is None:
            self._stop_reason = (
                STOP_ITERATIONS if self._iteration >= self._max_iterations else "aborted"
            )
        self._result = SimulationResult(
            model=self._engine.model,
            trace=self._trace,
            converged=self._converged,
            stop_reason=self._stop_reason,
        )
        return self._result

    # ------------------------------------------------------------------ #
    # Event loop
    # ------------------------------------------------------------------ #
    def _prime(self) -> None:
        self._engine.scheduler.start_iteration()
        for worker_index in range(self._engine.scheduler.n_workers):
            self._dispatch(worker_index, 0.0)
        if not self._heap:
            raise SimulationError(
                "no worker could be given an initial task; the grid is too "
                "coarse for the worker count"
            )

    def _dispatch(self, worker_index: int, start_time: float) -> bool:
        task = self._engine.scheduler.next_task(worker_index)
        if task is None:
            self._idle.add(worker_index)
            return False
        end_time = start_time + self._engine._task_duration(task)
        heapq.heappush(self._heap, (end_time, self._seq, worker_index, task))
        self._seq += 1
        self._idle.discard(worker_index)
        return True

    def _dispatch_completions(self, freed_workers: List[int]) -> None:
        """Give freed workers new work, then retry idlers: a completion
        may have released the bands or quota they were waiting for."""
        for worker_index in freed_workers:
            self._dispatch(worker_index, self._now)
        for waiting in sorted(self._idle):
            self._dispatch(waiting, self._now)
        if not self._heap and self._idle:
            raise SimulationError(
                "all workers are idle with work remaining; the grid or "
                "quota configuration cannot make progress"
            )

    def _run_pending_dispatch(self) -> None:
        freed = self._pending_dispatch or []
        self._pending_dispatch = None
        self._dispatch_completions(freed)

    def _advance_one_event(self) -> None:
        engine = self._engine
        end_time, _, worker_index, task = heapq.heappop(self._heap)
        self._now = end_time
        if self._max_time is not None and self._now > self._max_time:
            engine.scheduler.abort_task(task)
            self._stopping = True
            self._stop_reason = STOP_TIME_BUDGET
            return

        engine._apply_task(task, self._iteration)
        engine.scheduler.complete_task(task)
        self._points_completed += task.nnz
        self._trace.record_task(
            TaskRecord(
                worker_index=worker_index,
                is_gpu=engine.scheduler.is_gpu_worker(worker_index),
                start_time=end_time - engine._task_duration(task),
                end_time=end_time,
                points=task.nnz,
                n_blocks=len(task.blocks),
                stolen=task.stolen,
                iteration=self._iteration,
            )
        )

        # Iteration boundaries (possibly several if a huge task crossed
        # more than one, which only happens on degenerate tiny grids).
        crossed_boundary = False
        while self._points_completed >= self._iteration_target and not self._stopping:
            crossed_boundary = True
            test_rmse = (
                rmse(engine.model, engine.test) if engine.test is not None else None
            )
            train_rmse = (
                rmse(engine.model, engine.train)
                if engine.compute_train_rmse
                else None
            )
            self._trace.record_iteration(
                IterationRecord(
                    iteration=self._iteration,
                    simulated_time=self._now,
                    train_rmse=train_rmse,
                    test_rmse=test_rmse,
                    points_processed=self._points_completed,
                )
            )
            report_epoch = self._iteration
            self._iteration += 1
            self._iteration_target += self._total_points
            engine.scheduler.start_iteration()

            if self._target_rmse is not None and test_rmse is not None:
                if test_rmse <= self._target_rmse:
                    self._converged = True
                    self._trace.target_reached_at = self._now
                    self._stopping = True
                    self._stop_reason = STOP_TARGET_RMSE
            if self._iteration >= self._max_iterations and not self._stopping:
                self._stopping = True
                self._stop_reason = STOP_ITERATIONS
            self._pending_reports.append(
                EpochReport(
                    epoch=report_epoch,
                    engine_time=self._now,
                    train_rmse=train_rmse,
                    test_rmse=test_rmse,
                    points_processed=self._points_completed,
                    converged=self._converged,
                )
            )

        if crossed_boundary:
            # Pause point: defer the post-completion dispatch so the
            # session is observable (and checkpointable) *before* the
            # next scheduler decisions consume tie-break randomness.
            # Recorded even when a stopping condition just fired — a
            # stopping run never executes it, but a checkpoint taken at
            # this boundary must owe the dispatch so a resumed run with a
            # higher epoch cap replays the uninterrupted schedule.
            self._pending_dispatch = [worker_index]
            return
        if self._stopping:
            return
        self._dispatch_completions([worker_index])

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        return {
            "iteration": self._iteration,
            "iteration_target": self._iteration_target,
            "points_completed": self._points_completed,
            "now": self._now,
            "seq": self._seq,
            "converged": self._converged,
            "idle_workers": sorted(int(w) for w in self._idle),
            "pending_dispatch": (
                None
                if self._pending_dispatch is None
                else [int(w) for w in self._pending_dispatch]
            ),
            "in_flight": [
                {
                    "end_time": float(end_time),
                    "seq": int(seq),
                    "worker_index": int(worker_index),
                    "stolen": bool(task.stolen),
                    "resident_p": bool(task.resident_p),
                    "blocks": [
                        [int(block.row_band), int(block.col_band)]
                        for block in task.blocks
                    ],
                }
                for end_time, seq, worker_index, task in sorted(self._heap)
            ],
            "pending_reports": [
                report.to_state() for report in self._pending_reports
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        if self._started:
            raise CheckpointError(
                "session state can only be restored before the first step()"
            )
        self._started = True  # the restored state replaces priming
        engine = self._engine
        self._iteration = int(state["iteration"])
        self._iteration_target = int(state["iteration_target"])
        self._points_completed = int(state["points_completed"])
        self._now = float(state["now"])
        self._seq = int(state["seq"])
        self._converged = bool(state["converged"])
        self._idle = {int(w) for w in state["idle_workers"]}
        for entry in state["in_flight"]:
            blocks = [
                engine.scheduler.grid.block(int(row), int(col))
                for row, col in entry["blocks"]
            ]
            task = Task(
                blocks=blocks,
                worker_index=int(entry["worker_index"]),
                stolen=bool(entry["stolen"]),
                resident_p=bool(entry["resident_p"]),
            )
            engine.scheduler.locks.acquire(task.row_bands, task.col_bands)
            heapq.heappush(
                self._heap,
                (float(entry["end_time"]), int(entry["seq"]), task.worker_index, task),
            )
        pending = state["pending_dispatch"]
        if pending is None and not self._heap:
            # A quiescent checkpoint (threads backend, or a finished
            # boundary with every worker idle): nobody is in flight and
            # no dispatch is owed, so owe one to every non-idle worker.
            pending = [
                w for w in range(engine.scheduler.n_workers) if w not in self._idle
            ]
        self._pending_dispatch = None if pending is None else [int(w) for w in pending]
        self._pending_reports = [
            EpochReport.from_state(report) for report in state["pending_reports"]
        ]


class SimulationEngine(Engine):
    """Runs a scheduler against simulated hardware with real SGD updates.

    Parameters
    ----------
    scheduler:
        The block scheduler under test.
    platform:
        The simulated machine; its worker order must match the
        scheduler's (CPU threads first, then GPUs).
    train:
        Training ratings.
    training:
        Hyper-parameters (``k``, ``gamma``, ``lambda``).
    test:
        Optional held-out ratings; needed for RMSE-vs-time curves and
        time-to-target stopping.
    model:
        Optional pre-initialised factor model (a fresh one is created
        otherwise).
    schedule:
        Learning-rate schedule; constant by default.
    exact_kernel:
        Use the exact per-rating kernel (slow; for small validation runs).
    compute_train_rmse:
        Also record training RMSE at iteration boundaries.
    use_block_store:
        Feed the kernels through the block-major data plane
        (:class:`~repro.sparse.BlockStore`: per-block contiguous,
        band-local, validated-once arrays).  Disabling it restores the
        legacy gather-per-task path — bitwise-identical, only slower —
        which exists for benchmarking the data plane against its
        predecessor.
    """

    backend_name = "simulate"

    def __init__(
        self,
        scheduler: Scheduler,
        platform: HeterogeneousPlatform,
        train: SparseRatingMatrix,
        training: TrainingConfig,
        test: Optional[SparseRatingMatrix] = None,
        model: Optional[FactorModel] = None,
        schedule: Optional[LearningRateSchedule] = None,
        exact_kernel: bool = False,
        compute_train_rmse: bool = False,
        use_block_store: bool = True,
    ) -> None:
        if platform.n_workers != scheduler.n_workers:
            raise SimulationError(
                f"platform has {platform.n_workers} workers but the scheduler "
                f"expects {scheduler.n_workers}"
            )
        self.scheduler = scheduler
        self.platform = platform
        self.train = train
        self.test = test
        self.training = training
        self.model = model or FactorModel.for_matrix(train, training)
        self.schedule = schedule or ConstantSchedule(training.learning_rate)
        self.exact_kernel = exact_kernel
        self.compute_train_rmse = compute_train_rmse
        self._devices = platform.all_devices
        self._store = BlockStore(train) if use_block_store else None
        self._started = False

    # ------------------------------------------------------------------ #
    # Task execution
    # ------------------------------------------------------------------ #
    def _apply_task(self, task: Task, iteration: int) -> None:
        """Apply the SGD updates of one task to the shared factor model."""
        apply_task_updates(
            self.model,
            self.train,
            task,
            self.schedule(iteration),
            self.training,
            exact_kernel=self.exact_kernel,
            store=self._store,
        )

    def _task_duration(self, task: Task) -> float:
        """Simulated seconds the task occupies its worker's device.

        GPU tasks of *hybrid* runs are slowed by the device's host-
        contention factor: CPU worker threads training concurrently
        compete for host memory bandwidth and the PCIe link, which the
        isolated offline calibration never sees (one of the cost-model
        deviations dynamic scheduling compensates for).
        """
        device = self._devices[task.worker_index]
        work = task.block_work(self.training.latent_factors)
        duration = device.process_time(work)
        if device.is_gpu and self.platform.n_cpu_threads > 0:
            duration *= 1.0 + getattr(device, "host_contention", 0.0)
        if duration <= 0:
            raise SimulationError(
                f"device {device.name} produced a non-positive task duration"
            )
        return duration

    # ------------------------------------------------------------------ #
    # Session protocol
    # ------------------------------------------------------------------ #
    def start(
        self,
        iterations: Optional[int] = None,
        target_rmse: Optional[float] = None,
        max_simulated_time: Optional[float] = None,
        pause_on_epoch: Union[bool, Callable[[int], bool]] = False,
    ) -> SimulationSession:
        """Begin a stepwise simulated run (see :class:`SimulationSession`).

        ``pause_on_epoch`` is accepted for protocol compatibility; the
        single-threaded simulator always pauses at epoch boundaries.
        """
        if self._started:
            raise SimulationError(
                "a SimulationEngine can only be run once: its model and "
                "scheduler state are mutated by the run"
            )
        self._started = True
        return SimulationSession(
            self,
            iterations=iterations,
            target_rmse=target_rmse,
            max_simulated_time=max_simulated_time,
        )
