"""Discrete-event simulation engine.

The engine executes a scheduler's decisions against the simulated
hardware: every task a worker receives advances that worker's virtual
clock by the device's predicted processing time while the task's SGD
updates are *actually applied* to the factor matrices with numpy.

The result couples genuine training dynamics (real RMSE trajectories,
real sensitivity to update ordering and imbalance) with paper-shaped
timing, which is what lets the reproduction regenerate both the quality
figures (12, 13) and the running-time figures (10, 11) without a GPU.
"""

from .trace import ExecutionTrace, IterationRecord, TaskRecord, WorkerStats
from .engine import SimulationEngine, SimulationResult, SimulationSession

__all__ = [
    "ExecutionTrace",
    "IterationRecord",
    "TaskRecord",
    "WorkerStats",
    "SimulationEngine",
    "SimulationResult",
    "SimulationSession",
]
