"""CUDA-stream pipeline model (Figure 8 of the paper).

CuMF_SGD, and the GPU path of HSGD*, use three CUDA streams so that the
host-to-device copy of block ``B'``, the kernel execution on block ``B``,
and the device-to-host copy of the previously updated factor segments all
proceed concurrently.  The consequence the paper's cost model relies on
(Equation 9) is that for a long run of blocks the total GPU time is
governed by the *maximum* of the per-stream times, not their sum, with
only a fill/drain term for the first and last blocks.

:class:`StreamPipelineModel` computes the makespan of such a three-stage
pipeline given the per-block stage times, both exactly (dynamic recurrence
over the pipeline) and in the paper's asymptotic ``max`` approximation.
"""

from __future__ import annotations

from typing import Sequence

from ..exceptions import ConfigurationError


class StreamPipelineModel:
    """Three-stage (H2D copy, kernel, D2H copy) pipeline timing model."""

    def __init__(self, overlap_enabled: bool = True) -> None:
        #: When ``False`` the three stages are treated as strictly serial,
        #: i.e. without CUDA streams.  Used by the stream-overlap ablation.
        self.overlap_enabled = overlap_enabled

    # ------------------------------------------------------------------ #
    # Exact makespan
    # ------------------------------------------------------------------ #
    def makespan(
        self,
        h2d_times: Sequence[float],
        kernel_times: Sequence[float],
        d2h_times: Sequence[float],
    ) -> float:
        """Total time to push ``n`` blocks through the pipeline.

        With overlap enabled, the classical flow-shop recurrence is used:
        stage ``s`` of block ``i`` can start only after stage ``s`` of
        block ``i-1`` and stage ``s-1`` of block ``i`` have both finished.
        With overlap disabled the stages of every block run back-to-back.
        """
        n = len(kernel_times)
        if not (len(h2d_times) == n == len(d2h_times)):
            raise ConfigurationError(
                "per-stream time sequences must have equal length"
            )
        if n == 0:
            return 0.0
        if any(t < 0 for t in h2d_times) or any(t < 0 for t in kernel_times) or any(
            t < 0 for t in d2h_times
        ):
            raise ConfigurationError("stage times must be non-negative")

        if not self.overlap_enabled:
            return float(sum(h2d_times) + sum(kernel_times) + sum(d2h_times))

        h2d_done = 0.0
        kernel_done = 0.0
        d2h_done = 0.0
        for i in range(n):
            h2d_done = h2d_done + h2d_times[i]
            kernel_done = max(kernel_done, h2d_done) + kernel_times[i]
            d2h_done = max(d2h_done, kernel_done) + d2h_times[i]
        return float(d2h_done)

    # ------------------------------------------------------------------ #
    # Steady-state (cost-model) approximation
    # ------------------------------------------------------------------ #
    def steady_state_block_time(
        self, h2d_time: float, kernel_time: float, d2h_time: float
    ) -> float:
        """Per-block cost in the long-pipeline limit.

        This is the approximation behind Equation 9 of the paper: once the
        pipeline is full, each additional block costs the maximum of its
        three stage times (with overlap) or their sum (without).
        """
        if min(h2d_time, kernel_time, d2h_time) < 0:
            raise ConfigurationError("stage times must be non-negative")
        if self.overlap_enabled:
            return max(h2d_time, kernel_time, d2h_time)
        return h2d_time + kernel_time + d2h_time

    def __repr__(self) -> str:
        state = "overlapped" if self.overlap_enabled else "serial"
        return f"StreamPipelineModel({state})"
