"""The heterogeneous platform: a collection of CPU threads and GPUs.

:class:`HeterogeneousPlatform` assembles concrete devices from a
:class:`~repro.hardware.presets.PlatformPreset` and a
:class:`~repro.config.HardwareConfig`, and is the single object the
scheduling and simulation layers receive to describe "the machine".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..config import HardwareConfig
from ..exceptions import ConfigurationError
from .device import BlockWork, CPUThreadDevice, Device, GPUDevice
from .presets import PAPER_MACHINE, PlatformPreset
from .streams import StreamPipelineModel


class HeterogeneousPlatform:
    """A machine with ``nc`` CPU worker threads and ``ng`` GPUs.

    Parameters
    ----------
    cpu_devices:
        One device per CPU worker thread.
    gpu_devices:
        One device per GPU.

    Notes
    -----
    Devices are exposed in a fixed order — CPU threads first, then GPUs —
    and schedulers identify workers by their index into
    :attr:`all_devices`.
    """

    def __init__(
        self,
        cpu_devices: Sequence[CPUThreadDevice],
        gpu_devices: Sequence[GPUDevice],
    ) -> None:
        if not cpu_devices and not gpu_devices:
            raise ConfigurationError("a platform needs at least one device")
        self.cpu_devices: List[CPUThreadDevice] = list(cpu_devices)
        self.gpu_devices: List[GPUDevice] = list(gpu_devices)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_preset(
        cls,
        hardware: HardwareConfig,
        preset: Optional[PlatformPreset] = None,
        stream_overlap: bool = True,
    ) -> "HeterogeneousPlatform":
        """Build a platform for ``hardware`` using a machine preset.

        Parameters
        ----------
        hardware:
            Worker counts: ``cpu_threads``, ``gpu_count`` and the GPU
            parallel-worker setting.
        preset:
            Machine constants; the paper's machine when omitted.
        stream_overlap:
            Disable to model a GPU without CUDA-stream overlap (used by
            the stream ablation benchmark).
        """
        preset = preset or PAPER_MACHINE
        cpus = [
            CPUThreadDevice(
                name=f"cpu-{i}",
                throughput=preset.cpu_curve(),
                per_block_overhead=preset.cpu_per_block_overhead,
                measurement_noise=preset.measurement_noise,
                seed=1000 + i,
            )
            for i in range(hardware.cpu_threads)
        ]
        gpus = [
            GPUDevice(
                name=f"gpu-{i}",
                kernel_curve=preset.gpu_curve(),
                pcie=preset.pcie_link(),
                streams=StreamPipelineModel(overlap_enabled=stream_overlap),
                parallel_workers=hardware.gpu_parallel_workers,
                kernel_launch_overhead=preset.gpu_kernel_launch_overhead,
                column_locality=preset.gpu_column_locality,
                host_contention=preset.gpu_host_contention,
                measurement_noise=preset.measurement_noise,
                seed=2000 + i,
            )
            for i in range(hardware.gpu_count)
        ]
        return cls(cpus, gpus)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_cpu_threads(self) -> int:
        """Number of CPU worker threads ``nc``."""
        return len(self.cpu_devices)

    @property
    def n_gpus(self) -> int:
        """Number of GPUs ``ng``."""
        return len(self.gpu_devices)

    @property
    def all_devices(self) -> List[Device]:
        """All devices, CPU threads first then GPUs."""
        return list(self.cpu_devices) + list(self.gpu_devices)

    @property
    def n_workers(self) -> int:
        """Total number of scheduling workers."""
        return self.n_cpu_threads + self.n_gpus

    def device(self, index: int) -> Device:
        """The device at position ``index`` of :attr:`all_devices`."""
        devices = self.all_devices
        if not 0 <= index < len(devices):
            raise ConfigurationError(
                f"device index {index} outside [0, {len(devices)})"
            )
        return devices[index]

    def is_gpu_worker(self, index: int) -> bool:
        """Whether worker ``index`` is a GPU."""
        return index >= self.n_cpu_threads

    def representative_cpu(self) -> CPUThreadDevice:
        """A CPU thread to probe during calibration (all threads are identical)."""
        if not self.cpu_devices:
            raise ConfigurationError("platform has no CPU threads")
        return self.cpu_devices[0]

    def representative_gpu(self) -> GPUDevice:
        """A GPU to probe during calibration (all GPUs are identical)."""
        if not self.gpu_devices:
            raise ConfigurationError("platform has no GPUs")
        return self.gpu_devices[0]

    # ------------------------------------------------------------------ #
    # Aggregate throughput estimates
    # ------------------------------------------------------------------ #
    def total_cpu_speed(self, work: BlockWork) -> float:
        """Aggregate CPU update speed (ratings/s) on blocks shaped like ``work``."""
        return sum(device.update_speed(work) for device in self.cpu_devices)

    def total_gpu_speed(self, work: BlockWork) -> float:
        """Aggregate GPU update speed (ratings/s) on blocks shaped like ``work``."""
        return sum(device.update_speed(work) for device in self.gpu_devices)

    def __repr__(self) -> str:
        return (
            f"HeterogeneousPlatform(nc={self.n_cpu_threads}, ng={self.n_gpus})"
        )
