"""Simulated heterogeneous CPU-GPU hardware substrate.

The paper's experiments run on a real Xeon + Quadro P4000 machine.  This
reproduction has no GPU, so the hardware layer is a parametric simulation
whose *shapes* match the paper's measurements:

* per-CPU-thread update throughput is flat in block size (Observation 2,
  Figure 3(b));
* GPU kernel throughput grows roughly logarithmically with block size and
  saturates (Observation 1, Figures 3(a) and 7);
* PCIe transfer bandwidth ramps up with transfer size and saturates
  (Figure 6);
* data transfer and kernel execution overlap through three CUDA streams,
  so a GPU's effective block time is the maximum of its streams rather
  than their sum (Figure 8, Equation 9).

The scheduling and cost-model layers of the library only interact with
the abstract :class:`~repro.hardware.device.Device` interface, so the
same code would drive real hardware given a concrete implementation.
"""

from .device import BlockWork, CPUThreadDevice, Device, GPUDevice
from .fingerprint import fingerprint_matches, machine_fingerprint, usable_cores
from .pcie import PCIeLinkModel
from .platform import HeterogeneousPlatform
from .presets import (
    PAPER_MACHINE,
    PlatformPreset,
    balanced_machine_preset,
    cpu_heavy_machine_preset,
    gpu_heavy_machine_preset,
    paper_machine_preset,
)
from .streams import StreamPipelineModel
from .throughput import (
    ConstantThroughputCurve,
    SaturatingLogThroughputCurve,
    ThroughputCurve,
)

__all__ = [
    "BlockWork",
    "CPUThreadDevice",
    "Device",
    "GPUDevice",
    "fingerprint_matches",
    "machine_fingerprint",
    "usable_cores",
    "PCIeLinkModel",
    "HeterogeneousPlatform",
    "PAPER_MACHINE",
    "PlatformPreset",
    "balanced_machine_preset",
    "cpu_heavy_machine_preset",
    "gpu_heavy_machine_preset",
    "paper_machine_preset",
    "StreamPipelineModel",
    "ConstantThroughputCurve",
    "SaturatingLogThroughputCurve",
    "ThroughputCurve",
]
