"""Platform presets.

The default preset mirrors the paper's experimental machine (Section VII):
an Intel Xeon E5-2687W v3 with 16 usable worker threads and one NVIDIA
Quadro P4000 on PCI Express 3.0 x16 (32 GB/s nominal, ~12 GB/s effective
copy bandwidth), with throughput constants read off Figures 3, 6 and 7:

* per CPU thread: ~5 million rating updates per second, flat in block size
  (Figure 3(b)), i.e. ~80 M updates/s for the default 16 threads;
* GPU at the default 128 parallel workers: end-to-end update throughput
  that rises steeply with block size and saturates around ~65 M updates/s
  for multi-million-rating blocks.  The shape follows Figures 3(a)/7; the
  peak level is chosen so that the *orderings* of Figures 10 and 11 hold
  (at 128 workers GPU-Only is a bit slower than 16-thread CPU-Only and
  overtakes it by 256-512 workers, exactly as the paper reports for R1),
  which is the property the scheduling contribution depends on.

Scaled presets
--------------
The reproduction trains on synthetic datasets roughly 1000x smaller than
the paper's (see DESIGN.md).  To preserve the *geometry* that drives the
paper's findings — how large a block is relative to the GPU's saturation
point — :meth:`PlatformPreset.scaled` shrinks every size-like constant
(saturation size, ramp size, per-transfer latency, per-block overheads) by
the same factor while keeping peak throughputs unchanged.  Relative
quantities (speedups, workload splits, curve shapes) are invariant under
this scaling; absolute simulated seconds shrink by the factor.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..exceptions import ConfigurationError
from .pcie import GIGABYTE, PCIeLinkModel
from .throughput import ConstantThroughputCurve, SaturatingLogThroughputCurve


@dataclass(frozen=True)
class PlatformPreset:
    """Bundle of device constants describing one physical machine.

    Attributes
    ----------
    name:
        Human-readable preset name.
    cpu_points_per_second:
        Flat per-thread CPU update throughput (ratings per second).
    gpu_peak_points_per_second:
        GPU kernel throughput plateau at the reference 128 parallel
        workers.
    gpu_min_points_per_second:
        GPU kernel throughput for a vanishingly small block.
    gpu_saturation_size:
        Block size (ratings) at which the GPU kernel saturates.
    gpu_ramp_size:
        Shape parameter of the logarithmic ramp of the GPU kernel curve.
    gpu_column_locality:
        Strength of the column-locality (memory-coalescing) effect of the
        GPU kernel: blocks whose ratings are spread over many item
        columns relative to their size run somewhat slower than compact
        blocks.  See :class:`repro.hardware.device.GPUDevice`.
    gpu_host_contention:
        Relative slowdown of GPU tasks when CPU worker threads are
        training concurrently (host-memory and PCIe contention).  The
        offline calibration probes each device in isolation — exactly as
        the paper's Algorithm 3 does — so this is one of the honest
        "deviations between the cost model and the practical performance"
        that the dynamic scheduling phase (Section VI-A) absorbs.
    pcie_peak_bandwidth:
        Effective peak copy bandwidth of the PCIe link in bytes/second.
    pcie_latency:
        Fixed per-copy overhead in seconds.
    cpu_per_block_overhead:
        Per-block scheduling overhead of one CPU thread in seconds.
    gpu_kernel_launch_overhead:
        Per-kernel-launch overhead in seconds.
    measurement_noise:
        Relative standard deviation of calibration measurements.
    scale:
        The size scale this preset has been shrunk to (1.0 = the real
        machine); recorded so experiment reports can convert simulated
        seconds back into machine-equivalent seconds.
    """

    name: str
    cpu_points_per_second: float = 5_000_000.0
    gpu_peak_points_per_second: float = 65_000_000.0
    gpu_min_points_per_second: float = 8_000_000.0
    gpu_saturation_size: float = 12_000_000.0
    gpu_ramp_size: float = 800_000.0
    gpu_column_locality: float = 0.08
    gpu_host_contention: float = 0.15
    pcie_peak_bandwidth: float = 12.0 * GIGABYTE
    pcie_latency: float = 12e-6
    cpu_per_block_overhead: float = 2e-5
    gpu_kernel_launch_overhead: float = 2e-5
    measurement_noise: float = 0.0
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {self.scale}")

    def cpu_curve(self) -> ConstantThroughputCurve:
        """Throughput curve of one CPU worker thread."""
        return ConstantThroughputCurve(self.cpu_points_per_second)

    def gpu_curve(self) -> SaturatingLogThroughputCurve:
        """Kernel throughput curve of the GPU at 128 parallel workers."""
        return SaturatingLogThroughputCurve(
            peak_points_per_second=self.gpu_peak_points_per_second,
            min_points_per_second=self.gpu_min_points_per_second,
            saturation_size=self.gpu_saturation_size,
            ramp_size=self.gpu_ramp_size,
        )

    def pcie_link(self) -> PCIeLinkModel:
        """PCIe link model of the machine."""
        return PCIeLinkModel(
            peak_bandwidth=self.pcie_peak_bandwidth, latency=self.pcie_latency
        )

    def scaled(self, factor: float) -> "PlatformPreset":
        """Return a preset whose size-like constants are multiplied by ``factor``.

        Used to match scaled-down datasets: peak throughputs stay the same
        while the block sizes at which they are reached shrink, so the
        relative position of a block on the throughput curve is preserved.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return dataclasses.replace(
            self,
            name=f"{self.name}-x{factor:g}",
            gpu_saturation_size=self.gpu_saturation_size * factor,
            gpu_ramp_size=self.gpu_ramp_size * factor,
            pcie_latency=self.pcie_latency * factor,
            cpu_per_block_overhead=self.cpu_per_block_overhead * factor,
            gpu_kernel_launch_overhead=self.gpu_kernel_launch_overhead * factor,
            scale=self.scale * factor,
        )

    def with_noise(self, measurement_noise: float) -> "PlatformPreset":
        """Return a preset whose calibration measurements carry noise."""
        return dataclasses.replace(self, measurement_noise=measurement_noise)


def paper_machine_preset(measurement_noise: float = 0.0) -> PlatformPreset:
    """The paper's Xeon E5-2687W v3 + Quadro P4000 machine."""
    return PlatformPreset(name="paper-machine", measurement_noise=measurement_noise)


def cpu_heavy_machine_preset() -> PlatformPreset:
    """A machine whose CPU is strong relative to a modest GPU.

    Useful for checking that the cost model shifts work towards the CPU
    when the GPU advantage shrinks.
    """
    return PlatformPreset(
        name="cpu-heavy-machine",
        cpu_points_per_second=9_000_000.0,
        gpu_peak_points_per_second=40_000_000.0,
        gpu_min_points_per_second=6_000_000.0,
        gpu_saturation_size=1_500_000.0,
        gpu_ramp_size=120_000.0,
    )


def gpu_heavy_machine_preset() -> PlatformPreset:
    """A machine with a much faster GPU (e.g. a data-centre accelerator)."""
    return PlatformPreset(
        name="gpu-heavy-machine",
        cpu_points_per_second=4_000_000.0,
        gpu_peak_points_per_second=250_000_000.0,
        gpu_min_points_per_second=20_000_000.0,
        gpu_saturation_size=5_000_000.0,
        gpu_ramp_size=300_000.0,
        pcie_peak_bandwidth=24.0 * GIGABYTE,
    )


def balanced_machine_preset() -> PlatformPreset:
    """A machine where 16 CPU threads roughly equal one GPU in total power."""
    return PlatformPreset(
        name="balanced-machine",
        cpu_points_per_second=6_000_000.0,
        gpu_peak_points_per_second=96_000_000.0,
        gpu_ramp_size=200_000.0,
    )


#: The default preset used throughout examples, tests and benchmarks.
PAPER_MACHINE = paper_machine_preset()
