"""PCIe link model: transfer bandwidth as a function of transfer size.

Figure 6 of the paper measures the host-to-device and device-to-host copy
bandwidth of the Quadro P4000 over PCI Express 3.0 x16: small transfers
achieve only a fraction of the 12+ GB/s peak because per-transfer launch
overheads dominate, and the speed saturates somewhere in the tens of
megabytes.

The model here uses the classic latency-plus-bandwidth form

.. math::

    t(s) = t_0 + s / B_{peak}
    \\quad\\Rightarrow\\quad
    \\text{bandwidth}(s) = \\frac{s}{t_0 + s / B_{peak}}

which reproduces the measured ramp-then-plateau shape.  The paper's cost
model fits its own functional form (``a \\sqrt{\\log s} + b`` then linear)
against measurements of this link, exactly as it does against the real
bus.
"""

from __future__ import annotations

from ..exceptions import ConfigurationError

#: Bytes in one gigabyte, for converting the paper's GB/s axis labels.
GIGABYTE = 1_000_000_000.0


class PCIeLinkModel:
    """Latency + bandwidth model of a host-device link.

    Parameters
    ----------
    peak_bandwidth:
        Asymptotic copy bandwidth in bytes per second.
    latency:
        Fixed per-transfer overhead in seconds (driver launch, DMA setup).
    asymmetry:
        Multiplier (< 1 slows it down) applied to device-to-host copies;
        real PCIe links are mildly asymmetric and the paper observes the
        D2H direction is never the bottleneck.
    """

    def __init__(
        self,
        peak_bandwidth: float = 12.0 * GIGABYTE,
        latency: float = 12e-6,
        asymmetry: float = 0.95,
    ) -> None:
        if peak_bandwidth <= 0:
            raise ConfigurationError(
                f"peak_bandwidth must be positive, got {peak_bandwidth}"
            )
        if latency < 0:
            raise ConfigurationError(f"latency must be non-negative, got {latency}")
        if not 0 < asymmetry <= 1:
            raise ConfigurationError(
                f"asymmetry must lie in (0, 1], got {asymmetry}"
            )
        self.peak_bandwidth = float(peak_bandwidth)
        self.latency = float(latency)
        self.asymmetry = float(asymmetry)

    # ------------------------------------------------------------------ #
    # Host to device (CPU -> GPU)
    # ------------------------------------------------------------------ #
    def host_to_device_time(self, size_bytes: float) -> float:
        """Seconds to copy ``size_bytes`` from host memory to the device."""
        if size_bytes <= 0:
            return 0.0
        return self.latency + size_bytes / self.peak_bandwidth

    def host_to_device_bandwidth(self, size_bytes: float) -> float:
        """Effective H2D bandwidth (bytes/s) for a transfer of ``size_bytes``."""
        if size_bytes <= 0:
            return 0.0
        return size_bytes / self.host_to_device_time(size_bytes)

    # ------------------------------------------------------------------ #
    # Device to host (GPU -> CPU)
    # ------------------------------------------------------------------ #
    def device_to_host_time(self, size_bytes: float) -> float:
        """Seconds to copy ``size_bytes`` from the device back to the host."""
        if size_bytes <= 0:
            return 0.0
        return self.latency + size_bytes / (self.peak_bandwidth * self.asymmetry)

    def device_to_host_bandwidth(self, size_bytes: float) -> float:
        """Effective D2H bandwidth (bytes/s) for a transfer of ``size_bytes``."""
        if size_bytes <= 0:
            return 0.0
        return size_bytes / self.device_to_host_time(size_bytes)

    def __repr__(self) -> str:
        return (
            f"PCIeLinkModel(peak={self.peak_bandwidth / GIGABYTE:.1f} GB/s, "
            f"latency={self.latency * 1e6:.1f} us)"
        )
