"""Machine fingerprinting for tuned profiles.

A :class:`~repro.tune.TunedProfile` is only meaningful on the machine it
was calibrated on — the whole point of on-machine tuning is that the
fitted constants encode *this* host's BLAS build, core count and memory
hierarchy.  The fingerprint is a small, JSON-serializable dict of the
stable facts a profile consumer can compare against the current host to
warn when a profile travelled: platform triple, python/numpy versions,
core counts.

It deliberately contains nothing volatile (no hostname, no load
averages, no timestamps) so two calibration runs on the same machine
produce the identical fingerprint, and nothing private (no serial
numbers, no MAC addresses) so profiles are safe to commit or upload as
CI artifacts.
"""

from __future__ import annotations

import os
import platform as _platform
from typing import Any, Dict


def usable_cores() -> int:
    """CPU cores this process may actually run on.

    Containers and CI runners routinely pin processes to a subset of the
    host's cores; ``sched_getaffinity`` sees the pinning where
    ``cpu_count`` does not.  This is the figure every worker-count
    decision in the autotuner keys off (the dev container reports 1).
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def machine_fingerprint() -> Dict[str, Any]:
    """Stable identity of the current host for profile provenance."""
    import numpy

    return {
        "platform": _platform.platform(),
        "machine": _platform.machine(),
        "python": _platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count() or 1,
        "usable_cores": usable_cores(),
    }


def fingerprint_matches(
    recorded: Dict[str, Any], current: Dict[str, Any] | None = None
) -> bool:
    """Whether a recorded fingerprint describes the current host.

    Compares only the fields that change the *shape* of good
    configuration — core counts and the numpy build — so a patch-level
    OS update does not invalidate a profile.
    """
    if current is None:
        current = machine_fingerprint()
    keys = ("machine", "numpy", "cpu_count", "usable_cores")
    return all(recorded.get(key) == current.get(key) for key in keys)
