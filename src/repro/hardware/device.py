"""Simulated compute devices: CPU worker threads and GPUs.

A *device* is anything the scheduler can hand a block of ratings to.  The
scheduling, cost-model and simulation layers interact with devices only
through this module's interface:

* :meth:`Device.process_time` — how many (simulated) seconds the device
  needs to update every rating of a block once;
* :meth:`Device.measure_update_speed` — a noisy probe of update
  throughput, which is what the offline calibration of Algorithm 3 uses
  (the calibration must *not* see the underlying curve parameters, just as
  the paper's calibration only sees wall-clock measurements).

Two implementations are provided: a CPU worker thread with flat
throughput (Observation 2) and a GPU with a saturating kernel-throughput
curve, a PCIe link, a three-stream pipeline, and a parallel-worker scaling
knob (Observation 1, Figures 3/6/7/8).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError
from .pcie import PCIeLinkModel
from .streams import StreamPipelineModel
from .throughput import ConstantThroughputCurve, SaturatingLogThroughputCurve, ThroughputCurve

#: Bytes used to store one rating on the device: two 32-bit indices plus a
#: 32-bit float value, the compact layout CuMF_SGD transfers over PCIe.
BYTES_PER_RATING = 12

#: Bytes per factor value (single precision on the device).
BYTES_PER_FACTOR = 4

#: Reference number of GPU parallel workers at which the kernel-throughput
#: curve parameters are specified (the paper's default configuration).
REFERENCE_GPU_WORKERS = 128

#: Exponent of the diminishing-returns scaling of GPU throughput with the
#: number of parallel workers.  Chosen so the 32 -> 512 worker sweep of
#: Figure 10 spans roughly the same relative speedup as the paper (about
#: 7x across a 16x worker increase).
GPU_WORKER_SCALING_EXPONENT = 0.72


@dataclass(frozen=True)
class BlockWork:
    """Description of one unit of block work handed to a device.

    Attributes
    ----------
    nnz:
        Number of ratings in the block.
    p_rows:
        Number of user rows in the block's row band (the rows of ``P``
        that must be resident on the device).
    q_cols:
        Number of item columns in the block's column band.
    latent_factors:
        Latent dimensionality ``k``; determines factor-segment sizes.
    """

    nnz: int
    p_rows: int = 0
    q_cols: int = 0
    latent_factors: int = 128

    def __post_init__(self) -> None:
        if self.nnz < 0 or self.p_rows < 0 or self.q_cols < 0:
            raise ConfigurationError("block work sizes must be non-negative")
        if self.latent_factors <= 0:
            raise ConfigurationError("latent_factors must be positive")

    @property
    def factor_bytes(self) -> int:
        """Bytes of the P-row and Q-column segments touched by the block."""
        return (self.p_rows + self.q_cols) * self.latent_factors * BYTES_PER_FACTOR

    @property
    def host_to_device_bytes(self) -> int:
        """Bytes shipped to the GPU: the ratings plus the factor segments."""
        return self.nnz * BYTES_PER_RATING + self.factor_bytes

    @property
    def device_to_host_bytes(self) -> int:
        """Bytes shipped back: only the updated factor segments."""
        return self.factor_bytes


class Device(ABC):
    """Abstract compute device used by schedulers and the cost models."""

    def __init__(self, name: str, measurement_noise: float = 0.0, seed: int = 0) -> None:
        if measurement_noise < 0:
            raise ConfigurationError(
                f"measurement_noise must be non-negative, got {measurement_noise}"
            )
        self.name = name
        self.measurement_noise = float(measurement_noise)
        self._rng = np.random.default_rng(seed)

    # -- identity ------------------------------------------------------- #
    @property
    @abstractmethod
    def is_gpu(self) -> bool:
        """Whether this device is a GPU (affects division and cost models)."""

    # -- timing --------------------------------------------------------- #
    @abstractmethod
    def process_time(self, work: BlockWork) -> float:
        """Simulated seconds to update every rating of ``work`` once."""

    def update_speed(self, work: BlockWork) -> float:
        """Sustained update speed (ratings / second) on ``work``."""
        if work.nnz == 0:
            return 0.0
        return work.nnz / self.process_time(work)

    # -- calibration probes --------------------------------------------- #
    def measure_process_time(self, work: BlockWork) -> float:
        """A (possibly noisy) wall-clock measurement of :meth:`process_time`.

        This is what the offline calibration phase observes; the noise
        models run-to-run variance of real hardware.
        """
        base = self.process_time(work)
        if self.measurement_noise == 0.0:
            return base
        jitter = self._rng.normal(loc=1.0, scale=self.measurement_noise)
        return base * max(0.5, jitter)

    def measure_update_speed(self, work: BlockWork) -> float:
        """A (possibly noisy) measurement of update throughput on ``work``."""
        if work.nnz == 0:
            return 0.0
        return work.nnz / self.measure_process_time(work)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class CPUThreadDevice(Device):
    """One CPU worker thread.

    Its throughput is flat in block size (Observation 2 of the paper);
    only an optional tiny per-block scheduling overhead is added, which
    keeps extremely fine grids from being entirely free.
    """

    def __init__(
        self,
        name: str = "cpu-thread",
        throughput: Optional[ThroughputCurve] = None,
        per_block_overhead: float = 5e-5,
        measurement_noise: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(name, measurement_noise=measurement_noise, seed=seed)
        if per_block_overhead < 0:
            raise ConfigurationError("per_block_overhead must be non-negative")
        self.throughput = throughput or ConstantThroughputCurve(5_000_000.0)
        self.per_block_overhead = float(per_block_overhead)

    @property
    def is_gpu(self) -> bool:
        return False

    def process_time(self, work: BlockWork) -> float:
        if work.nnz == 0:
            return self.per_block_overhead
        return self.per_block_overhead + self.throughput.seconds_for(work.nnz)


class GPUDevice(Device):
    """One GPU with a saturating kernel, a PCIe link and stream overlap.

    Parameters
    ----------
    kernel_curve:
        Kernel update-throughput curve at the reference parallel-worker
        count (:data:`REFERENCE_GPU_WORKERS`).
    pcie:
        The PCIe link model used for host-device copies.
    streams:
        Pipeline model combining the copy and kernel stages.
    parallel_workers:
        Number of GPU parallel workers (CuMF_SGD definition); raises or
        lowers the whole kernel curve with diminishing returns.
    kernel_launch_overhead:
        Fixed per-kernel-launch cost in seconds.
    column_locality:
        Strength of the memory-coalescing/locality effect: a block whose
        ratings touch many distinct item columns relative to its size
        scatters its ``Q`` accesses over a wide address range and runs
        slower than a compact block of the same size.  The kernel speed is
        multiplied by ``1 / (1 + column_locality * q_cols / nnz)``.  This
        is what creates the honest gap between offline calibration (which
        probes shuffled samples spanning nearly every column) and the
        compact blocks of the real division — the gap the paper's dynamic
        scheduling phase exists to absorb.
    host_contention:
        Relative slowdown of this GPU when CPU worker threads train
        concurrently on the same host (memory-bandwidth and PCIe
        contention).  The device's own timing methods never apply it —
        isolated calibration must not see it; the simulation engine
        applies it to GPU tasks of hybrid runs.
    """

    def __init__(
        self,
        name: str = "gpu",
        kernel_curve: Optional[SaturatingLogThroughputCurve] = None,
        pcie: Optional[PCIeLinkModel] = None,
        streams: Optional[StreamPipelineModel] = None,
        parallel_workers: int = REFERENCE_GPU_WORKERS,
        kernel_launch_overhead: float = 2e-5,
        column_locality: float = 0.08,
        host_contention: float = 0.15,
        measurement_noise: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(name, measurement_noise=measurement_noise, seed=seed)
        if parallel_workers <= 0:
            raise ConfigurationError(
                f"parallel_workers must be positive, got {parallel_workers}"
            )
        if kernel_launch_overhead < 0:
            raise ConfigurationError("kernel_launch_overhead must be non-negative")
        if column_locality < 0:
            raise ConfigurationError("column_locality must be non-negative")
        if host_contention < 0:
            raise ConfigurationError("host_contention must be non-negative")
        self.kernel_curve = kernel_curve or SaturatingLogThroughputCurve(
            peak_points_per_second=65_000_000.0,
            min_points_per_second=8_000_000.0,
            saturation_size=12_000_000.0,
            ramp_size=800_000.0,
        )
        self.pcie = pcie or PCIeLinkModel()
        self.streams = streams or StreamPipelineModel()
        self.parallel_workers = int(parallel_workers)
        self.kernel_launch_overhead = float(kernel_launch_overhead)
        self.column_locality = float(column_locality)
        self.host_contention = float(host_contention)

    @property
    def is_gpu(self) -> bool:
        return True

    # -- scaling with parallel workers ---------------------------------- #
    @property
    def worker_scale(self) -> float:
        """Throughput multiplier induced by the parallel-worker count."""
        ratio = self.parallel_workers / float(REFERENCE_GPU_WORKERS)
        return ratio ** GPU_WORKER_SCALING_EXPONENT

    def with_parallel_workers(self, parallel_workers: int) -> "GPUDevice":
        """Return a copy of this GPU configured with a new worker count."""
        return GPUDevice(
            name=self.name,
            kernel_curve=self.kernel_curve,
            pcie=self.pcie,
            streams=self.streams,
            parallel_workers=parallel_workers,
            kernel_launch_overhead=self.kernel_launch_overhead,
            column_locality=self.column_locality,
            host_contention=self.host_contention,
            measurement_noise=self.measurement_noise,
        )

    # -- per-stage times ------------------------------------------------- #
    def locality_factor(self, work: BlockWork) -> float:
        """Throughput multiplier for the column spread of a block (<= 1)."""
        if work.nnz == 0 or work.q_cols == 0:
            return 1.0
        return 1.0 / (1.0 + self.column_locality * work.q_cols / work.nnz)

    def kernel_time(self, work: BlockWork) -> float:
        """Seconds of pure kernel execution for ``work``."""
        if work.nnz == 0:
            return self.kernel_launch_overhead
        speed = (
            self.kernel_curve.points_per_second(work.nnz)
            * self.worker_scale
            * self.locality_factor(work)
        )
        return self.kernel_launch_overhead + work.nnz / speed

    def host_to_device_time(self, work: BlockWork) -> float:
        """Seconds to copy the block's ratings and factor segments to the GPU."""
        return self.pcie.host_to_device_time(work.host_to_device_bytes)

    def device_to_host_time(self, work: BlockWork) -> float:
        """Seconds to copy the updated factor segments back to the host."""
        return self.pcie.device_to_host_time(work.device_to_host_bytes)

    # -- combined -------------------------------------------------------- #
    def process_time(self, work: BlockWork) -> float:
        """Steady-state per-block time with stream overlap (Equation 9)."""
        return self.streams.steady_state_block_time(
            self.host_to_device_time(work),
            self.kernel_time(work),
            self.device_to_host_time(work),
        )

    def pipeline_makespan(self, works) -> float:
        """Exact makespan of pushing a sequence of blocks through the streams."""
        return self.streams.makespan(
            [self.host_to_device_time(w) for w in works],
            [self.kernel_time(w) for w in works],
            [self.device_to_host_time(w) for w in works],
        )
