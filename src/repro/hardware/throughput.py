"""Parametric device throughput curves.

The paper's two empirical observations about MF update throughput are:

* **Observation 1** — "small blocks cannot saturate the GPU computing
  power": GPU throughput rises steeply with block size and then flattens
  (Figure 3(a), Figure 7);
* **Observation 2** — "the computing power of CPU cores is not sensitive
  to the block size": per-thread CPU throughput is flat (Figure 3(b)).

The curves in this module are the *ground truth* of the simulated
hardware.  The cost models of :mod:`repro.costmodel` never see these
parameters — they must recover the behaviour by probing the devices, just
as the paper calibrates against a real machine.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from ..exceptions import ConfigurationError


class ThroughputCurve(ABC):
    """Maps a block size (number of ratings) to update throughput.

    Throughput is expressed in ratings (points) per second, matching the
    y-axes of Figures 3 and 7 of the paper (million points / s).
    """

    @abstractmethod
    def points_per_second(self, block_size: float) -> float:
        """Sustained update throughput for a block of ``block_size`` ratings."""

    def seconds_for(self, block_size: float) -> float:
        """Time to update every rating of a block once."""
        if block_size <= 0:
            return 0.0
        return block_size / self.points_per_second(block_size)


class ConstantThroughputCurve(ThroughputCurve):
    """Flat throughput, independent of block size (Observation 2).

    Parameters
    ----------
    points_per_second:
        The sustained per-worker update rate.  The paper's machine
        measures roughly 5 million points per second per CPU thread for
        k = 128 (Figure 3(b)).
    """

    def __init__(self, points_per_second: float) -> None:
        if points_per_second <= 0:
            raise ConfigurationError(
                f"points_per_second must be positive, got {points_per_second}"
            )
        self._points_per_second = float(points_per_second)

    def points_per_second(self, block_size: float) -> float:
        return self._points_per_second

    def __repr__(self) -> str:
        return f"ConstantThroughputCurve({self._points_per_second:g} pts/s)"


class SaturatingLogThroughputCurve(ThroughputCurve):
    """Throughput that grows with block size and saturates (Observation 1).

    The curve is

    .. math::

        v(s) = v_{min} + (v_{max} - v_{min}) \\cdot
               \\min\\!\\left(1, \\frac{\\log(1 + s / s_0)}
                                      {\\log(1 + s_{sat} / s_0)}\\right)

    i.e. logarithmic growth from ``v_min`` at tiny blocks towards
    ``v_max``, reaching the plateau at ``saturation_size`` ratings.  This
    matches the paper's measured shape on the Quadro P4000 (Figure 3(a):
    throughput rises steeply with block size and then flattens) and is
    the reason a linear Qilin-style cost model misestimates GPU time
    (Section V).

    Parameters
    ----------
    peak_points_per_second:
        Plateau throughput ``v_max``.
    min_points_per_second:
        Throughput for a vanishingly small block ``v_min`` (kernel-launch
        bound).
    saturation_size:
        Block size (ratings) at which the plateau is reached.
    ramp_size:
        Shape parameter ``s_0`` controlling how quickly the log ramp
        rises; smaller values front-load the gain.
    """

    def __init__(
        self,
        peak_points_per_second: float,
        min_points_per_second: float,
        saturation_size: float,
        ramp_size: float = 50_000.0,
    ) -> None:
        if peak_points_per_second <= 0 or min_points_per_second <= 0:
            raise ConfigurationError("throughput bounds must be positive")
        if min_points_per_second > peak_points_per_second:
            raise ConfigurationError(
                "min_points_per_second cannot exceed peak_points_per_second"
            )
        if saturation_size <= 0 or ramp_size <= 0:
            raise ConfigurationError("size parameters must be positive")
        self.peak = float(peak_points_per_second)
        self.floor = float(min_points_per_second)
        self.saturation_size = float(saturation_size)
        self.ramp_size = float(ramp_size)
        self._log_ceiling = math.log1p(self.saturation_size / self.ramp_size)

    def points_per_second(self, block_size: float) -> float:
        if block_size <= 0:
            return self.floor
        ramp = math.log1p(block_size / self.ramp_size) / self._log_ceiling
        ramp = min(1.0, ramp)
        return self.floor + (self.peak - self.floor) * ramp

    def __repr__(self) -> str:
        return (
            f"SaturatingLogThroughputCurve(peak={self.peak:g}, "
            f"floor={self.floor:g}, saturation={self.saturation_size:g})"
        )


def scaled_curve(curve: ThroughputCurve, factor: float) -> ThroughputCurve:
    """Return a curve whose throughput is ``curve`` scaled by ``factor``.

    Used to model the effect of the number of GPU parallel workers: more
    workers raise the whole throughput curve (with diminishing returns
    applied by the caller), which is how GPU-Only's running time in
    Figure 10 falls as workers grow from 32 to 512.
    """
    if factor <= 0:
        raise ConfigurationError(f"scale factor must be positive, got {factor}")

    class _Scaled(ThroughputCurve):
        def points_per_second(self, block_size: float) -> float:
            return curve.points_per_second(block_size) * factor

        def __repr__(self) -> str:  # pragma: no cover - debugging aid
            return f"Scaled({factor:g} x {curve!r})"

    return _Scaled()
