"""Deterministic fault injection for the chaos test tier.

The supervision and recovery machinery (worker respawn in
:mod:`repro.exec.process`, crash-atomic publication in
:mod:`repro.serve.store`, shm manifest reaping in :mod:`repro.shm`) is
only trustworthy if crashes can be *produced on demand*, at exact,
repeatable points.  This module is that switchboard: code under test
declares named **injection points**; a :class:`FaultPlan` — installed
programmatically or parsed from the ``REPRO_FAULTS`` environment
variable — decides which arrivals at which points fire which action.

Injection points in the tree today:

``worker.task``
    Evaluated by the *controller* at every task dispatch of the process
    backend (matching on the worker index and that worker's dispatch
    ordinal); the matched action ships to the worker inside the task
    message, so it survives worker respawns and stays deterministic —
    a respawned worker never re-counts arrivals from zero.  Actions:
    ``kill`` (SIGKILL before touching the factors), ``kill_mid``
    (SIGKILL *after* the SGD updates are applied but before the
    completion is reported — the partially-visible crash that forces
    rollback), ``kill_after`` (SIGKILL after reporting: an idle death),
    and ``stall`` (sleep ``seconds`` before executing).
``store.publish.pre_commit``
    Hit by :meth:`repro.serve.store.ModelStore.publish` between the
    factor copy and the trailing commit stamp.  Action ``torn`` raises
    :class:`FaultInjected`, simulating a publisher that died with a
    named-but-uncommitted segment in ``/dev/shm``.
``serve.reader.start``
    Hit by each benchmark reader process on startup (action ``kill``) —
    drives the fail-fast reader-collection path of
    :func:`repro.serve.bench.measure_multi_reader`.
``service.reader.start``
    Hit by each HTTP front-door reader process
    (:mod:`repro.service.pool`) before it attaches to the published
    segment — a ``kill`` here exercises the server's startup-respawn
    and restart-budget paths.
``service.reader.request``
    Hit once per coalesced scoring batch inside a front-door reader,
    after admission but before any result exists.  ``kill`` models a
    reader dying mid-request (the server answers its in-flight 503 and
    respawns); ``stall`` models a wedged reader (the event loop's
    deadline fires and the request is answered 504 while the late
    result is dropped).

Environment form: ``REPRO_FAULTS`` holds a JSON list of spec objects,
e.g. ``[{"point": "worker.task", "worker": 1, "task": 3, "mode":
"kill_mid"}]``.  Worker processes inherit the variable, so env-driven
plans cross the process boundary under every start method.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .exceptions import ReproError

#: Environment variable holding a JSON-encoded fault plan.
FAULTS_ENV = "REPRO_FAULTS"

#: Actions a spec may request.  ``kill*`` send SIGKILL to the current
#: process (POSIX only — exactly where the process backend runs),
#: ``stall`` sleeps, ``torn``/``raise`` raise :class:`FaultInjected`.
FAULT_MODES = ("kill", "kill_mid", "kill_after", "stall", "torn", "raise")


class FaultInjected(ReproError):
    """Raised by an injection point whose matched action is ``torn``/``raise``.

    Carries the injection point and spec so tests can assert *which*
    fault fired, plus free-form ``context`` the site attaches (e.g. the
    name of the shm segment a simulated crash abandoned).
    """

    def __init__(self, point: str, spec: "FaultSpec", **context) -> None:
        super().__init__(
            f"injected fault at {point!r} (mode={spec.mode}, "
            f"worker={spec.worker}, task={spec.task})"
        )
        self.point = point
        self.spec = spec
        self.context = context


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: *where* it matches and *what* it does.

    A spec fires when an arrival at ``point`` has a matching worker
    index (``worker < 0`` matches any) and an arrival ordinal inside
    ``[task, task + count)`` — so ``task=3, count=2`` fires on the 4th
    and 5th matching arrivals and never again.
    """

    point: str
    mode: str = "kill"
    worker: int = -1
    task: int = 0
    count: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.point:
            raise ReproError("a fault spec needs a non-empty injection point")
        if self.mode not in FAULT_MODES:
            raise ReproError(
                f"fault mode must be one of {FAULT_MODES}, got {self.mode!r}"
            )
        if self.task < 0:
            raise ReproError(f"fault task ordinal must be >= 0, got {self.task}")
        if self.count <= 0:
            raise ReproError(f"fault count must be positive, got {self.count}")
        if self.seconds < 0:
            raise ReproError(f"fault seconds must be >= 0, got {self.seconds}")

    def matches(self, worker: Optional[int], ordinal: int) -> bool:
        if self.worker >= 0 and (worker is None or worker != self.worker):
            return False
        return self.task <= ordinal < self.task + self.count


class FaultPlan:
    """An ordered set of specs plus per-``(point, worker)`` arrival counters.

    Counters live in the plan instance, so two plans never interfere;
    the process-backend controller keeps its own dispatch ordinals and
    passes them explicitly (:meth:`take` with ``ordinal=``), which is
    what makes worker respawns transparent to the plan.
    """

    def __init__(self, specs: List[FaultSpec]) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self._arrivals: Dict[Tuple[str, Optional[int]], int] = {}
        self._lock = threading.Lock()

    def __bool__(self) -> bool:
        return bool(self.specs)

    def take(
        self,
        point: str,
        worker: Optional[int] = None,
        ordinal: Optional[int] = None,
    ) -> Optional[FaultSpec]:
        """The spec matching this arrival, or ``None``.

        Without an explicit ``ordinal`` the plan counts arrivals at
        ``(point, worker)`` itself; sites that already have a durable
        ordinal (the controller's per-worker dispatch count) pass it in.
        """
        with self._lock:
            if ordinal is None:
                key = (point, worker)
                ordinal = self._arrivals.get(key, 0)
                self._arrivals[key] = ordinal + 1
            for spec in self.specs:
                if spec.point == point and spec.matches(worker, ordinal):
                    return spec
        return None

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from the ``REPRO_FAULTS`` JSON form."""
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReproError(f"cannot parse fault plan JSON: {exc}") from exc
        if isinstance(raw, dict):
            raw = [raw]
        if not isinstance(raw, list):
            raise ReproError(
                f"a fault plan must be a JSON list of specs, got {type(raw).__name__}"
            )
        specs = []
        for entry in raw:
            if not isinstance(entry, dict):
                raise ReproError(f"fault spec must be an object, got {entry!r}")
            unknown = set(entry) - {"point", "mode", "worker", "task", "count", "seconds"}
            if unknown:
                raise ReproError(f"unknown fault spec fields: {sorted(unknown)}")
            specs.append(FaultSpec(**entry))
        return cls(specs)


# The programmatically installed plan (tests use install()/clear();
# workers receive the controller's plan inside their spawn arguments).
_INSTALLED: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> None:
    """Make ``plan`` the process-wide active plan (``None`` clears)."""
    global _INSTALLED
    _INSTALLED = plan


def clear() -> None:
    """Remove the installed plan (environment plans stay discoverable)."""
    install(None)


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, else a plan parsed from ``REPRO_FAULTS``.

    The environment is consulted on every call (no caching): chaos
    tests monkeypatch the variable per test, and child processes that
    inherit it resolve their own fresh plan with zeroed counters.
    """
    if _INSTALLED is not None:
        return _INSTALLED
    text = os.environ.get(FAULTS_ENV)
    if not text:
        return None
    return FaultPlan.parse(text)


def execute(spec: FaultSpec, point: str, **context) -> None:
    """Carry out a matched spec's action at ``point``."""
    if spec.mode in ("kill", "kill_mid", "kill_after"):
        os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - process dies
    elif spec.mode == "stall":
        time.sleep(spec.seconds)
    else:  # torn / raise
        raise FaultInjected(point, spec, **context)


def hit(point: str, worker: Optional[int] = None, **context) -> None:
    """Injection-point entry for in-process sites.

    Looks up the active plan (installed or environment), counts this
    arrival, and executes the matched action, if any.  With no plan
    active this is one dict lookup — cheap enough for production paths.
    """
    plan = active_plan()
    if plan is None:
        return
    spec = plan.take(point, worker=worker)
    if spec is not None:
        execute(spec, point, **context)
