"""Configuration objects shared across the library.

The paper's experimental setup is parameterised by three groups of values:

* **training hyper-parameters** (Table I): the number of latent factors
  ``k``, the regularisation coefficients ``lambda_p`` and ``lambda_q``, the
  learning rate ``gamma``, and the number of iterations ``t``;
* **hardware resources** (Section VII): the number of CPU worker threads
  ``nc``, the number of GPUs ``ng``, and the number of GPU parallel workers
  (the paper's definition from CuMF_SGD: how many ratings a GPU kernel
  updates simultaneously);
* **scheduling options**: whether the nonuniform division, the tailored
  cost model, and the dynamic work-stealing phase are enabled.

Keeping these in small frozen dataclasses makes experiment definitions
declarative and easy to sweep.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Union

from .exceptions import ConfigurationError

#: Default latent dimensionality used throughout the paper's evaluation.
DEFAULT_LATENT_FACTORS = 128

#: Default CPU thread count of the paper's machine (16 of 20 cores used).
DEFAULT_CPU_THREADS = 16

#: Default number of GPUs in the paper's machine.
DEFAULT_GPU_COUNT = 1

#: Default number of GPU parallel workers (CuMF_SGD definition).
DEFAULT_GPU_PARALLEL_WORKERS = 128

#: The *built-in* execution backends: the discrete-event simulator
#: (:mod:`repro.sim`), the real thread pool (:mod:`repro.exec`), and the
#: shared-memory process pool (:mod:`repro.exec.process`).
#: The authoritative, extensible list lives in the backend registry
#: (:func:`repro.exec.registry.backend_names`), which validation and the
#: CLI consult — backends added with
#: :func:`repro.exec.register_backend` are accepted everywhere without
#: touching this constant.
BACKENDS = ("simulate", "threads", "processes")

#: Pseudo-backend name resolved per run by
#: :func:`repro.exec.registry.resolve_backend_name`: real worker
#: processes when the run has more than one worker and the platform
#: supports shared-memory multiprocessing, worker threads otherwise.
AUTO_BACKEND = "auto"

#: The sentinel accepted by every tunable the autotuner can resolve
#: (training batch size, serving chunk/batch, CLI worker counts): with a
#: :class:`repro.tune.TunedProfile` active it resolves to the calibrated
#: value, without one it falls back to the documented hand-picked
#: default — bitwise-identical to the pre-autotuning behaviour.
AUTO_TUNABLE = "auto"

#: Default mini-batch length of the vectorised SGD kernels, used when
#: :attr:`TrainingConfig.batch_size` is left ``None``.  Small enough that
#: repeated rows/columns within one batch stay rare on skewed rating data
#: (keeping the mini-batch relaxation close to sequential SGD), large
#: enough that the per-batch numpy overhead is amortised.
DEFAULT_BATCH_SIZE = 256

#: Default number of worker-process respawns the ``"processes"`` backend
#: performs across one run before a worker death escalates to
#: :class:`~repro.exceptions.ExecutionError` (see
#: :attr:`TrainingConfig.max_worker_restarts`).
DEFAULT_MAX_WORKER_RESTARTS = 3

#: The selectable SGD update kernels (see :mod:`repro.sgd.kernels`):
#: ``"auto"`` picks the block-major local kernel whenever pre-gathered
#: block data is available (it is bitwise-identical to ``"minibatch"``),
#: ``"minibatch"`` forces the global-index vectorised kernel,
#: ``"minibatch_local"`` forces the band-local kernel, and
#: ``"sequential"`` forces the exact per-rating reference loop (slow).
KERNEL_NAMES = ("auto", "minibatch", "minibatch_local", "sequential")


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of the SGD matrix-factorization training loop.

    Mirrors the inputs of Algorithm 1 in the paper:
    ``R, k, lambda_P, lambda_Q, gamma, t``.

    Attributes
    ----------
    latent_factors:
        Number of latent factors ``k`` of the factor matrices ``P`` and ``Q``.
    learning_rate:
        SGD step size ``gamma``.
    reg_p:
        Regularisation coefficient ``lambda_P`` applied to user factors.
    reg_q:
        Regularisation coefficient ``lambda_Q`` applied to item factors.
    iterations:
        Number of full passes (epochs) over the rating matrix ``t``.
    seed:
        Seed for factor initialisation and block-order randomisation.
    init_scale:
        Scale of the uniform random initialisation of ``P`` and ``Q``.
        The common heuristic ``1/sqrt(k)`` is used when left ``None``.
    backend:
        Execution backend running the training: ``"simulate"`` (the
        discrete-event engine with cost-model timing) or ``"threads"``
        (real concurrent worker threads; see :mod:`repro.exec`).
    kernel:
        SGD update kernel (one of :data:`KERNEL_NAMES`).  The default
        ``"auto"`` selects the block-major local kernel, which consumes
        per-block pre-gathered, pre-validated band-local arrays and is
        bitwise-identical to the ``"minibatch"`` kernel.
    batch_size:
        Mini-batch length of the vectorised kernels
        (:data:`DEFAULT_BATCH_SIZE` when ``None``).  ``"auto"`` resolves
        through the active :class:`repro.tune.TunedProfile` when one is
        loaded and to :data:`DEFAULT_BATCH_SIZE` otherwise.  Only
        affects the mini-batch relaxation — the ``"sequential"``
        reference kernel updates rating by rating and ignores it.
    max_worker_restarts:
        Retry budget of the ``"processes"`` backend's worker
        supervision: how many worker-process deaths one run absorbs by
        rolling back to the last epoch-boundary recovery snapshot,
        respawning the worker and replaying the epoch.  ``0`` restores
        the fail-fast behaviour (any worker death aborts the run); once
        the budget is exhausted the next death raises
        :class:`~repro.exceptions.ExecutionError` with full
        diagnostics.  Ignored by the simulator and thread backends
        (threads cannot die independently of the controller).
    """

    latent_factors: int = DEFAULT_LATENT_FACTORS
    learning_rate: float = 0.005
    reg_p: float = 0.05
    reg_q: float = 0.05
    iterations: int = 20
    seed: int = 0
    init_scale: Optional[float] = None
    backend: str = "simulate"
    kernel: str = "auto"
    batch_size: Optional[Union[int, str]] = None
    max_worker_restarts: int = DEFAULT_MAX_WORKER_RESTARTS

    def __post_init__(self) -> None:
        if self.latent_factors <= 0:
            raise ConfigurationError(
                f"latent_factors must be positive, got {self.latent_factors}"
            )
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if self.reg_p < 0 or self.reg_q < 0:
            raise ConfigurationError(
                f"regularisation must be non-negative, got "
                f"reg_p={self.reg_p}, reg_q={self.reg_q}"
            )
        if self.iterations <= 0:
            raise ConfigurationError(
                f"iterations must be positive, got {self.iterations}"
            )
        if self.init_scale is not None and self.init_scale <= 0:
            raise ConfigurationError(
                f"init_scale must be positive when given, got {self.init_scale}"
            )
        if isinstance(self.batch_size, str):
            if self.batch_size != AUTO_TUNABLE:
                raise ConfigurationError(
                    f"batch_size must be a positive integer, None or "
                    f"{AUTO_TUNABLE!r}, got {self.batch_size!r}"
                )
        elif self.batch_size is not None and self.batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive when given, got {self.batch_size}"
            )
        if self.max_worker_restarts < 0:
            raise ConfigurationError(
                f"max_worker_restarts must be >= 0, got {self.max_worker_restarts}"
            )
        # Imported lazily: the registry lives under repro.exec, whose
        # engine modules import this one at module load.
        from .exec.registry import backend_names, is_registered

        if self.backend != AUTO_BACKEND and not is_registered(self.backend):
            raise ConfigurationError(
                f"backend must be one of {(AUTO_BACKEND,) + backend_names()}, "
                f"got {self.backend!r}"
            )
        if self.kernel not in KERNEL_NAMES:
            raise ConfigurationError(
                f"kernel must be one of {KERNEL_NAMES}, got {self.kernel!r}"
            )

    def with_iterations(self, iterations: int) -> "TrainingConfig":
        """Return a copy of this config with a different iteration count."""
        return dataclasses.replace(self, iterations=iterations)

    def with_backend(self, backend: str) -> "TrainingConfig":
        """Return a copy of this config with a different execution backend."""
        return dataclasses.replace(self, backend=backend)

    def with_kernel(self, kernel: str) -> "TrainingConfig":
        """Return a copy of this config with a different SGD kernel."""
        return dataclasses.replace(self, kernel=kernel)

    def with_batch_size(
        self, batch_size: Optional[Union[int, str]]
    ) -> "TrainingConfig":
        """Return a copy of this config with a different mini-batch size."""
        return dataclasses.replace(self, batch_size=batch_size)

    @property
    def effective_batch_size(self) -> int:
        """The mini-batch length the vectorised kernels actually use."""
        if self.batch_size == AUTO_TUNABLE:
            # Lazy: repro.tune.profile imports this module's constants.
            from .tune.profile import resolve_training_batch_size

            return resolve_training_batch_size(AUTO_TUNABLE)
        if self.batch_size is not None:
            return self.batch_size
        return DEFAULT_BATCH_SIZE

    def with_max_worker_restarts(self, restarts: int) -> "TrainingConfig":
        """Return a copy with a different worker-respawn retry budget."""
        return dataclasses.replace(self, max_worker_restarts=restarts)

    def with_seed(self, seed: int) -> "TrainingConfig":
        """Return a copy of this config with a different random seed."""
        return dataclasses.replace(self, seed=seed)

    @property
    def effective_init_scale(self) -> float:
        """The factor-initialisation scale actually used."""
        if self.init_scale is not None:
            return self.init_scale
        return 1.0 / float(self.latent_factors) ** 0.5


@dataclass(frozen=True)
class HardwareConfig:
    """Description of the heterogeneous platform used by a run.

    Attributes
    ----------
    cpu_threads:
        Number of CPU worker threads ``nc``.
    gpu_count:
        Number of GPUs ``ng``.
    gpu_parallel_workers:
        Number of ratings processed simultaneously inside one GPU kernel
        (the CuMF_SGD notion of "parallel workers"; the paper sweeps this
        from 32 to 512 in Figure 10).
    """

    cpu_threads: int = DEFAULT_CPU_THREADS
    gpu_count: int = DEFAULT_GPU_COUNT
    gpu_parallel_workers: int = DEFAULT_GPU_PARALLEL_WORKERS

    def __post_init__(self) -> None:
        if self.cpu_threads < 0:
            raise ConfigurationError(
                f"cpu_threads must be >= 0, got {self.cpu_threads}"
            )
        if self.gpu_count < 0:
            raise ConfigurationError(
                f"gpu_count must be >= 0, got {self.gpu_count}"
            )
        if self.cpu_threads == 0 and self.gpu_count == 0:
            raise ConfigurationError(
                "a platform needs at least one CPU thread or one GPU"
            )
        if self.gpu_count > 0 and self.gpu_parallel_workers <= 0:
            raise ConfigurationError(
                "gpu_parallel_workers must be positive when GPUs are present, "
                f"got {self.gpu_parallel_workers}"
            )

    @property
    def total_workers(self) -> int:
        """Total number of scheduling workers (CPU threads plus GPUs)."""
        return self.cpu_threads + self.gpu_count

    def with_cpu_threads(self, cpu_threads: int) -> "HardwareConfig":
        """Return a copy of this config with a different CPU thread count."""
        return dataclasses.replace(self, cpu_threads=cpu_threads)

    def with_gpu_parallel_workers(self, workers: int) -> "HardwareConfig":
        """Return a copy with a different GPU parallel-worker count."""
        return dataclasses.replace(self, gpu_parallel_workers=workers)


@dataclass(frozen=True)
class SchedulingConfig:
    """Options selecting between the paper's scheduling variants.

    The four published configurations map onto this dataclass as:

    ==============  ==================  ===================  =================
    Algorithm       nonuniform_division cost_model           dynamic_scheduling
    ==============  ==================  ===================  =================
    HSGD            False               (ignored)            True (greedy)
    HSGD*-Q         True                ``"qilin"``          False
    HSGD*-M         True                ``"paper"``          False
    HSGD* (full)    True                ``"paper"``          True
    ==============  ==================  ===================  =================
    """

    nonuniform_division: bool = True
    cost_model: str = "paper"
    dynamic_scheduling: bool = True
    #: Extra multiplier on the Rule-1 minimum block-column count, for
    #: sensitivity experiments. ``1.0`` reproduces the paper.
    column_scale: float = 1.0

    _VALID_COST_MODELS = ("paper", "qilin", "oracle")

    def __post_init__(self) -> None:
        if self.cost_model not in self._VALID_COST_MODELS:
            raise ConfigurationError(
                f"cost_model must be one of {self._VALID_COST_MODELS}, "
                f"got {self.cost_model!r}"
            )
        if self.column_scale <= 0:
            raise ConfigurationError(
                f"column_scale must be positive, got {self.column_scale}"
            )


@dataclass(frozen=True)
class ExperimentConfig:
    """Bundle of all configuration pieces for one experiment run."""

    training: TrainingConfig = field(default_factory=TrainingConfig)
    hardware: HardwareConfig = field(default_factory=HardwareConfig)
    scheduling: SchedulingConfig = field(default_factory=SchedulingConfig)

    def describe(self) -> str:
        """One-line human-readable summary used in experiment logs."""
        return (
            f"k={self.training.latent_factors} "
            f"gamma={self.training.learning_rate} "
            f"iters={self.training.iterations} "
            f"nc={self.hardware.cpu_threads} ng={self.hardware.gpu_count} "
            f"gpu_workers={self.hardware.gpu_parallel_workers} "
            f"division={'nonuniform' if self.scheduling.nonuniform_division else 'uniform'} "
            f"cost_model={self.scheduling.cost_model} "
            f"dynamic={self.scheduling.dynamic_scheduling}"
        )
