"""Shared-memory segments with explicit, audited lifecycle.

The process execution backend (:mod:`repro.exec.process`) keeps the hot
state of a run — the factor matrices and the block-major rating arrays —
in :class:`multiprocessing.shared_memory.SharedMemory` segments so worker
processes update the *same* physical pages the controller reads: zero
copies on the training hot path.

Raw ``SharedMemory`` has two sharp edges this module files down:

* **lifecycle**: a segment must be closed by every process that mapped
  it and unlinked by exactly one (the creator), or it leaks in
  ``/dev/shm`` until reboot.  :class:`SharedSegment` makes ``close()``
  and ``unlink()`` idempotent, ties creator-ship to unlink permission,
  and records every live mapping in a module-level registry
  (:func:`live_segment_names`) that the lifecycle tests assert empty;
* **the resource tracker**: worker processes inherit the creator's
  resource-tracker process, so only the creating side may own a
  segment's tracker registration.  Attaching must therefore never add
  (or remove!) tracker state: on CPython 3.13+ attachments pass
  ``track=False`` explicitly; earlier versions do not register
  attachments in the first place, and the creator's registration is left
  untouched as a crash safety net (its unlink unregisters normally).

Segment names carry a recognisable prefix (``repro-<pid>-…``) so stray
segments are attributable, and creation retries on name collisions.

**Crash safety.**  A clean exit unlinks everything, but a SIGKILLed
controller or publisher leaves its segments named in ``/dev/shm`` with
nobody alive to unlink them.  To make such orphans *discoverable*,
every owner process additionally journals its live segments into a
per-pid **manifest** file under a runtime directory
(:func:`runtime_dir`): created segments are appended, unlinked ones
removed, and an empty manifest is deleted.  :func:`reap_orphaned_segments`
(surfaced as the ``repro gc-shm`` CLI) scans the manifests, probes each
owner pid, and force-unlinks every segment whose owner is gone — the
reaping rule is *pid dead ⇒ segments dead*, which is sound because
segment ownership never migrates between processes.
"""

from __future__ import annotations

import json
import os
import secrets
import tempfile
import threading
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from .exceptions import ExecutionError

#: Prefix of every segment created by this module; tests sweep
#: ``/dev/shm`` for it to prove nothing leaked.
SEGMENT_PREFIX = "repro-shm"

#: Environment variable overriding the manifest runtime directory
#: (tests point it at a tmpdir so concurrent suites never interfere).
RUNTIME_DIR_ENV = "REPRO_RUNTIME_DIR"

# name -> role ("owner" created it and must unlink; "attached" only maps
# it).  Guarded by a lock: the threaded controller and callbacks may
# close segments from different threads.
_LIVE: Dict[str, str] = {}
_LIVE_LOCK = threading.Lock()

#: Serialises the pre-3.13 attach-time resource_tracker.register patch
#: (see _attach_shared_memory) against concurrent creates, whose own
#: registration must NOT be suppressed.
_TRACKER_PATCH_LOCK = threading.Lock()

# Owned names whose handles were abandon()ed (simulated crashes): no
# longer mapped here, but still named in the kernel and still journaled
# in the manifest so the reaper can find them.  Guarded by _LIVE_LOCK.
_ABANDONED: Dict[str, None] = {}


def live_segment_names() -> Tuple[str, ...]:
    """Names of the segments this process currently has mapped.

    Lifecycle bookkeeping for tests: after an engine run (successful,
    failed, or killed mid-epoch) this must be empty — every segment was
    closed, and owned segments were also unlinked, exactly once.
    """
    with _LIVE_LOCK:
        return tuple(sorted(_LIVE))


def runtime_dir() -> str:
    """Directory holding the per-pid segment manifests.

    ``$REPRO_RUNTIME_DIR`` when set (resolved on every call so tests can
    monkeypatch it), else ``<tmpdir>/repro-runtime``.  Created on
    demand.
    """
    path = os.environ.get(RUNTIME_DIR_ENV)
    if not path:
        path = os.path.join(tempfile.gettempdir(), "repro-runtime")
    os.makedirs(path, exist_ok=True)
    return path


def _manifest_path(pid: int, runtime: Optional[str] = None) -> str:
    return os.path.join(runtime or runtime_dir(), f"segments-{pid}.json")


def _write_manifest_locked() -> None:
    """Persist this process's owned-segment registry (caller holds the lock).

    The write is atomic (tmp + rename) so the reaper never reads a torn
    manifest; an empty registry removes the file, which is what makes a
    clean exit leave no trace.
    """
    owned = sorted(
        set(name for name, role in _LIVE.items() if role == "owner")
        | set(_ABANDONED)
    )
    path = _manifest_path(os.getpid())
    try:
        if not owned:
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
            return
        payload = json.dumps({"pid": os.getpid(), "segments": owned})
        tmp = f"{path}.tmp-{secrets.token_hex(4)}"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - read-only/odd runtime dirs
        # The manifest is a crash-recovery aid, never a correctness
        # dependency: an unwritable runtime dir must not fail training.
        pass


def force_unlink(name: str) -> bool:
    """Unlink a segment by name regardless of which process created it.

    The reaper's primitive (and a test utility for cleaning up
    deliberately-torn publishes): opens the segment, closes the mapping
    and removes the name.  Returns ``False`` if the segment no longer
    exists.  Any local bookkeeping for the name (live registry,
    manifest entry) is dropped too.
    """
    with _LIVE_LOCK:
        was_owned = _LIVE.pop(name, None) == "owner"
        was_abandoned = _ABANDONED.pop(name, "absent") is None
        if was_owned or was_abandoned:
            _write_manifest_locked()
    try:
        shm = _attach_shared_memory(name)
    except FileNotFoundError:
        return False
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - lost a reap race
        pass
    finally:
        shm.close()
    return True


@dataclass
class GcReport:
    """Outcome of one :func:`reap_orphaned_segments` scan."""

    scanned: int = 0
    """Manifest files inspected."""
    reaped: List[str] = field(default_factory=list)
    """Orphaned segments that were unlinked."""
    missing: List[str] = field(default_factory=list)
    """Manifest entries whose segment was already gone."""
    skipped_live: List[int] = field(default_factory=list)
    """Owner pids that are still alive (their manifests were left alone)."""

    @property
    def total_reaped(self) -> int:
        return len(self.reaped)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, other user
        return True
    return True


def reap_orphaned_segments(
    runtime: Optional[str] = None, dry_run: bool = False
) -> GcReport:
    """Unlink every segment whose recorded owner process is dead.

    Scans the manifest files under ``runtime`` (default:
    :func:`runtime_dir`), probes each owner pid with signal 0, and
    force-unlinks the segments of dead owners; their manifests are then
    removed.  Manifests of live owners — including the calling process —
    are untouched.  ``dry_run`` reports what *would* be reaped without
    unlinking anything.
    """
    runtime = runtime or runtime_dir()
    report = GcReport()
    try:
        entries = sorted(os.listdir(runtime))
    except FileNotFoundError:
        return report
    for entry in entries:
        if not entry.startswith("segments-") or not entry.endswith(".json"):
            continue
        path = os.path.join(runtime, entry)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            pid = int(manifest["pid"])
            segments = [str(name) for name in manifest["segments"]]
        except (OSError, ValueError, KeyError, TypeError):
            # Torn or foreign file: never guess at segment names.
            continue
        report.scanned += 1
        if _pid_alive(pid):
            report.skipped_live.append(pid)
            continue
        for name in segments:
            if dry_run:
                report.reaped.append(name)
            elif force_unlink(name):
                report.reaped.append(name)
            else:
                report.missing.append(name)
        if not dry_run:
            try:
                os.unlink(path)
            except FileNotFoundError:  # pragma: no cover - concurrent reap
                pass
    return report


def _attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without touching the resource tracker.

    CPython 3.13+ takes ``track=False``.  Older versions register every
    attachment with the resource tracker, which is worse than a leak
    warning: a pure reader process (``repro recommend --attach``) would
    have its tracker *unlink the live segment* at exit, tearing it out
    from under the publisher.  Attachments must therefore unregister
    immediately — only the owning process's tracker should ever reap.
    """
    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # no track parameter before 3.13
        # Unregistering after the fact is no better: a forked reader
        # shares the owner's tracker, so its unregister would strip the
        # owner's crash-safety registration.  Suppress the registration
        # itself instead, for exactly the duration of the attach.
        with _TRACKER_PATCH_LOCK:
            original = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                return shared_memory.SharedMemory(name=name, create=False)
            finally:
                resource_tracker.register = original


class SharedSegment:
    """One shared-memory segment plus its numpy view machinery.

    Create with :meth:`create` (owner side — the only side allowed to
    ``unlink()``) or :meth:`attach` (worker side).  Both sides must
    ``close()``; both calls are idempotent so error paths can clean up
    unconditionally.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._closed = False
        self._unlinked = False
        with _LIVE_LOCK:
            _LIVE[shm.name] = "owner" if owner else "attached"
            if owner:
                # Journal ownership so a crashed process's segments stay
                # discoverable (reap_orphaned_segments / `repro gc-shm`).
                _write_manifest_locked()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, nbytes: int, purpose: str = "seg") -> "SharedSegment":
        """Allocate a fresh segment of ``nbytes`` bytes (owner side)."""
        if nbytes <= 0:
            raise ExecutionError(f"segment size must be positive, got {nbytes}")
        for _ in range(8):
            name = f"{SEGMENT_PREFIX}-{os.getpid()}-{purpose}-{secrets.token_hex(4)}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=nbytes
                )
            except FileExistsError:  # pragma: no cover - 2^32 collision
                continue
            return cls(shm, owner=True)
        raise ExecutionError(
            "could not allocate a shared-memory segment (name collisions)"
        )  # pragma: no cover

    @classmethod
    def from_array(
        cls, array: np.ndarray, purpose: str = "array"
    ) -> Tuple["SharedSegment", np.ndarray]:
        """Allocate a segment holding a copy of ``array`` (owner side).

        Returns ``(segment, view)`` where ``view`` is the segment's numpy
        view with ``array``'s shape and dtype, already filled with its
        contents.  This is the one-liner both the process execution
        backend and the serving model store need: "put this matrix into
        shared pages".
        """
        array = np.asarray(array)
        segment = cls.create(int(array.nbytes), purpose=purpose)
        view = segment.ndarray(array.shape, array.dtype)
        view[...] = array
        return segment, view

    @classmethod
    def attach(cls, name: str) -> "SharedSegment":
        """Map an existing segment by name (worker side)."""
        try:
            shm = _attach_shared_memory(name)
        except FileNotFoundError:
            raise ExecutionError(
                f"shared-memory segment {name!r} does not exist (was the "
                "owning engine already finished?)"
            ) from None
        return cls(shm, owner=False)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Kernel name of the segment (pass to :meth:`attach`)."""
        return self._shm.name

    @property
    def owner(self) -> bool:
        """Whether this handle created the segment (may ``unlink()``)."""
        return self._owner

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def nbytes(self) -> int:
        """Allocated size of the segment in bytes (may exceed the
        requested size — the kernel rounds up to page granularity)."""
        return self._shm.size

    def ndarray(
        self,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        offset: int = 0,
        readonly: bool = False,
    ) -> np.ndarray:
        """A numpy view over the segment's buffer (no copy).

        The returned array shares the segment's pages: writes from any
        process mapping the segment are visible in every other one.
        """
        if self._closed:
            raise ExecutionError(
                f"segment {self.name!r} is closed; no views can be taken"
            )
        dtype = np.dtype(dtype)
        end = offset + int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if end > self._shm.size:
            raise ExecutionError(
                f"view of {end} bytes exceeds segment {self.name!r} "
                f"({self._shm.size} bytes)"
            )
        view = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=offset)
        if readonly:
            view.setflags(write=False)
        return view

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if not self._owner:
            with _LIVE_LOCK:
                _LIVE.pop(self._shm.name, None)
        try:
            self._shm.close()
        except BufferError:
            # A live numpy view still pins the buffer.  Re-raising would
            # leave lifecycle state inconsistent; surface it loudly.
            self._closed = False
            raise ExecutionError(
                f"segment {self.name!r} still has exported views; drop them "
                "before closing"
            ) from None

    def unlink(self) -> None:
        """Destroy the segment (owner only, idempotent, implies close)."""
        if not self._owner:
            raise ExecutionError(
                f"segment {self.name!r} was attached, not created, by this "
                "process; only the owner may unlink it"
            )
        if not self._closed:
            self.close()
        if self._unlinked:
            return
        self._unlinked = True
        with _LIVE_LOCK:
            _LIVE.pop(self._shm.name, None)
            _write_manifest_locked()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def abandon(self) -> None:
        """Drop this handle *as if the owning process had died*.

        Closes the local mapping and forgets the live-registry entry but
        deliberately leaves the segment named in ``/dev/shm`` **and**
        recorded in this process's manifest — exactly the state a crash
        leaves behind.  Fault injection uses this to manufacture orphans
        and torn publishes for :func:`reap_orphaned_segments` and the
        commit-stamp check to find.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        with _LIVE_LOCK:
            _LIVE.pop(self._shm.name, None)
            if self._owner:
                _ABANDONED[self._shm.name] = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - caller kept views alive
            self._closed = False
            with _LIVE_LOCK:
                _ABANDONED.pop(self._shm.name, None)
                _LIVE[self._shm.name] = "owner" if self._owner else "attached"
            raise ExecutionError(
                f"segment {self.name!r} still has exported views; drop them "
                "before abandoning"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "unlinked" if self._unlinked else ("closed" if self._closed else "open")
        role = "owner" if self._owner else "attached"
        return f"SharedSegment({self._shm.name!r}, {role}, {state})"
