"""Shared-memory segments with explicit, audited lifecycle.

The process execution backend (:mod:`repro.exec.process`) keeps the hot
state of a run — the factor matrices and the block-major rating arrays —
in :class:`multiprocessing.shared_memory.SharedMemory` segments so worker
processes update the *same* physical pages the controller reads: zero
copies on the training hot path.

Raw ``SharedMemory`` has two sharp edges this module files down:

* **lifecycle**: a segment must be closed by every process that mapped
  it and unlinked by exactly one (the creator), or it leaks in
  ``/dev/shm`` until reboot.  :class:`SharedSegment` makes ``close()``
  and ``unlink()`` idempotent, ties creator-ship to unlink permission,
  and records every live mapping in a module-level registry
  (:func:`live_segment_names`) that the lifecycle tests assert empty;
* **the resource tracker**: worker processes inherit the creator's
  resource-tracker process, so only the creating side may own a
  segment's tracker registration.  Attaching must therefore never add
  (or remove!) tracker state: on CPython 3.13+ attachments pass
  ``track=False`` explicitly; earlier versions do not register
  attachments in the first place, and the creator's registration is left
  untouched as a crash safety net (its unlink unregisters normally).

Segment names carry a recognisable prefix (``repro-<pid>-…``) so stray
segments are attributable, and creation retries on name collisions.
"""

from __future__ import annotations

import os
import secrets
import threading
from multiprocessing import shared_memory
from typing import Dict, Tuple

import numpy as np

from .exceptions import ExecutionError

#: Prefix of every segment created by this module; tests sweep
#: ``/dev/shm`` for it to prove nothing leaked.
SEGMENT_PREFIX = "repro-shm"

# name -> role ("owner" created it and must unlink; "attached" only maps
# it).  Guarded by a lock: the threaded controller and callbacks may
# close segments from different threads.
_LIVE: Dict[str, str] = {}
_LIVE_LOCK = threading.Lock()


def live_segment_names() -> Tuple[str, ...]:
    """Names of the segments this process currently has mapped.

    Lifecycle bookkeeping for tests: after an engine run (successful,
    failed, or killed mid-epoch) this must be empty — every segment was
    closed, and owned segments were also unlinked, exactly once.
    """
    with _LIVE_LOCK:
        return tuple(sorted(_LIVE))


def _attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without touching the resource tracker.

    CPython 3.13+ takes ``track=False``; older versions never register
    attachments, so a plain open is already tracker-neutral.
    """
    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # no track parameter before 3.13
        return shared_memory.SharedMemory(name=name, create=False)


class SharedSegment:
    """One shared-memory segment plus its numpy view machinery.

    Create with :meth:`create` (owner side — the only side allowed to
    ``unlink()``) or :meth:`attach` (worker side).  Both sides must
    ``close()``; both calls are idempotent so error paths can clean up
    unconditionally.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._closed = False
        self._unlinked = False
        with _LIVE_LOCK:
            _LIVE[shm.name] = "owner" if owner else "attached"

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, nbytes: int, purpose: str = "seg") -> "SharedSegment":
        """Allocate a fresh segment of ``nbytes`` bytes (owner side)."""
        if nbytes <= 0:
            raise ExecutionError(f"segment size must be positive, got {nbytes}")
        for _ in range(8):
            name = f"{SEGMENT_PREFIX}-{os.getpid()}-{purpose}-{secrets.token_hex(4)}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=nbytes
                )
            except FileExistsError:  # pragma: no cover - 2^32 collision
                continue
            return cls(shm, owner=True)
        raise ExecutionError(
            "could not allocate a shared-memory segment (name collisions)"
        )  # pragma: no cover

    @classmethod
    def from_array(
        cls, array: np.ndarray, purpose: str = "array"
    ) -> Tuple["SharedSegment", np.ndarray]:
        """Allocate a segment holding a copy of ``array`` (owner side).

        Returns ``(segment, view)`` where ``view`` is the segment's numpy
        view with ``array``'s shape and dtype, already filled with its
        contents.  This is the one-liner both the process execution
        backend and the serving model store need: "put this matrix into
        shared pages".
        """
        array = np.asarray(array)
        segment = cls.create(int(array.nbytes), purpose=purpose)
        view = segment.ndarray(array.shape, array.dtype)
        view[...] = array
        return segment, view

    @classmethod
    def attach(cls, name: str) -> "SharedSegment":
        """Map an existing segment by name (worker side)."""
        try:
            shm = _attach_shared_memory(name)
        except FileNotFoundError:
            raise ExecutionError(
                f"shared-memory segment {name!r} does not exist (was the "
                "owning engine already finished?)"
            ) from None
        return cls(shm, owner=False)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Kernel name of the segment (pass to :meth:`attach`)."""
        return self._shm.name

    @property
    def owner(self) -> bool:
        """Whether this handle created the segment (may ``unlink()``)."""
        return self._owner

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def nbytes(self) -> int:
        """Allocated size of the segment in bytes (may exceed the
        requested size — the kernel rounds up to page granularity)."""
        return self._shm.size

    def ndarray(
        self,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        offset: int = 0,
        readonly: bool = False,
    ) -> np.ndarray:
        """A numpy view over the segment's buffer (no copy).

        The returned array shares the segment's pages: writes from any
        process mapping the segment are visible in every other one.
        """
        if self._closed:
            raise ExecutionError(
                f"segment {self.name!r} is closed; no views can be taken"
            )
        dtype = np.dtype(dtype)
        end = offset + int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if end > self._shm.size:
            raise ExecutionError(
                f"view of {end} bytes exceeds segment {self.name!r} "
                f"({self._shm.size} bytes)"
            )
        view = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=offset)
        if readonly:
            view.setflags(write=False)
        return view

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if not self._owner:
            with _LIVE_LOCK:
                _LIVE.pop(self._shm.name, None)
        try:
            self._shm.close()
        except BufferError:
            # A live numpy view still pins the buffer.  Re-raising would
            # leave lifecycle state inconsistent; surface it loudly.
            self._closed = False
            raise ExecutionError(
                f"segment {self.name!r} still has exported views; drop them "
                "before closing"
            ) from None

    def unlink(self) -> None:
        """Destroy the segment (owner only, idempotent, implies close)."""
        if not self._owner:
            raise ExecutionError(
                f"segment {self.name!r} was attached, not created, by this "
                "process; only the owner may unlink it"
            )
        if not self._closed:
            self.close()
        if self._unlinked:
            return
        self._unlinked = True
        with _LIVE_LOCK:
            _LIVE.pop(self._shm.name, None)
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "unlinked" if self._unlinked else ("closed" if self._closed else "open")
        role = "owner" if self._owner else "attached"
        return f"SharedSegment({self._shm.name!r}, {role}, {state})"
