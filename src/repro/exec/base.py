"""The engine protocol shared by every execution backend.

An *engine* takes a scheduler's decisions and turns them into actual SGD
updates on the shared factor matrices.  The library ships two engines:

* :class:`repro.sim.SimulationEngine` — the discrete-event simulator that
  advances a virtual clock with cost-model task durations (the backend
  behind every paper figure, usable without real parallel hardware);
* :class:`repro.exec.ThreadedEngine` — genuinely concurrent CPU worker
  threads driving the same scheduler over the same shared numpy factor
  matrices.

Both implement :class:`Engine` and produce an
:class:`~repro.sim.trace.ExecutionTrace`, so everything downstream of a
run — RMSE curves, worker statistics, workload shares, steal counts — is
backend-agnostic.  Which backend a run uses is selected with the
``backend`` option of :class:`~repro.config.TrainingConfig` /
:meth:`~repro.core.trainer.HeterogeneousTrainer.fit`.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple, Union

from ..config import BACKENDS  # noqa: F401  (re-exported; validated there)
from ..exceptions import ConfigurationError
from .session import EngineSession, run_session

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.sim
    from ..sgd import FactorModel
    from ..sim.trace import ExecutionTrace


@dataclass
class EngineResult:
    """Outcome of one training run, regardless of the backend.

    This is the single implementation of the run-outcome surface
    (:attr:`engine_time`, :attr:`final_test_rmse`, :meth:`rmse_curve`,
    :meth:`time_to_rmse`); the high-level
    :class:`~repro.core.trainer.TrainResult` subclasses it rather than
    duplicating the accessors.
    """

    model: "FactorModel"
    trace: "ExecutionTrace"
    converged: bool
    """Whether the requested RMSE target (if any) was reached."""

    stop_reason: str = "iterations"
    """Why the run ended: ``"iterations"``, ``"target_rmse"``,
    ``"time_budget"``, a callback-supplied reason (``"callback"``,
    ``"early_stopping"``, ``"wall_time_budget"``), or ``"aborted"`` for a
    session finished before any stopping condition fired."""

    worker_restarts: int = 0
    """Worker processes respawned after crashes during the run (always 0
    for the simulate and threads backends)."""

    @property
    def engine_time(self) -> float:
        """Total engine seconds of the run.

        Simulated seconds for the discrete-event backend, wall-clock
        seconds for the threaded backend; either way the time base of the
        trace's task and iteration records.
        """
        return self.trace.final_time

    @property
    def simulated_time(self) -> float:
        """Deprecated alias of :attr:`engine_time`.

        .. deprecated:: 1.1
           The name predates the real-execution backends, whose time base
           is wall-clock rather than simulated seconds.  Use
           :attr:`engine_time`; this alias warns and will be removed.
        """
        warnings.warn(
            "EngineResult.simulated_time is deprecated (the threaded and "
            "process backends measure wall-clock, not simulated, seconds); "
            "use engine_time",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.engine_time

    @property
    def final_test_rmse(self) -> Optional[float]:
        """Test RMSE after the last completed iteration."""
        if not self.trace.iterations:
            return None
        return self.trace.iterations[-1].test_rmse

    def rmse_curve(self) -> List[Tuple[float, float]]:
        """``(time, test_rmse)`` pairs, one per iteration."""
        return self.trace.rmse_curve()

    def time_to_rmse(self, target: float) -> Optional[float]:
        """Earliest engine time at which the test RMSE reached ``target``."""
        return self.trace.time_to_rmse(target)


@dataclass
class WallClockResult(EngineResult):
    """Outcome of a run whose time base is real wall-clock seconds.

    The shared result surface of the real-execution backends (threads,
    processes): ``trace.final_time`` is wall-clock seconds from the
    start of the run to the last task completion, which makes a
    throughput accessor meaningful.
    """

    @property
    def wall_time(self) -> float:
        """Wall-clock seconds of the run (alias of :attr:`engine_time`)."""
        return self.trace.final_time

    @property
    def throughput(self) -> float:
        """Ratings processed per wall-clock second."""
        if self.trace.final_time <= 0:
            return 0.0
        return self.trace.total_points() / self.trace.final_time


#: Iteration cap applied when a run is bounded only by ``target_rmse``
#: (or a time budget): far past any convergent training, it bounds the
#: damage of a diverging run that can never reach its target.
MAX_UNBOUNDED_ITERATIONS = 10_000


def resolve_stopping_conditions(
    iterations: Optional[int],
    target_rmse: Optional[float],
    max_simulated_time: Optional[float],
    default_iterations: int,
    has_test: bool,
    error: type,
) -> int:
    """Shared ``run()`` preamble of every backend.

    Validates that target-RMSE stopping has a test set to evaluate,
    applies the default iteration count when no stopping condition was
    given at all, and derives the effective iteration cap.  Keeping this
    in one place is what keeps the backends' stopping semantics — and
    hence the 1-worker sim-parity guarantee — in lockstep.

    Returns the iteration cap of the run; raises ``error`` on an invalid
    combination.
    """
    if target_rmse is not None and not has_test:
        raise error("target_rmse stopping requires a test set")
    if iterations is None and target_rmse is None and max_simulated_time is None:
        iterations = default_iterations
    return iterations if iterations is not None else MAX_UNBOUNDED_ITERATIONS


def apply_task_updates(
    model, train, task, rate, training, exact_kernel=False, store=None
):
    """Apply one task's SGD updates to the shared factor matrices.

    The single kernel-invocation point used by every backend: both
    engines must issue byte-identical kernel calls or the 1-worker
    sim-parity guarantee breaks.

    When a :class:`~repro.sparse.BlockStore` is given (the engines'
    default), the task's ratings come as pre-gathered, pre-validated,
    band-local contiguous arrays and the kernels run with
    ``validate=False``; without one, the legacy path gathers
    ``train.*[indices]`` per call and the kernels re-validate.  The two
    paths are bitwise-identical — the store only changes *where* the
    gather and the validation happen (once per run instead of once per
    task per epoch).
    """
    from ..sgd.kernels import resolve_kernel_name, sgd_block_minibatch, sgd_block_sequential

    kernel_name = resolve_kernel_name(training.kernel, exact_kernel=exact_kernel)

    if store is not None:
        apply_block_data(
            model.p, model.q, store.task_data(task), rate, training, kernel_name
        )
        return

    if kernel_name == "minibatch_local" and training.kernel != "auto":
        # "auto" degrades gracefully (that is its contract), but an
        # explicitly forced local kernel without block-major data would
        # silently run a different kernel than requested.
        raise ConfigurationError(
            'kernel="minibatch_local" requires the block-major data plane; '
            'enable the block store or use kernel="minibatch" '
            "(bitwise-identical)"
        )
    indices = task.indices()
    if len(indices) == 0:
        return
    if kernel_name == "sequential":
        kernel = sgd_block_sequential
    else:
        # Without block-major data the auto-selected local kernel has no
        # band frame; the global mini-batch kernel is its
        # bitwise-identical stand-in.
        kernel = sgd_block_minibatch
    if kernel_name == "sequential":
        kernel(
            model.p, model.q,
            train.rows[indices], train.cols[indices], train.vals[indices],
            rate, training.reg_p, training.reg_q,
        )
    else:
        kernel(
            model.p, model.q,
            train.rows[indices], train.cols[indices], train.vals[indices],
            rate, training.reg_p, training.reg_q,
            batch_size=training.effective_batch_size,
        )


def apply_block_data(p, q, data, rate, training, kernel_name):
    """Apply one pre-gathered block record's SGD updates to ``p``/``q``.

    The store-fed half of :func:`apply_task_updates`, factored out so the
    process backend's workers — which hold shared-memory factor arrays
    and :class:`~repro.sparse.SharedBlockStore` records rather than a
    model and a task — issue byte-identical kernel calls to the in-process
    engines.  ``kernel_name`` must already be resolved
    (:func:`~repro.sgd.kernels.resolve_kernel_name`).
    """
    from ..sgd.kernels import (
        sgd_block_minibatch,
        sgd_block_minibatch_local,
        sgd_block_sequential,
    )

    if data.nnz == 0:
        return
    if kernel_name == "sequential":
        sgd_block_sequential(
            p, q, data.rows, data.cols, data.vals,
            rate, training.reg_p, training.reg_q, validate=False,
        )
    elif kernel_name == "minibatch_local":
        sgd_block_minibatch_local(
            p, q, data.local_rows, data.local_cols, data.vals,
            rate, training.reg_p, training.reg_q,
            data.row_range, data.col_range,
            batch_size=training.effective_batch_size, validate=False,
        )
    else:
        sgd_block_minibatch(
            p, q, data.rows, data.cols, data.vals,
            rate, training.reg_p, training.reg_q,
            batch_size=training.effective_batch_size, validate=False,
        )


class Engine(ABC):
    """Common interface of the execution backends.

    Engines are single-use: construct one per run with the scheduler,
    data and hyper-parameters, then either call :meth:`run` once or
    drive the run epoch by epoch through :meth:`start` (the stepwise
    session protocol of :mod:`repro.exec.session`).  Concrete engines
    expose at least ``scheduler`` and ``model`` attributes so callers
    can inspect the grid state and the trained factors, plus a
    ``backend_name`` matching their registry name.
    """

    #: Registry name of the backend (see :mod:`repro.exec.registry`).
    backend_name: str = ""

    @abstractmethod
    def start(
        self,
        iterations: Optional[int] = None,
        target_rmse: Optional[float] = None,
        max_simulated_time: Optional[float] = None,
        pause_on_epoch: Union[bool, Callable[[int], bool]] = False,
    ) -> EngineSession:
        """Begin a stepwise run and return its session.

        Parameters
        ----------
        iterations:
            Stop after this many full passes over the training ratings
            (defaults to ``training.iterations`` when neither a target
            RMSE nor a time budget is given).  Runs bounded only by a
            target RMSE or a time budget are additionally capped at
            :data:`MAX_UNBOUNDED_ITERATIONS` epochs.  When resuming from
            a checkpoint this is the *total* epoch cap, checkpointed
            epochs included.
        target_rmse:
            Stop as soon as the test RMSE at an iteration boundary is at
            or below this value (requires a test set).
        max_simulated_time:
            Hard cap on engine seconds (simulated seconds for the
            simulator, wall-clock seconds for the threaded backend).
        pause_on_epoch:
            Ask for a fully quiescent pause at epoch boundaries: ``True``
            pauses every boundary, a ``(epoch) -> bool`` predicate only
            the selected ones.  The simulator pauses inherently; the
            threaded backend drains in-flight tasks at the selected
            boundaries — required for checkpointing, unnecessary for
            mere observation.
        """

    def run(
        self,
        iterations: Optional[int] = None,
        target_rmse: Optional[float] = None,
        max_simulated_time: Optional[float] = None,
        callbacks=None,
    ) -> EngineResult:
        """Train until a stopping condition is met.

        A thin loop over the session protocol: ``start()``, ``step()``
        until exhausted (invoking ``callbacks`` at each epoch boundary),
        ``finish()``.  See :meth:`start` for the stopping parameters and
        :mod:`repro.exec.callbacks` for the callback API.
        """
        from .callbacks import CallbackList

        callback_list = CallbackList(callbacks)
        session = self.start(
            iterations=iterations,
            target_rmse=target_rmse,
            max_simulated_time=max_simulated_time,
            # Pause only at the boundaries some callback will actually
            # capture (e.g. Checkpoint(every_n=10) drains one in ten).
            pause_on_epoch=(
                callback_list.pause_at if callback_list.requires_pause else False
            ),
        )
        return run_session(session, callback_list)
